(** Node-pruning strategies for memory-bounded probabilistic suffix trees
    (paper Sec. 5.1).

    When a PST outgrows its memory budget, nodes must be dropped. The paper
    proposes three strategies; all are implemented and compared by the
    [ablation] bench:

    - {b Smallest-count-first}: nodes with small occurrence counts are the
      least likely to ever become significant, so losing them costs little.
    - {b Longest-label-first}: by the short-memory property, deep contexts
      contribute least to prediction accuracy.
    - {b Expected-vector-first}: once only significant nodes remain, drop
      nodes whose conditional distribution is closest to their parent's —
      the parent is then an almost-lossless substitute. *)

type strategy =
  | Smallest_count_first
  | Longest_label_first
  | Expected_vector_first

val to_string : strategy -> string
(** Stable lowercase name, e.g. ["smallest-count"]. *)

val of_string : string -> strategy option
(** Inverse of {!to_string}. *)

val all : strategy list
(** Every strategy, for sweeps. *)
