type strategy =
  | Smallest_count_first
  | Longest_label_first
  | Expected_vector_first

let to_string = function
  | Smallest_count_first -> "smallest-count"
  | Longest_label_first -> "longest-label"
  | Expected_vector_first -> "expected-vector"

let of_string = function
  | "smallest-count" -> Some Smallest_count_first
  | "longest-label" -> Some Longest_label_first
  | "expected-vector" -> Some Expected_vector_first
  | _ -> None

let all = [ Smallest_count_first; Longest_label_first; Expected_vector_first ]
