lib/pst/pruning.mli:
