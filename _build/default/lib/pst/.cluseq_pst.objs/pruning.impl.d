lib/pst/pruning.ml:
