lib/pst/pst.mli: Format Pruning Sequence
