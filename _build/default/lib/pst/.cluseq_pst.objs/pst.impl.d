lib/pst/pst.ml: Array Float Format List Printf Pruning Smallmap String
