type t = int array

let length = Array.length

let segment s ~lo ~hi =
  if lo < 0 || hi >= Array.length s || lo > hi then invalid_arg "Sequence.segment";
  Array.sub s lo (hi - lo + 1)

let matches_at big small pos =
  let n = Array.length small in
  let rec go i = i = n || (big.(pos + i) = small.(i) && go (i + 1)) in
  go 0

let is_segment_of small big =
  let n = Array.length small and m = Array.length big in
  if n = 0 then true
  else if n > m then false
  else
    let rec go pos = pos <= m - n && (matches_at big small pos || go (pos + 1)) in
    go 0

let is_suffix_of small big =
  let n = Array.length small and m = Array.length big in
  n <= m && matches_at big small (m - n)

let is_prefix_of small big =
  let n = Array.length small and m = Array.length big in
  n <= m && matches_at big small 0

let reverse s =
  let n = Array.length s in
  Array.init n (fun i -> s.(n - 1 - i))

let count_occurrences s ~pattern =
  let n = Array.length pattern and m = Array.length s in
  if n = 0 || n > m then 0
  else begin
    let acc = ref 0 in
    for pos = 0 to m - n do
      if matches_at s pattern pos then incr acc
    done;
    !acc
  end

let of_string alpha s = Alphabet.encode_string alpha s
let to_string alpha s = Alphabet.decode alpha s
let equal a b = a = b

let pp fmt s =
  Format.fprintf fmt "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int s)))
