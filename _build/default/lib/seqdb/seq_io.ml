let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let write_labeled path alpha rows =
  with_out path (fun oc ->
      Array.iter
        (fun (label, s) -> Printf.fprintf oc "%s\t%s\n" label (Alphabet.decode alpha s))
        rows)

let infer_alphabet texts =
  let seen = Array.make 256 false in
  List.iter (fun s -> String.iter (fun ch -> seen.(Char.code ch) <- true) s) texts;
  let symbols = ref [] in
  for code = 255 downto 0 do
    if seen.(code) then symbols := String.make 1 (Char.chr code) :: !symbols
  done;
  if !symbols = [] then Alphabet.of_string "a" else Alphabet.of_symbols !symbols

let read_lines ic =
  let acc = ref [] in
  (try
     while true do
       acc := input_line ic :: !acc
     done
   with End_of_file -> ());
  List.rev !acc

let read_labeled ?alphabet path =
  with_in path (fun ic ->
      let rows =
        List.filteri (fun _ l -> String.trim l <> "" && (String.length l = 0 || l.[0] <> '#'))
          (read_lines ic)
      in
      let parsed =
        List.mapi
          (fun i line ->
            match String.index_opt line '\t' with
            | None -> failwith (Printf.sprintf "Seq_io.read_labeled: line %d: missing TAB" (i + 1))
            | Some tab ->
                let label = String.sub line 0 tab in
                let body = String.sub line (tab + 1) (String.length line - tab - 1) in
                (label, body))
          rows
      in
      let alpha =
        match alphabet with Some a -> a | None -> infer_alphabet (List.map snd parsed)
      in
      ( alpha,
        Array.of_list
          (List.map (fun (label, body) -> (label, Alphabet.encode_string alpha body)) parsed) ))

let write_fasta path alpha rows =
  with_out path (fun oc ->
      Array.iteri
        (fun i (label, s) ->
          Printf.fprintf oc ">seq%d %s\n" i label;
          let text = Alphabet.decode alpha s in
          let n = String.length text in
          let pos = ref 0 in
          while !pos < n do
            let len = min 70 (n - !pos) in
            output_string oc (String.sub text !pos len);
            output_char oc '\n';
            pos := !pos + len
          done)
        rows)

let read_fasta ?alphabet path =
  with_in path (fun ic ->
      let lines = read_lines ic in
      let records = ref [] in
      let label = ref None in
      let buf = Buffer.create 256 in
      let flush () =
        match !label with
        | None -> ()
        | Some l ->
            records := (l, Buffer.contents buf) :: !records;
            Buffer.clear buf
      in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line = "" then ()
          else if line.[0] = '>' then begin
            flush ();
            let header = String.sub line 1 (String.length line - 1) in
            let l =
              match String.index_opt header ' ' with
              | Some sp -> String.sub header (sp + 1) (String.length header - sp - 1)
              | None -> header
            in
            label := Some l
          end
          else Buffer.add_string buf line)
        lines;
      flush ();
      let parsed = List.rev !records in
      let alpha =
        match alphabet with Some a -> a | None -> infer_alphabet (List.map snd parsed)
      in
      ( alpha,
        Array.of_list
          (List.map (fun (l, body) -> (l, Alphabet.encode_string alpha body)) parsed) ))

let write_tokens path alpha rows =
  with_out path (fun oc ->
      Array.iter
        (fun (label, s) ->
          Printf.fprintf oc "%s\t%s\n" label
            (String.concat " " (Array.to_list (Array.map (Alphabet.symbol alpha) s))))
        rows)

let read_tokens ?alphabet path =
  with_in path (fun ic ->
      let lines =
        List.filter (fun l -> String.trim l <> "" && (String.length l = 0 || l.[0] <> '#'))
          (read_lines ic)
      in
      let parsed =
        List.mapi
          (fun i line ->
            match String.index_opt line '\t' with
            | None -> failwith (Printf.sprintf "Seq_io.read_tokens: line %d: missing TAB" (i + 1))
            | Some tab ->
                let label = String.sub line 0 tab in
                let body = String.sub line (tab + 1) (String.length line - tab - 1) in
                let tokens =
                  List.filter (fun t -> t <> "") (String.split_on_char ' ' body)
                in
                (label, tokens))
          lines
      in
      let alpha =
        match alphabet with
        | Some a -> a
        | None ->
            let seen = Hashtbl.create 64 in
            let order = ref [] in
            List.iter
              (fun (_, tokens) ->
                List.iter
                  (fun t ->
                    if not (Hashtbl.mem seen t) then begin
                      Hashtbl.add seen t ();
                      order := t :: !order
                    end)
                  tokens)
              parsed;
            (match !order with
            | [] -> failwith "Seq_io.read_tokens: no tokens in file"
            | _ -> Alphabet.of_symbols (List.rev !order))
      in
      let encode (label, tokens) =
        let codes =
          List.map
            (fun t ->
              match Alphabet.code alpha t with
              | Some c -> c
              | None -> failwith (Printf.sprintf "Seq_io.read_tokens: unknown token %S" t))
            tokens
        in
        (label, Array.of_list codes)
      in
      (alpha, Array.of_list (List.map encode parsed)))

let to_database alpha rows =
  (Seq_database.create alpha (Array.map snd rows), Array.map fst rows)
