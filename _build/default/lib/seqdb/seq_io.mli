(** Reading and writing sequence databases.

    Two formats are supported:
    - {b labeled lines}: one sequence per line as
      [label<TAB>characters] — the working format of the CLI and benches;
    - {b FASTA-like}: [>id label] header lines followed by sequence lines,
      familiar from protein databases such as the paper's SWISS-PROT input.

    Both formats carry single-character symbols; the alphabet is inferred
    from the data unless one is supplied. *)

val write_labeled : string -> Alphabet.t -> (string * Sequence.t) array -> unit
(** [write_labeled path alpha rows] writes [label<TAB>sequence] lines. *)

val read_labeled : ?alphabet:Alphabet.t -> string -> Alphabet.t * (string * Sequence.t) array
(** [read_labeled path] parses [label<TAB>sequence] lines, inferring the
    alphabet from the sequence characters when none is given. Blank lines
    and lines starting with ['#'] are skipped. Raises [Failure] on a
    malformed line (line number included). *)

val write_fasta : string -> Alphabet.t -> (string * Sequence.t) array -> unit
(** [write_fasta path alpha rows] writes [>seq<i> label] records wrapped at
    70 columns. *)

val read_fasta : ?alphabet:Alphabet.t -> string -> Alphabet.t * (string * Sequence.t) array
(** [read_fasta path] parses FASTA records; the record label is the text
    after the first space in the header (or the full id when absent). *)

val write_tokens : string -> Alphabet.t -> (string * Sequence.t) array -> unit
(** [write_tokens path alpha rows] writes [label<TAB>sym sym sym ...]
    lines with space-separated symbol names — the format for alphabets
    whose symbols are multi-character strings (event logs, word-level
    text). *)

val read_tokens : ?alphabet:Alphabet.t -> string -> Alphabet.t * (string * Sequence.t) array
(** [read_tokens path] parses [label<TAB>sym sym ...] lines; the alphabet
    is inferred from the distinct tokens (in first-appearance order) when
    none is given. Raises [Failure] on a malformed line or (with
    [~alphabet]) an unknown token. *)

val to_database : Alphabet.t -> (string * Sequence.t) array -> Seq_database.t * string array
(** [to_database alpha rows] splits labeled rows into a database and the
    parallel label array. *)
