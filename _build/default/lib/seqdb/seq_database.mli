(** Sequence databases.

    A sequence database is a set of sequences over a common alphabet (paper
    Sec. 2). The database also owns the background symbol distribution
    {m p(s)} — the probability of observing symbol [s] at any position of
    any sequence — used as the memoryless-random-generator reference in the
    similarity measure {m sim_S(σ) = P_S(σ)/P^r(σ)}. *)

type t
(** An immutable sequence database. *)

val create : Alphabet.t -> Sequence.t array -> t
(** [create alphabet sequences] builds a database. Raises [Invalid_argument]
    if a sequence contains a code outside the alphabet. *)

val of_strings : Alphabet.t -> string list -> t
(** [of_strings alphabet lines] encodes each string as a sequence. *)

val alphabet : t -> Alphabet.t
(** The common alphabet. *)

val n_sequences : t -> int
(** Number of sequences N. *)

val get : t -> int -> Sequence.t
(** [get t i] is the i-th sequence. *)

val sequences : t -> Sequence.t array
(** The underlying array (do not mutate). *)

val total_symbols : t -> int
(** Sum of all sequence lengths. *)

val avg_length : t -> float
(** Mean sequence length; [0.] for an empty database. *)

val background : t -> float array
(** [background t] is the Laplace-smoothed (add-one) empirical symbol
    distribution {m p(s)} over the whole database:
    {m (count_s + 1)/(total + |Σ|)}. Add-one keeps {m \log p(s)} finite
    for unseen symbols {e at the same scale} as a PST's smoothed
    predictions — a hard floor would award sequences containing
    database-unseen symbols a huge spurious similarity bonus. Computed
    once and cached. *)

val log_background : t -> float array
(** [log_background t] is [Array.map log (background t)], cached. *)

val iteri : (int -> Sequence.t -> unit) -> t -> unit
(** Iterate over (index, sequence). *)

val subset : t -> int array -> t
(** [subset t idx] is a database of the selected sequences (shared alphabet;
    background is recomputed for the subset). *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)
