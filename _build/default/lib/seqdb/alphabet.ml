type t = {
  symbols : string array;
  index : (string, int) Hashtbl.t;
  (* Fast path for single-character symbols: char_index.(Char.code ch) is
     the code of the symbol [String.make 1 ch], or -1. *)
  char_index : int array;
}

let of_symbols names =
  if names = [] then invalid_arg "Alphabet.of_symbols: empty";
  let symbols = Array.of_list names in
  let index = Hashtbl.create (Array.length symbols) in
  let char_index = Array.make 256 (-1) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem index name then
        invalid_arg (Printf.sprintf "Alphabet.of_symbols: duplicate symbol %S" name);
      Hashtbl.add index name i;
      if String.length name = 1 then char_index.(Char.code name.[0]) <- i)
    symbols;
  { symbols; index; char_index }

let of_char_range lo hi =
  if hi < lo then invalid_arg "Alphabet.of_char_range";
  of_symbols
    (List.init (Char.code hi - Char.code lo + 1) (fun i ->
         String.make 1 (Char.chr (Char.code lo + i))))

let of_string s =
  let seen = Array.make 256 false in
  let acc = ref [] in
  String.iter
    (fun ch ->
      if not seen.(Char.code ch) then begin
        seen.(Char.code ch) <- true;
        acc := String.make 1 ch :: !acc
      end)
    s;
  of_symbols (List.rev !acc)

let size t = Array.length t.symbols
let code t name = Hashtbl.find_opt t.index name
let code_exn t name = Hashtbl.find t.index name

let code_of_char t ch =
  let c = t.char_index.(Char.code ch) in
  if c < 0 then None else Some c

let symbol t i =
  if i < 0 || i >= Array.length t.symbols then invalid_arg "Alphabet.symbol";
  t.symbols.(i)

let encode_string t s =
  Array.init (String.length s) (fun i ->
      let ch = s.[i] in
      let c = t.char_index.(Char.code ch) in
      if c < 0 then failwith (Printf.sprintf "Alphabet.encode_string: %C not in alphabet" ch)
      else c)

let decode t codes =
  let buf = Buffer.create (Array.length codes) in
  Array.iter (fun c -> Buffer.add_string buf (symbol t c)) codes;
  Buffer.contents buf

let dna = of_string "acgt"
let amino_acids = of_string "acdefghiklmnpqrstvwy"
let lowercase = of_char_range 'a' 'z'

let pp fmt t =
  let preview =
    if size t <= 30 then String.concat "" (Array.to_list t.symbols)
    else String.concat "" (Array.to_list (Array.sub t.symbols 0 30)) ^ "..."
  in
  Format.fprintf fmt "alphabet(|Σ|=%d: %s)" (size t) preview
