lib/seqdb/alphabet.mli: Format
