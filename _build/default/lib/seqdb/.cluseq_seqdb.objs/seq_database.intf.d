lib/seqdb/seq_database.mli: Alphabet Format Sequence
