lib/seqdb/sequence.ml: Alphabet Array Format String
