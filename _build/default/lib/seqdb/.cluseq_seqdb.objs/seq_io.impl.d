lib/seqdb/seq_io.ml: Alphabet Array Buffer Char Fun Hashtbl List Printf Seq_database String
