lib/seqdb/sequence.mli: Alphabet Format
