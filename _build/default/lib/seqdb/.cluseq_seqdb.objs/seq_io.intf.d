lib/seqdb/seq_io.mli: Alphabet Seq_database Sequence
