lib/seqdb/alphabet.ml: Array Buffer Char Format Hashtbl List Printf String
