lib/seqdb/seq_database.ml: Alphabet Array Format List Printf Sequence
