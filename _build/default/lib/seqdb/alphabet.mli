(** Symbol alphabets.

    CLUSEQ operates over an arbitrary finite symbol set Σ (paper Sec. 2).
    Internally every symbol is a dense integer code in [\[0, size)]; this
    module owns the bijection between user-facing symbol names (single
    characters or arbitrary strings) and codes. *)

type t
(** An immutable alphabet. *)

val of_symbols : string list -> t
(** [of_symbols names] assigns codes [0, 1, ...] in list order.
    Raises [Invalid_argument] on duplicates or an empty list. *)

val of_char_range : char -> char -> t
(** [of_char_range lo hi] is the alphabet of the single-character symbols
    [lo .. hi] inclusive. *)

val of_string : string -> t
(** [of_string s] is the alphabet of the distinct characters of [s], in
    first-occurrence order. *)

val size : t -> int
(** Number of symbols |Σ|. *)

val code : t -> string -> int option
(** [code t name] is the code of symbol [name], if present. *)

val code_exn : t -> string -> int
(** Like {!code} but raises [Not_found]. *)

val code_of_char : t -> char -> int option
(** [code_of_char t ch] looks up the single-character symbol [ch]. *)

val symbol : t -> int -> string
(** [symbol t i] is the name of code [i].
    Raises [Invalid_argument] if out of range. *)

val encode_string : t -> string -> int array
(** [encode_string t s] encodes each character of [s] as a symbol code.
    Raises [Failure] on a character outside the alphabet (the offending
    character is named in the message). *)

val decode : t -> int array -> string
(** [decode t codes] concatenates the symbol names of [codes]. *)

val dna : t
(** The 4-letter DNA alphabet [a c g t]. *)

val amino_acids : t
(** The 20-letter amino-acid alphabet (one-letter codes, lowercase). *)

val lowercase : t
(** The 26-letter alphabet [a .. z]. *)

val pp : Format.formatter -> t -> unit
(** Prints size and a symbol preview. *)
