type t = {
  alphabet : Alphabet.t;
  sequences : Sequence.t array;
  mutable background_cache : float array option;
  mutable log_background_cache : float array option;
}


let create alphabet sequences =
  let n = Alphabet.size alphabet in
  Array.iteri
    (fun i s ->
      Array.iter
        (fun c ->
          if c < 0 || c >= n then
            invalid_arg
              (Printf.sprintf "Seq_database.create: sequence %d has code %d outside alphabet of size %d" i c n))
        s)
    sequences;
  { alphabet; sequences; background_cache = None; log_background_cache = None }

let of_strings alphabet lines =
  create alphabet (Array.of_list (List.map (Alphabet.encode_string alphabet) lines))

let alphabet t = t.alphabet
let n_sequences t = Array.length t.sequences

let get t i =
  if i < 0 || i >= Array.length t.sequences then invalid_arg "Seq_database.get";
  t.sequences.(i)

let sequences t = t.sequences
let total_symbols t = Array.fold_left (fun acc s -> acc + Array.length s) 0 t.sequences

let avg_length t =
  let n = n_sequences t in
  if n = 0 then 0.0 else float_of_int (total_symbols t) /. float_of_int n

let background t =
  match t.background_cache with
  | Some bg -> bg
  | None ->
      let n = Alphabet.size t.alphabet in
      let counts = Array.make n 0 in
      Array.iter (Array.iter (fun c -> counts.(c) <- counts.(c) + 1)) t.sequences;
      let total = Array.fold_left ( + ) 0 counts in
      (* Laplace (add-one) smoothing: an unseen symbol gets probability
         1/(total+n), the natural "never observed in total draws" estimate.
         A harder floor (e.g. 1e-9) would make log p(s) for unseen symbols
         far more negative than any PST's smoothed prediction, handing a
         large spurious similarity bonus to sequences containing symbols
         absent from the database. *)
      let bg =
        Array.map
          (fun c -> float_of_int (c + 1) /. float_of_int (total + n))
          counts
      in
      t.background_cache <- Some bg;
      bg

let log_background t =
  match t.log_background_cache with
  | Some lg -> lg
  | None ->
      let lg = Array.map log (background t) in
      t.log_background_cache <- Some lg;
      lg

let iteri f t = Array.iteri f t.sequences

let subset t idx =
  create t.alphabet (Array.map (fun i -> get t i) idx)

let pp fmt t =
  Format.fprintf fmt "db(N=%d, |Σ|=%d, avg_len=%.1f)" (n_sequences t)
    (Alphabet.size t.alphabet) (avg_length t)
