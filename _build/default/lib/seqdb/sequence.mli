(** Symbol sequences.

    A sequence is an ordered list of symbol codes (paper Sec. 2), stored as
    an immutable-by-convention [int array]. Helper operations cover the
    segment/suffix/prefix vocabulary used throughout the paper. *)

type t = int array
(** A sequence of symbol codes. Treat as immutable. *)

val length : t -> int
(** Number of symbols. *)

val segment : t -> lo:int -> hi:int -> t
(** [segment s ~lo ~hi] is the consecutive portion [s.(lo) .. s.(hi)]
    (inclusive bounds). Raises [Invalid_argument] on bad bounds. *)

val is_segment_of : t -> t -> bool
(** [is_segment_of small big] iff [small] occurs consecutively in [big].
    The empty sequence is a segment of every sequence. *)

val is_suffix_of : t -> t -> bool
(** [is_suffix_of small big] per the paper's suffix definition. *)

val is_prefix_of : t -> t -> bool
(** [is_prefix_of small big] per the paper's prefix definition. *)

val reverse : t -> t
(** [reverse s] is the reversed sequence (paper Sec. 3: PSTs are built on
    reversed sequences). *)

val count_occurrences : t -> pattern:t -> int
(** [count_occurrences s ~pattern] is the number of (possibly overlapping)
    occurrences of [pattern] in [s]; [0] for an empty pattern. *)

val of_string : Alphabet.t -> string -> t
(** [of_string alpha s] encodes a character string. *)

val to_string : Alphabet.t -> t -> string
(** [to_string alpha s] decodes to a printable string. *)

val equal : t -> t -> bool
(** Element-wise equality. *)

val pp : Format.formatter -> t -> unit
(** Prints codes as a compact bracketed list. *)
