(** Direct distribution-difference measures between cluster models.

    Paper Sec. 2 discusses measuring the difference between two
    conditional probability distributions with the {e variational
    distance} {m V(P_1,P_2) = \sum_σ |P_1(σ) - P_2(σ)|} or the
    (symmetrized) {e Kullback–Leibler divergence}
    {m J(P_1,P_2) = \sum_σ (P_1(σ)-P_2(σ)) \log(P_1(σ)/P_2(σ))}, and
    rejects them because the sum ranges over {m O(|Σ|^L)} segments.

    This module implements both measures over the conditional next-symbol
    distributions of two PSTs, aggregated over the {e realized} contexts
    (the union of significant nodes of either tree, weighted by their
    empirical frequency) — the practical variant that makes the comparison
    computable, used here for the pruning ablation and to let users compare
    cluster models directly. The [ablation] bench demonstrates the cost
    gap versus the paper's predict-based similarity. *)

val variational : Pst.t -> Pst.t -> float
(** [variational a b] is the frequency-weighted average, over the
    significant contexts of either tree, of
    {m \sum_s |P_a(s|ctx) - P_b(s|ctx)|} ∈ [0, 2]. Contexts are matched by
    label; a context absent from one tree falls back to that tree's
    prediction-node estimate (longest significant suffix), exactly like a
    similarity query. Trees must share the alphabet size. *)

val kl_symmetric : Pst.t -> Pst.t -> float
(** [kl_symmetric a b] is the frequency-weighted average symmetrized KL
    divergence {m J} over the same context set, using each tree's smoothed
    probabilities (so the value is finite whenever both configs smooth,
    i.e. [p_min > 0]); ≥ 0, 0 iff the matched conditionals agree. *)
