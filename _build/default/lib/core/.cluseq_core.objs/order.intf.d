lib/core/order.mli: Rng
