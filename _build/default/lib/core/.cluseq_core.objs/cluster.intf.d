lib/core/cluster.mli: Bitset Pst Sequence Similarity
