lib/core/divergence.mli: Pst
