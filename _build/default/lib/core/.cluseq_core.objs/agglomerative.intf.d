lib/core/agglomerative.mli: Pst Seq_database
