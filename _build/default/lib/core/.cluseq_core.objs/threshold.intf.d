lib/core/threshold.mli:
