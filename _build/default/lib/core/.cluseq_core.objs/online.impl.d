lib/core/online.ml: Alphabet Array Char Cluseq Float List Option Printf Pst Queue Seq_database Sequence Similarity
