lib/core/classifier.mli: Alphabet Cluseq Pst Seq_database Sequence
