lib/core/classifier.ml: Alphabet Array Cluseq Float Fun List Printf Pst Seq_database Similarity String
