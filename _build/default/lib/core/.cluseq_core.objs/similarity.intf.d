lib/core/similarity.mli: Pst Sequence
