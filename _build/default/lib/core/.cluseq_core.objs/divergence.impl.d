lib/core/divergence.ml: Array Float Hashtbl List Option Pst
