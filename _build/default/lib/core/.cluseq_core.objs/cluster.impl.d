lib/core/cluster.ml: Bitset Pst Similarity
