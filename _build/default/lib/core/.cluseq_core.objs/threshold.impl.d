lib/core/threshold.ml: Array Float Histogram Seq Similarity
