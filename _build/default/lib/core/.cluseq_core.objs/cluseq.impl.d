lib/core/cluseq.ml: Alphabet Array Bitset Cluster Float Fun Hashtbl List Logs Option Order Pruning Pst Rng Seq_database Threshold
