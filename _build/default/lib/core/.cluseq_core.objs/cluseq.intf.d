lib/core/cluseq.mli: Order Pruning Pst Seq_database
