lib/core/order.ml: Array Fun List Rng
