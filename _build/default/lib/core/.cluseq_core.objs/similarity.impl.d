lib/core/similarity.ml: Array Float Pst
