lib/core/agglomerative.ml: Alphabet Array Divergence Float List Option Pst Seq_database
