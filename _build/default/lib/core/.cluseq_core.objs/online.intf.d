lib/core/online.mli: Cluseq Sequence
