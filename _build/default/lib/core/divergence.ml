let check_compatible a b =
  if (Pst.config a).Pst.alphabet_size <> (Pst.config b).Pst.alphabet_size then
    invalid_arg "Divergence: alphabet size mismatch"

(* Collect the significant contexts of [t] as (label, count) pairs. *)
let significant_contexts t =
  let acc = ref [] in
  Pst.iter_nodes t (fun node ->
      if Pst.node_depth node > 0 && Pst.is_significant t node then
        acc := (Array.of_list (Pst.node_label t node), Pst.node_count node) :: !acc);
  !acc

(* The conditional distribution of [t] at [label], estimated as a query
   would: the exact node when present, else the prediction node of the
   context (longest significant suffix). *)
let distribution_at t label =
  let node =
    match Pst.find_node t label with
    | Some node when Pst.is_significant t node -> node
    | _ -> Pst.prediction_node t label ~lo:0 ~pos:(Array.length label)
  in
  Pst.next_distribution t node

let weighted_average_over_contexts a b per_context =
  check_compatible a b;
  (* Union of both trees' significant contexts; duplicates merged with
     summed weights (a context counted in both trees is simply more
     frequent overall). *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (label, count) ->
      let key = Array.to_list label in
      Hashtbl.replace tbl key
        (let prev = Option.value ~default:(label, 0) (Hashtbl.find_opt tbl key) in
         (label, snd prev + count)))
    (significant_contexts a @ significant_contexts b);
  let num = ref 0.0 and den = ref 0.0 in
  Hashtbl.iter
    (fun _ (label, weight) ->
      let pa = distribution_at a label and pb = distribution_at b label in
      num := !num +. (float_of_int weight *. per_context pa pb);
      den := !den +. float_of_int weight)
    tbl;
  if !den = 0.0 then 0.0 else !num /. !den

let variational a b =
  weighted_average_over_contexts a b (fun pa pb ->
      let acc = ref 0.0 in
      Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. pb.(i))) pa;
      !acc)

let kl_symmetric a b =
  weighted_average_over_contexts a b (fun pa pb ->
      let acc = ref 0.0 in
      Array.iteri
        (fun i x ->
          let y = pb.(i) in
          if x > 0.0 && y > 0.0 then acc := !acc +. ((x -. y) *. log (x /. y)))
        pa;
      !acc)
