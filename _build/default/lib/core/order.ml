type t = Fixed | Random | Cluster_based

let to_string = function
  | Fixed -> "fixed"
  | Random -> "random"
  | Cluster_based -> "cluster-based"

let of_string = function
  | "fixed" -> Some Fixed
  | "random" -> Some Random
  | "cluster-based" -> Some Cluster_based
  | _ -> None

let arrange order rng ~n ~best =
  let ids = Array.init n Fun.id in
  (match order with
  | Fixed -> ()
  | Random -> Rng.shuffle rng ids
  | Cluster_based ->
      let key i = match best.(i) with Some (c, _) -> c | None -> max_int in
      (* Stable sort keeps id order within each cluster group. *)
      let lst = Array.to_list ids in
      let sorted = List.stable_sort (fun a b -> compare (key a) (key b)) lst in
      List.iteri (fun pos i -> ids.(pos) <- i) sorted);
  ids
