(** Agglomerative clustering over direct CPD differences — the alternative
    paper Sec. 2 considers and rejects.

    Each sequence gets its own small PST; pairwise distances are the
    {!Divergence} measures between those models; clusters merge bottom-up
    (average linkage) until the requested count remains. This realizes the
    "compute the difference between the corresponding conditional
    probability distributions" approach so the [ablation] bench can show
    both its quality and the cost that made the paper choose the
    predict-based similarity instead. *)

type linkage =
  | Single  (** Minimum pairwise distance between clusters. *)
  | Complete  (** Maximum pairwise distance. *)
  | Average  (** Mean pairwise distance (UPGMA). *)

type measure =
  | Variational  (** {!Divergence.variational}. *)
  | Kl_symmetric  (** {!Divergence.kl_symmetric}. *)

val cluster :
  ?linkage:linkage ->
  ?measure:measure ->
  ?pst_config:Pst.config ->
  k:int ->
  Seq_database.t ->
  int array
(** [cluster ~k db] builds one PST per sequence ([pst_config] defaults to
    significance 2, depth 5 — per-sequence statistics are thin), computes
    all pairwise divergences, and merges with the given [linkage] (default
    [Average]) and [measure] (default [Variational]) down to [k] clusters.
    Returns a label per sequence in [\[0, k)]. O(N²) distances and O(N³)
    worst-case merging — usable only at small N, which is the point the
    bench makes. Raises [Invalid_argument] when [k] is out of range. *)
