(** Sequence examination orders for the reclustering pass (paper Sec. 6.3).

    The paper compares three orders and finds the cluster-based one harmful
    (it traps the algorithm in local optima); all three are implemented so
    the [order] bench can reproduce that study. *)

type t =
  | Fixed  (** Sequences in id order — identical every iteration. *)
  | Random  (** A fresh random permutation each iteration. *)
  | Cluster_based
      (** All sequences whose best cluster (from the previous iteration) was
          the same are examined consecutively; unclustered sequences last. *)

val to_string : t -> string
(** Stable lowercase name. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)

val arrange : t -> Rng.t -> n:int -> best:(int * float) option array -> int array
(** [arrange order rng ~n ~best] is the permutation of [0 .. n-1] to use
    this iteration. [best.(i)] is sequence [i]'s best cluster from the
    previous iteration (used only by [Cluster_based]). *)
