(** Classifying new sequences against a trained clustering.

    CLUSEQ's output is more than a partition: each cluster's PST is a
    generative model, so unseen sequences can be assigned to the cluster
    that best predicts them (or be flagged as outliers) without re-running
    the clustering — the "determine whether a sequence should belong to a
    cluster by calculating the likelihood of (re)producing it" operation
    of the paper's introduction, packaged for deployment. Models can be
    saved to disk and reloaded, giving a train once / classify forever
    workflow. *)

type t
(** An immutable trained classifier. *)

type verdict = {
  cluster : int option;  (** Best cluster id, or [None] for an outlier. *)
  log_sim : float;  (** Log-similarity to that best cluster. *)
  scores : (int * float) list;  (** Log-similarity per cluster, sorted desc. *)
}

val of_result : Cluseq.result -> Seq_database.t -> t
(** [of_result result db] freezes a finished run into a classifier: the
    final cluster models, the database's alphabet and background
    distribution, and the final threshold [t]. *)

val make :
  models:(int * Pst.t) list ->
  log_background:float array ->
  t_linear:float ->
  ?alphabet:Alphabet.t ->
  unit ->
  t
(** Assemble a classifier from parts (e.g. loaded models). Raises
    [Invalid_argument] on an empty model list or [t_linear < 1]. *)

val alphabet : t -> Alphabet.t option
(** The training alphabet, when known. Classifying sequences encoded with
    a different alphabet silently permutes symbol codes and produces
    garbage — always re-encode with this alphabet (the CLI does). *)

val classify : t -> Sequence.t -> verdict
(** [classify t s] scores [s] against every cluster model. [cluster] is
    [Some] of the argmax only when its similarity clears the threshold. *)

val classify_all : t -> Seq_database.t -> verdict array
(** Classify every sequence of a database. *)

val n_clusters : t -> int
(** Number of cluster models. *)

val threshold : t -> float
(** The linear decision threshold. *)

val save : string -> t -> unit
(** [save path t] persists the classifier (threshold, background, every
    model) to a single file. *)

val load : string -> t
(** [load path] restores a classifier written by {!save}. Raises
    [Failure] on malformed input. *)
