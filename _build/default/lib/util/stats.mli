(** Small statistics helpers: moments, least-squares regression, and the
    prefix/suffix regression-slope machinery used by the similarity-threshold
    valley detector (paper Sec. 4.6). *)

val mean : float array -> float
(** [mean a] is the arithmetic mean; [nan] on an empty array. *)

val variance : float array -> float
(** [variance a] is the population variance; [nan] when [length a < 1]. *)

val stddev : float array -> float
(** [stddev a] is [sqrt (variance a)]. *)

val linear_regression : (float * float) array -> float * float
(** [linear_regression points] is [(slope, intercept)] of the least-squares
    line through [points]. A degenerate fit (fewer than two points, or zero
    x-variance) yields slope [0.] and intercept [mean y]. *)

val prefix_suffix_slopes : x:float array -> y:float array -> float array * float array
(** [prefix_suffix_slopes ~x ~y] returns [(left, right)] where [left.(i)] is
    the regression slope of points [0..i] and [right.(i)] the slope of points
    [i..n-1], each computed in O(n) total via running sums — exactly the
    {m b_i^l} and {m b_i^r} of paper Sec. 4.6. Degenerate windows give
    slope [0.]. Arrays must have equal length. *)

val percentile : float array -> float -> float
(** [percentile a p] is the [p]-th percentile ([0. <= p <= 100.]) of [a]
    using nearest-rank on a sorted copy. Raises [Invalid_argument] on an
    empty array. *)

val argmax : float array -> int
(** [argmax a] is the index of the maximum element (first on ties).
    Raises [Invalid_argument] on an empty array. *)
