let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_s f = snd (time f)
