type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1), then scaled by [bound]. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher–Yates over an index array: O(n) space, O(n + k) time. *)
  let idx = Array.init n Fun.id in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.categorical: non-positive total weight";
  let x = float t total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let dirichlet_like t ~concentration n =
  if n <= 0 then invalid_arg "Rng.dirichlet_like";
  let v =
    Array.init n (fun _ ->
        let u = Float.max 1e-12 (float t 1.0) in
        (* [u ** (1/c)] concentrates mass on few coordinates when [c] is
           small, mimicking a symmetric Dirichlet draw. *)
        u ** (1.0 /. Float.max 1e-6 concentration))
  in
  let s = Array.fold_left ( +. ) 0.0 v in
  Array.map (fun x -> x /. s) v
