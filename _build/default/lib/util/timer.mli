(** Wall-clock timing helpers for the benchmark harness. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in seconds. *)

val time_s : (unit -> unit) -> float
(** [time_s f] is the elapsed wall-clock seconds of [f ()]. *)
