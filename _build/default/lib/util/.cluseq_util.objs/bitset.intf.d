lib/util/bitset.mli:
