lib/util/smallmap.ml: Array
