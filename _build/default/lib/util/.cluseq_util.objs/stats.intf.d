lib/util/stats.mli:
