lib/util/smallmap.mli:
