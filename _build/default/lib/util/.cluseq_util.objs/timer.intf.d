lib/util/timer.mli:
