lib/util/rng.mli:
