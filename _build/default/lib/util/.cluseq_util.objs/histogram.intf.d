lib/util/histogram.mli:
