lib/util/histogram.ml: Array Float Stats
