(** Deterministic, splittable pseudo-random number generator.

    All randomized components of the library (seed sampling, synthetic
    workload generation, baseline initialization) draw from an explicit
    [Rng.t] so that every experiment is reproducible from a single seed.
    The generator is SplitMix64, which is fast, passes BigCrush, and splits
    cleanly into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val gaussian : t -> float
(** [gaussian t] is a standard-normal sample (Box–Muller). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a].
    Raises [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] is [k] distinct indices drawn
    uniformly from [\[0, n)], in random order. Raises [Invalid_argument]
    if [k > n] or [k < 0]. *)

val categorical : t -> float array -> int
(** [categorical t weights] samples an index with probability proportional
    to [weights.(i)]. Weights must be non-negative with a positive sum. *)

val dirichlet_like : t -> concentration:float -> int -> float array
(** [dirichlet_like t ~concentration n] is a random probability vector of
    length [n]. Small [concentration] produces peaked vectors, large
    [concentration] produces near-uniform vectors. (Gamma sampling is
    approximated by powering uniform variates, which is sufficient for
    workload generation.) *)
