type t = { words : int array; cap : int }

let bits_per_word = 62 (* portable: avoid relying on boxed-int width *)

let create cap =
  if cap < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((cap + bits_per_word - 1) / bits_per_word + 1) 0; cap }

let capacity t = t.cap
let copy t = { words = Array.copy t.words; cap = t.cap }

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let clear t = Array.fill t.words 0 (Array.length t.words) 0

let check_same a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let union_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_cardinal a b =
  check_same a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land lnot b.words.(i))
  done;
  !acc

let inter_cardinal a b =
  check_same a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let iter f t =
  for i = 0 to t.cap - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.cap - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list cap xs =
  let t = create cap in
  List.iter (add t) xs;
  t

let equal a b =
  check_same a b;
  Array.for_all2 ( = ) a.words b.words
