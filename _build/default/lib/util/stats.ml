let mean a =
  let n = Array.length a in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 1 then nan
  else
    let m = mean a in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    s /. float_of_int n

let stddev a = sqrt (variance a)

let slope_of_sums ~n ~sx ~sy ~sxy ~sxx =
  let nf = float_of_int n in
  let denom = sxx -. (sx *. sx /. nf) in
  if n < 2 || Float.abs denom < 1e-12 then 0.0
  else (sxy -. (sx *. sy /. nf)) /. denom

let linear_regression points =
  let n = Array.length points in
  if n = 0 then (0.0, nan)
  else begin
    let sx = ref 0.0 and sy = ref 0.0 and sxy = ref 0.0 and sxx = ref 0.0 in
    Array.iter
      (fun (x, y) ->
        sx := !sx +. x;
        sy := !sy +. y;
        sxy := !sxy +. (x *. y);
        sxx := !sxx +. (x *. x))
      points;
    let b = slope_of_sums ~n ~sx:!sx ~sy:!sy ~sxy:!sxy ~sxx:!sxx in
    let a = (!sy /. float_of_int n) -. (b *. !sx /. float_of_int n) in
    (b, a)
  end

let prefix_suffix_slopes ~x ~y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Stats.prefix_suffix_slopes: length mismatch";
  let left = Array.make n 0.0 and right = Array.make n 0.0 in
  let sx = ref 0.0 and sy = ref 0.0 and sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    sx := !sx +. x.(i);
    sy := !sy +. y.(i);
    sxy := !sxy +. (x.(i) *. y.(i));
    sxx := !sxx +. (x.(i) *. x.(i));
    left.(i) <- slope_of_sums ~n:(i + 1) ~sx:!sx ~sy:!sy ~sxy:!sxy ~sxx:!sxx
  done;
  sx := 0.0;
  sy := 0.0;
  sxy := 0.0;
  sxx := 0.0;
  for i = n - 1 downto 0 do
    sx := !sx +. x.(i);
    sy := !sy +. y.(i);
    sxy := !sxy +. (x.(i) *. y.(i));
    sxx := !sxx +. (x.(i) *. x.(i));
    right.(i) <- slope_of_sums ~n:(n - i) ~sx:!sx ~sy:!sy ~sxy:!sxy ~sxx:!sxx
  done;
  (left, right)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let argmax a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.argmax: empty array";
  let best = ref 0 in
  for i = 1 to n - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best
