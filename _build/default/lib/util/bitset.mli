(** Compact mutable bitsets over [0 .. capacity-1].

    Cluster membership sets are bitsets indexed by sequence id: the
    consolidation step (paper Sec. 4.5) needs fast "members of this cluster
    not covered by larger clusters" computations, which reduce to bitwise
    difference and popcount. *)

type t
(** A fixed-capacity set of small integers. *)

val create : int -> t
(** [create capacity] is the empty set over [\[0, capacity)]. *)

val capacity : t -> int
(** The fixed capacity given at creation. *)

val copy : t -> t
(** An independent copy. *)

val add : t -> int -> unit
(** [add t i] inserts [i]. Raises [Invalid_argument] if out of range. *)

val remove : t -> int -> unit
(** [remove t i] deletes [i] (no-op if absent). *)

val mem : t -> int -> bool
(** Membership test. *)

val cardinal : t -> int
(** Number of members (popcount). *)

val is_empty : t -> bool
(** [is_empty t] iff [cardinal t = 0]. *)

val clear : t -> unit
(** Remove all members. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst].
    Capacities must match. *)

val diff_cardinal : t -> t -> int
(** [diff_cardinal a b] is [|a \ b|] without allocating. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [|a ∩ b|] without allocating. *)

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to every member in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity xs] builds a set containing [xs]. *)

val equal : t -> t -> bool
(** Structural set equality (capacities must match). *)
