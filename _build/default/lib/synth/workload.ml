type params = {
  n_sequences : int;
  avg_length : int;
  alphabet_size : int;
  n_clusters : int;
  outlier_fraction : float;
  contexts_per_cluster : int;
  max_context_len : int;
  concentration : float;
  base_concentration : float;
  core_symbols : int option;
  shared_base : bool;
  seed : int;
}

let default_params =
  {
    n_sequences = 1000;
    avg_length = 200;
    alphabet_size = 26;
    n_clusters = 10;
    outlier_fraction = 0.05;
    contexts_per_cluster = 40;
    max_context_len = 4;
    concentration = 0.25;
    base_concentration = 1.5;
    core_symbols = None;
    shared_base = false;
    seed = 7;
  }

type t = {
  db : Seq_database.t;
  labels : int array;
  params : params;
  models : Pst_gen.t array;
}

let sample_length rng avg =
  let lo = max 2 (avg / 2) in
  let hi = avg * 3 / 2 in
  lo + Rng.int rng (max 1 (hi - lo + 1))

let alphabet_for n =
  if n <= 26 then Alphabet.of_char_range 'a' (Char.chr (Char.code 'a' + n - 1))
  else Alphabet.of_symbols (List.init n (Printf.sprintf "s%d"))

let sample ~rng ~models ~outlier_model p n_sequences =
  let n_outliers = int_of_float (p.outlier_fraction *. float_of_int n_sequences) in
  let n_clustered = n_sequences - n_outliers in
  let rows = Array.make n_sequences ((-1), [||]) in
  for i = 0 to n_clustered - 1 do
    let label = i mod p.n_clusters in
    let len = sample_length rng p.avg_length in
    rows.(i) <- (label, Pst_gen.generate models.(label) rng ~len)
  done;
  for i = n_clustered to n_sequences - 1 do
    let len = sample_length rng p.avg_length in
    rows.(i) <- (-1, Pst_gen.generate outlier_model rng ~len)
  done;
  Rng.shuffle rng rows;
  let db = Seq_database.create (alphabet_for p.alphabet_size) (Array.map snd rows) in
  { db; labels = Array.map fst rows; params = p; models }

let generate p =
  if p.n_sequences <= 0 || p.n_clusters <= 0 then invalid_arg "Workload.generate";
  if p.outlier_fraction < 0.0 || p.outlier_fraction >= 1.0 then
    invalid_arg "Workload.generate: outlier_fraction";
  let rng = Rng.create p.seed in
  (* A "core" base puts 90% of the order-0 mass uniformly on a random
     subset of the alphabet: per-symbol statistics (hence context hit
     rates) become independent of |Σ|, which is what makes the Figure 6(d)
     sweep meaningful. *)
  let core_base () =
    match p.core_symbols with
    | None -> Rng.dirichlet_like rng ~concentration:p.base_concentration p.alphabet_size
    | Some k ->
        let k = max 1 (min k p.alphabet_size) in
        let core = Rng.sample_without_replacement rng ~k ~n:p.alphabet_size in
        let rest = max 1 (p.alphabet_size - k) in
        let b = Array.make p.alphabet_size (0.1 /. float_of_int rest) in
        Array.iter (fun i -> b.(i) <- 0.9 /. float_of_int k) core;
        let total = Array.fold_left ( +. ) 0.0 b in
        Array.map (fun x -> x /. total) b
  in
  let base =
    if p.shared_base || p.core_symbols <> None then Some (core_base ()) else None
  in
  let models =
    Array.init p.n_clusters (fun _ ->
        Pst_gen.random rng ~alphabet_size:p.alphabet_size
          ~n_contexts:p.contexts_per_cluster ~max_context_len:p.max_context_len
          ~concentration:p.concentration ~base_concentration:p.base_concentration ?base ())
  in
  let outlier_model = Pst_gen.uniform ~alphabet_size:p.alphabet_size in
  sample ~rng ~models ~outlier_model p p.n_sequences

let resample t ~n_sequences ~seed =
  if n_sequences <= 0 then invalid_arg "Workload.resample";
  let p = t.params in
  let rng = Rng.create seed in
  let outlier_model = Pst_gen.uniform ~alphabet_size:p.alphabet_size in
  sample ~rng ~models:t.models ~outlier_model p n_sequences

let outlier_count t =
  Array.fold_left (fun acc l -> if l = -1 then acc + 1 else acc) 0 t.labels
