type params = {
  n_families : int;
  total_sequences : int;
  avg_length : int;
  motifs_per_family : int;
  motif_len : int * int;
  motif_copies : int;
  mutation_rate : float;
  composition_bias : float;
  size_skew : float;
  seed : int;
}

let default_params =
  {
    n_families = 30;
    total_sequences = 600;
    avg_length = 200;
    motifs_per_family = 4;
    motif_len = (6, 12);
    motif_copies = 1;
    mutation_rate = 0.08;
    composition_bias = 0.1;
    size_skew = 1.86;
    seed = 11;
  }

type family = { motifs : int array array; transition : float array array; initial : float array }

type t = {
  db : Seq_database.t;
  labels : int array;
  family_sizes : int array;
  params : params;
}

let n_aa = 20

(* One background chain shared by every family: protein composition and
   local statistics are common chemistry; family identity lives in the
   conserved motifs only (cf. the paper's "conserved protein regions").
   This is what makes the problem hard for composition-based methods
   (q-grams) and global alignment (ED), as in the paper's Table 2. *)
type background = { initial : float array; transition : float array array }

let random_background rng =
  {
    initial = Rng.dirichlet_like rng ~concentration:1.2 n_aa;
    transition = Array.init n_aa (fun _ -> Rng.dirichlet_like rng ~concentration:0.8 n_aa);
  }

let mix w shared own =
  Array.init (Array.length shared) (fun i -> ((1.0 -. w) *. shared.(i)) +. (w *. own.(i)))

let random_family rng p bg =
  let lo, hi = p.motif_len in
  let w = p.composition_bias in
  {
    motifs =
      Array.init p.motifs_per_family (fun _ ->
          let len = lo + Rng.int rng (max 1 (hi - lo + 1)) in
          Array.init len (fun _ -> Rng.int rng n_aa));
    (* Family transitions lean [composition_bias] away from the shared
       background: the mild order-0/1 composition signal real families
       carry on top of their conserved motifs. *)
    transition =
      Array.init n_aa (fun r ->
          mix w bg.transition.(r) (Rng.dirichlet_like rng ~concentration:0.8 n_aa));
    initial = mix w bg.initial (Rng.dirichlet_like rng ~concentration:1.2 n_aa);
  }

let family_sizes rng p =
  (* Log-uniform sizes over a dynamic range of exp(size_skew), scaled to
     sum to total_sequences (each family keeps at least 2 members). *)
  let raw = Array.init p.n_families (fun _ -> exp (Rng.float rng p.size_skew)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let sizes =
    Array.map
      (fun r ->
        max 2 (int_of_float (Float.round (r /. total *. float_of_int p.total_sequences))))
      raw
  in
  let drift = p.total_sequences - Array.fold_left ( + ) 0 sizes in
  let largest = Stats.argmax (Array.map float_of_int sizes) in
  sizes.(largest) <- max 2 (sizes.(largest) + drift);
  sizes

let generate_protein rng p (fam : family) =
  let len = max 30 (p.avg_length / 2 + Rng.int rng p.avg_length) in
  let s = Array.make len 0 in
  s.(0) <- Rng.categorical rng fam.initial;
  for i = 1 to len - 1 do
    s.(i) <- Rng.categorical rng fam.transition.(s.(i - 1))
  done;
  (* Plant [motif_copies] lightly mutated copies of each family motif at
     random non-clobbering-agnostic positions. *)
  Array.iter
    (fun motif ->
      let mlen = Array.length motif in
      if mlen < len then
        for _ = 1 to p.motif_copies do
          let pos = Rng.int rng (len - mlen) in
          Array.iteri
            (fun j sym ->
              let sym =
                if Rng.float rng 1.0 < p.mutation_rate then Rng.int rng n_aa else sym
              in
              s.(pos + j) <- sym)
            motif
        done)
    fam.motifs;
  s

let generate p =
  if p.n_families <= 0 || p.total_sequences < 2 * p.n_families then
    invalid_arg "Protein_sim.generate: need >= 2 sequences per family";
  let rng = Rng.create p.seed in
  let bg = random_background rng in
  let families = Array.init p.n_families (fun _ -> random_family rng p bg) in
  let sizes = family_sizes rng p in
  let rows = ref [] in
  Array.iteri
    (fun f size ->
      for _ = 1 to size do
        rows := (f, generate_protein rng p families.(f)) :: !rows
      done)
    sizes;
  let rows = Array.of_list !rows in
  Rng.shuffle rng rows;
  {
    db = Seq_database.create Alphabet.amino_acids (Array.map snd rows);
    labels = Array.map fst rows;
    family_sizes = sizes;
    params = p;
  }
