(** Simulated multilingual sentence database (paper Sec. 6.1, Table 4).

    The paper clusters 600 sentences per language from English, Chinese
    (pinyin transcription), and Japanese (romaji transcription) news sites,
    spaces removed, plus 100 noise sentences from other languages. We have
    no web corpora, so each language is a generator encoding the letter
    statistics the paper itself identifies as discriminative:

    - {b English}: common-word sampling ⇒ high "th"/"he"/"e" frequency and
      the "ion/ch/sh" endings the paper notes are shared with pinyin;
    - {b Chinese}: pinyin syllables (initial + final grammar) — including
      "ch"/"sh"/"ng"-rich syllables, the paper's stated confusion source;
    - {b Japanese}: romaji syllabary ⇒ strict consonant–vowel alternation,
      the paper's "most dominant rule in Japanese";
    - noise: Russian- and German-transliteration generators. *)

type language = English | Chinese | Japanese | Russian | German

val language_name : language -> string
(** Lowercase English name. *)

val sentence : Rng.t -> language -> min_len:int -> max_len:int -> string
(** [sentence rng lang ~min_len ~max_len] is a space-free lowercase
    sentence of length within the bounds (generation stops at a word
    boundary past [min_len] and truncates at [max_len]). *)

type params = {
  per_language : int;  (** Sentences per clustered language (paper: 600). *)
  n_noise : int;  (** Noise sentences in other languages (paper: 100). *)
  min_len : int;  (** Minimum sentence length in letters. *)
  max_len : int;  (** Maximum sentence length in letters. *)
  seed : int;
}

val default_params : params
(** 600 per language, 100 noise, lengths 40–120, seed 5. *)

type t = {
  db : Seq_database.t;  (** Sentences over the 26-letter alphabet. *)
  labels : int array;
      (** 0 = English, 1 = Chinese, 2 = Japanese, -1 = noise. *)
  params : params;
}

val generate : params -> t
(** Build the database (deterministic in [params.seed]). *)
