(** Generative variable-order Markov models for synthetic clusters.

    The paper's synthetic datasets (Sec. 6.2–6.4) embed clusters whose
    "sequences are all generated according to the same probabilistic suffix
    tree". This module builds random such models — a set of contexts, each
    with a peaked next-symbol distribution — and samples sequences from
    them: at every position the longest stored context matching the emitted
    suffix supplies the distribution of the next symbol. *)

type t
(** An immutable generative model. *)

val random :
  Rng.t ->
  alphabet_size:int ->
  ?n_contexts:int ->
  ?max_context_len:int ->
  ?concentration:float ->
  ?base_concentration:float ->
  ?base:float array ->
  unit ->
  t
(** [random rng ~alphabet_size ()] draws a model with [n_contexts] random
    contexts (default 40) of length 1 .. [max_context_len] (default 4),
    each carrying a next-symbol distribution of peakedness governed by
    [concentration] (default 0.25; smaller = more peaked = more distinctive
    clusters), plus a random order-0 base distribution of peakedness
    [base_concentration] (default 1.5, near-uniform; smaller = a few
    dominant symbols). Context symbols are sampled from the base so the
    contexts occur in generated text even over large alphabets. Passing
    [base]
    fixes the order-0 distribution instead — giving several models the
    same base makes them indistinguishable at order 0, so telling them
    apart requires the deep contexts (used by the Figure 4 bench to make
    the PST memory budget matter). *)

val uniform : alphabet_size:int -> t
(** The memoryless uniform model (outlier generator). *)

val alphabet_size : t -> int
(** |Σ| of the model. *)

val generate : t -> Rng.t -> len:int -> Sequence.t
(** [generate t rng ~len] samples a sequence of exactly [len] symbols. *)

val log_likelihood : t -> Sequence.t -> float
(** Log-probability of generating [s] under the model (for tests). *)
