(** Simulated protein-family database.

    Stand-in for the paper's SWISS-PROT input (8000 proteins, 30 families,
    family sizes 140–900). All families share one order-1 Markov background
    over the 20-letter amino-acid alphabet — amino-acid composition and
    local statistics are common protein chemistry — and family identity
    lives chiefly in a handful of conserved motifs ("signatures", cf.
    the paper's conserved protein regions) planted with light point
    mutation. This is what reproduces the paper's Table 2 regime: the
    signal is local (so global-alignment ED fails), sequential (so bag-of-
    q-grams underperforms), and exactly the high-probability conditional
    contexts a PST captures. *)

type params = {
  n_families : int;  (** Number of families (paper: 30). *)
  total_sequences : int;  (** Database size (paper: 8000). *)
  avg_length : int;  (** Mean protein length. *)
  motifs_per_family : int;  (** Conserved motifs per family. *)
  motif_len : int * int;  (** (min, max) motif length. *)
  motif_copies : int;  (** Planted copies of each motif per sequence. *)
  mutation_rate : float;  (** Per-symbol motif mutation probability. *)
  composition_bias : float;
      (** Weight of the family-specific component mixed into the shared
          background chain (0 = pure shared chemistry, 1 = fully
          family-specific); real families carry a mild composition signal
          on top of their motifs. *)
  size_skew : float;
      (** Family-size imbalance: sizes are drawn log-uniformly over a
          [exp size_skew] dynamic range (paper's 900/140 ≈ 6.4 ⇒ ~1.86). *)
  seed : int;
}

val default_params : params
(** 30 families, 600 sequences (1/13 of paper scale), avg length 200,
    4 motifs of length 6–12 (one copy each), 8% mutation, composition
    bias 0.1, paper-matched size skew, seed 11. *)

type t = {
  db : Seq_database.t;  (** Sequences over {!Alphabet.amino_acids}. *)
  labels : int array;  (** Family index per sequence. *)
  family_sizes : int array;  (** Size of each family. *)
  params : params;
}

val generate : params -> t
(** Build the database (deterministic in [params.seed]). *)
