(* Contexts are stored most-recent-symbol-first so that matching the suffix
   of the emitted prefix is a straight walk. *)
module Ctx = struct
  type t = int list

  let hash = Hashtbl.hash
  let equal = ( = )
end

module Tbl = Hashtbl.Make (Ctx)

type t = {
  n : int;
  base : float array; (* order-0 distribution *)
  contexts : float array Tbl.t; (* reversed context -> next-symbol dist *)
  max_len : int;
}

let random rng ~alphabet_size ?(n_contexts = 40) ?(max_context_len = 4)
    ?(concentration = 0.25) ?(base_concentration = 1.5) ?base () =
  if alphabet_size <= 0 then invalid_arg "Pst_gen.random";
  (match base with
  | Some b when Array.length b <> alphabet_size -> invalid_arg "Pst_gen.random: base size"
  | _ -> ());
  let base =
    match base with
    | Some b -> Array.copy b
    | None -> Rng.dirichlet_like rng ~concentration:base_concentration alphabet_size
  in
  let contexts = Tbl.create (2 * n_contexts) in
  for _ = 1 to n_contexts do
    let len = 1 + Rng.int rng max_context_len in
    (* Context symbols are drawn from the base distribution, not uniformly:
       contexts made of common symbols actually occur in generated text, so
       the planted signal survives large alphabets (cf. Figure 6(d)). *)
    let ctx = List.init len (fun _ -> Rng.categorical rng base) in
    (* Next-symbol distributions are a peaked tilt *of the base* (dirichlet
       × base, renormalized): emissions stay inside the base's support, so
       context chains keep triggering. With a near-uniform base this is an
       ordinary peaked dirichlet. *)
    let tilt = Rng.dirichlet_like rng ~concentration alphabet_size in
    let dist = Array.mapi (fun i x -> x *. base.(i)) tilt in
    let total = Array.fold_left ( +. ) 0.0 dist in
    let dist =
      if total > 0.0 then Array.map (fun x -> x /. total) dist
      else Array.copy base
    in
    Tbl.replace contexts ctx dist
  done;
  { n = alphabet_size; base; contexts; max_len = max_context_len }

let uniform ~alphabet_size =
  {
    n = alphabet_size;
    base = Array.make alphabet_size (1.0 /. float_of_int alphabet_size);
    contexts = Tbl.create 1;
    max_len = 0;
  }

let alphabet_size t = t.n

(* Longest stored context matching the suffix of the emitted prefix
   [s.(0) .. s.(pos-1)]. *)
let dist_at t s pos =
  let best = ref t.base in
  let ctx = ref [] in
  let len = ref 1 in
  while !len <= t.max_len && !len <= pos do
    (* !ctx is most-recent-first: s_{pos-1}, s_{pos-2}, ... *)
    ctx := !ctx @ [ s.(pos - !len) ];
    (match Tbl.find_opt t.contexts !ctx with Some d -> best := d | None -> ());
    incr len
  done;
  !best

let generate t rng ~len =
  let s = Array.make (max len 0) 0 in
  for pos = 0 to len - 1 do
    s.(pos) <- Rng.categorical rng (dist_at t s pos)
  done;
  s

let log_likelihood t s =
  let acc = ref 0.0 in
  for pos = 0 to Array.length s - 1 do
    let d = dist_at t s pos in
    acc := !acc +. log (Float.max 1e-300 d.(s.(pos)))
  done;
  !acc
