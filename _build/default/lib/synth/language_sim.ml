type language = English | Chinese | Japanese | Russian | German

let language_name = function
  | English -> "english"
  | Chinese -> "chinese"
  | Japanese -> "japanese"
  | Russian -> "russian"
  | German -> "german"

(* ------------------------------------------------------------------ *)
(* English: sample common words (Zipf-ish ordering, earlier = likelier).
   Produces the high-frequency "th", "he", "e", and "ion/ch/sh" digraph
   statistics the paper discusses.                                      *)
(* ------------------------------------------------------------------ *)

let english_words =
  [|
    "the"; "of"; "and"; "to"; "in"; "that"; "is"; "was"; "he"; "for"; "it";
    "with"; "as"; "his"; "on"; "be"; "at"; "by"; "had"; "not"; "are"; "but";
    "from"; "or"; "have"; "an"; "they"; "which"; "one"; "you"; "were"; "her";
    "all"; "she"; "there"; "would"; "their"; "we"; "him"; "been"; "has";
    "when"; "who"; "will"; "more"; "no"; "if"; "out"; "so"; "said"; "what";
    "up"; "its"; "about"; "into"; "than"; "them"; "can"; "only"; "other";
    "new"; "some"; "could"; "time"; "these"; "two"; "may"; "then"; "do";
    "first"; "any"; "my"; "now"; "such"; "like"; "our"; "over"; "man"; "me";
    "even"; "most"; "made"; "after"; "also"; "did"; "many"; "before"; "must";
    "through"; "years"; "where"; "much"; "your"; "way"; "well"; "down";
    "should"; "because"; "each"; "just"; "those"; "people"; "how"; "too";
    "nation"; "action"; "station"; "question"; "information"; "church";
    "children"; "should"; "world"; "still"; "between"; "never"; "under";
    "might"; "while"; "house"; "shall"; "both"; "against"; "right"; "think";
    "government"; "president"; "report"; "national"; "change"; "position";
  |]

(* ------------------------------------------------------------------ *)
(* Chinese: pinyin syllables, weighted toward frequent ones. Note the
   deliberate density of ch/sh/zh and -ng finals.                       *)
(* ------------------------------------------------------------------ *)

let pinyin_syllables =
  [|
    "de"; "shi"; "yi"; "bu"; "le"; "zhe"; "ren"; "wo"; "zai"; "you"; "ta";
    "zhong"; "guo"; "shang"; "ge"; "men"; "dao"; "wei"; "jiu"; "xue"; "hao";
    "kan"; "qi"; "lai"; "dui"; "sheng"; "ye"; "hui"; "zi"; "na"; "xia";
    "jia"; "ke"; "shuo"; "hou"; "tian"; "neng"; "xiang"; "kai"; "shou";
    "cheng"; "jing"; "chang"; "jian"; "xin"; "ming"; "fa"; "fang"; "dian";
    "xian"; "yang"; "qian"; "dong"; "gong"; "zuo"; "yong"; "mei"; "li";
    "quan"; "zhi"; "chu"; "wen"; "ding"; "bian"; "gao"; "guan"; "jin";
    "zheng"; "fu"; "bao"; "xing"; "tong"; "qing"; "gei"; "zhu"; "chi";
    "huo"; "ban"; "shen"; "dang"; "ran"; "hua"; "nian"; "zhan"; "chan";
    "shui"; "feng"; "niu"; "ma"; "lu"; "hai"; "tai"; "wan"; "yuan"; "jun";
  |]

(* ------------------------------------------------------------------ *)
(* Japanese: romaji syllabary + common particles/endings; the CV
   alternation emerges from the syllable structure itself.              *)
(* ------------------------------------------------------------------ *)

let romaji_syllables =
  [|
    "ka"; "ki"; "ku"; "ke"; "ko"; "sa"; "shi"; "su"; "se"; "so"; "ta";
    "chi"; "tsu"; "te"; "to"; "na"; "ni"; "nu"; "ne"; "no"; "ha"; "hi";
    "fu"; "he"; "ho"; "ma"; "mi"; "mu"; "me"; "mo"; "ya"; "yu"; "yo";
    "ra"; "ri"; "ru"; "re"; "ro"; "wa"; "ga"; "gi"; "gu"; "ge"; "go";
    "za"; "ji"; "zu"; "ze"; "zo"; "da"; "do"; "ba"; "bi"; "bu"; "be";
    "bo"; "a"; "i"; "u"; "e"; "o"; "n";
  |]

let japanese_words =
  [|
    "desu"; "masu"; "shita"; "no"; "wa"; "ga"; "ni"; "wo"; "to"; "kara";
    "made"; "koto"; "mono"; "suru"; "naru"; "aru"; "iru"; "kimasu"; "deshita";
  |]

(* Geminate consonants and long vowels are signature romaji digraphs that
   pinyin lacks; they sharpen the zh/ja boundary just as real text does. *)
let japanese_special = [| "tte"; "kka"; "ssu"; "tto"; "ou"; "uu"; "ei"; "aa"; "nn" |]

(* ------------------------------------------------------------------ *)
(* Noise languages                                                      *)
(* ------------------------------------------------------------------ *)

let russian_chunks =
  [|
    "ov"; "ev"; "ski"; "aya"; "oye"; "shch"; "zh"; "da"; "nye"; "pro";
    "go"; "ra"; "vo"; "na"; "po"; "sto"; "gor"; "grad"; "nik"; "ost";
    "pri"; "vet"; "mir"; "ya"; "tre"; "bo"; "vich"; "kov"; "drug"; "ka";
  |]

let german_chunks =
  [|
    "der"; "die"; "das"; "und"; "ein"; "sch"; "ung"; "ich"; "ver"; "gen";
    "ber"; "ten"; "lich"; "kei"; "zu"; "auf"; "mit"; "fur"; "wir"; "nicht";
    "haben"; "wer"; "den"; "ges"; "ste"; "ander"; "zeit"; "land"; "tag";
  |]

(* Zipf-ish weight: word at rank r gets weight 1/(r+3). *)
let zipf_pick rng (words : string array) =
  let n = Array.length words in
  let weights = Array.init n (fun r -> 1.0 /. float_of_int (r + 3)) in
  words.(Rng.categorical rng weights)

let next_word rng = function
  | English -> zipf_pick rng english_words
  | Chinese ->
      (* words of 1-3 syllables, weighted toward 2 *)
      let k = match Rng.int rng 4 with 0 -> 1 | 3 -> 3 | _ -> 2 in
      String.concat "" (List.init k (fun _ -> zipf_pick rng pinyin_syllables))
  | Japanese ->
      let r = Rng.int rng 8 in
      if r < 2 then zipf_pick rng japanese_words
      else if r = 2 then
        zipf_pick rng romaji_syllables ^ japanese_special.(Rng.int rng (Array.length japanese_special))
      else
        let k = 2 + Rng.int rng 3 in
        String.concat "" (List.init k (fun _ -> zipf_pick rng romaji_syllables))
  | Russian ->
      let k = 2 + Rng.int rng 3 in
      String.concat "" (List.init k (fun _ -> zipf_pick rng russian_chunks))
  | German -> zipf_pick rng german_chunks

let sentence rng lang ~min_len ~max_len =
  if min_len <= 0 || max_len < min_len then invalid_arg "Language_sim.sentence";
  let buf = Buffer.create max_len in
  while Buffer.length buf < min_len do
    Buffer.add_string buf (next_word rng lang)
  done;
  let s = Buffer.contents buf in
  if String.length s > max_len then String.sub s 0 max_len else s

type params = {
  per_language : int;
  n_noise : int;
  min_len : int;
  max_len : int;
  seed : int;
}

let default_params = { per_language = 600; n_noise = 100; min_len = 40; max_len = 120; seed = 5 }

type t = { db : Seq_database.t; labels : int array; params : params }

let generate p =
  if p.per_language <= 0 then invalid_arg "Language_sim.generate";
  let rng = Rng.create p.seed in
  let rows = ref [] in
  let emit label lang count =
    for _ = 1 to count do
      rows := (label, sentence rng lang ~min_len:p.min_len ~max_len:p.max_len) :: !rows
    done
  in
  emit 0 English p.per_language;
  emit 1 Chinese p.per_language;
  emit 2 Japanese p.per_language;
  emit (-1) Russian (p.n_noise / 2);
  emit (-1) German (p.n_noise - (p.n_noise / 2));
  let rows = Array.of_list !rows in
  Rng.shuffle rng rows;
  let alphabet = Alphabet.of_char_range 'a' 'z' in
  let db =
    Seq_database.create alphabet (Array.map (fun (_, s) -> Alphabet.encode_string alphabet s) rows)
  in
  { db; labels = Array.map fst rows; params = p }
