lib/synth/language_sim.ml: Alphabet Array Buffer List Rng Seq_database String
