lib/synth/protein_sim.ml: Alphabet Array Float Rng Seq_database Stats
