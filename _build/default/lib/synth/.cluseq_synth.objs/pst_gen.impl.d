lib/synth/pst_gen.ml: Array Float Hashtbl List Rng
