lib/synth/language_sim.mli: Rng Seq_database
