lib/synth/workload.mli: Pst_gen Seq_database
