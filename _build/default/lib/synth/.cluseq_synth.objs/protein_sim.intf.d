lib/synth/protein_sim.mli: Seq_database
