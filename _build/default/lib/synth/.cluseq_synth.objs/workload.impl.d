lib/synth/workload.ml: Alphabet Array Char List Printf Pst_gen Rng Seq_database
