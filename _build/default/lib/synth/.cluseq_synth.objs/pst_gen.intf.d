lib/synth/pst_gen.mli: Rng Sequence
