(** Synthetic clustered workloads, mirroring the datasets of paper
    Sec. 6.2–6.4: N sequences of average length L over |Σ| symbols with k
    embedded clusters (each generated from its own random variable-order
    model) plus a fraction of memoryless outliers. *)

type params = {
  n_sequences : int;  (** N. *)
  avg_length : int;  (** Mean sequence length (uniform in ±50%). *)
  alphabet_size : int;  (** |Σ|. *)
  n_clusters : int;  (** Embedded clusters k. *)
  outlier_fraction : float;  (** Fraction of memoryless-random sequences. *)
  contexts_per_cluster : int;  (** Model size per cluster. *)
  max_context_len : int;  (** Max context length of the generators. *)
  concentration : float;  (** Peakedness; smaller = better separated. *)
  base_concentration : float;
      (** Peakedness of the order-0 base (1.5 = near-uniform; small values
          concentrate usage on few symbols — keeps workloads comparable
          across alphabet sizes, Fig. 6(d)). *)
  core_symbols : int option;
      (** [Some k]: the (shared) order-0 base puts 90% of its mass
          uniformly on a random core of [k] symbols, making per-symbol
          statistics independent of |Σ| (the Fig. 6(d) sweep). *)
  shared_base : bool;
      (** When true, every cluster model uses one common order-0
          distribution: clusters are then indistinguishable without the
          deep contexts, making model-memory budgets matter (Fig. 4). *)
  seed : int;  (** Determinism. *)
}

val default_params : params
(** N=1000, L=200, |Σ|=26, k=10, 5% outliers, 40 contexts of length ≤ 4,
    concentration 0.25, per-cluster bases, seed 7. *)

type t = {
  db : Seq_database.t;  (** The generated database. *)
  labels : int array;
      (** Ground truth per sequence: cluster index in [\[0, k)], or [-1]
          for outliers. *)
  params : params;  (** The generating parameters. *)
  models : Pst_gen.t array;  (** The per-cluster generators (for {!resample}). *)
}

val generate : params -> t
(** [generate params] builds a workload. Cluster sizes are balanced (±1);
    sequence order is shuffled so ids carry no label information. *)

val resample : t -> n_sequences:int -> seed:int -> t
(** [resample t ~n_sequences ~seed] draws a fresh database from the {e
    same} planted cluster models — held-out data for train/classify
    experiments. *)

val outlier_count : t -> int
(** Number of ground-truth outliers. *)
