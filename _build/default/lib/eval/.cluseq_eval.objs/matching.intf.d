lib/eval/matching.mli:
