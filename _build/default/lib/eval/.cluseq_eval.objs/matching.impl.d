lib/eval/matching.ml: Array Hashtbl List Option
