lib/eval/metrics.mli:
