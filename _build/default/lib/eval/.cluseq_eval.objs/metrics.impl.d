lib/eval/metrics.ml: Array Float Hashtbl List Option
