(** Clustering quality metrics.

    The paper reports per-family precision and recall (Table 3/4) —
    with [F] the true member set of a family and [F'] the set assigned to
    it, precision is {m |F ∩ F'|/|F'|} and recall {m |F ∩ F'|/|F|} — and
    a global "percentage of correctly labeled" accuracy (Table 2). The
    adjusted Rand index is provided as an additional, matching-free
    validity score used by the test suite. *)

type pr = {
  tp : int;  (** |F ∩ F'|. *)
  fp : int;  (** |F' \ F|. *)
  fn : int;  (** |F \ F'|. *)
  precision : float;  (** tp / (tp + fp); [1.] when F' is empty. *)
  recall : float;  (** tp / (tp + fn); [1.] when F is empty. *)
}

val per_class : truth:int array -> pred_class:int array -> (int * pr) list
(** [per_class ~truth ~pred_class] computes {!pr} for every ground-truth
    class (label ≥ 0), given predictions already expressed in class space
    (e.g. from {!Matching.relabel}). Sorted by class id. *)

val accuracy : truth:int array -> pred_class:int array -> float
(** Fraction of non-outlier ground-truth sequences whose predicted class
    equals their true class (an unclustered prediction counts as wrong) —
    the paper's "percentage of correctly labeled" measure. *)

val macro_precision : (int * pr) list -> float
(** Unweighted mean precision over classes. *)

val macro_recall : (int * pr) list -> float
(** Unweighted mean recall over classes. *)

val outlier_detection : truth:int array -> pred_class:int array -> pr
(** Precision/recall of the outlier boundary itself: the "class" of
    ground-truth outliers ([-1]) against predicted unclustered ([-1]). *)

val adjusted_rand_index : truth:int array -> pred:int array -> float
(** The Hubert–Arabie adjusted Rand index between two labelings (cluster
    ids need not align with classes; [-1] labels form their own group).
    [1.] for identical partitions, ≈ [0.] for independent ones. *)

val purity : truth:int array -> pred:int array -> float
(** [purity ~truth ~pred] is the fraction of sequences lying in their
    cluster's majority ground-truth class (computed over all sequences;
    [-1] labels participate as their own class). In [\[0, 1\]]; [nan] on
    empty input. *)

val normalized_mutual_information : truth:int array -> pred:int array -> float
(** [normalized_mutual_information ~truth ~pred] is
    {m I(T;P) / \sqrt{H(T) H(P)}} — a matching-free agreement score in
    [\[0, 1\]]. By convention [1.] when both partitions carry zero entropy
    and [0.] when exactly one does. [nan] on empty input. *)

val confusion : truth:int array -> pred_class:int array -> ((int * int) * int) list
(** Sparse confusion matrix: [((true_class, predicted_class), count)]
    sorted by key; includes [-1] rows/columns. *)
