type pr = { tp : int; fp : int; fn : int; precision : float; recall : float }

let check truth pred =
  if Array.length truth <> Array.length pred then invalid_arg "Metrics: length mismatch"

let classes_of truth =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> if c >= 0 then Hashtbl.replace seen c ()) truth;
  List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) seen [])

let ratio num den ~empty = if den = 0 then empty else float_of_int num /. float_of_int den

let pr_of ~tp ~fp ~fn =
  { tp; fp; fn; precision = ratio tp (tp + fp) ~empty:1.0; recall = ratio tp (tp + fn) ~empty:1.0 }

let class_pr ~truth ~pred_class cls =
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i t ->
      let p = pred_class.(i) in
      if t = cls && p = cls then incr tp
      else if t <> cls && p = cls then incr fp
      else if t = cls && p <> cls then incr fn)
    truth;
  pr_of ~tp:!tp ~fp:!fp ~fn:!fn

let per_class ~truth ~pred_class =
  check truth pred_class;
  List.map (fun cls -> (cls, class_pr ~truth ~pred_class cls)) (classes_of truth)

let accuracy ~truth ~pred_class =
  check truth pred_class;
  let correct = ref 0 and total = ref 0 in
  Array.iteri
    (fun i t ->
      if t >= 0 then begin
        incr total;
        if pred_class.(i) = t then incr correct
      end)
    truth;
  ratio !correct !total ~empty:1.0

let macro_mean f prs =
  match prs with
  | [] -> nan
  | _ -> List.fold_left (fun acc (_, pr) -> acc +. f pr) 0.0 prs /. float_of_int (List.length prs)

let macro_precision prs = macro_mean (fun pr -> pr.precision) prs
let macro_recall prs = macro_mean (fun pr -> pr.recall) prs

let outlier_detection ~truth ~pred_class =
  check truth pred_class;
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i t ->
      let p = pred_class.(i) in
      if t = -1 && p = -1 then incr tp
      else if t <> -1 && p = -1 then incr fp
      else if t = -1 && p <> -1 then incr fn)
    truth;
  pr_of ~tp:!tp ~fp:!fp ~fn:!fn

let adjusted_rand_index ~truth ~pred =
  check truth pred;
  let n = Array.length truth in
  if n = 0 then nan
  else begin
    let cell = Hashtbl.create 64 and row = Hashtbl.create 16 and col = Hashtbl.create 16 in
    let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
    Array.iteri
      (fun i t ->
        bump cell (t, pred.(i));
        bump row t;
        bump col pred.(i))
      truth;
    let choose2 k = float_of_int (k * (k - 1)) /. 2.0 in
    let sum_cells = Hashtbl.fold (fun _ v acc -> acc +. choose2 v) cell 0.0 in
    let sum_rows = Hashtbl.fold (fun _ v acc -> acc +. choose2 v) row 0.0 in
    let sum_cols = Hashtbl.fold (fun _ v acc -> acc +. choose2 v) col 0.0 in
    let total = choose2 n in
    let expected = sum_rows *. sum_cols /. total in
    let max_index = (sum_rows +. sum_cols) /. 2.0 in
    if Float.abs (max_index -. expected) < 1e-12 then 1.0
    else (sum_cells -. expected) /. (max_index -. expected)
  end

let purity ~truth ~pred =
  check truth pred;
  let n = Array.length truth in
  if n = 0 then nan
  else begin
    let votes : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun i c ->
        let tbl =
          match Hashtbl.find_opt votes c with
          | Some t -> t
          | None ->
              let t = Hashtbl.create 8 in
              Hashtbl.add votes c t;
              t
        in
        let cls = truth.(i) in
        Hashtbl.replace tbl cls (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cls)))
      pred;
    let majority_sum =
      Hashtbl.fold
        (fun _ tbl acc -> acc + Hashtbl.fold (fun _ v best -> max v best) tbl 0)
        votes 0
    in
    float_of_int majority_sum /. float_of_int n
  end

let normalized_mutual_information ~truth ~pred =
  check truth pred;
  let n = Array.length truth in
  if n = 0 then nan
  else begin
    let nf = float_of_int n in
    let joint = Hashtbl.create 64 and row = Hashtbl.create 16 and col = Hashtbl.create 16 in
    let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
    Array.iteri
      (fun i t ->
        bump joint (t, pred.(i));
        bump row t;
        bump col pred.(i))
      truth;
    let entropy tbl =
      Hashtbl.fold
        (fun _ v acc ->
          let p = float_of_int v /. nf in
          acc -. (p *. log p))
        tbl 0.0
    in
    let ht = entropy row and hp = entropy col in
    let mi =
      Hashtbl.fold
        (fun (t, p) v acc ->
          let pj = float_of_int v /. nf in
          let pt = float_of_int (Hashtbl.find row t) /. nf in
          let pp = float_of_int (Hashtbl.find col p) /. nf in
          acc +. (pj *. log (pj /. (pt *. pp))))
        joint 0.0
    in
    if ht <= 1e-12 && hp <= 1e-12 then 1.0
    else if ht <= 1e-12 || hp <= 1e-12 then 0.0
    else mi /. sqrt (ht *. hp)
  end

let confusion ~truth ~pred_class =
  check truth pred_class;
  let cell = Hashtbl.create 64 in
  Array.iteri
    (fun i t ->
      let key = (t, pred_class.(i)) in
      Hashtbl.replace cell key (1 + Option.value ~default:0 (Hashtbl.find_opt cell key)))
    truth;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) cell [])
