let majority_map ~truth ~pred =
  if Array.length truth <> Array.length pred then invalid_arg "Matching.majority_map";
  let votes : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      if c >= 0 then begin
        let tbl =
          match Hashtbl.find_opt votes c with
          | Some t -> t
          | None ->
              let t = Hashtbl.create 8 in
              Hashtbl.add votes c t;
              t
        in
        let cls = truth.(i) in
        Hashtbl.replace tbl cls (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cls))
      end)
    pred;
  Hashtbl.fold
    (fun cluster tbl acc ->
      let best_cls = ref (-1) and best_n = ref 0 in
      Hashtbl.iter
        (fun cls n ->
          (* Prefer real classes over the outlier label; break ties on the
             smaller class id for determinism. *)
          let better =
            if cls = -1 then false
            else n > !best_n || (n = !best_n && (!best_cls = -1 || cls < !best_cls))
          in
          if better then begin
            best_cls := cls;
            best_n := n
          end)
        tbl;
      (cluster, !best_cls) :: acc)
    votes []
  |> List.sort compare

let class_of_cluster map c =
  match List.assoc_opt c map with Some cls -> cls | None -> -1

let relabel ~truth ~pred =
  let map = majority_map ~truth ~pred in
  Array.map (fun c -> if c < 0 then -1 else class_of_cluster map c) pred
