(** Mapping discovered clusters onto ground-truth classes.

    CLUSEQ emits anonymous cluster ids; the paper's quality numbers
    (precision/recall per family, "percentage of correctly labeled
    proteins") presuppose a cluster→class correspondence. Following
    standard practice we label each cluster by the majority ground-truth
    class among its members (ground-truth outliers, label [-1], never win
    a majority). *)

val majority_map : truth:int array -> pred:int array -> (int * int) list
(** [majority_map ~truth ~pred] is an assoc list from each cluster id
    appearing in [pred] (≥ 0) to its majority truth class. A cluster whose
    members are all ground-truth outliers maps to [-1]. Arrays must have
    equal length. *)

val relabel : truth:int array -> pred:int array -> int array
(** [relabel ~truth ~pred] replaces every cluster id in [pred] by its
    majority class; [-1] (unclustered) is preserved. *)

val class_of_cluster : (int * int) list -> int -> int
(** [class_of_cluster map c] looks up [c], returning [-1] when absent. *)
