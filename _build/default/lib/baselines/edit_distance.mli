(** Levenshtein edit distance — the "ED" baseline of paper Table 2.

    The paper criticizes edit distance for capturing only the optimal
    global alignment (its footnote 1 example: [aaaabbb] vs [bbbaaaa] scores
    as badly as vs [abcdefg]); this implementation exists to reproduce that
    comparison. *)

val distance : Sequence.t -> Sequence.t -> int
(** [distance a b] is the minimum number of single-symbol insertions,
    deletions, and substitutions transforming [a] into [b]. O(|a|·|b|)
    time, O(min) space. *)

val distance_banded : band:int -> Sequence.t -> Sequence.t -> int
(** [distance_banded ~band a b] is the edit distance restricted to
    alignments within a diagonal band of half-width [band]; an admissible
    lower bound that equals the true distance when it is ≤ [band].
    Cells outside the band are treated as unreachable. *)

val normalized : Sequence.t -> Sequence.t -> float
(** [distance a b / max |a| |b|]; [0.] for two empty sequences. *)
