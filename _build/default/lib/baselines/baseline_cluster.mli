(** Uniform front-end over the four baseline clusterers of paper Table 2.

    Every baseline needs the target cluster count [k] up front (unlike
    CLUSEQ, which discovers it); the Table 2 bench passes the ground-truth
    k, which if anything favors the baselines. *)

type method_ =
  | Edit_distance  (** k-medoids over Levenshtein distance ("ED"). *)
  | Block_edit  (** k-medoids over greedy block-edit distance ("EDBO"). *)
  | Hmm of int  (** Mixture of HMMs with the given state count ("HMM"). *)
  | Qgram of int  (** Spherical k-means over q-gram profiles ("q-gram"). *)

val method_name : method_ -> string
(** Display name matching the paper's Table 2 column headers. *)

val run : Rng.t -> k:int -> method_ -> Seq_database.t -> int array
(** [run rng ~k m db] clusters the database into [k] groups and returns a
    hard label per sequence (cluster ids in [\[0, k)]). *)
