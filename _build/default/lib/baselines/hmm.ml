type t = {
  pi : float array;
  a : float array array;
  b : float array array;
}

let n_states t = Array.length t.pi
let n_symbols t = Array.length t.b.(0)

let normalize_row row =
  let s = Array.fold_left ( +. ) 0.0 row in
  if s <= 0.0 then Array.fill row 0 (Array.length row) (1.0 /. float_of_int (Array.length row))
  else Array.iteri (fun i x -> row.(i) <- x /. s) row

let random rng ~n_states ~n_symbols =
  if n_states <= 0 || n_symbols <= 0 then invalid_arg "Hmm.random";
  let rand_row n = Array.init n (fun _ -> 0.1 +. Rng.float rng 1.0) in
  let pi = rand_row n_states in
  let a = Array.init n_states (fun _ -> rand_row n_states) in
  let b = Array.init n_states (fun _ -> rand_row n_symbols) in
  normalize_row pi;
  Array.iter normalize_row a;
  Array.iter normalize_row b;
  { pi; a; b }

(* Scaled forward pass: returns (alpha, scales) with
   alpha.(t).(i) = P(state_t = i | s_0..s_t) and
   scales.(t) = P(s_t | s_0..s_{t-1}); log-likelihood = sum log scales. *)
let forward t s =
  let ns = n_states t and l = Array.length s in
  let alpha = Array.make_matrix l ns 0.0 in
  let scales = Array.make l 0.0 in
  if l > 0 then begin
    for i = 0 to ns - 1 do
      alpha.(0).(i) <- t.pi.(i) *. t.b.(i).(s.(0))
    done;
    let c = Array.fold_left ( +. ) 0.0 alpha.(0) in
    let c = if c <= 0.0 then 1e-300 else c in
    scales.(0) <- c;
    for i = 0 to ns - 1 do
      alpha.(0).(i) <- alpha.(0).(i) /. c
    done;
    for u = 1 to l - 1 do
      for j = 0 to ns - 1 do
        let acc = ref 0.0 in
        for i = 0 to ns - 1 do
          acc := !acc +. (alpha.(u - 1).(i) *. t.a.(i).(j))
        done;
        alpha.(u).(j) <- !acc *. t.b.(j).(s.(u))
      done;
      let c = Array.fold_left ( +. ) 0.0 alpha.(u) in
      let c = if c <= 0.0 then 1e-300 else c in
      scales.(u) <- c;
      for j = 0 to ns - 1 do
        alpha.(u).(j) <- alpha.(u).(j) /. c
      done
    done
  end;
  (alpha, scales)

let log_likelihood t s =
  if Array.length s = 0 then 0.0
  else begin
    let _, scales = forward t s in
    Array.fold_left (fun acc c -> acc +. log c) 0.0 scales
  end

(* Scaled backward pass using the forward scales. *)
let backward t s scales =
  let ns = n_states t and l = Array.length s in
  let beta = Array.make_matrix l ns 0.0 in
  if l > 0 then begin
    for i = 0 to ns - 1 do
      beta.(l - 1).(i) <- 1.0 /. scales.(l - 1)
    done;
    for u = l - 2 downto 0 do
      for i = 0 to ns - 1 do
        let acc = ref 0.0 in
        for j = 0 to ns - 1 do
          acc := !acc +. (t.a.(i).(j) *. t.b.(j).(s.(u + 1)) *. beta.(u + 1).(j))
        done;
        beta.(u).(i) <- !acc /. scales.(u)
      done
    done
  end;
  beta

let baum_welch ?(iterations = 5) ?(floor = 1e-6) t data =
  let ns = n_states t and nsym = n_symbols t in
  let model = ref { pi = Array.copy t.pi; a = Array.map Array.copy t.a; b = Array.map Array.copy t.b } in
  for _ = 1 to iterations do
    let m = !model in
    let pi_acc = Array.make ns 0.0 in
    let a_acc = Array.make_matrix ns ns 0.0 in
    let b_acc = Array.make_matrix ns nsym 0.0 in
    List.iter
      (fun s ->
        let l = Array.length s in
        if l > 0 then begin
          let alpha, scales = forward m s in
          let beta = backward m s scales in
          (* gamma.(u).(i) ∝ alpha.(u).(i) * beta.(u).(i) * scales.(u) *)
          for u = 0 to l - 1 do
            let denom = ref 0.0 in
            let g = Array.make ns 0.0 in
            for i = 0 to ns - 1 do
              g.(i) <- alpha.(u).(i) *. beta.(u).(i) *. scales.(u);
              denom := !denom +. g.(i)
            done;
            if !denom > 0.0 then
              for i = 0 to ns - 1 do
                let gi = g.(i) /. !denom in
                if u = 0 then pi_acc.(i) <- pi_acc.(i) +. gi;
                b_acc.(i).(s.(u)) <- b_acc.(i).(s.(u)) +. gi
              done
          done;
          for u = 0 to l - 2 do
            for i = 0 to ns - 1 do
              for j = 0 to ns - 1 do
                let xi = alpha.(u).(i) *. m.a.(i).(j) *. m.b.(j).(s.(u + 1)) *. beta.(u + 1).(j) in
                a_acc.(i).(j) <- a_acc.(i).(j) +. xi
              done
            done
          done
        end)
      data;
    let floor_and_norm row =
      Array.iteri (fun i x -> row.(i) <- Float.max floor x) row;
      normalize_row row
    in
    floor_and_norm pi_acc;
    Array.iter floor_and_norm a_acc;
    Array.iter floor_and_norm b_acc;
    model := { pi = pi_acc; a = a_acc; b = b_acc }
  done;
  !model

type mixture_result = {
  labels : int array;
  models : t array;
  iterations : int;
}

let cluster_once rng ~k ~n_states ~n_symbols ~rounds ~em_iterations ~init_labels data =
  let n = Array.length data in
  let models = Array.init k (fun _ -> random rng ~n_states ~n_symbols) in
  (* Warm start: train each model on an initial shard — caller-provided
     partition when available (e.g. a quick q-gram k-means), random
     otherwise. *)
  let shard_of =
    match init_labels with
    | Some labels when Array.length labels = n -> fun pos i -> ignore pos; labels.(i) mod k
    | _ ->
        let shard = Array.init n (fun i -> i) in
        Rng.shuffle rng shard;
        fun pos _ -> shard.(pos) mod k
  in
  Array.iteri
    (fun c _ ->
      let members = ref [] in
      Array.iteri (fun pos i -> if shard_of pos i = c then members := data.(i) :: !members)
        (Array.init n Fun.id);
      if !members <> [] then models.(c) <- baum_welch ~iterations:em_iterations models.(c) !members)
    models;
  let labels = Array.make n (-1) in
  let iters = ref 0 in
  let changed = ref true in
  while !changed && !iters < rounds do
    incr iters;
    changed := false;
    (* Per-symbol normalized likelihood so sequence length doesn't bias. *)
    Array.iteri
      (fun i s ->
        let len = float_of_int (max 1 (Array.length s)) in
        let best = ref 0 and best_ll = ref neg_infinity in
        Array.iteri
          (fun c m ->
            let ll = log_likelihood m s /. len in
            if ll > !best_ll then begin
              best_ll := ll;
              best := c
            end)
          models;
        if labels.(i) <> !best then begin
          labels.(i) <- !best;
          changed := true
        end)
      data;
    if !changed then
      Array.iteri
        (fun c m ->
          let members = ref [] in
          Array.iteri (fun i l -> if l = c then members := data.(i) :: !members) labels;
          if !members <> [] then models.(c) <- baum_welch ~iterations:em_iterations m !members)
        models
  done;
  (* Score the fit: total per-symbol-normalized best log-likelihood. *)
  let score =
    Array.fold_left
      (fun acc s ->
        let len = float_of_int (max 1 (Array.length s)) in
        acc
        +. Array.fold_left (fun b m -> Float.max b (log_likelihood m s /. len)) neg_infinity models)
      0.0 data
  in
  ({ labels; models; iterations = !iters }, score)

let cluster rng ~k ~n_states ~n_symbols ?(rounds = 5) ?(em_iterations = 3) ?(restarts = 1)
    ?init_labels data =
  let n = Array.length data in
  if k <= 0 || k > n then invalid_arg "Hmm.cluster";
  if restarts < 1 then invalid_arg "Hmm.cluster: restarts";
  let best = ref None in
  for attempt = 1 to restarts do
    (* First attempt uses the provided initial partition; later restarts
       explore random initializations. *)
    let init_labels = if attempt = 1 then init_labels else None in
    let r, score =
      cluster_once (Rng.split rng) ~k ~n_states ~n_symbols ~rounds ~em_iterations ~init_labels data
    in
    match !best with
    | Some (_, s) when s >= score -> ()
    | _ -> best := Some (r, score)
  done;
  match !best with Some (r, _) -> r | None -> assert false
