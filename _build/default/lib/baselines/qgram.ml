(* q-grams are keyed by the int list of their symbols: exact and
   collision-free (symbol codes are unbounded ints in principle). *)
module Key = struct
  type t = int list

  let equal = ( = )
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type profile = { counts : float Tbl.t; mutable norm : float }

let profile ~q s =
  if q <= 0 then invalid_arg "Qgram.profile";
  let counts = Tbl.create 64 in
  let l = Array.length s in
  for i = 0 to l - q do
    let key = List.init q (fun j -> s.(i + j)) in
    Tbl.replace counts key (1.0 +. Option.value ~default:0.0 (Tbl.find_opt counts key))
  done;
  let norm = sqrt (Tbl.fold (fun _ v acc -> acc +. (v *. v)) counts 0.0) in
  { counts; norm }

let dimensions p = Tbl.length p.counts

let cosine a b =
  if a.norm <= 0.0 || b.norm <= 0.0 then 0.0
  else begin
    (* Iterate the smaller table. *)
    let small, large = if Tbl.length a.counts <= Tbl.length b.counts then (a, b) else (b, a) in
    let dot =
      Tbl.fold
        (fun key v acc ->
          match Tbl.find_opt large.counts key with
          | Some w -> acc +. (v *. w)
          | None -> acc)
        small.counts 0.0
    in
    dot /. (a.norm *. b.norm)
  end

type result = { labels : int array; iterations : int }

let centroid_of profiles members =
  let counts = Tbl.create 256 in
  List.iter
    (fun i ->
      let p = profiles.(i) in
      if p.norm > 0.0 then
        Tbl.iter
          (fun key v ->
            let nv = v /. p.norm in
            Tbl.replace counts key (nv +. Option.value ~default:0.0 (Tbl.find_opt counts key)))
          p.counts)
    members;
  let norm = sqrt (Tbl.fold (fun _ v acc -> acc +. (v *. v)) counts 0.0) in
  { counts; norm }

let cluster rng ~k ~q ?(rounds = 20) data =
  let n = Array.length data in
  if k <= 0 || k > n then invalid_arg "Qgram.cluster";
  let profiles = Array.map (profile ~q) data in
  let seeds = Rng.sample_without_replacement rng ~k ~n in
  let centroids = Array.map (fun i -> centroid_of profiles [ i ]) seeds in
  let labels = Array.make n (-1) in
  let iters = ref 0 and changed = ref true in
  while !changed && !iters < rounds do
    incr iters;
    changed := false;
    Array.iteri
      (fun i p ->
        let best = ref 0 and best_c = ref neg_infinity in
        Array.iteri
          (fun c centroid ->
            let cs = cosine p centroid in
            if cs > !best_c then begin
              best_c := cs;
              best := c
            end)
          centroids;
        if labels.(i) <> !best then begin
          labels.(i) <- !best;
          changed := true
        end)
      profiles;
    if !changed then
      for c = 0 to k - 1 do
        let members = ref [] in
        Array.iteri (fun i l -> if l = c then members := i :: !members) labels;
        if !members <> [] then centroids.(c) <- centroid_of profiles !members
      done
  done;
  { labels; iterations = !iters }
