let distance a b =
  let m = Array.length a and n = Array.length b in
  if m = 0 then n
  else if n = 0 then m
  else begin
    (* Two-row DP over the shorter dimension. *)
    let a, b, m, n = if m <= n then (a, b, m, n) else (b, a, n, m) in
    ignore m;
    let prev = Array.init (Array.length a + 1) Fun.id in
    let curr = Array.make (Array.length a + 1) 0 in
    for j = 1 to n do
      curr.(0) <- j;
      for i = 1 to Array.length a do
        let cost = if a.(i - 1) = b.(j - 1) then 0 else 1 in
        curr.(i) <- min (min (curr.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (Array.length a + 1)
    done;
    prev.(Array.length a)
  end

let distance_banded ~band a b =
  if band < 0 then invalid_arg "Edit_distance.distance_banded";
  let m = Array.length a and n = Array.length b in
  if abs (m - n) > band then max m n (* can't align within the band *)
  else begin
    let inf = max_int / 2 in
    let prev = Array.make (n + 1) inf and curr = Array.make (n + 1) inf in
    for j = 0 to min n band do
      prev.(j) <- j
    done;
    for i = 1 to m do
      Array.fill curr 0 (n + 1) inf;
      let jlo = max 0 (i - band) and jhi = min n (i + band) in
      if jlo = 0 then curr.(0) <- i;
      for j = max 1 jlo to jhi do
        let cost = if a.(i - 1) = b.(j - 1) then 0 else 1 in
        let best = prev.(j - 1) + cost in
        let best = if curr.(j - 1) + 1 < best then curr.(j - 1) + 1 else best in
        let best = if prev.(j) + 1 < best then prev.(j) + 1 else best in
        curr.(j) <- best
      done;
      Array.blit curr 0 prev 0 (n + 1)
    done;
    if prev.(n) >= inf then max m n else prev.(n)
  end

let normalized a b =
  let m = Array.length a and n = Array.length b in
  if m = 0 && n = 0 then 0.0 else float_of_int (distance a b) /. float_of_int (max m n)
