(* Longest common substring of the unmasked portions of [a] and [b], via
   the classic O(|a|·|b|) DP on match run lengths. Masked positions break
   runs. Returns (len, end_a, end_b) with inclusive end positions. *)
let longest_common_unmasked a mask_a b mask_b =
  let m = Array.length a and n = Array.length b in
  let prev = Array.make (n + 1) 0 and curr = Array.make (n + 1) 0 in
  let best = ref 0 and best_i = ref (-1) and best_j = ref (-1) in
  for i = 1 to m do
    Array.fill curr 0 (n + 1) 0;
    if not mask_a.(i - 1) then
      for j = 1 to n do
        if (not mask_b.(j - 1)) && a.(i - 1) = b.(j - 1) then begin
          curr.(j) <- prev.(j - 1) + 1;
          if curr.(j) > !best then begin
            best := curr.(j);
            best_i := i - 1;
            best_j := j - 1
          end
        end
      done;
    Array.blit curr 0 prev 0 (n + 1)
  done;
  (!best, !best_i, !best_j)

let distance ?(min_block = 3) ?(block_cost = 1) ?(max_blocks = max_int) a b =
  if min_block < 1 then invalid_arg "Block_edit.distance";
  (* Greedy tie-breaking depends on argument order; canonicalize so the
     distance is symmetric by construction. *)
  let a, b = if compare a b <= 0 then (a, b) else (b, a) in
  let m = Array.length a and n = Array.length b in
  let mask_a = Array.make m false and mask_b = Array.make n false in
  let cost = ref 0 in
  let blocks = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let len, ia, jb = longest_common_unmasked a mask_a b mask_b in
    if len >= min_block && !blocks < max_blocks then begin
      incr blocks;
      for k = 0 to len - 1 do
        mask_a.(ia - k) <- true;
        mask_b.(jb - k) <- true
      done;
      cost := !cost + block_cost
    end
    else continue_ := false
  done;
  let uncovered mask = Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 mask in
  !cost + uncovered mask_a + uncovered mask_b

let normalized ?min_block a b =
  let m = Array.length a and n = Array.length b in
  if m = 0 && n = 0 then 0.0
  else float_of_int (distance ?min_block a b) /. float_of_int (m + n)
