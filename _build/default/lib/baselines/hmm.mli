(** Discrete hidden Markov models — the "HMM" baseline of paper Table 2
    (30 states in the paper's run).

    A full from-scratch implementation: scaled forward/backward recursions
    (no underflow on long sequences), Baum–Welch re-estimation, and a
    mixture-of-HMMs clusterer that alternates hard assignment to the
    highest-likelihood model with per-cluster retraining — the standard way
    to cluster sequences with HMMs, and the reading consistent with the
    paper's footnote 3 (HMMs can model a cluster's distribution but are
    computationally expensive, which Table 2 confirms). *)

type t = {
  pi : float array;  (** Initial state distribution (n_states). *)
  a : float array array;  (** Transition matrix (n_states × n_states). *)
  b : float array array;  (** Emission matrix (n_states × n_symbols). *)
}

val n_states : t -> int
(** Number of hidden states. *)

val n_symbols : t -> int
(** Emission alphabet size. *)

val random : Rng.t -> n_states:int -> n_symbols:int -> t
(** A random, row-normalized model (Baum–Welch starting point). *)

val log_likelihood : t -> Sequence.t -> float
(** [log_likelihood t s] is {m \log P(s \mid t)} via the scaled forward
    recursion; [0.] for an empty sequence. *)

val baum_welch : ?iterations:int -> ?floor:float -> t -> Sequence.t list -> t
(** [baum_welch t data] re-estimates the model on [data] with the given
    number of EM iterations (default 5). All re-estimated probabilities
    are floored at [floor] (default 1e-6) and renormalized, so zero counts
    never freeze a parameter at 0. *)

type mixture_result = {
  labels : int array;  (** Model index per sequence. *)
  models : t array;  (** The trained per-cluster models. *)
  iterations : int;  (** Assignment/retrain rounds executed. *)
}

val cluster :
  Rng.t ->
  k:int ->
  n_states:int ->
  n_symbols:int ->
  ?rounds:int ->
  ?em_iterations:int ->
  ?restarts:int ->
  ?init_labels:int array ->
  Sequence.t array ->
  mixture_result
(** [cluster rng ~k ~n_states ~n_symbols data] fits [k] HMMs by hard-EM:
    random init, assign each sequence to its max-likelihood model
    (normalized per symbol so lengths do not bias assignment), retrain
    each model on its members, repeat for [rounds] (default 5) or until
    assignments stop changing. With [restarts > 1] (default 1) the whole
    procedure is repeated and the run with the highest total normalized
    likelihood is kept — hard-EM over HMM mixtures is initialization-
    sensitive, and restarts are the standard remedy. [init_labels], when
    given, seeds the first attempt's models from that partition (e.g. a
    quick q-gram k-means) instead of a random shard — the usual
    "initialize mixture EM from k-means" practice. *)
