(** q-gram profile clustering — the "q-gram" baseline of paper Table 2
    (the paper runs it with [q = 3]).

    Each sequence is reduced to the multiset of its length-[q] segments
    (sliding window); similarity is the cosine between (weighted) q-gram
    count vectors, and clustering is spherical k-means over the sparse
    profiles. As the paper argues, the representation discards the
    sequential relationships {e between} q-grams, which is precisely the
    accuracy gap Table 2 demonstrates. *)

type profile
(** A sparse q-gram count vector, L2-normalized lazily. *)

val profile : q:int -> Sequence.t -> profile
(** [profile ~q s] is the q-gram profile of [s]; the profile is empty when
    [|s| < q]. Raises [Invalid_argument] when [q <= 0]. Distinct q-grams
    are keyed exactly (no lossy hashing). *)

val cosine : profile -> profile -> float
(** Cosine similarity in [\[0, 1\]]; [0.] when either profile is empty. *)

val dimensions : profile -> int
(** Number of distinct q-grams in the profile. *)

type result = {
  labels : int array;  (** Cluster index per sequence. *)
  iterations : int;  (** k-means rounds executed. *)
}

val cluster :
  Rng.t -> k:int -> q:int -> ?rounds:int -> Sequence.t array -> result
(** [cluster rng ~k ~q data] runs spherical k-means: centroids start from
    random distinct sequences' profiles; each round assigns every profile
    to the max-cosine centroid and recomputes centroids as normalized
    member sums; stops when assignments stabilize or after [rounds]
    (default 20). *)
