(** Approximate edit distance with block operations — the "EDBO" baseline
    of paper Table 2.

    Exact block-edit distance is NP-hard (paper ref [21], Muthukrishnan &
    Sahinalp), and the paper does not state which approximation it ran; we
    use the standard greedy block-cover heuristic: repeatedly extract the
    longest common substring of the not-yet-covered portions (each
    extraction = one block move, constant cost), until no common substring
    of length ≥ [min_block] remains; leftover symbols pay unit
    insert/delete cost. This captures what matters for the comparison —
    block rearrangements ([aaaabbb] vs [bbbaaaa]) become cheap, while the
    computation is markedly more expensive than plain edit distance. *)

val distance :
  ?min_block:int -> ?block_cost:int -> ?max_blocks:int -> Sequence.t -> Sequence.t -> int
(** [distance a b] is the greedy block-edit cost: [block_cost] (default 1)
    per extracted common block of length ≥ [min_block] (default 3), plus 1
    per uncovered symbol on either side. Symmetric by construction.
    [max_blocks] (default unlimited) caps the number of extraction rounds
    — each round costs a full O(|a|·|b|) scan, so clustering-scale callers
    bound it; leftovers then pay unit cost, an upper-bound approximation. *)

val normalized : ?min_block:int -> Sequence.t -> Sequence.t -> float
(** Distance divided by [|a| + |b|] (the worst case when nothing is
    shared); [0.] for two empty sequences. *)
