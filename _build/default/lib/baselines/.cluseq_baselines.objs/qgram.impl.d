lib/baselines/qgram.ml: Array Hashtbl List Option Rng
