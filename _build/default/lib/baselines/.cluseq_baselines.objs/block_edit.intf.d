lib/baselines/block_edit.mli: Sequence
