lib/baselines/block_edit.ml: Array
