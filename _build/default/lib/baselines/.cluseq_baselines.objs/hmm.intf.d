lib/baselines/hmm.mli: Rng Sequence
