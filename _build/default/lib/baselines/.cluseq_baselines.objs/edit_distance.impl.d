lib/baselines/edit_distance.ml: Array Fun
