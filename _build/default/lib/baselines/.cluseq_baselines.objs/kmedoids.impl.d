lib/baselines/kmedoids.ml: Array Hashtbl List Rng
