lib/baselines/qgram.mli: Rng Sequence
