lib/baselines/kmedoids.mli: Rng
