lib/baselines/baseline_cluster.ml: Alphabet Array Block_edit Edit_distance Hmm Kmedoids Qgram Rng Seq_database
