lib/baselines/hmm.ml: Array Float Fun List Rng
