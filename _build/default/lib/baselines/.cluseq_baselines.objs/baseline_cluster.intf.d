lib/baselines/baseline_cluster.mli: Rng Seq_database
