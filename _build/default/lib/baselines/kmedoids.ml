type result = {
  labels : int array;
  medoids : int array;
  cost : float;
  iterations : int;
}

let memoize ~n dist =
  let cache = Hashtbl.create (4 * n) in
  fun i j ->
    if i = j then 0.0
    else begin
      let key = if i < j then (i, j) else (j, i) in
      match Hashtbl.find_opt cache key with
      | Some d -> d
      | None ->
          let d = dist (fst key) (snd key) in
          Hashtbl.add cache key d;
          d
    end

let precompute ~n dist =
  let m = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = dist i j in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done
  done;
  fun i j -> m.(i).(j)

let run rng ~k ~n ?(max_iterations = 20) dist =
  if k <= 0 || k > n then invalid_arg "Kmedoids.run";
  let dist = memoize ~n dist in
  let medoids = Rng.sample_without_replacement rng ~k ~n in
  let labels = Array.make n 0 in
  let assign () =
    let cost = ref 0.0 in
    for i = 0 to n - 1 do
      let best = ref 0 and best_d = ref infinity in
      for c = 0 to k - 1 do
        let d = dist i medoids.(c) in
        if d < !best_d then begin
          best_d := d;
          best := c
        end
      done;
      labels.(i) <- !best;
      cost := !cost +. !best_d
    done;
    !cost
  in
  let update () =
    (* New medoid of each cluster: the member minimizing total in-cluster
       distance. Returns whether any medoid moved. *)
    let moved = ref false in
    for c = 0 to k - 1 do
      let members = ref [] in
      for i = 0 to n - 1 do
        if labels.(i) = c then members := i :: !members
      done;
      match !members with
      | [] -> () (* empty cluster keeps its medoid *)
      | ms ->
          let best = ref medoids.(c) and best_cost = ref infinity in
          List.iter
            (fun cand ->
              let cost = List.fold_left (fun acc i -> acc +. dist cand i) 0.0 ms in
              if cost < !best_cost then begin
                best_cost := cost;
                best := cand
              end)
            ms;
          if !best <> medoids.(c) then begin
            medoids.(c) <- !best;
            moved := true
          end
    done;
    !moved
  in
  let cost = ref (assign ()) in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < max_iterations do
    incr iters;
    let moved = update () in
    cost := assign ();
    if not moved then continue_ := false
  done;
  { labels; medoids; cost = !cost; iterations = !iters }
