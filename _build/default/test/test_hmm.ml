(* Tests for the discrete HMM baseline: forward probabilities, Baum–Welch,
   and the mixture clusterer. *)

let test_random_model_normalized () =
  let m = Hmm.random (Rng.create 1) ~n_states:4 ~n_symbols:6 in
  let check_row name row =
    Alcotest.(check (float 1e-9)) name 1.0 (Array.fold_left ( +. ) 0.0 row)
  in
  check_row "pi" m.pi;
  Array.iteri (fun i r -> check_row (Printf.sprintf "a%d" i) r) m.a;
  Array.iteri (fun i r -> check_row (Printf.sprintf "b%d" i) r) m.b

(* Enumerate all sequences of a given length and check total probability
   mass is 1 — the forward recursion is a proper distribution. *)
let test_forward_total_probability () =
  let m = Hmm.random (Rng.create 2) ~n_states:3 ~n_symbols:3 in
  let total = ref 0.0 in
  let len = 4 in
  let rec go prefix =
    if List.length prefix = len then
      total := !total +. exp (Hmm.log_likelihood m (Array.of_list (List.rev prefix)))
    else
      for s = 0 to 2 do
        go (s :: prefix)
      done
  in
  go [];
  Alcotest.(check (float 1e-6)) "sums to 1 over all length-4 sequences" 1.0 !total

let test_degenerate_deterministic_model () =
  (* A 1-state model emitting symbol 0 with probability 1. *)
  let m = { Hmm.pi = [| 1.0 |]; a = [| [| 1.0 |] |]; b = [| [| 1.0; 0.0 |] |] } in
  Alcotest.(check (float 1e-9)) "P(000) = 1" 0.0 (Hmm.log_likelihood m [| 0; 0; 0 |]);
  Alcotest.(check bool) "P(001) ~ 0" true (Hmm.log_likelihood m [| 0; 0; 1 |] < -100.0)

let test_empty_sequence () =
  let m = Hmm.random (Rng.create 3) ~n_states:2 ~n_symbols:2 in
  Alcotest.(check (float 1e-9)) "log P(empty) = 0" 0.0 (Hmm.log_likelihood m [||])

let test_baum_welch_improves_likelihood () =
  let rng = Rng.create 4 in
  (* Data from a biased source: long runs of alternating pairs. *)
  let data =
    List.init 10 (fun i -> Array.init 30 (fun j -> if (i + (j / 3)) mod 2 = 0 then 0 else 1))
  in
  let m0 = Hmm.random rng ~n_states:3 ~n_symbols:2 in
  let ll model = List.fold_left (fun acc s -> acc +. Hmm.log_likelihood model s) 0.0 data in
  let before = ll m0 in
  let m1 = Hmm.baum_welch ~iterations:10 m0 data in
  let after = ll m1 in
  Alcotest.(check bool)
    (Printf.sprintf "likelihood improves (%.1f -> %.1f)" before after)
    true (after > before)

let test_baum_welch_keeps_normalization () =
  let rng = Rng.create 5 in
  let data = [ Array.init 20 (fun i -> i mod 3) ] in
  let m = Hmm.baum_welch ~iterations:5 (Hmm.random rng ~n_states:4 ~n_symbols:3) data in
  Array.iter
    (fun row -> Alcotest.(check (float 1e-9)) "row normalized" 1.0 (Array.fold_left ( +. ) 0.0 row))
    m.a;
  Array.iter
    (fun row -> Alcotest.(check (float 1e-9)) "emission normalized" 1.0 (Array.fold_left ( +. ) 0.0 row))
    m.b

let test_no_underflow_on_long_sequences () =
  let m = Hmm.random (Rng.create 6) ~n_states:5 ~n_symbols:8 in
  let s = Array.init 5000 (fun i -> i mod 8) in
  let ll = Hmm.log_likelihood m s in
  Alcotest.(check bool) "finite log-likelihood on length 5000" true (Float.is_finite ll)

let test_cluster_separates_obvious_sources () =
  (* Two trivially different sources: all-0s-ish and all-1s-ish. *)
  let rng = Rng.create 7 in
  let mk bias = Array.init 40 (fun _ -> if Rng.float rng 1.0 < bias then 1 else 0) in
  let data = Array.init 30 (fun i -> if i < 15 then mk 0.05 else mk 0.95) in
  let r = Hmm.cluster (Rng.create 8) ~k:2 ~n_states:2 ~n_symbols:2 ~rounds:5 ~em_iterations:5 data in
  let first = r.labels.(0) in
  let group_ok lo hi l = Array.for_all (fun x -> x = l) (Array.sub r.labels lo (hi - lo)) in
  Alcotest.(check bool) "group 1 homogeneous" true (group_ok 0 15 first);
  Alcotest.(check bool) "group 2 homogeneous and different" true
    (group_ok 15 15 (1 - first))

let test_cluster_respects_init_labels () =
  let data = Array.init 10 (fun i -> Array.make 20 (i mod 2)) in
  let init = Array.init 10 (fun i -> i mod 2) in
  let r =
    Hmm.cluster (Rng.create 9) ~k:2 ~n_states:2 ~n_symbols:2 ~rounds:1 ~em_iterations:5
      ~init_labels:init data
  in
  (* Perfect init on perfectly separable data must not be destroyed. *)
  let agree = Array.for_all2 ( = ) r.labels init in
  let flipped = Array.for_all2 (fun a b -> a = 1 - b) r.labels init in
  Alcotest.(check bool) "labels match init up to renaming" true (agree || flipped)

let test_cluster_invalid_args () =
  let data = [| [| 0 |] |] in
  Alcotest.check_raises "k > n" (Invalid_argument "Hmm.cluster") (fun () ->
      ignore (Hmm.cluster (Rng.create 1) ~k:2 ~n_states:2 ~n_symbols:2 data))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"log likelihood is non-positive-ish (prob <= 1)" ~count:100
         QCheck.(pair small_int (list_of_size (Gen.int_range 1 30) (int_range 0 3)))
         (fun (seed, s) ->
           let m = Hmm.random (Rng.create seed) ~n_states:3 ~n_symbols:4 in
           Hmm.log_likelihood m (Array.of_list s) <= 1e-9));
  ]

let () =
  Alcotest.run "hmm"
    [
      ( "unit",
        [
          Alcotest.test_case "random normalized" `Quick test_random_model_normalized;
          Alcotest.test_case "forward total probability" `Quick test_forward_total_probability;
          Alcotest.test_case "deterministic model" `Quick test_degenerate_deterministic_model;
          Alcotest.test_case "empty sequence" `Quick test_empty_sequence;
          Alcotest.test_case "baum-welch improves" `Quick test_baum_welch_improves_likelihood;
          Alcotest.test_case "baum-welch normalized" `Quick test_baum_welch_keeps_normalization;
          Alcotest.test_case "no underflow" `Quick test_no_underflow_on_long_sequences;
          Alcotest.test_case "cluster separates" `Quick test_cluster_separates_obvious_sources;
          Alcotest.test_case "cluster respects init" `Quick test_cluster_respects_init_labels;
          Alcotest.test_case "invalid args" `Quick test_cluster_invalid_args;
        ] );
      ("property", qcheck_tests);
    ]
