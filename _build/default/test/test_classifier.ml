(* Tests for PST serialization and the Classifier train/save/load/predict
   workflow. *)

let alpha = Alphabet.lowercase

let pst_cfg : Pst.config =
  { (Pst.default_config ~alphabet_size:26) with significance = 3 }

let build texts =
  let t = Pst.create pst_cfg in
  List.iter (fun s -> Pst.insert_sequence t (Sequence.of_string alpha s)) texts;
  t

let with_tmp f =
  let path = Filename.temp_file "cluseq_clf" ".model" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- Pst serialization ----------------------------------------------- *)

let roundtrip t =
  with_tmp (fun path ->
      let oc = open_out path in
      Pst.to_channel oc t;
      close_out oc;
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Pst.of_channel ic))

let test_pst_roundtrip () =
  let t = build [ "ababab"; "abcabcabc"; "zzz" ] in
  let t' = roundtrip t in
  Alcotest.(check bool) "structurally equal" true (Pst.equal_structure t t');
  Alcotest.(check int) "node count" (Pst.n_nodes t) (Pst.n_nodes t');
  Alcotest.(check int) "total" (Pst.total_count t) (Pst.total_count t')

let test_pst_roundtrip_preserves_queries () =
  let t = build [ "abababab"; "babab" ] in
  let t' = roundtrip t in
  let s = Sequence.of_string alpha "abab" in
  for pos = 0 to 3 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "log_prob at %d" pos)
      (Pst.log_prob t s ~lo:0 ~pos)
      (Pst.log_prob t' s ~lo:0 ~pos)
  done

let test_pst_roundtrip_empty () =
  let t = Pst.create pst_cfg in
  let t' = roundtrip t in
  Alcotest.(check bool) "empty tree roundtrips" true (Pst.equal_structure t t')

let test_pst_bad_input () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "not a pst\n";
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Alcotest.(check bool) "bad header raises" true
            (try ignore (Pst.of_channel ic); false with Failure _ -> true)))

(* --- Classifier ------------------------------------------------------- *)

let trained_setup () =
  let w =
    Workload.generate
      {
        Workload.default_params with
        n_sequences = 150;
        avg_length = 250;
        n_clusters = 3;
        contexts_per_cluster = 120;
        concentration = 0.15;
        seed = 21;
      }
  in
  let config =
    {
      Cluseq.default_config with
      k_init = 2;
      significance = 8;
      min_residual = Some 8;
      t_init = 1.2;
      max_iterations = 30;
    }
  in
  let result = Cluseq.run ~config w.db in
  (w, result, Classifier.of_result result w.db)

let test_classifier_agrees_with_run () =
  let w, result, clf = trained_setup () in
  (* Classifying the training sequences must broadly reproduce the run's
     own hard labels. *)
  let hard = Cluseq.hard_labels result ~n:(Seq_database.n_sequences w.db) in
  let agree = ref 0 and total = ref 0 in
  Array.iteri
    (fun i s ->
      if hard.(i) >= 0 then begin
        incr total;
        match (Classifier.classify clf s).cluster with
        | Some c when c = hard.(i) -> incr agree
        | _ -> ()
      end)
    (Seq_database.sequences w.db);
  let rate = float_of_int !agree /. float_of_int (max 1 !total) in
  Alcotest.(check bool) (Printf.sprintf "agreement %.2f > 0.8" rate) true (rate > 0.8)

let test_classifier_generalizes () =
  (* Fresh sequences from the same generators should classify consistently
     with their source cluster. *)
  let w, _result, clf = trained_setup () in
  let w2 = Workload.resample w ~n_sequences:60 ~seed:22 in
  (* Map each of w2's true labels to the classifier cluster most of its
     members land in, then check dominance. *)
  let votes = Hashtbl.create 8 in
  let classified = ref 0 and clusterable = ref 0 in
  Array.iteri
    (fun i s ->
      let label = w2.labels.(i) in
      if label >= 0 then begin
        incr clusterable;
        match (Classifier.classify clf s).cluster with
        | Some c ->
            incr classified;
            let key = (label, c) in
            Hashtbl.replace votes key (1 + Option.value ~default:0 (Hashtbl.find_opt votes key))
        | None -> ()
      end)
    (Seq_database.sequences w2.db);
  (* Most held-out sequences must actually classify (not fall out), and
     each true label's top classifier-cluster should hold a clear majority
     of its classified members. *)
  Alcotest.(check bool)
    (Printf.sprintf "most held-out sequences classified (%d/%d)" !classified !clusterable)
    true
    (float_of_int !classified /. float_of_int (max 1 !clusterable) > 0.6);
  for label = 0 to 2 do
    let total = ref 0 and best = ref 0 in
    Hashtbl.iter
      (fun (l, _) n ->
        if l = label then begin
          total := !total + n;
          if n > !best then best := n
        end)
      votes;
    if !total > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "label %d coherent (%d/%d)" label !best !total)
        true
        (float_of_int !best /. float_of_int !total > 0.7)
  done

let test_classifier_outlier_flagging () =
  let _, _, clf = trained_setup () in
  (* A uniform-random sequence should not clear the trained threshold. *)
  let rng = Rng.create 99 in
  let junk = Array.init 200 (fun _ -> Rng.int rng 26) in
  let v = Classifier.classify clf junk in
  Alcotest.(check bool) "junk flagged as outlier" true (v.cluster = None)

let test_classifier_verdict_shape () =
  let w, _, clf = trained_setup () in
  let v = Classifier.classify clf (Seq_database.get w.db 0) in
  Alcotest.(check int) "scores for every cluster" (Classifier.n_clusters clf)
    (List.length v.scores);
  (match v.scores with
  | (_, first) :: rest ->
      Alcotest.(check (float 1e-12)) "log_sim is the top score" first v.log_sim;
      List.iter (fun (_, x) -> Alcotest.(check bool) "sorted desc" true (x <= first)) rest
  | [] -> Alcotest.fail "no scores")

let test_classifier_save_load () =
  let w, _, clf = trained_setup () in
  with_tmp (fun path ->
      Classifier.save path clf;
      let clf' = Classifier.load path in
      Alcotest.(check int) "same cluster count" (Classifier.n_clusters clf)
        (Classifier.n_clusters clf');
      Alcotest.(check (float 1e-9)) "same threshold" (Classifier.threshold clf)
        (Classifier.threshold clf');
      (* Every verdict must be bit-identical after reload. *)
      Array.iter
        (fun s ->
          let v = Classifier.classify clf s and v' = Classifier.classify clf' s in
          Alcotest.(check bool) "same cluster" true (v.cluster = v'.cluster);
          Alcotest.(check (float 1e-12)) "same score" v.log_sim v'.log_sim)
        (Array.sub (Seq_database.sequences w.db) 0 20))

let test_classifier_make_validation () =
  Alcotest.(check bool) "empty models rejected" true
    (try
       ignore (Classifier.make ~models:[] ~log_background:[| 0.0 |] ~t_linear:1.0 ());
       false
     with Invalid_argument _ -> true);
  let pst = build [ "ab" ] in
  Alcotest.(check bool) "t < 1 rejected" true
    (try
       ignore (Classifier.make ~models:[ (0, pst) ] ~log_background:(Array.make 26 0.0) ~t_linear:0.5 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "classifier"
    [
      ( "pst-serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_pst_roundtrip;
          Alcotest.test_case "queries preserved" `Quick test_pst_roundtrip_preserves_queries;
          Alcotest.test_case "empty tree" `Quick test_pst_roundtrip_empty;
          Alcotest.test_case "bad input" `Quick test_pst_bad_input;
        ] );
      ( "classifier",
        [
          Alcotest.test_case "agrees with run" `Slow test_classifier_agrees_with_run;
          Alcotest.test_case "generalizes" `Slow test_classifier_generalizes;
          Alcotest.test_case "outlier flagging" `Slow test_classifier_outlier_flagging;
          Alcotest.test_case "verdict shape" `Slow test_classifier_verdict_shape;
          Alcotest.test_case "save/load" `Slow test_classifier_save_load;
          Alcotest.test_case "make validation" `Quick test_classifier_make_validation;
        ] );
    ]
