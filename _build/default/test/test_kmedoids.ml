(* Tests for the k-medoids clusterer. *)

(* Three well-separated groups on the integer line. *)
let line_points =
  Array.concat
    [
      Array.init 10 (fun i -> float_of_int i);
      Array.init 10 (fun i -> 100.0 +. float_of_int i);
      Array.init 10 (fun i -> 200.0 +. float_of_int i);
    ]

let line_dist i j = Float.abs (line_points.(i) -. line_points.(j))

let test_recovers_separated_groups () =
  let rng = Rng.create 5 in
  let r = Kmedoids.run rng ~k:3 ~n:30 line_dist in
  (* All members of one true group must share a label. *)
  for g = 0 to 2 do
    let base = r.labels.(g * 10) in
    for i = 0 to 9 do
      Alcotest.(check int) (Printf.sprintf "group %d member %d" g i) base r.labels.((g * 10) + i)
    done
  done;
  (* And the three groups get three distinct labels. *)
  let distinct = List.sort_uniq compare [ r.labels.(0); r.labels.(10); r.labels.(20) ] in
  Alcotest.(check int) "three distinct labels" 3 (List.length distinct)

let test_labels_in_range () =
  let rng = Rng.create 6 in
  let r = Kmedoids.run rng ~k:4 ~n:30 line_dist in
  Array.iter (fun l -> Alcotest.(check bool) "label range" true (l >= 0 && l < 4)) r.labels

let test_medoids_are_members () =
  let rng = Rng.create 7 in
  let r = Kmedoids.run rng ~k:3 ~n:30 line_dist in
  Array.iteri
    (fun c m ->
      Alcotest.(check bool) "medoid index valid" true (m >= 0 && m < 30);
      Alcotest.(check int) (Printf.sprintf "medoid %d labeled with its cluster" c) c r.labels.(m))
    r.medoids

let test_cost_consistent () =
  let rng = Rng.create 8 in
  let r = Kmedoids.run rng ~k:3 ~n:30 line_dist in
  let expected =
    Array.to_list r.labels
    |> List.mapi (fun i c -> line_dist i r.medoids.(c))
    |> List.fold_left ( +. ) 0.0
  in
  Alcotest.(check (float 1e-9)) "cost = sum of member distances" expected r.cost

let test_k_equals_n () =
  let rng = Rng.create 9 in
  let r = Kmedoids.run rng ~k:5 ~n:5 (fun i j -> Float.abs (float_of_int (i - j))) in
  Alcotest.(check (float 1e-9)) "perfect cover" 0.0 r.cost

let test_invalid_k () =
  let rng = Rng.create 10 in
  Alcotest.check_raises "k > n" (Invalid_argument "Kmedoids.run") (fun () ->
      ignore (Kmedoids.run rng ~k:10 ~n:3 line_dist));
  Alcotest.check_raises "k = 0" (Invalid_argument "Kmedoids.run") (fun () ->
      ignore (Kmedoids.run rng ~k:0 ~n:3 line_dist))

let test_deterministic_given_rng_seed () =
  let r1 = Kmedoids.run (Rng.create 11) ~k:3 ~n:30 line_dist in
  let r2 = Kmedoids.run (Rng.create 11) ~k:3 ~n:30 line_dist in
  Alcotest.(check bool) "identical runs" true (r1.labels = r2.labels)

let test_precompute_matches () =
  let d = Kmedoids.precompute ~n:30 line_dist in
  for i = 0 to 29 do
    for j = 0 to 29 do
      Alcotest.(check (float 1e-12)) "matrix entry" (line_dist i j) (d i j)
    done
  done

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"every cluster label has a medoid of the same label" ~count:100
         (QCheck.pair QCheck.small_int (QCheck.int_range 1 5))
         (fun (seed, k) ->
           let n = 20 in
           let rng = Rng.create seed in
           let pts = Array.init n (fun _ -> Rng.float rng 100.0) in
           let r = Kmedoids.run (Rng.split rng) ~k ~n (fun i j -> Float.abs (pts.(i) -. pts.(j))) in
           Array.for_all (fun l -> l >= 0 && l < k) r.labels
           && Array.length r.medoids = k));
  ]

let () =
  Alcotest.run "kmedoids"
    [
      ( "unit",
        [
          Alcotest.test_case "recovers groups" `Quick test_recovers_separated_groups;
          Alcotest.test_case "labels in range" `Quick test_labels_in_range;
          Alcotest.test_case "medoids are members" `Quick test_medoids_are_members;
          Alcotest.test_case "cost consistent" `Quick test_cost_consistent;
          Alcotest.test_case "k = n" `Quick test_k_equals_n;
          Alcotest.test_case "invalid k" `Quick test_invalid_k;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_rng_seed;
          Alcotest.test_case "precompute" `Quick test_precompute_matches;
        ] );
      ("property", qcheck_tests);
    ]
