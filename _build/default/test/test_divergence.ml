(* Tests for the direct CPD-difference measures (paper Sec. 2's variational
   distance and symmetrized KL divergence). *)

let alpha = Alphabet.lowercase

let cfg : Pst.config =
  { (Pst.default_config ~alphabet_size:26) with significance = 3; p_min = 1e-3 }

let build texts =
  let t = Pst.create cfg in
  List.iter (fun s -> Pst.insert_sequence t (Sequence.of_string alpha s)) texts;
  t

let ab_corpus = [ "ababababab"; "babababa"; "abababab" ]
let cd_corpus = [ "cdcdcdcdcd"; "dcdcdcdc"; "cdcdcdcd" ]
let ab_corpus2 = [ "babababab"; "ababababa"; "babab" ]

let test_self_divergence_zero () =
  let t = build ab_corpus in
  Alcotest.(check (float 1e-9)) "variational self" 0.0 (Divergence.variational t t);
  Alcotest.(check (float 1e-9)) "kl self" 0.0 (Divergence.kl_symmetric t t)

let test_similar_less_than_different () =
  let a = build ab_corpus and a' = build ab_corpus2 and c = build cd_corpus in
  Alcotest.(check bool) "variational: same-style < different-style" true
    (Divergence.variational a a' < Divergence.variational a c);
  Alcotest.(check bool) "kl: same-style < different-style" true
    (Divergence.kl_symmetric a a' < Divergence.kl_symmetric a c)

let test_symmetry () =
  let a = build ab_corpus and c = build cd_corpus in
  Alcotest.(check (float 1e-9)) "variational symmetric" (Divergence.variational a c)
    (Divergence.variational c a);
  Alcotest.(check (float 1e-9)) "kl symmetric" (Divergence.kl_symmetric a c)
    (Divergence.kl_symmetric c a)

let test_bounds () =
  let a = build ab_corpus and c = build cd_corpus in
  let v = Divergence.variational a c in
  Alcotest.(check bool) "variational in [0,2]" true (v >= 0.0 && v <= 2.0);
  Alcotest.(check bool) "kl non-negative" true (Divergence.kl_symmetric a c >= 0.0)

let test_alphabet_mismatch () =
  let a = build ab_corpus in
  let b = Pst.create (Pst.default_config ~alphabet_size:4) in
  Alcotest.check_raises "mismatch" (Invalid_argument "Divergence: alphabet size mismatch")
    (fun () -> ignore (Divergence.variational a b))

let test_empty_trees () =
  let a = Pst.create cfg and b = Pst.create cfg in
  Alcotest.(check (float 1e-9)) "no contexts = 0" 0.0 (Divergence.variational a b)

let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 5 40) (Gen.char_range 'a' 'd'))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"variational within [0,2] and symmetric" ~count:100
         (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 4) seq_gen)
            (QCheck.list_of_size (QCheck.Gen.int_range 1 4) seq_gen))
         (fun (xs, ys) ->
           let a = build xs and b = build ys in
           let v = Divergence.variational a b in
           v >= 0.0 && v <= 2.0 +. 1e-9
           && Float.abs (v -. Divergence.variational b a) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"kl non-negative and zero on self" ~count:100 seq_gen (fun s ->
           let a = build [ s ] in
           let self = Divergence.kl_symmetric a a in
           self >= 0.0 && self < 1e-9));
  ]

let () =
  Alcotest.run "divergence"
    [
      ( "unit",
        [
          Alcotest.test_case "self is zero" `Quick test_self_divergence_zero;
          Alcotest.test_case "similar < different" `Quick test_similar_less_than_different;
          Alcotest.test_case "symmetry" `Quick test_symmetry;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "alphabet mismatch" `Quick test_alphabet_mismatch;
          Alcotest.test_case "empty trees" `Quick test_empty_trees;
        ] );
      ("property", qcheck_tests);
    ]
