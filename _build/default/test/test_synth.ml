(* Tests for the synthetic workload generators. *)

let test_pst_gen_lengths_and_range () =
  let rng = Rng.create 1 in
  let m = Pst_gen.random rng ~alphabet_size:8 () in
  Alcotest.(check int) "alphabet size" 8 (Pst_gen.alphabet_size m);
  let s = Pst_gen.generate m (Rng.create 2) ~len:500 in
  Alcotest.(check int) "length" 500 (Array.length s);
  Array.iter (fun c -> Alcotest.(check bool) "in range" true (c >= 0 && c < 8)) s

let test_pst_gen_deterministic () =
  let mk () =
    let rng = Rng.create 5 in
    let m = Pst_gen.random rng ~alphabet_size:6 () in
    Pst_gen.generate m rng ~len:100
  in
  Alcotest.(check bool) "same seed, same sequence" true (mk () = mk ())

let test_pst_gen_models_differ () =
  let rng = Rng.create 7 in
  let m1 = Pst_gen.random rng ~alphabet_size:6 ~concentration:0.15 () in
  let m2 = Pst_gen.random rng ~alphabet_size:6 ~concentration:0.15 () in
  let gen = Rng.create 9 in
  let s1 = Pst_gen.generate m1 gen ~len:400 in
  (* A sequence from m1 should be (much) more likely under m1 than m2. *)
  Alcotest.(check bool) "own model likelier" true
    (Pst_gen.log_likelihood m1 s1 > Pst_gen.log_likelihood m2 s1)

let test_uniform_model () =
  let m = Pst_gen.uniform ~alphabet_size:4 in
  let s = Pst_gen.generate m (Rng.create 3) ~len:4000 in
  let counts = Array.make 4 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) s;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true
        (abs (c - 1000) < 200))
    counts;
  Alcotest.(check (float 1e-6)) "uniform likelihood" (-.(4000.0 *. log 4.0))
    (Pst_gen.log_likelihood m s)

let test_workload_shape () =
  let p = { Workload.default_params with n_sequences = 100; n_clusters = 5; avg_length = 50;
            outlier_fraction = 0.1; seed = 11 } in
  let w = Workload.generate p in
  Alcotest.(check int) "N sequences" 100 (Seq_database.n_sequences w.db);
  Alcotest.(check int) "labels array" 100 (Array.length w.labels);
  Alcotest.(check int) "10% outliers" 10 (Workload.outlier_count w);
  Array.iter
    (fun l -> Alcotest.(check bool) "label range" true (l >= -1 && l < 5))
    w.labels;
  (* Balanced clusters (±1). *)
  let sizes = Array.make 5 0 in
  Array.iter (fun l -> if l >= 0 then sizes.(l) <- sizes.(l) + 1) w.labels;
  Array.iter (fun s -> Alcotest.(check int) "balanced" 18 s) sizes

let test_workload_lengths () =
  let p = { Workload.default_params with n_sequences = 50; avg_length = 100; seed = 12 } in
  let w = Workload.generate p in
  Seq_database.iteri
    (fun _ s ->
      let l = Array.length s in
      Alcotest.(check bool) "length in ±50% band" true (l >= 50 && l <= 150))
    w.db

let test_workload_deterministic () =
  let p = { Workload.default_params with n_sequences = 40; seed = 13 } in
  let w1 = Workload.generate p and w2 = Workload.generate p in
  Alcotest.(check bool) "same labels" true (w1.labels = w2.labels);
  Alcotest.(check bool) "same sequences" true
    (Seq_database.sequences w1.db = Seq_database.sequences w2.db)

let test_workload_shared_base () =
  let p = { Workload.default_params with n_sequences = 60; n_clusters = 3; avg_length = 400;
            shared_base = true; contexts_per_cluster = 0; seed = 15 } in
  (* With no contexts, shared-base clusters are *identical* order-0
     sources: their empirical symbol marginals must be close. *)
  let w = Workload.generate p in
  let marginals = Array.make_matrix 3 26 0.0 in
  let totals = Array.make 3 0.0 in
  Seq_database.iteri
    (fun i s ->
      let l = w.labels.(i) in
      if l >= 0 then begin
        Array.iter (fun c -> marginals.(l).(c) <- marginals.(l).(c) +. 1.0) s;
        totals.(l) <- totals.(l) +. float_of_int (Array.length s)
      end)
    w.db;
  let l1 a b =
    let acc = ref 0.0 in
    for i = 0 to 25 do
      acc := !acc +. Float.abs ((a.(i) /. totals.(0)) -. (b.(i) /. totals.(1)))
    done;
    !acc
  in
  Alcotest.(check bool) "order-0 marginals close" true (l1 marginals.(0) marginals.(1) < 0.15)

let test_workload_validation () =
  Alcotest.(check bool) "bad outlier fraction" true
    (try
       ignore (Workload.generate { Workload.default_params with outlier_fraction = 1.5 });
       false
     with Invalid_argument _ -> true)

let test_protein_shape () =
  let p = { Protein_sim.default_params with n_families = 8; total_sequences = 160; seed = 21 } in
  let d = Protein_sim.generate p in
  Alcotest.(check int) "8 family sizes" 8 (Array.length d.family_sizes);
  Alcotest.(check int) "sizes sum to total" 160 (Array.fold_left ( + ) 0 d.family_sizes);
  Alcotest.(check int) "sequences" 160 (Seq_database.n_sequences d.db);
  Alcotest.(check int) "amino alphabet" 20 (Alphabet.size (Seq_database.alphabet d.db));
  (* Labels consistent with family sizes. *)
  let counts = Array.make 8 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) d.labels;
  Alcotest.(check (array int)) "label counts match sizes" d.family_sizes counts

let test_protein_families_share_motifs () =
  (* Two sequences of one family share planted motifs; quantify via
     q-gram cosine: within-family similarity should exceed cross-family
     similarity on average. *)
  let p = { Protein_sim.default_params with n_families = 4; total_sequences = 40; seed = 22 } in
  let d = Protein_sim.generate p in
  let profiles = Array.map (Qgram.profile ~q:4) (Seq_database.sequences d.db) in
  let within = ref 0.0 and nwithin = ref 0 and cross = ref 0.0 and ncross = ref 0 in
  let n = Array.length profiles in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = Qgram.cosine profiles.(i) profiles.(j) in
      if d.labels.(i) = d.labels.(j) then begin
        within := !within +. c;
        incr nwithin
      end
      else begin
        cross := !cross +. c;
        incr ncross
      end
    done
  done;
  let within = !within /. float_of_int !nwithin in
  let cross = !cross /. float_of_int !ncross in
  Alcotest.(check bool)
    (Printf.sprintf "within (%.3f) > cross (%.3f)" within cross)
    true (within > cross)

let test_protein_validation () =
  Alcotest.(check bool) "too few sequences" true
    (try
       ignore
         (Protein_sim.generate
            { Protein_sim.default_params with n_families = 30; total_sequences = 10 });
       false
     with Invalid_argument _ -> true)

let test_language_shape () =
  let p = { Language_sim.per_language = 30; n_noise = 10; min_len = 40; max_len = 100; seed = 31 } in
  let d = Language_sim.generate p in
  Alcotest.(check int) "total" 100 (Seq_database.n_sequences d.db);
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun l -> Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    d.labels;
  Alcotest.(check int) "english" 30 (Hashtbl.find counts 0);
  Alcotest.(check int) "chinese" 30 (Hashtbl.find counts 1);
  Alcotest.(check int) "japanese" 30 (Hashtbl.find counts 2);
  Alcotest.(check int) "noise" 10 (Hashtbl.find counts (-1))

let test_language_sentence_bounds () =
  let rng = Rng.create 32 in
  List.iter
    (fun lang ->
      for _ = 1 to 50 do
        let s = Language_sim.sentence rng lang ~min_len:40 ~max_len:100 in
        Alcotest.(check bool)
          (Language_sim.language_name lang ^ " length in bounds")
          true
          (String.length s >= 40 && String.length s <= 100);
        String.iter
          (fun ch -> Alcotest.(check bool) "lowercase only" true (ch >= 'a' && ch <= 'z'))
          s
      done)
    [ Language_sim.English; Chinese; Japanese; Russian; German ]

let test_language_statistics_differ () =
  (* The paper's observations should hold in the generators: "th" is
     frequent in English and absent from pinyin/romaji. *)
  let rng = Rng.create 33 in
  let count_digraph lang d =
    let total = ref 0 in
    for _ = 1 to 50 do
      let s = Language_sim.sentence rng lang ~min_len:60 ~max_len:120 in
      for i = 0 to String.length s - 2 do
        if String.sub s i 2 = d then incr total
      done
    done;
    !total
  in
  let en_th = count_digraph Language_sim.English "th" in
  let zh_th = count_digraph Language_sim.Chinese "th" in
  let ja_th = count_digraph Language_sim.Japanese "th" in
  Alcotest.(check bool)
    (Printf.sprintf "th: en=%d >> zh=%d, ja=%d" en_th zh_th ja_th)
    true
    (en_th > 10 * (zh_th + 1) && en_th > 10 * (ja_th + 1))

let test_language_validation () =
  Alcotest.(check bool) "bad lengths" true
    (try
       ignore (Language_sim.sentence (Rng.create 1) Language_sim.English ~min_len:10 ~max_len:5);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "synth"
    [
      ( "pst-gen",
        [
          Alcotest.test_case "lengths and range" `Quick test_pst_gen_lengths_and_range;
          Alcotest.test_case "deterministic" `Quick test_pst_gen_deterministic;
          Alcotest.test_case "models differ" `Quick test_pst_gen_models_differ;
          Alcotest.test_case "uniform model" `Quick test_uniform_model;
        ] );
      ( "workload",
        [
          Alcotest.test_case "shape" `Quick test_workload_shape;
          Alcotest.test_case "lengths" `Quick test_workload_lengths;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "shared base" `Quick test_workload_shared_base;
        ] );
      ( "protein",
        [
          Alcotest.test_case "shape" `Quick test_protein_shape;
          Alcotest.test_case "families share motifs" `Quick test_protein_families_share_motifs;
          Alcotest.test_case "validation" `Quick test_protein_validation;
        ] );
      ( "language",
        [
          Alcotest.test_case "shape" `Quick test_language_shape;
          Alcotest.test_case "sentence bounds" `Quick test_language_sentence_bounds;
          Alcotest.test_case "statistics differ" `Quick test_language_statistics_differ;
          Alcotest.test_case "validation" `Quick test_language_validation;
        ] );
    ]
