(* Tests for Bitset, including a property check against a Set-based model. *)

module IntSet = Set.Make (Int)

let test_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "initially empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem b 1);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal b)

let test_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.add b (-1))

let test_add_idempotent () =
  let b = Bitset.create 10 in
  Bitset.add b 5;
  Bitset.add b 5;
  Alcotest.(check int) "double add counts once" 1 (Bitset.cardinal b)

let test_union_diff_inter () =
  let a = Bitset.of_list 50 [ 1; 2; 3; 10 ] in
  let b = Bitset.of_list 50 [ 3; 10; 20 ] in
  Alcotest.(check int) "diff |a\\b|" 2 (Bitset.diff_cardinal a b);
  Alcotest.(check int) "diff |b\\a|" 1 (Bitset.diff_cardinal b a);
  Alcotest.(check int) "inter" 2 (Bitset.inter_cardinal a b);
  let dst = Bitset.copy a in
  Bitset.union_into ~dst b;
  Alcotest.(check int) "union cardinal" 5 (Bitset.cardinal dst)

let test_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch") (fun () ->
      ignore (Bitset.diff_cardinal a b))

let test_to_list_sorted () =
  let b = Bitset.of_list 100 [ 70; 3; 3; 42 ] in
  Alcotest.(check (list int)) "sorted unique" [ 3; 42; 70 ] (Bitset.to_list b)

let test_iter_order () =
  let b = Bitset.of_list 100 [ 9; 1; 62; 63 ] in
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) b;
  Alcotest.(check (list int)) "increasing order" [ 1; 9; 62; 63 ] (List.rev !acc)

let test_clear_and_equal () =
  let a = Bitset.of_list 30 [ 1; 5 ] and b = Bitset.of_list 30 [ 1; 5 ] in
  Alcotest.(check bool) "equal" true (Bitset.equal a b);
  Bitset.clear a;
  Alcotest.(check bool) "cleared differs" false (Bitset.equal a b);
  Alcotest.(check bool) "cleared empty" true (Bitset.is_empty a)

let ops_gen =
  (* A sequence of add/remove operations over [0, 64*3) to cross word
     boundaries. *)
  QCheck.(list (pair bool (int_range 0 191)))

let apply_ops ops =
  let b = Bitset.create 192 in
  let m = ref IntSet.empty in
  List.iter
    (fun (add, i) ->
      if add then begin
        Bitset.add b i;
        m := IntSet.add i !m
      end
      else begin
        Bitset.remove b i;
        m := IntSet.remove i !m
      end)
    ops;
  (b, !m)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"model: cardinal and members" ~count:300 ops_gen (fun ops ->
           let b, m = apply_ops ops in
           Bitset.cardinal b = IntSet.cardinal m
           && List.for_all (fun i -> Bitset.mem b i = IntSet.mem i m)
                (List.init 192 Fun.id)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"model: diff and inter cardinals" ~count:300
         (QCheck.pair ops_gen ops_gen)
         (fun (ops1, ops2) ->
           let b1, m1 = apply_ops ops1 and b2, m2 = apply_ops ops2 in
           Bitset.diff_cardinal b1 b2 = IntSet.cardinal (IntSet.diff m1 m2)
           && Bitset.inter_cardinal b1 b2 = IntSet.cardinal (IntSet.inter m1 m2)));
  ]

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "idempotent add" `Quick test_add_idempotent;
          Alcotest.test_case "union/diff/inter" `Quick test_union_diff_inter;
          Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
          Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "clear and equal" `Quick test_clear_and_equal;
        ] );
      ("property", qcheck_tests);
    ]
