(* Tests for the streaming (online) clustering extension. *)

let mk_workload ?(n = 300) ?(seed = 41) () =
  Workload.generate
    {
      Workload.default_params with
      n_sequences = n;
      avg_length = 250;
      n_clusters = 3;
      contexts_per_cluster = 120;
      concentration = 0.15;
      outlier_fraction = 0.0;
      seed;
    }

let online_config =
  {
    Cluseq.default_config with
    k_init = 2;
    significance = 8;
    min_residual = Some 8;
    t_init = exp 10.0 (* feed-time decision threshold, within the gap *);
    max_iterations = 20;
  }

let mk_state ?(mine_at = 60) () =
  Online.create ~config:online_config ~mine_at ~alphabet_size:26 ()

let test_create_validation () =
  Alcotest.(check bool) "bad alphabet" true
    (try ignore (Online.create ~alphabet_size:0 ()); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad mine_at" true
    (try ignore (Online.create ~mine_at:1 ~alphabet_size:4 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "buffer < mine_at" true
    (try ignore (Online.create ~mine_at:10 ~buffer_capacity:5 ~alphabet_size:4 ()); false
     with Invalid_argument _ -> true)

let test_initial_state () =
  let t = mk_state () in
  let s = Online.stats t in
  Alcotest.(check int) "no clusters" 0 s.n_clusters;
  Alcotest.(check int) "nothing fed" 0 s.fed;
  Alcotest.(check bool) "classify with no clusters" true (Online.classify t [| 0; 1 |] = None)

let test_stream_discovers_clusters () =
  let w = mk_workload () in
  let t = mk_state () in
  Seq_database.iteri (fun _ s -> ignore (Online.feed t s)) w.db;
  let st = Online.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "discovered clusters (got %d)" st.n_clusters)
    true (st.n_clusters >= 2);
  Alcotest.(check int) "all fed" 300 st.fed;
  Alcotest.(check bool)
    (Printf.sprintf "most sequences assigned live (%d/300)" st.assigned)
    true
    (st.assigned > 150)

let test_stream_assignments_pure () =
  (* After the stream, held-out sequences from one planted cluster should
     classify into a single live cluster each. *)
  let w = mk_workload () in
  let t = mk_state () in
  Seq_database.iteri (fun _ s -> ignore (Online.feed t s)) w.db;
  let held_out = Workload.resample w ~n_sequences:60 ~seed:77 in
  let votes = Hashtbl.create 8 in
  let classified = ref 0 in
  Seq_database.iteri
    (fun i s ->
      let label = held_out.labels.(i) in
      if label >= 0 then
        match Online.classify t s with
        | Some (c, _) ->
            incr classified;
            Hashtbl.replace votes (label, c)
              (1 + Option.value ~default:0 (Hashtbl.find_opt votes (label, c)))
        | None -> ())
    held_out.db;
  Alcotest.(check bool)
    (Printf.sprintf "most held-out classified (%d/60)" !classified)
    true
    (!classified > 30);
  for label = 0 to 2 do
    let total = ref 0 and best = ref 0 in
    Hashtbl.iter
      (fun (l, _) n ->
        if l = label then begin
          total := !total + n;
          if n > !best then best := n
        end)
      votes;
    if !total > 5 then
      Alcotest.(check bool)
        (Printf.sprintf "label %d coherent (%d/%d)" label !best !total)
        true
        (float_of_int !best /. float_of_int !total > 0.7)
  done

let test_buffer_eviction () =
  (* Junk sequences never cluster; the buffer must stay bounded and count
     evictions. *)
  let t = Online.create ~config:online_config ~mine_at:20 ~buffer_capacity:30
      ~alphabet_size:26 ()
  in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let s = Array.init 100 (fun _ -> Rng.int rng 26) in
    ignore (Online.feed t s)
  done;
  let st = Online.stats t in
  Alcotest.(check bool) "buffer bounded" true (st.buffered <= 30);
  Alcotest.(check bool)
    (Printf.sprintf "junk largely unassigned (%d assigned)" st.assigned)
    true
    (st.assigned < 60)

let test_feed_counts () =
  let t = mk_state () in
  let w = mk_workload ~n:50 () in
  Seq_database.iteri (fun _ s -> ignore (Online.feed t s)) w.db;
  let st = Online.stats t in
  Alcotest.(check int) "fed" 50 st.fed;
  (* Every fed sequence is live-assigned, buffered, dropped, or was claimed
     by a mining run (multi-cluster joins may double-count absorbed, so
     the absorbed totals only bound the remainder from above). *)
  let mined_members =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Online.cluster_sizes t) - st.assigned
  in
  Alcotest.(check bool) "accounting covers the feed" true
    (st.assigned + st.buffered + st.dropped_outliers + mined_members >= st.fed);
  Alcotest.(check bool) "symbol out of range" true
    (try ignore (Online.feed t [| 99 |]); false with Invalid_argument _ -> true)

let test_forced_mine () =
  let w = mk_workload ~n:80 () in
  let t = Online.create ~config:online_config ~mine_at:1000 ~buffer_capacity:2000
      ~alphabet_size:26 ()
  in
  Seq_database.iteri (fun _ s -> ignore (Online.feed t s)) w.db;
  Alcotest.(check int) "nothing mined yet" 0 (Online.stats t).n_clusters;
  let fresh = Online.mine t in
  Alcotest.(check bool) (Printf.sprintf "mining found clusters (%d)" fresh) true (fresh >= 2);
  Alcotest.(check bool) "buffer shrank" true ((Online.stats t).buffered < 80)

let () =
  Alcotest.run "online"
    [
      ( "unit",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "feed counts" `Slow test_feed_counts;
          Alcotest.test_case "buffer eviction" `Slow test_buffer_eviction;
          Alcotest.test_case "forced mine" `Slow test_forced_mine;
        ] );
      ( "integration",
        [
          Alcotest.test_case "discovers clusters" `Slow test_stream_discovers_clusters;
          Alcotest.test_case "held-out purity" `Slow test_stream_assignments_pure;
        ] );
    ]
