(* Unit and property tests for Stats: moments, regression, and the
   prefix/suffix regression slopes backing the threshold valley detector. *)

let test_mean () =
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Stats.mean [||]))

let test_variance () =
  Alcotest.(check (float 1e-12)) "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-12)) "constant variance" 0.0 (Stats.variance [| 3.0; 3.0; 3.0 |])

let test_regression_exact_line () =
  (* y = 2x + 1 recovered exactly. *)
  let pts = Array.init 10 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  let slope, intercept = Stats.linear_regression pts in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let test_regression_degenerate () =
  let slope, intercept = Stats.linear_regression [| (1.0, 5.0) |] in
  Alcotest.(check (float 1e-9)) "single point slope 0" 0.0 slope;
  Alcotest.(check (float 1e-9)) "single point intercept = y" 5.0 intercept;
  let slope, _ = Stats.linear_regression [| (2.0, 1.0); (2.0, 3.0) |] in
  Alcotest.(check (float 1e-9)) "zero x-variance slope 0" 0.0 slope

(* Reference implementation: recompute each window's slope from scratch. *)
let naive_slopes x y =
  let n = Array.length x in
  let slope_of lo hi =
    let pts = Array.init (hi - lo + 1) (fun i -> (x.(lo + i), y.(lo + i))) in
    fst (Stats.linear_regression pts)
  in
  (Array.init n (fun i -> slope_of 0 i), Array.init n (fun i -> slope_of i (n - 1)))

let test_prefix_suffix_slopes_match_naive () =
  let x = Array.init 20 (fun i -> float_of_int i) in
  let y = Array.map (fun v -> (v *. v) -. (3.0 *. v) +. 7.0) x in
  let left, right = Stats.prefix_suffix_slopes ~x ~y in
  let nleft, nright = naive_slopes x y in
  Array.iteri
    (fun i l -> Alcotest.(check (float 1e-6)) (Printf.sprintf "left %d" i) nleft.(i) l)
    left;
  Array.iteri
    (fun i r -> Alcotest.(check (float 1e-6)) (Printf.sprintf "right %d" i) nright.(i) r)
    right

let test_percentile () =
  let a = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-12)) "median" 3.0 (Stats.percentile a 50.0);
  Alcotest.(check (float 1e-12)) "max" 5.0 (Stats.percentile a 100.0);
  Alcotest.(check (float 1e-12)) "min" 1.0 (Stats.percentile a 1.0)

let test_argmax () =
  Alcotest.(check int) "argmax" 2 (Stats.argmax [| 1.0; 0.5; 9.0; 9.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.argmax: empty array") (fun () ->
      ignore (Stats.argmax [||]))

let qcheck_tests =
  let float_list = QCheck.(list_of_size (Gen.int_range 2 30) (float_range (-100.0) 100.0)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"prefix/suffix slopes match naive" ~count:200 float_list
         (fun ys ->
           let y = Array.of_list ys in
           let x = Array.init (Array.length y) (fun i -> float_of_int i) in
           let left, right = Stats.prefix_suffix_slopes ~x ~y in
           let nleft, nright = naive_slopes x y in
           let close a b = Float.abs (a -. b) < 1e-6 *. (1.0 +. Float.abs b) in
           Array.for_all2 close left nleft && Array.for_all2 close right nright));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"variance non-negative" ~count:500 float_list (fun ys ->
           Stats.variance (Array.of_list ys) >= 0.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"percentile within range" ~count:500
         QCheck.(pair float_list (float_range 0.0 100.0))
         (fun (ys, p) ->
           let a = Array.of_list ys in
           let v = Stats.percentile a p in
           let lo = Array.fold_left Float.min a.(0) a in
           let hi = Array.fold_left Float.max a.(0) a in
           v >= lo && v <= hi));
  ]

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "regression exact" `Quick test_regression_exact_line;
          Alcotest.test_case "regression degenerate" `Quick test_regression_degenerate;
          Alcotest.test_case "prefix/suffix slopes" `Quick test_prefix_suffix_slopes_match_naive;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "argmax" `Quick test_argmax;
        ] );
      ("property", qcheck_tests);
    ]
