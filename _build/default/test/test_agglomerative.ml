(* Tests for the divergence-based agglomerative clusterer (the paper's
   Sec. 2 "rejected alternative"). *)

let alpha = Alphabet.lowercase

let two_style_db ?(per = 8) () =
  (* ab-alternators vs cd-alternators, slight per-sequence noise. *)
  let rng = Rng.create 3 in
  let mk pair =
    String.init 60 (fun i ->
        if Rng.float rng 1.0 < 0.05 then Char.chr (97 + Rng.int rng 26)
        else if i mod 2 = 0 then pair.[0]
        else pair.[1])
  in
  let rows = List.init per (fun _ -> (0, mk "ab")) @ List.init per (fun _ -> (1, mk "cd")) in
  let db = Seq_database.of_strings alpha (List.map snd rows) in
  (db, Array.of_list (List.map fst rows))

let test_recovers_two_styles () =
  let db, truth = two_style_db () in
  List.iter
    (fun measure ->
      let labels = Agglomerative.cluster ~measure ~k:2 db in
      let ari = Metrics.adjusted_rand_index ~truth ~pred:labels in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "perfect split (%s)"
           (match measure with Agglomerative.Variational -> "variational" | Kl_symmetric -> "kl"))
        1.0 ari)
    [ Agglomerative.Variational; Agglomerative.Kl_symmetric ]

let test_all_linkages_run () =
  let db, truth = two_style_db ~per:5 () in
  List.iter
    (fun linkage ->
      let labels = Agglomerative.cluster ~linkage ~k:2 db in
      Alcotest.(check bool) "labels in range" true (Array.for_all (fun l -> l = 0 || l = 1) labels);
      let ari = Metrics.adjusted_rand_index ~truth ~pred:labels in
      Alcotest.(check bool) (Printf.sprintf "ari %.2f > 0.5" ari) true (ari > 0.5))
    [ Agglomerative.Single; Complete; Average ]

let test_k_equals_n () =
  let db, _ = two_style_db ~per:3 () in
  let labels = Agglomerative.cluster ~k:6 db in
  let distinct = List.sort_uniq compare (Array.to_list labels) in
  Alcotest.(check int) "all singletons" 6 (List.length distinct)

let test_k_one () =
  let db, _ = two_style_db ~per:3 () in
  let labels = Agglomerative.cluster ~k:1 db in
  Alcotest.(check bool) "single cluster" true (Array.for_all (fun l -> l = 0) labels)

let test_invalid_k () =
  let db, _ = two_style_db ~per:2 () in
  Alcotest.(check bool) "k = 0" true
    (try ignore (Agglomerative.cluster ~k:0 db); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "k > n" true
    (try ignore (Agglomerative.cluster ~k:100 db); false with Invalid_argument _ -> true)

(* --- purity / NMI ------------------------------------------------------ *)

let test_purity () =
  let truth = [| 0; 0; 1; 1 |] in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Metrics.purity ~truth ~pred:[| 5; 5; 7; 7 |]);
  Alcotest.(check (float 1e-9)) "one mixed cluster" 0.75
    (Metrics.purity ~truth ~pred:[| 5; 5; 5; 7 |]);
  Alcotest.(check (float 1e-9)) "all singletons are pure" 1.0
    (Metrics.purity ~truth ~pred:[| 1; 2; 3; 4 |])

let test_nmi () =
  let truth = [| 0; 0; 1; 1; 2; 2 |] in
  Alcotest.(check (float 1e-9)) "identical = 1" 1.0
    (Metrics.normalized_mutual_information ~truth ~pred:truth);
  Alcotest.(check (float 1e-9)) "renaming invariant" 1.0
    (Metrics.normalized_mutual_information ~truth ~pred:[| 7; 7; 3; 3; 9; 9 |]);
  Alcotest.(check (float 1e-9)) "single cluster = 0" 0.0
    (Metrics.normalized_mutual_information ~truth ~pred:[| 0; 0; 0; 0; 0; 0 |]);
  let mixed = Metrics.normalized_mutual_information ~truth ~pred:[| 0; 0; 0; 1; 1; 1 |] in
  Alcotest.(check bool) "partial agreement strictly between" true (mixed > 0.0 && mixed < 1.0)

let test_nmi_independent_near_zero () =
  let rng = Rng.create 11 in
  let n = 4000 in
  let truth = Array.init n (fun _ -> Rng.int rng 4) in
  let pred = Array.init n (fun _ -> Rng.int rng 4) in
  let nmi = Metrics.normalized_mutual_information ~truth ~pred in
  Alcotest.(check bool) (Printf.sprintf "independent ~ 0 (got %.4f)" nmi) true (nmi < 0.02)

let labels_gen = QCheck.(list_of_size (Gen.int_range 2 60) (int_range 0 4))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"purity and NMI within [0,1]" ~count:300
         (QCheck.pair labels_gen labels_gen)
         (fun (t, p) ->
           let n = min (List.length t) (List.length p) in
           let truth = Array.of_list (List.filteri (fun i _ -> i < n) t) in
           let pred = Array.of_list (List.filteri (fun i _ -> i < n) p) in
           let pu = Metrics.purity ~truth ~pred in
           let nmi = Metrics.normalized_mutual_information ~truth ~pred in
           pu >= 0.0 && pu <= 1.0 && nmi >= -1e-9 && nmi <= 1.0 +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"purity never below 1/k for k true classes... at least 1/n" ~count:300
         labels_gen
         (fun t ->
           let truth = Array.of_list t in
           (* Predicting everything into one cluster gives purity =
              (size of biggest class)/n >= 1/n. *)
           let pred = Array.make (Array.length truth) 0 in
           Metrics.purity ~truth ~pred >= 1.0 /. float_of_int (Array.length truth)));
  ]

let () =
  Alcotest.run "agglomerative"
    [
      ( "clustering",
        [
          Alcotest.test_case "recovers two styles" `Quick test_recovers_two_styles;
          Alcotest.test_case "all linkages" `Quick test_all_linkages_run;
          Alcotest.test_case "k = n" `Quick test_k_equals_n;
          Alcotest.test_case "k = 1" `Quick test_k_one;
          Alcotest.test_case "invalid k" `Quick test_invalid_k;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "purity" `Quick test_purity;
          Alcotest.test_case "NMI" `Quick test_nmi;
          Alcotest.test_case "NMI independent" `Quick test_nmi_independent_near_zero;
        ] );
      ("property", qcheck_tests);
    ]
