(* Tests for the edit-distance baseline. *)

let alpha = Alphabet.lowercase
let enc = Sequence.of_string alpha

let test_known_values () =
  Alcotest.(check int) "identical" 0 (Edit_distance.distance (enc "kitten") (enc "kitten"));
  Alcotest.(check int) "kitten/sitting" 3 (Edit_distance.distance (enc "kitten") (enc "sitting"));
  Alcotest.(check int) "empty vs abc" 3 (Edit_distance.distance [||] (enc "abc"));
  Alcotest.(check int) "abc vs empty" 3 (Edit_distance.distance (enc "abc") [||]);
  Alcotest.(check int) "both empty" 0 (Edit_distance.distance [||] [||]);
  Alcotest.(check int) "single sub" 1 (Edit_distance.distance (enc "abc") (enc "axc"))

let test_paper_footnote_example () =
  (* Paper footnote 1: ED(aaaabbb, bbbaaaa) = 6 = ED(aaaabbb, abcdefg) —
     the global-alignment weakness motivating the whole work. *)
  let d1 = Edit_distance.distance (enc "aaaabbb") (enc "bbbaaaa") in
  let d2 = Edit_distance.distance (enc "aaaabbb") (enc "abcdefg") in
  Alcotest.(check int) "rearranged costs 6" 6 d1;
  Alcotest.(check int) "unrelated also costs 6" 6 d2

let test_banded_matches_exact_within_band () =
  let a = enc "abcdefghij" and b = enc "abzdefqhij" in
  Alcotest.(check int) "banded equals exact" (Edit_distance.distance a b)
    (Edit_distance.distance_banded ~band:5 a b)

let test_banded_length_gap () =
  let a = enc "aaaaaaaaaa" and b = enc "aa" in
  Alcotest.(check int) "gap beyond band falls back to max length" 10
    (Edit_distance.distance_banded ~band:2 a b)

let test_normalized () =
  Alcotest.(check (float 1e-9)) "identical" 0.0 (Edit_distance.normalized (enc "abc") (enc "abc"));
  Alcotest.(check (float 1e-9)) "empty pair" 0.0 (Edit_distance.normalized [||] [||]);
  Alcotest.(check (float 1e-9)) "disjoint" 1.0 (Edit_distance.normalized (enc "aaa") (enc "bbb"))

let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 0 30) (Gen.char_range 'a' 'd'))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"identity" ~count:200 seq_gen (fun s ->
           Edit_distance.distance (enc s) (enc s) = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"symmetry" ~count:200 (QCheck.pair seq_gen seq_gen)
         (fun (a, b) -> Edit_distance.distance (enc a) (enc b) = Edit_distance.distance (enc b) (enc a)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"triangle inequality" ~count:200
         (QCheck.triple seq_gen seq_gen seq_gen)
         (fun (a, b, c) ->
           Edit_distance.distance (enc a) (enc c)
           <= Edit_distance.distance (enc a) (enc b) + Edit_distance.distance (enc b) (enc c)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bounded by max length" ~count:200 (QCheck.pair seq_gen seq_gen)
         (fun (a, b) ->
           let d = Edit_distance.distance (enc a) (enc b) in
           d >= abs (String.length a - String.length b)
           && d <= max (String.length a) (String.length b)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"wide band equals exact" ~count:200 (QCheck.pair seq_gen seq_gen)
         (fun (a, b) ->
           Edit_distance.distance_banded ~band:40 (enc a) (enc b)
           = Edit_distance.distance (enc a) (enc b)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"banded is admissible (never underestimates... bounded below by exact)"
         ~count:200
         (QCheck.pair (QCheck.pair seq_gen seq_gen) (QCheck.int_range 0 10))
         (fun ((a, b), band) ->
           Edit_distance.distance_banded ~band (enc a) (enc b)
           >= Edit_distance.distance (enc a) (enc b)));
  ]

let () =
  Alcotest.run "edit-distance"
    [
      ( "unit",
        [
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "paper footnote example" `Quick test_paper_footnote_example;
          Alcotest.test_case "banded exact within band" `Quick test_banded_matches_exact_within_band;
          Alcotest.test_case "banded length gap" `Quick test_banded_length_gap;
          Alcotest.test_case "normalized" `Quick test_normalized;
        ] );
      ("property", qcheck_tests);
    ]
