(* Tests for Matching and Metrics. *)

let test_majority_map () =
  let truth = [| 0; 0; 0; 1; 1; 1; -1 |] in
  let pred = [| 5; 5; 5; 9; 9; 5; 9 |] in
  let map = Matching.majority_map ~truth ~pred in
  Alcotest.(check int) "cluster 5 -> class 0" 0 (Matching.class_of_cluster map 5);
  Alcotest.(check int) "cluster 9 -> class 1" 1 (Matching.class_of_cluster map 9);
  Alcotest.(check int) "unknown cluster -> -1" (-1) (Matching.class_of_cluster map 77)

let test_majority_prefers_real_classes () =
  (* A cluster dominated by outliers still maps to the best real class. *)
  let truth = [| -1; -1; -1; 2 |] in
  let pred = [| 0; 0; 0; 0 |] in
  let map = Matching.majority_map ~truth ~pred in
  Alcotest.(check int) "outliers don't win majority" 2 (Matching.class_of_cluster map 0)

let test_majority_all_outlier_cluster () =
  let truth = [| -1; -1 |] in
  let pred = [| 3; 3 |] in
  let map = Matching.majority_map ~truth ~pred in
  Alcotest.(check int) "pure-outlier cluster maps to -1" (-1) (Matching.class_of_cluster map 3)

let test_relabel () =
  let truth = [| 0; 0; 1; 1; -1 |] in
  let pred = [| 7; 7; 8; 8; -1 |] in
  Alcotest.(check (array int)) "relabeled" [| 0; 0; 1; 1; -1 |] (Matching.relabel ~truth ~pred)

let test_per_class_paper_definition () =
  (* F = {0,1,2} (class 0 members), F' = {0,1,3}: precision = recall = 2/3. *)
  let truth = [| 0; 0; 0; 1; 1; 1 |] in
  let pred_class = [| 0; 0; 1; 0; 1; 1 |] in
  let prs = Metrics.per_class ~truth ~pred_class in
  let pr0 = List.assoc 0 prs in
  Alcotest.(check (float 1e-9)) "precision class 0" (2.0 /. 3.0) pr0.precision;
  Alcotest.(check (float 1e-9)) "recall class 0" (2.0 /. 3.0) pr0.recall;
  Alcotest.(check int) "tp" 2 pr0.tp;
  Alcotest.(check int) "fp" 1 pr0.fp;
  Alcotest.(check int) "fn" 1 pr0.fn

let test_accuracy () =
  let truth = [| 0; 0; 1; 1; -1 |] in
  let pred_class = [| 0; 1; 1; -1; 0 |] in
  (* Of the 4 non-outlier sequences: correct = {0, 2}. The outlier row is
     excluded from the denominator. *)
  Alcotest.(check (float 1e-9)) "accuracy" 0.5 (Metrics.accuracy ~truth ~pred_class)

let test_accuracy_unclustered_counts_wrong () =
  let truth = [| 0; 0 |] in
  let pred_class = [| -1; -1 |] in
  Alcotest.(check (float 1e-9)) "all unclustered = 0" 0.0 (Metrics.accuracy ~truth ~pred_class)

let test_macro_averages () =
  let truth = [| 0; 0; 1; 1 |] in
  let pred_class = [| 0; 0; 1; 0 |] in
  let prs = Metrics.per_class ~truth ~pred_class in
  (* class 0: p = 2/3, r = 1; class 1: p = 1, r = 1/2. *)
  Alcotest.(check (float 1e-9)) "macro precision" ((2.0 /. 3.0 +. 1.0) /. 2.0)
    (Metrics.macro_precision prs);
  Alcotest.(check (float 1e-9)) "macro recall" 0.75 (Metrics.macro_recall prs)

let test_outlier_detection () =
  let truth = [| -1; -1; 0; 0 |] in
  let pred_class = [| -1; 0; -1; 0 |] in
  let d = Metrics.outlier_detection ~truth ~pred_class in
  Alcotest.(check int) "tp" 1 d.tp;
  Alcotest.(check int) "fp" 1 d.fp;
  Alcotest.(check int) "fn" 1 d.fn;
  Alcotest.(check (float 1e-9)) "precision" 0.5 d.precision;
  Alcotest.(check (float 1e-9)) "recall" 0.5 d.recall

let test_ari_identical () =
  let l = [| 0; 0; 1; 1; 2; 2 |] in
  Alcotest.(check (float 1e-9)) "identical = 1" 1.0 (Metrics.adjusted_rand_index ~truth:l ~pred:l)

let test_ari_renaming_invariant () =
  let truth = [| 0; 0; 1; 1; 2; 2 |] in
  let pred = [| 9; 9; 4; 4; 7; 7 |] in
  Alcotest.(check (float 1e-9)) "renamed = 1" 1.0 (Metrics.adjusted_rand_index ~truth ~pred)

let test_ari_single_cluster_vs_split () =
  let truth = [| 0; 0; 0; 1; 1; 1 |] in
  let pred = [| 0; 0; 0; 0; 0; 0 |] in
  let ari = Metrics.adjusted_rand_index ~truth ~pred in
  Alcotest.(check bool) "degenerate clustering scores ~ 0" true (Float.abs ari < 0.2)

let test_ari_random_near_zero () =
  let rng = Rng.create 42 in
  let n = 2000 in
  let truth = Array.init n (fun _ -> Rng.int rng 4) in
  let pred = Array.init n (fun _ -> Rng.int rng 4) in
  let ari = Metrics.adjusted_rand_index ~truth ~pred in
  Alcotest.(check bool) (Printf.sprintf "independent ~ 0 (got %.4f)" ari) true (Float.abs ari < 0.05)

let test_confusion () =
  let truth = [| 0; 0; 1; -1 |] in
  let pred_class = [| 0; 1; 1; -1 |] in
  let c = Metrics.confusion ~truth ~pred_class in
  Alcotest.(check int) "cells" 4 (List.length c);
  Alcotest.(check int) "(0,0)" 1 (List.assoc (0, 0) c);
  Alcotest.(check int) "(0,1)" 1 (List.assoc (0, 1) c);
  Alcotest.(check int) "(1,1)" 1 (List.assoc (1, 1) c);
  Alcotest.(check int) "(-1,-1)" 1 (List.assoc (-1, -1) c);
  Alcotest.(check int) "total preserved" 4 (List.fold_left (fun a (_, v) -> a + v) 0 c)

let test_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Metrics: length mismatch") (fun () ->
      ignore (Metrics.accuracy ~truth:[| 0 |] ~pred_class:[| 0; 1 |]))

let labels_gen n_classes =
  QCheck.(list_of_size (Gen.int_range 2 60) (int_range (-1) (n_classes - 1)))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"precision/recall within [0,1]" ~count:300
         (QCheck.pair (labels_gen 4) (labels_gen 4))
         (fun (t, p) ->
           let n = min (List.length t) (List.length p) in
           let truth = Array.of_list (List.filteri (fun i _ -> i < n) t) in
           let pred = Array.of_list (List.filteri (fun i _ -> i < n) p) in
           List.for_all
             (fun (_, (pr : Metrics.pr)) ->
               pr.precision >= 0.0 && pr.precision <= 1.0 && pr.recall >= 0.0 && pr.recall <= 1.0)
             (Metrics.per_class ~truth ~pred_class:pred)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ARI of identical labeling is 1" ~count:300 (labels_gen 5)
         (fun l ->
           let a = Array.of_list l in
           Array.length a < 2
           || Float.abs (Metrics.adjusted_rand_index ~truth:a ~pred:a -. 1.0) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ARI symmetric" ~count:300
         (QCheck.pair (labels_gen 4) (labels_gen 4))
         (fun (t, p) ->
           let n = min (List.length t) (List.length p) in
           if n < 2 then true
           else begin
             let a = Array.of_list (List.filteri (fun i _ -> i < n) t) in
             let b = Array.of_list (List.filteri (fun i _ -> i < n) p) in
             Float.abs
               (Metrics.adjusted_rand_index ~truth:a ~pred:b
               -. Metrics.adjusted_rand_index ~truth:b ~pred:a)
             < 1e-9
           end));
  ]

let () =
  Alcotest.run "eval"
    [
      ( "matching",
        [
          Alcotest.test_case "majority map" `Quick test_majority_map;
          Alcotest.test_case "prefers real classes" `Quick test_majority_prefers_real_classes;
          Alcotest.test_case "all-outlier cluster" `Quick test_majority_all_outlier_cluster;
          Alcotest.test_case "relabel" `Quick test_relabel;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "per-class (paper defn)" `Quick test_per_class_paper_definition;
          Alcotest.test_case "accuracy" `Quick test_accuracy;
          Alcotest.test_case "unclustered wrong" `Quick test_accuracy_unclustered_counts_wrong;
          Alcotest.test_case "macro averages" `Quick test_macro_averages;
          Alcotest.test_case "outlier detection" `Quick test_outlier_detection;
          Alcotest.test_case "ARI identical" `Quick test_ari_identical;
          Alcotest.test_case "ARI renaming" `Quick test_ari_renaming_invariant;
          Alcotest.test_case "ARI degenerate" `Quick test_ari_single_cluster_vs_split;
          Alcotest.test_case "ARI independent" `Quick test_ari_random_near_zero;
          Alcotest.test_case "confusion" `Quick test_confusion;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
        ] );
      ("property", qcheck_tests);
    ]
