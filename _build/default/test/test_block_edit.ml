(* Tests for the greedy block-edit distance (EDBO baseline). *)

let alpha = Alphabet.lowercase
let enc = Sequence.of_string alpha

let test_identical_is_one_block () =
  (* A perfect copy is covered by a single block move. *)
  Alcotest.(check int) "one block" 1 (Block_edit.distance (enc "abcdefgh") (enc "abcdefgh"))

let test_block_rearrangement_is_cheap () =
  (* The paper's motivating example: aaaabbb vs bbbaaaa is just two block
     moves — far cheaper than its edit distance of 6. *)
  let d = Block_edit.distance (enc "aaaabbb") (enc "bbbaaaa") in
  Alcotest.(check int) "two blocks" 2 d;
  Alcotest.(check bool) "cheaper than plain ED" true
    (d < Edit_distance.distance (enc "aaaabbb") (enc "bbbaaaa"))

let test_unrelated_pays_per_symbol () =
  (* No common substring of length >= 3: every symbol is uncovered. *)
  let d = Block_edit.distance (enc "aaaa") (enc "bbbb") in
  Alcotest.(check int) "all symbols uncovered" 8 d

let test_min_block_effect () =
  (* With a large min_block, short shared runs no longer count. *)
  let a = enc "abcxyz" and b = enc "xyzabc" in
  let small = Block_edit.distance ~min_block:3 a b in
  let large = Block_edit.distance ~min_block:5 a b in
  Alcotest.(check int) "two 3-blocks" 2 small;
  Alcotest.(check int) "nothing covered" 12 large

let test_block_cost_scales () =
  let a = enc "abcdefgh" and b = enc "abcdefgh" in
  Alcotest.(check int) "block cost 3" 3 (Block_edit.distance ~block_cost:3 a b)

let test_empty () =
  Alcotest.(check int) "both empty" 0 (Block_edit.distance [||] [||]);
  Alcotest.(check int) "one empty" 4 (Block_edit.distance [||] (enc "abcd"))

let test_normalized_bounds () =
  Alcotest.(check (float 1e-9)) "empty pair" 0.0 (Block_edit.normalized [||] [||]);
  let v = Block_edit.normalized (enc "aaaa") (enc "bbbb") in
  Alcotest.(check (float 1e-9)) "nothing shared = 1" 1.0 v

let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 0 25) (Gen.char_range 'a' 'c'))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"symmetry" ~count:200 (QCheck.pair seq_gen seq_gen)
         (fun (a, b) -> Block_edit.distance (enc a) (enc b) = Block_edit.distance (enc b) (enc a)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bounded by total length" ~count:200 (QCheck.pair seq_gen seq_gen)
         (fun (a, b) ->
           let d = Block_edit.distance (enc a) (enc b) in
           d >= 0 && d <= String.length a + String.length b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"self distance minimal" ~count:200 seq_gen (fun s ->
           let d = Block_edit.distance (enc s) (enc s) in
           if String.length s = 0 then d = 0
           else if String.length s < 3 then d = 2 * String.length s
           else d = 1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"block rearrangement never beaten by ED on swapped halves" ~count:100
         (QCheck.pair
            (QCheck.string_gen_of_size (QCheck.Gen.int_range 4 12) (QCheck.Gen.char_range 'a' 'b'))
            (QCheck.string_gen_of_size (QCheck.Gen.int_range 4 12) (QCheck.Gen.char_range 'c' 'd')))
         (fun (x, y) ->
           (* For s = x·y vs y·x, block edit pays <= 2 blocks, ED pays at
              least min(|x|,|y|) single-symbol operations. *)
           let a = enc (x ^ y) and b = enc (y ^ x) in
           Block_edit.distance a b <= 2
           && Edit_distance.distance a b >= min (String.length x) (String.length y)));
  ]

let () =
  Alcotest.run "block-edit"
    [
      ( "unit",
        [
          Alcotest.test_case "identical" `Quick test_identical_is_one_block;
          Alcotest.test_case "rearrangement cheap" `Quick test_block_rearrangement_is_cheap;
          Alcotest.test_case "unrelated" `Quick test_unrelated_pays_per_symbol;
          Alcotest.test_case "min_block" `Quick test_min_block_effect;
          Alcotest.test_case "block cost" `Quick test_block_cost_scales;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "normalized" `Quick test_normalized_bounds;
        ] );
      ("property", qcheck_tests);
    ]
