(* Unit and property tests for the SplitMix64 PRNG. *)

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_copy_independent () =
  let a = Rng.create 5 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Rng.bits64 a) (Rng.bits64 b)

let test_split_diverges () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split stream differs" true (xa <> xb)

let test_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= x < 17" true (x >= 0 && x < 17)
  done

let test_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_bounds () =
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 3.5 in
    Alcotest.(check bool) "0 <= x < 3.5" true (x >= 0.0 && x < 3.5)
  done

let test_int_coverage () =
  (* Every residue of a small bound appears over a long run. *)
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_shuffle_is_permutation () =
  let rng = Rng.create 4 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 5 in
  let s = Rng.sample_without_replacement rng ~k:10 ~n:20 in
  Alcotest.(check int) "k elements" 10 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length distinct);
  Array.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20)) s

let test_sample_full () =
  let rng = Rng.create 6 in
  let s = Rng.sample_without_replacement rng ~k:7 ~n:7 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k = n is a permutation" (Array.init 7 Fun.id) sorted

let test_categorical () =
  let rng = Rng.create 7 in
  (* Mass concentrated on index 2. *)
  let counts = Array.make 4 0 in
  for _ = 1 to 2000 do
    let i = Rng.categorical rng [| 0.01; 0.01; 10.0; 0.01 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "dominant index wins" true (counts.(2) > 1800)

let test_categorical_zero_weight () =
  let rng = Rng.create 8 in
  for _ = 1 to 500 do
    let i = Rng.categorical rng [| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "only positive-weight index" 1 i
  done

let test_dirichlet_sums_to_one () =
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let v = Rng.dirichlet_like rng ~concentration:0.3 11 in
    let s = Array.fold_left ( +. ) 0.0 v in
    Alcotest.(check (float 1e-9)) "sums to 1" 1.0 s;
    Array.iter (fun x -> Alcotest.(check bool) "non-negative" true (x >= 0.0)) v
  done

let test_gaussian_moments () =
  let rng = Rng.create 10 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  Alcotest.(check (float 0.05)) "mean ~ 0" 0.0 (Stats.mean xs);
  Alcotest.(check (float 0.05)) "stddev ~ 1" 1.0 (Stats.stddev xs)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int always within bound" ~count:500
         QCheck.(pair small_int (int_range 1 1000))
         (fun (seed, bound) ->
           let rng = Rng.create seed in
           let x = Rng.int rng bound in
           x >= 0 && x < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
         QCheck.(pair small_int (list small_int))
         (fun (seed, l) ->
           let rng = Rng.create seed in
           let a = Array.of_list l in
           Rng.shuffle rng a;
           List.sort compare (Array.to_list a) = List.sort compare l));
  ]

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "int coverage" `Quick test_int_coverage;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample full" `Quick test_sample_full;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "categorical zero weight" `Quick test_categorical_zero_weight;
          Alcotest.test_case "dirichlet sums to 1" `Quick test_dirichlet_sums_to_one;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        ] );
      ("property", qcheck_tests);
    ]
