test/test_pst.ml: Alcotest Alphabet Array Buffer Char Float Format Gen List Printf Pruning Pst QCheck QCheck_alcotest Sequence String
