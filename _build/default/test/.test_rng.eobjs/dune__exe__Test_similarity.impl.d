test/test_similarity.ml: Alcotest Alphabet Array Float Gen List Pst QCheck QCheck_alcotest Sequence Similarity
