test/test_agglomerative.ml: Agglomerative Alcotest Alphabet Array Char Gen List Metrics Printf QCheck QCheck_alcotest Rng Seq_database String
