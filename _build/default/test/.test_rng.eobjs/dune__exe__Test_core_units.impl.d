test/test_core_units.ml: Alcotest Alphabet Array Cluster Fun List Order Pst Rng Sequence Similarity Threshold
