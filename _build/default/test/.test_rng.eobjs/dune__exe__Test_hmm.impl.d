test/test_hmm.ml: Alcotest Array Float Gen Hmm List Printf QCheck QCheck_alcotest Rng
