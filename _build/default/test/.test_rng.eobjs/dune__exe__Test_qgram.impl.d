test/test_qgram.ml: Alcotest Alphabet Array Float Gen List QCheck QCheck_alcotest Qgram Rng Sequence String
