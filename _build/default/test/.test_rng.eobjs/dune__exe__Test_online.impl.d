test/test_online.ml: Alcotest Array Cluseq Hashtbl List Online Option Printf Rng Seq_database Workload
