test/test_cluseq.ml: Alcotest Alphabet Array Cluseq Float Fun Gen List Matching Metrics Order Printf QCheck QCheck_alcotest Seq_database Workload
