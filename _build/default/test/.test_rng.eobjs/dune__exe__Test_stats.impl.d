test/test_stats.ml: Alcotest Array Float Gen Printf QCheck QCheck_alcotest Stats
