test/test_smallmap.ml: Alcotest Array Fun Hashtbl List Option QCheck QCheck_alcotest Smallmap
