test/test_block_edit.mli:
