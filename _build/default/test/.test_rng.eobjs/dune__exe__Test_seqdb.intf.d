test/test_seqdb.mli:
