test/test_bitset.ml: Alcotest Bitset Fun Int List QCheck QCheck_alcotest Set
