test/test_kmedoids.mli:
