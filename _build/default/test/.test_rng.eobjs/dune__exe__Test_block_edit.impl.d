test/test_block_edit.ml: Alcotest Alphabet Block_edit Edit_distance Gen QCheck QCheck_alcotest Sequence String
