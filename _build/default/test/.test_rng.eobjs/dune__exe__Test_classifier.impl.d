test/test_classifier.ml: Alcotest Alphabet Array Classifier Cluseq Filename Fun Hashtbl List Option Printf Pst Rng Seq_database Sequence Sys Workload
