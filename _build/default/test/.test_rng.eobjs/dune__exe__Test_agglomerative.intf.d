test/test_agglomerative.mli:
