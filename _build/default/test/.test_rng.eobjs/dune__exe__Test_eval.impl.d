test/test_eval.ml: Alcotest Array Float Gen List Matching Metrics Printf QCheck QCheck_alcotest Rng
