test/test_similarity.mli:
