test/test_seqdb.ml: Alcotest Alphabet Array Filename Float Fun Gen List QCheck QCheck_alcotest Seq_database Seq_io Sequence String Sys
