test/test_divergence.ml: Alcotest Alphabet Divergence Float Gen List Pst QCheck QCheck_alcotest Sequence
