test/test_synth.ml: Alcotest Alphabet Array Float Hashtbl Language_sim List Option Printf Protein_sim Pst_gen Qgram Rng Seq_database String Workload
