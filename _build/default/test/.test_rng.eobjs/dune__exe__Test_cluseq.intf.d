test/test_cluseq.mli:
