test/test_edit_distance.ml: Alcotest Alphabet Edit_distance Gen QCheck QCheck_alcotest Sequence String
