test/test_divergence.mli:
