test/test_histogram.ml: Alcotest Array Float Gen Histogram List Printf QCheck QCheck_alcotest
