test/test_smallmap.mli:
