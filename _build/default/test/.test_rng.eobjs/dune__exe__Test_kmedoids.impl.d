test/test_kmedoids.ml: Alcotest Array Float Kmedoids List Printf QCheck QCheck_alcotest Rng
