test/test_edit_distance.mli:
