(* Shared infrastructure for the experiment harness: evaluation wrappers
   and fixed-width table printing. *)

type scored = {
  labels : int array; (* hard labels in cluster-id space *)
  n_clusters : int;
  seconds : float;
  final_t : float;
  iterations : int;
}

let score_cluseq ?(config = Cluseq.default_config) db =
  let result, seconds = Timer.time (fun () -> Cluseq.run ~config db) in
  {
    labels = Cluseq.hard_labels result ~n:(Seq_database.n_sequences db);
    n_clusters = result.n_clusters;
    seconds;
    final_t = result.final_t;
    iterations = result.iterations;
  }

let accuracy ~truth labels =
  Metrics.accuracy ~truth ~pred_class:(Matching.relabel ~truth ~pred:labels)

let macro_pr ~truth labels =
  let pred_class = Matching.relabel ~truth ~pred:labels in
  let prs = Metrics.per_class ~truth ~pred_class in
  (Metrics.macro_precision prs, Metrics.macro_recall prs)

let pct x = 100.0 *. x

(* --- table printing -------------------------------------------------- *)

(* When set (via --csv DIR), every printed table is also written as a CSV
   file named after its experiment, for plotting the figures. *)
let csv_dir : string option ref = ref None
let current_experiment = ref "experiment"

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (!current_experiment ^ ".csv") in
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (String.concat "," (List.map csv_escape header) ^ "\n");
          List.iter
            (fun r -> output_string oc (String.concat "," (List.map csv_escape r) ^ "\n"))
            rows)

let hrule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let row widths cells =
  print_string "|";
  List.iter2 (fun w c -> Printf.printf " %-*s |" w c) widths cells;
  print_newline ()

let table ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) (String.length h) rows)
      header
  in
  hrule widths;
  row widths header;
  hrule widths;
  List.iter (row widths) rows;
  hrule widths;
  flush stdout;
  write_csv header rows

let note fmt = Printf.printf (fmt ^^ "%!")

(* Scale an integer dimension by the global --scale factor (>= 1 result). *)
let scaled scale n = max 1 (int_of_float (Float.round (float_of_int n *. scale)))
