bench/main.mli:
