bench/micro.ml: Analyze Array Bechamel Benchmark Block_edit Edit_distance Hashtbl Hmm Instance List Measure Printf Pst Qgram Rng Seq_database Similarity Staged Test Time Toolkit Workload
