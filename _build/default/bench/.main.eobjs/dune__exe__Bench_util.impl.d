bench/bench_util.ml: Cluseq Filename Float Fun List Matching Metrics Printf Seq_database String Sys Timer
