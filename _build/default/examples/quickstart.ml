(* Quickstart: cluster a handful of character sequences with CLUSEQ.

   Run with:  dune exec examples/quickstart.exe

   Three things are demonstrated:
   1. building a sequence database from strings;
   2. running CLUSEQ and reading the result;
   3. inspecting a cluster's probabilistic suffix tree directly. *)

let () =
  (* Two obvious "languages": ab-alternating sequences and c/d-heavy
     sequences, plus one junk outlier. *)
  let texts =
    [
      "abababababababababababababababab";
      "babababababababababababababababa";
      "abababbabababababababababababbab";
      "ababababababababaabababababababa";
      "cdcddcdccdcdcdcddcdcdccdcdcdcdcd";
      "dcdcdcdcddcdcdcdcdccdcdcdcdcdcdc";
      "cdcdcdccdcdcdcdcdcdcddcdcdcdccdc";
      "dccdcdcdcdcdcdcddcdcdcdcdccdcdcd";
      "axqzvnmkwpylrtgshfeubxqzvnmkwpyl";
    ]
  in
  let alphabet = Alphabet.of_char_range 'a' 'z' in
  let db = Seq_database.of_strings alphabet texts in
  Format.printf "database: %a@." Seq_database.pp db;

  (* Small data needs small statistical thresholds: the paper's c = 30 is
     calibrated for thousands of sequences. *)
  let config =
    {
      Cluseq.default_config with
      k_init = 2;
      significance = 4;
      min_residual = Some 2;
      t_init = 5.0;
      (* 18 sequence-cluster samples are far too few for the histogram
         valley heuristic; on toy data fix t instead. *)
      adjust_threshold = false;
      seed = 1;
    }
  in
  let result = Cluseq.run ~config db in
  Format.printf "found %d clusters in %d iterations (final t = %.3g)@."
    result.n_clusters result.iterations result.final_t;
  Array.iter
    (fun (id, members) ->
      Format.printf "  cluster %d: sequences %s@." id
        (String.concat ", " (Array.to_list (Array.map string_of_int members))))
    result.clusters;
  Format.printf "  outliers: %s@."
    (String.concat ", " (List.map string_of_int result.outliers));

  (* Peek inside the first cluster's model: what follows "ab"? The run
     hands back each cluster's probabilistic suffix tree directly. *)
  (match result.models with
  | [||] -> ()
  | models ->
      let id, pst = models.(0) in
      Format.printf "cluster %d PST: %d nodes over %d symbols@." id (Pst.n_nodes pst)
        (Pst.total_count pst);
      (match Pst.find_node pst (Sequence.of_string alphabet "ab") with
      | None -> Format.printf "  context \"ab\" not present@."
      | Some node ->
          let dist = Pst.next_distribution pst node in
          Format.printf "  P(next | \"ab\"): a=%.2f b=%.2f c=%.2f d=%.2f@." dist.(0)
            dist.(1) dist.(2) dist.(3));
      (* The Figure 1 view of the tree, two levels deep. *)
      Format.printf "%a" (fun fmt -> Pst.pp ~max_depth:2 ~min_count:3
        ~symbol:(fun fmt c -> Format.fprintf fmt "%s" (Alphabet.symbol alphabet c)) fmt) pst);

  (* Classify new sequences with the trained models. *)
  let clf = Classifier.of_result result db in
  List.iter
    (fun text ->
      let v = Classifier.classify clf (Sequence.of_string alphabet text) in
      match v.cluster with
      | Some c -> Format.printf "%S -> cluster %d (log SIM %.1f)@." text c v.log_sim
      | None -> Format.printf "%S -> outlier (log SIM %.1f)@." text v.log_sim)
    [ "ababababab"; "cdcdcddcdc"; "nqvxkwzjyr" ]
