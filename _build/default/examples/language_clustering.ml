(* Natural-language sentence clustering (paper Sec. 6.1, Table 4).

   Run with:  dune exec examples/language_clustering.exe

   Simulated English, Chinese-pinyin, and Japanese-romaji sentences (no
   spaces) plus Russian/German-flavored noise are clustered by CLUSEQ;
   per-language precision and recall are reported as in the paper's
   Table 4. The generators carry the letter statistics the paper calls
   out: "th"/"e" frequency for English, CV alternation for Japanese, and
   the pinyin syllable structure for Chinese. *)

let () =
  let params =
    { Language_sim.default_params with per_language = 150; n_noise = 25; seed = 9 }
  in
  let data = Language_sim.generate params in
  Format.printf "database: %a (3 languages + %d noise sentences)@." Seq_database.pp
    data.db params.n_noise;

  let config =
    {
      Cluseq.default_config with
      k_init = 3;
      significance = 20;
      min_residual = Some 10;
      t_init = 1.0005;
      max_depth = 6;
      seed = 2;
    }
  in
  let result, seconds = Timer.time (fun () -> Cluseq.run ~config data.db) in
  Format.printf "CLUSEQ: %d clusters after %d iterations, %.2f s@." result.n_clusters
    result.iterations seconds;

  let n = Seq_database.n_sequences data.db in
  let hard = Cluseq.hard_labels result ~n in
  let pred_class = Matching.relabel ~truth:data.labels ~pred:hard in
  let prs = Metrics.per_class ~truth:data.labels ~pred_class in
  Format.printf "@.%-10s %11s %8s@." "language" "precision%" "recall%";
  List.iter
    (fun (cls, (pr : Metrics.pr)) ->
      let name = List.nth [ "english"; "chinese"; "japanese" ] cls in
      Format.printf "%-10s %11.1f %8.1f@." name (100.0 *. pr.precision)
        (100.0 *. pr.recall))
    prs;
  let outl = Metrics.outlier_detection ~truth:data.labels ~pred_class in
  Format.printf "@.noise sentences kept out of clusters: recall %.1f%%@."
    (100.0 *. outl.recall)
