(* Outlier detection with the CLUSEQ similarity boundary.

   Run with:  dune exec examples/anomaly_detection.exe

   CLUSEQ separates clustered sequences from outliers with the similarity
   threshold t (paper Sec. 2: a sequence whose SIM to every cluster is
   below t is an outlier). This example uses that boundary as an anomaly
   detector: train on a workload of "normal" session-like sequences from a
   few behavioral modes, inject anomalies, and measure detection. *)

let () =
  let params =
    {
      Workload.default_params with
      n_sequences = 400;
      avg_length = 250;
      n_clusters = 4;
      contexts_per_cluster = 120;
      concentration = 0.15;
      outlier_fraction = 0.08;
      seed = 31;
    }
  in
  let data = Workload.generate params in
  Format.printf "workload: %a, %d injected anomalies@." Seq_database.pp data.db
    (Workload.outlier_count data);

  let config =
    {
      Cluseq.default_config with
      k_init = 2;
      significance = 8;
      min_residual = Some 8;
      t_init = 1.2;
      seed = 3;
    }
  in
  let result, seconds = Timer.time (fun () -> Cluseq.run ~config data.db) in
  Format.printf "CLUSEQ: %d behavioral modes found, final t = %.3g, %.2f s@."
    result.n_clusters result.final_t seconds;

  let n = Seq_database.n_sequences data.db in
  let hard = Cluseq.hard_labels result ~n in
  let pred_class = Matching.relabel ~truth:data.labels ~pred:hard in
  let det = Metrics.outlier_detection ~truth:data.labels ~pred_class in
  Format.printf "anomaly detection: precision %.1f%%  recall %.1f%%  (tp=%d fp=%d fn=%d)@."
    (100.0 *. det.precision) (100.0 *. det.recall) det.tp det.fp det.fn;

  (* Show the similarity margin for a few sequences of each kind. *)
  let lbg = Seq_database.log_background data.db in
  let clusters =
    Array.map
      (fun (id, members) ->
        let pst =
          Pst.create { (Pst.default_config ~alphabet_size:26) with significance = 8 }
        in
        Array.iter (fun i -> Pst.insert_sequence pst (Seq_database.get data.db i)) members;
        (id, pst))
      result.clusters
  in
  let best_logsim s =
    Array.fold_left
      (fun acc (_, pst) -> Float.max acc (Similarity.score pst ~log_background:lbg s).log_sim)
      neg_infinity clusters
  in
  Format.printf "@.sample similarity margins (log SIM of best cluster):@.";
  let shown_normal = ref 0 and shown_anom = ref 0 in
  Array.iteri
    (fun i label ->
      if (label >= 0 && !shown_normal < 3) || (label = -1 && !shown_anom < 3) then begin
        if label >= 0 then incr shown_normal else incr shown_anom;
        Format.printf "  seq %3d (%s): log SIM = %8.1f@." i
          (if label >= 0 then "normal " else "anomaly")
          (best_logsim (Seq_database.get data.db i))
      end)
    data.labels
