(* Streaming clustering of an event feed (Online module).

   Run with:  dune exec examples/streaming_logs.exe

   Sequences arrive one at a time, as in a live log pipeline. The stream
   starts with two behavioral modes; a third mode appears halfway through
   ("deployment changes the traffic"), and the online clusterer discovers
   it from its buffer without any restart. *)

let () =
  let base =
    {
      Workload.default_params with
      n_sequences = 600;
      avg_length = 250;
      n_clusters = 3;
      contexts_per_cluster = 120;
      concentration = 0.15;
      outlier_fraction = 0.0;
      seed = 51;
    }
  in
  let w = Workload.generate base in
  (* Phase 1: only modes 0 and 1 arrive; phase 2: all three. *)
  let phase1, phase2 = (ref [], ref []) in
  Seq_database.iteri
    (fun i s ->
      match w.labels.(i) with
      | 2 -> phase2 := s :: !phase2
      | _ ->
          if List.length !phase1 < 200 then phase1 := s :: !phase1
          else phase2 := s :: !phase2)
    w.db;

  let state =
    Online.create
      ~config:
        {
          Cluseq.default_config with
          k_init = 2;
          significance = 8;
          min_residual = Some 8;
          t_init = exp 10.0;
          max_iterations = 20;
        }
      ~mine_at:60 ~alphabet_size:26 ()
  in
  let report label =
    let st = Online.stats state in
    Format.printf
      "%-22s fed=%4d  live-assigned=%4d  clusters=%d  buffered=%3d  dropped=%d@." label
      st.fed st.assigned st.n_clusters st.buffered st.dropped_outliers
  in
  List.iter (fun s -> ignore (Online.feed state s)) (List.rev !phase1);
  report "after phase 1:";
  List.iter (fun s -> ignore (Online.feed state s)) (List.rev !phase2);
  ignore (Online.mine state);
  report "after phase 2 (+mode):";
  Format.printf "cluster sizes: %s@."
    (String.concat ", "
       (List.map (fun (id, n) -> Printf.sprintf "#%d=%d" id n) (Online.cluster_sizes state)));

  (* The late-appearing mode must be recognizable now. *)
  let held_out = Workload.resample w ~n_sequences:30 ~seed:52 in
  let hits = ref 0 and total = ref 0 in
  Seq_database.iteri
    (fun i s ->
      if held_out.labels.(i) = 2 then begin
        incr total;
        if Online.classify state s <> None then incr hits
      end)
    held_out.db;
  Format.printf "late mode recognized on held-out data: %d/%d@." !hits !total
