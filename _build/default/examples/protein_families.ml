(* Protein-family clustering, the paper's flagship experiment (Sec. 6.1,
   Tables 2 and 3) at example scale.

   Run with:  dune exec examples/protein_families.exe

   A simulated protein database (shared amino-acid chemistry, family
   identity carried by conserved motifs — see Protein_sim) is clustered by
   CLUSEQ without telling it the number of families, then scored per family
   exactly as the paper does: precision |F ∩ F'|/|F'|, recall |F ∩ F'|/|F|. *)

let () =
  let params =
    { Protein_sim.default_params with n_families = 10; total_sequences = 300; seed = 23 }
  in
  let data = Protein_sim.generate params in
  Format.printf "database: %a (%d families, sizes %s)@." Seq_database.pp data.db
    params.n_families
    (String.concat "," (Array.to_list (Array.map string_of_int data.family_sizes)));

  let config =
    {
      Cluseq.default_config with
      k_init = 3;
      significance = 5;
      min_residual = Some 5;
      t_init = 1.0005;
      seed = 1;
    }
  in
  let result, seconds = Timer.time (fun () -> Cluseq.run ~config data.db) in
  Format.printf "CLUSEQ: %d clusters after %d iterations, final t = %.3g, %.2f s@."
    result.n_clusters result.iterations result.final_t seconds;

  let n = Seq_database.n_sequences data.db in
  let hard = Cluseq.hard_labels result ~n in
  let pred_class = Matching.relabel ~truth:data.labels ~pred:hard in
  Format.printf "correctly labeled: %.1f%%@."
    (100.0 *. Metrics.accuracy ~truth:data.labels ~pred_class);

  (* Per-family table in the style of the paper's Table 3. *)
  Format.printf "@.%-8s %6s %11s %8s@." "family" "size" "precision%" "recall%";
  List.iter
    (fun (cls, (pr : Metrics.pr)) ->
      Format.printf "%-8d %6d %11.1f %8.1f@." cls data.family_sizes.(cls)
        (100.0 *. pr.precision) (100.0 *. pr.recall))
    (Metrics.per_class ~truth:data.labels ~pred_class)
