examples/weblog_sessions.ml: Alphabet Array Buffer Cluseq Format List Matching Metrics Rng Seq_database String Timer
