examples/quickstart.ml: Alphabet Array Classifier Cluseq Format List Pst Seq_database Sequence String
