examples/protein_families.ml: Array Cluseq Format List Matching Metrics Protein_sim Seq_database String Timer
