examples/anomaly_detection.ml: Array Cluseq Float Format Matching Metrics Pst Seq_database Similarity Timer Workload
