examples/language_clustering.mli:
