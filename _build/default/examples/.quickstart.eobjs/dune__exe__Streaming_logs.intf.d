examples/streaming_logs.mli:
