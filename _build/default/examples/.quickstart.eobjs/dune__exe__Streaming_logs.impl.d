examples/streaming_logs.ml: Array Cluseq Format List Online Printf Seq_database String Workload
