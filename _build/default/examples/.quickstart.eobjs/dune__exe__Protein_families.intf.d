examples/protein_families.mli:
