examples/language_clustering.ml: Cluseq Format Language_sim List Matching Metrics Seq_database Timer
