examples/quickstart.mli:
