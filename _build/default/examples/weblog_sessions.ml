(* Clustering web access-log sessions — one of the sequence-data domains
   the paper's introduction motivates ("web usage data, system traces").

   Run with:  dune exec examples/weblog_sessions.exe

   Each session is the sequence of page types a visitor navigates
   (h = home, c = catalog, p = product, b = basket, k = checkout,
   s = search, a = account, f = faq, l = login, o = logout). Three
   behavioral modes generate the traffic — browsers, buyers, and account
   managers — plus a sliver of crawler-like noise hitting pages uniformly.
   CLUSEQ recovers the modes and isolates the crawlers without being told
   how many modes exist. *)

let page_alphabet = Alphabet.of_string "hcpbksaflo"

type mode = { name : string; start : char; moves : (char * (char * float) list) list }

let browser =
  {
    name = "browsers";
    start = 'h';
    moves =
      [
        ('h', [ ('c', 0.5); ('s', 0.4); ('h', 0.1) ]);
        ('c', [ ('p', 0.7); ('c', 0.2); ('h', 0.1) ]);
        ('p', [ ('c', 0.5); ('p', 0.3); ('s', 0.2) ]);
        ('s', [ ('p', 0.6); ('s', 0.3); ('h', 0.1) ]);
      ];
  }

let buyer =
  {
    name = "buyers";
    start = 's';
    moves =
      [
        ('s', [ ('p', 0.8); ('s', 0.2) ]);
        ('p', [ ('b', 0.6); ('p', 0.3); ('s', 0.1) ]);
        ('b', [ ('k', 0.5); ('p', 0.3); ('b', 0.2) ]);
        ('k', [ ('k', 0.3); ('b', 0.2); ('p', 0.5) ]);
        ('h', [ ('s', 1.0) ]);
      ];
  }

let account_manager =
  {
    name = "account";
    start = 'l';
    moves =
      [
        ('l', [ ('a', 0.9); ('f', 0.1) ]);
        ('a', [ ('a', 0.4); ('f', 0.3); ('o', 0.3) ]);
        ('f', [ ('a', 0.6); ('f', 0.2); ('o', 0.2) ]);
        ('o', [ ('l', 0.6); ('a', 0.4) ]);
      ];
  }

let step rng mode page =
  match List.assoc_opt page mode.moves with
  | None -> mode.start
  | Some choices ->
      let weights = Array.of_list (List.map snd choices) in
      fst (List.nth choices (Rng.categorical rng weights))

let session rng mode len =
  let buf = Buffer.create len in
  let page = ref mode.start in
  for _ = 1 to len do
    Buffer.add_char buf !page;
    page := step rng mode !page
  done;
  Buffer.contents buf

let crawler rng len =
  String.init len (fun _ -> "hcpbksaflo".[Rng.int rng 10])

let () =
  let rng = Rng.create 101 in
  let modes = [| browser; buyer; account_manager |] in
  let rows = ref [] in
  for label = 0 to 2 do
    for _ = 1 to 120 do
      let len = 80 + Rng.int rng 120 in
      rows := (label, session rng modes.(label) len) :: !rows
    done
  done;
  for _ = 1 to 20 do
    rows := (-1, crawler rng (80 + Rng.int rng 120)) :: !rows
  done;
  let rows = Array.of_list !rows in
  Rng.shuffle rng rows;
  let db =
    Seq_database.create page_alphabet
      (Array.map (fun (_, s) -> Alphabet.encode_string page_alphabet s) rows)
  in
  let truth = Array.map fst rows in
  Format.printf "sessions: %a (3 behavioral modes + 20 crawlers)@." Seq_database.pp db;

  let config =
    {
      Cluseq.default_config with
      k_init = 3;
      significance = 10;
      min_residual = Some 10;
      max_depth = 5;
      t_init = 1.2;
      seed = 4;
    }
  in
  let result, seconds = Timer.time (fun () -> Cluseq.run ~config db) in
  Format.printf "CLUSEQ: %d modes found in %d iterations (%.2f s)@." result.n_clusters
    result.iterations seconds;

  let hard = Cluseq.hard_labels result ~n:(Seq_database.n_sequences db) in
  let pred_class = Matching.relabel ~truth ~pred:hard in
  Format.printf "accuracy: %.1f%%  ARI: %.3f@."
    (100.0 *. Metrics.accuracy ~truth ~pred_class)
    (Metrics.adjusted_rand_index ~truth ~pred:hard);
  List.iter
    (fun (cls, (pr : Metrics.pr)) ->
      Format.printf "  %-10s precision %5.1f%%  recall %5.1f%%@."
        modes.(cls).name (100.0 *. pr.precision) (100.0 *. pr.recall))
    (Metrics.per_class ~truth ~pred_class);
  let det = Metrics.outlier_detection ~truth ~pred_class in
  Format.printf "  crawlers flagged as outliers: %.0f%% recall@." (100.0 *. det.recall)
