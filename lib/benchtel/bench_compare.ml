(* Regression verdicts between two BENCH_*.json reports. See mli. *)

type status = [ `Ok | `Regression | `Improvement | `Skipped | `Added | `Removed ]

type verdict = {
  experiment : string;
  metric : string;
  base : float;
  candidate : float;
  change_pct : float;
  status : status;
}

type direction = Lower_better | Higher_better

(* Noise floors: relative change below these base magnitudes is not
   evidence of anything. *)
let min_macro_seconds = 0.05
let min_micro_ns = 10.0
let min_words = 1e6

(* Census counts are deterministic for a fixed seed (pure arithmetic,
   no clock reads), so unlike timings they get a far tighter
   threshold: any drift beyond rounding is a real algorithmic
   change. *)
let census_threshold_pct = 1.0

(* Drift gauges are deterministic too (serial-state means, no clock
   reads), but they are ratios of float sums, so allow a little more
   slack than raw counts before calling a quality shift real. *)
let drift_threshold_pct = 5.0

let change_pct ~base ~candidate =
  if base = 0.0 then 0.0 else (candidate -. base) /. Float.abs base *. 100.0

let judge ~threshold ~direction ~min_base ~experiment ~metric ~base ~candidate =
  let pct = change_pct ~base ~candidate in
  let status =
    if Float.abs base < min_base then `Skipped
    else
      let exceeded = Float.abs pct > threshold in
      match direction with
      | Lower_better ->
          if candidate > base && exceeded then `Regression
          else if candidate < base && exceeded then `Improvement
          else `Ok
      | Higher_better ->
          if candidate < base && exceeded then `Regression
          else if candidate > base && exceeded then `Improvement
          else `Ok
  in
  { experiment; metric; base; candidate; change_pct = pct; status }

let compare_experiment ~threshold ~quality_threshold (b : Bench_report.experiment)
    (c : Bench_report.experiment) =
  let time metric base candidate =
    judge ~threshold ~direction:Lower_better ~min_base:min_macro_seconds
      ~experiment:b.id ~metric ~base ~candidate
  in
  let verdicts =
    [
      time "wall_s" b.wall_s c.wall_s;
      time "cluseq.seconds" b.cluseq_seconds c.cluseq_seconds;
    ]
    @ List.filter_map
        (fun (p, bs) ->
          Option.map (fun cs -> time ("phase." ^ p) bs cs) (List.assoc_opt p c.phases))
        b.phases
    @ [
        judge ~threshold ~direction:Higher_better ~min_base:1.0 ~experiment:b.id
          ~metric:"throughput.sequences_per_s"
          ~base:(Bench_report.sequences_per_s b)
          ~candidate:(Bench_report.sequences_per_s c);
        judge ~threshold ~direction:Lower_better ~min_base:min_words ~experiment:b.id
          ~metric:"gc.minor_words" ~base:b.gc.minor_words ~candidate:c.gc.minor_words;
        (* Allocation per scored symbol: the ratio the off-heap batched
           scorer ratchets. min_base 1.0 word/symbol skips runs with no
           recorded symbols (ratio 0) and truly allocation-free ones,
           where the ratio is all noise. *)
        judge ~threshold ~direction:Lower_better ~min_base:1.0 ~experiment:b.id
          ~metric:"gc.minor_words_per_symbol"
          ~base:(Bench_report.minor_words_per_symbol b)
          ~candidate:(Bench_report.minor_words_per_symbol c);
        judge ~threshold ~direction:Lower_better ~min_base:min_words ~experiment:b.id
          ~metric:"gc.major_words" ~base:b.gc.major_words ~candidate:c.gc.major_words;
        judge ~threshold ~direction:Lower_better ~min_base:min_words ~experiment:b.id
          ~metric:"gc.peak_heap_words"
          ~base:(float_of_int b.peak_heap_words)
          ~candidate:(float_of_int c.peak_heap_words);
        judge ~threshold ~direction:Lower_better ~min_base:100.0 ~experiment:b.id
          ~metric:"pst.nodes_built"
          ~base:(float_of_int b.pst_nodes_built)
          ~candidate:(float_of_int c.pst_nodes_built);
      ]
  in
  (* Throughput is only meaningful when enough clustering time was
     measured; tie it to the same macro noise floor. *)
  let verdicts =
    List.map
      (fun v ->
        if v.metric = "throughput.sequences_per_s" && b.cluseq_seconds < min_macro_seconds
        then { v with status = `Skipped }
        else v)
      verdicts
  in
  (* Scan census: skipped when the base predates schema v2 (all-zero
     census) so old baselines keep comparing. *)
  let census =
    if b.census.pairs_scored = 0 then []
    else
      let count metric base candidate =
        judge ~threshold:census_threshold_pct ~direction:Lower_better ~min_base:1.0
          ~experiment:b.id ~metric ~base:(float_of_int base)
          ~candidate:(float_of_int candidate)
      in
      [
        count "census.pairs_scored" b.census.pairs_scored c.census.pairs_scored;
        count "census.dirty_rescores" b.census.dirty_rescores c.census.dirty_rescores;
        judge ~threshold:census_threshold_pct ~direction:Lower_better ~min_base:0.01
          ~experiment:b.id ~metric:"census.wasted_pair_ratio"
          ~base:(Bench_report.wasted_pair_ratio b.census)
          ~candidate:(Bench_report.wasted_pair_ratio c.census);
        (* Candidate-index counters (also deterministic). Reuse and
           pruning falling means the index regressed; min_base skips
           them against pre-index baselines and on experiments where
           the index never engaged. *)
        judge ~threshold:census_threshold_pct ~direction:Higher_better ~min_base:1.0
          ~experiment:b.id ~metric:"census.pairs_reused"
          ~base:(float_of_int b.census.pairs_reused)
          ~candidate:(float_of_int c.census.pairs_reused);
        judge ~threshold:census_threshold_pct ~direction:Higher_better ~min_base:1.0
          ~experiment:b.id ~metric:"census.index_filtered"
          ~base:(float_of_int b.census.index_filtered)
          ~candidate:(float_of_int c.census.index_filtered);
      ]
  in
  (* Drift gauges: skipped when the base predates them (all-zero
     block) so old baselines keep comparing. Churn falling is calmer
     clustering; ages, inter-cluster separation, and member scores
     falling mean quality drifted down. *)
  let drift =
    if Bench_report.drift_is_empty b.drift then []
    else
      let gauge metric direction base candidate =
        judge ~threshold:drift_threshold_pct ~direction ~min_base:1e-6
          ~experiment:b.id ~metric ~base ~candidate
      in
      [
        gauge "drift.churn_rate" Lower_better b.drift.churn_rate c.drift.churn_rate;
        gauge "drift.cluster_age" Higher_better b.drift.cluster_age c.drift.cluster_age;
        gauge "drift.intercluster_kl" Higher_better b.drift.intercluster_kl
          c.drift.intercluster_kl;
        gauge "drift.member_score" Higher_better b.drift.member_score c.drift.member_score;
      ]
  in
  let quality =
    match (b.quality, c.quality) with
    | Some (bm, bv), Some (cm, cv) when bm = cm ->
        [
          judge ~threshold:quality_threshold ~direction:Higher_better ~min_base:0.0
            ~experiment:b.id ~metric:("quality." ^ bm) ~base:bv ~candidate:cv;
        ]
    | _ -> []
  in
  verdicts @ census @ drift @ quality

let compare_reports ?(threshold_pct = 25.0) ?(quality_threshold_pct = 2.0)
    ~(base : Bench_report.t) ~(candidate : Bench_report.t) () =
  if Float.abs (base.env.scale -. candidate.env.scale) > 1e-9 then
    Error
      (Printf.sprintf "incomparable runs: base --scale %g vs candidate --scale %g"
         base.env.scale candidate.env.scale)
  else if base.env.word_size <> candidate.env.word_size then
    Error
      (Printf.sprintf "incomparable runs: base word size %d vs candidate %d" base.env.word_size
         candidate.env.word_size)
  else if
    (* 0 = pre-parallel-engine file with no domains field: wildcard. *)
    base.env.domains > 0 && candidate.env.domains > 0
    && base.env.domains <> candidate.env.domains
  then
    Error
      (Printf.sprintf "incomparable runs: base --domains %d vs candidate --domains %d"
         base.env.domains candidate.env.domains)
  else if
    (* 0 = pre-shard-and-merge file with no shards field: wildcard. *)
    base.env.shards > 0 && candidate.env.shards > 0
    && base.env.shards <> candidate.env.shards
  then
    Error
      (Printf.sprintf "incomparable runs: base --shards %d vs candidate --shards %d"
         base.env.shards candidate.env.shards)
  else begin
    let acc = ref [] in
    let push v = acc := v :: !acc in
    let marker status experiment metric =
      { experiment; metric; base = 0.0; candidate = 0.0; change_pct = 0.0; status }
    in
    List.iter
      (fun (b : Bench_report.experiment) ->
        match List.find_opt (fun (c : Bench_report.experiment) -> c.id = b.id) candidate.experiments with
        | Some c ->
            List.iter push
              (compare_experiment ~threshold:threshold_pct
                 ~quality_threshold:quality_threshold_pct b c)
        | None -> push (marker `Removed b.id "experiment"))
      base.experiments;
    List.iter
      (fun (c : Bench_report.experiment) ->
        if not (List.exists (fun (b : Bench_report.experiment) -> b.id = c.id) base.experiments)
        then push (marker `Added c.id "experiment"))
      candidate.experiments;
    List.iter
      (fun (name, bns) ->
        match List.assoc_opt name candidate.micro with
        | Some cns ->
            push
              (judge ~threshold:threshold_pct ~direction:Lower_better ~min_base:min_micro_ns
                 ~experiment:"micro" ~metric:name ~base:bns ~candidate:cns)
        | None -> push (marker `Removed "micro" name))
      base.micro;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name base.micro) then push (marker `Added "micro" name))
      candidate.micro;
    Ok (List.rev !acc)
  end

let has_regression verdicts = List.exists (fun v -> v.status = `Regression) verdicts

let status_label : status -> string = function
  | `Ok -> "ok"
  | `Regression -> "REGRESSION"
  | `Improvement -> "improvement"
  | `Skipped -> "skipped"
  | `Added -> "added"
  | `Removed -> "removed"

let render verdicts =
  let b = Buffer.create 1024 in
  let count st = List.length (List.filter (fun v -> v.status = st) verdicts) in
  let interesting =
    List.filter (fun v -> match v.status with `Regression | `Improvement -> true | _ -> false) verdicts
  in
  let interesting =
    (* regressions first, then by experiment/metric for stable output *)
    List.stable_sort
      (fun a b ->
        match (a.status, b.status) with
        | `Regression, `Regression | `Improvement, `Improvement ->
            compare (a.experiment, a.metric) (b.experiment, b.metric)
        | `Regression, _ -> -1
        | _, `Regression -> 1
        | _ -> 0)
      interesting
  in
  if interesting <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-12s %-28s %14s %14s %9s  %s\n" "experiment" "metric" "base" "new"
         "change" "status");
    List.iter
      (fun v ->
        Buffer.add_string b
          (Printf.sprintf "%-12s %-28s %14.4g %14.4g %+8.1f%%  %s\n" v.experiment v.metric
             v.base v.candidate v.change_pct (status_label v.status)))
      interesting
  end;
  List.iter
    (fun v ->
      match v.status with
      | `Added -> Buffer.add_string b (Printf.sprintf "note: %s %s only in candidate\n" v.experiment v.metric)
      | `Removed -> Buffer.add_string b (Printf.sprintf "note: %s %s only in base\n" v.experiment v.metric)
      | _ -> ())
    verdicts;
  Buffer.add_string b
    (Printf.sprintf "%d metrics compared: %d ok, %d regressions, %d improvements, %d skipped\n"
       (List.length verdicts - count `Added - count `Removed)
       (count `Ok) (count `Regression) (count `Improvement) (count `Skipped));
  Buffer.contents b
