(** The canonical benchmark telemetry record ([BENCH_*.json]): schema
    types, capture from the live {!Obs} registry, and (de)serialization.

    One file is one benchmark run: an environment block (so numbers are
    attributable to a commit, machine, and [--scale]), one record per
    experiment (wall time, per-phase timings, throughput, GC/heap cost,
    PST model size, and the experiment's quality headline), and the
    Bechamel micro-benchmark results when they ran. [Bench_compare]
    consumes two of these files to produce a regression verdict. *)

val schema_name : string
(** ["cluseq-bench"] — the [schema] field of every file. *)

val schema_version : int
(** Current version (2 — v2 added the scan-census block, later joined
    by the drift block; readers default missing numerics to 0, so the
    drift addition did not need a bump). {!of_json} rejects other
    versions with a message telling the caller to regenerate the
    file. *)

type env = {
  label : string;  (** Run label, conventionally the [BENCH_<label>.json] stem. *)
  git_rev : string;  (** HEAD commit hash, or ["unknown"] outside a checkout. *)
  ocaml_version : string;
  scale : float;  (** The harness [--scale]; comparisons require equal scales. *)
  hostname : string;
  word_size : int;  (** [Sys.word_size] — GC word counts depend on it. *)
  domains : int;
      (** Domain-pool size the run used ([Par.default_domains]); 0 in
          files written before the parallel engine existed, which
          comparisons treat as a wildcard. *)
  shards : int;
      (** Shard count the harness ran with ([--shards]); 0 in files
          written before shard-and-merge existed, which comparisons
          treat as a wildcard. *)
}

type census = {
  pairs_scored : int;
      (** (sequence, cluster) similarity evaluations in reclustering,
          summed over all iterations of all runs. *)
  pairs_joined : int;  (** Evaluations that produced a join. *)
  dirty_rescores : int;  (** Serial rescores against mutated clusters. *)
  assignments_changed : int;  (** Membership changes, summed. *)
  pairs_reused : int;
      (** Matrix entries served from cached score columns instead of a
          fresh evaluation ([cluseq.scan.pairs_reused]); 0 in records
          written before the candidate index existed. *)
  index_candidates : int;
      (** Pairs the sketch gate admitted ([cluseq.index.candidates]);
          0 when the gate never activated. *)
  index_filtered : int;
      (** Pairs the sketch gate pruned ([cluseq.index.filtered]); 0
          when the gate never activated. *)
}
(** Scan-efficiency census (schema v2; the index fields are a minor
    addition that reads as 0 from older files): the [cluseq.scan.*]
    and [cluseq.index.*] counters of one experiment. Deterministic for
    a fixed seed and any domain count, so comparisons hold it to the
    tight count-metric noise floor. *)

val wasted_pair_ratio : census -> float
(** [(pairs_scored - pairs_joined) / pairs_scored]; 0 when nothing was
    scored. *)

type drift = {
  churn_rate : float;
      (** Mean per-iteration fraction of sequences whose assignment
          changed ([cluseq.drift.churn_rate]). Lower is calmer. *)
  cluster_age : float;
      (** Mean age (iterations since seeding) of live clusters at each
          iteration's end. Higher means clusters persist. *)
  intercluster_kl : float;
      (** Mean symmetric KL divergence over the sampled live-cluster
          panel — higher means better-separated models. *)
  member_score : float;
      (** Mean member log-similarity against the owning cluster —
          higher means tighter clusters. *)
}
(** Clustering-quality drift gauges: per-iteration means of the
    [cluseq.drift.*] histograms, summed over every run of the
    experiment. Derived from deterministic serial state, so identical
    at any domain count; files recorded before the gauges existed read
    as all-zero ({!drift_is_empty}) and comparisons skip them. *)

val drift_is_empty : drift -> bool
(** True when every gauge is exactly 0 — the block was recorded by a
    pre-drift harness (or with metrics disabled), not measured. *)

type experiment = {
  id : string;  (** Experiment id ([table2], [fig4], …). *)
  wall_s : float;  (** Monotonic wall time of the whole experiment. *)
  runs : int;  (** [Cluseq.run] invocations within it. *)
  iterations : int;  (** CLUSEQ iterations summed over those runs. *)
  cluseq_seconds : float;  (** Wall time inside [Cluseq.run], summed. *)
  phases : (string * float) list;
      (** Per-phase seconds summed over all iterations of all runs, in
          the order of [Cluseq.phase_timings] (generation, reclustering,
          consolidation, threshold, convergence). *)
  sequences : int;  (** Sequences clustered (summed over runs). *)
  symbols : int;  (** Symbols in those databases (summed over runs). *)
  gc : Obs.Resource.gc_delta;  (** GC work of the whole experiment. *)
  peak_heap_words : int;  (** Peak major-heap words during it. *)
  pst_nodes_built : int;  (** Final PST nodes, summed over runs. *)
  pst_est_words_built : int;  (** Estimated words of those trees. *)
  census : census;  (** Reclustering scan census (schema v2). *)
  drift : drift;  (** Clustering-quality drift gauges. *)
  quality : (string * float) option;
      (** The experiment's quality headline, e.g. [("accuracy", 0.82)] —
          recorded so a perf win can't silently trade away quality. *)
}

type t = { env : env; experiments : experiment list; micro : (string * float) list }

val sequences_per_s : experiment -> float
(** [sequences / cluseq_seconds], or 0 when no time was recorded. *)

val symbols_per_s : experiment -> float

val minor_words_per_symbol : experiment -> float
(** [gc.minor_words / symbols], or 0 when no symbols were recorded —
    the allocation cost of pushing one symbol through clustering, the
    number the off-heap batched scorer ratchets. Derived from existing
    schema-v2 fields, so it compares against old baselines. *)

val collect_env : label:string -> scale:float -> domains:int -> shards:int -> env
(** Probe the environment: git rev from [.git/HEAD] (following the ref,
    including packed refs), hostname from [/proc] or [$HOSTNAME]; both
    degrade to ["unknown"]. [domains] is the domain-pool size in effect
    for the run (pass [Par.default_domains ()]); [shards] the harness
    [--shards] setting (1 when unsharded). *)

val capture :
  id:string ->
  wall_s:float ->
  gc:Obs.Resource.gc_delta ->
  peak_heap_words:int ->
  quality:(string * float) option ->
  experiment
(** Snapshot one experiment from the live metrics registry — counters
    [cluseq.sequences]/[cluseq.symbols]/[cluseq.pst.*_built], the
    [cluseq.run_seconds] histogram, and the [cluseq.iter.*_seconds]
    phase histograms. The caller resets the registry between
    experiments so each capture reflects one experiment alone. *)

val to_json : t -> Bench_json.t

val of_json : Bench_json.t -> (t, string) result
(** Rejects documents whose [schema]/[version] do not match; missing
    numeric fields default to 0 (forward compatibility for added
    metrics), absent [quality] maps to [None]. *)

val write : string -> t -> unit
(** Serialize to a file (canonical two-space-indented JSON). *)

val read : string -> (t, string) result
(** Load and validate a file; IO and parse errors come back as
    [Error]. *)
