(** Per-metric regression verdicts between two benchmark telemetry
    reports — the perf regression gate.

    Comparison rules:
    - {b Time} (experiment wall, in-[Cluseq.run] seconds, per-phase
      seconds, micro ns/run): a regression when the candidate exceeds
      the base by more than [threshold_pct]. Base values below a noise
      floor (50 ms for macro timings, 10 ns for micro) are skipped —
      relative change of a tiny measurement is meaningless.
    - {b Throughput} (sequences/s, symbols/s): regression on a drop
      beyond [threshold_pct]; skipped under the same macro noise floor.
    - {b Allocation/heap} (minor+major words, peak heap words): a
      regression when growth exceeds [threshold_pct]; bases below 1M
      words are skipped.
    - {b Model size} (PST nodes built): deterministic given the seed,
      so compared with the plain [threshold_pct].
    - {b Scan census} (pairs scored, dirty rescores, wasted-pair
      ratio; schema v2): pure counts, bit-identical for a fixed seed
      at any domain count, so held to a tight 1% threshold — drift
      beyond rounding is a real algorithmic change. Skipped when the
      base report carries no census (all-zero block).
    - {b Drift gauges} ([drift.churn_rate] lower-better;
      [drift.cluster_age], [drift.intercluster_kl],
      [drift.member_score] higher-better): per-iteration
      clustering-quality means, deterministic for a fixed seed but
      built from float sums, so held to a 5% threshold. Skipped when
      the base report predates the gauges (all-zero drift block).
    - {b Quality} (the experiment headline, e.g. accuracy): regression
      on a {e relative} drop beyond [quality_threshold_pct]. Quality is
      seeded-deterministic, so any drop is a real behavior change; the
      default tolerance (2%) only absorbs float formatting.
    - Experiments or micro benches present on one side only yield
      [`Added]/[`Removed] informational verdicts, never failures — a
      subset smoke run can be gated against a full baseline. *)

type status =
  [ `Ok  (** Within threshold. *)
  | `Regression
  | `Improvement  (** Beyond threshold in the good direction — informational. *)
  | `Skipped  (** Base below the metric's noise floor. *)
  | `Added  (** Only in the candidate. *)
  | `Removed  (** Only in the base. *) ]

type verdict = {
  experiment : string;  (** Experiment id, or ["micro"]. *)
  metric : string;
  base : float;
  candidate : float;
  change_pct : float;  (** Signed relative change; 0 when base is 0. *)
  status : status;
}

val compare_reports :
  ?threshold_pct:float ->
  ?quality_threshold_pct:float ->
  base:Bench_report.t ->
  candidate:Bench_report.t ->
  unit ->
  (verdict list, string) result
(** Defaults: [threshold_pct = 25.], [quality_threshold_pct = 2.].
    [Error] when the two runs are incomparable ([--scale], word size, or
    [--domains] differ; a recorded domain count of 0 — files predating
    the parallel engine — matches anything). *)

val has_regression : verdict list -> bool

val render : verdict list -> string
(** Human-readable table of every non-[`Ok] verdict plus a summary
    line; regressions are listed first. *)
