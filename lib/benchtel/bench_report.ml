(* BENCH_*.json schema: capture from the Obs registry + (de)serialization.
   See bench_report.mli and DESIGN.md §6. *)

let schema_name = "cluseq-bench"

(* v2: added the reclustering scan-census block (pairs scored / joined,
   dirty rescores, assignments changed, wasted-pair ratio), then the
   clustering-quality drift block (per-iteration means of the
   cluseq.drift.* gauges). Readers default missing numerics to 0, so
   the drift addition stays within v2. *)
let schema_version = 2

type env = {
  label : string;
  git_rev : string;
  ocaml_version : string;
  scale : float;
  hostname : string;
  word_size : int;
  domains : int;
  shards : int;
}

type census = {
  pairs_scored : int;
  pairs_joined : int;
  dirty_rescores : int;
  assignments_changed : int;
  pairs_reused : int;
  index_candidates : int;
  index_filtered : int;
}

let wasted_pair_ratio c =
  if c.pairs_scored = 0 then 0.0
  else float_of_int (c.pairs_scored - c.pairs_joined) /. float_of_int c.pairs_scored

type drift = {
  churn_rate : float;
  cluster_age : float;
  intercluster_kl : float;
  member_score : float;
}

let drift_is_empty d =
  d.churn_rate = 0.0 && d.cluster_age = 0.0 && d.intercluster_kl = 0.0
  && d.member_score = 0.0

type experiment = {
  id : string;
  wall_s : float;
  runs : int;
  iterations : int;
  cluseq_seconds : float;
  phases : (string * float) list;
  sequences : int;
  symbols : int;
  gc : Obs.Resource.gc_delta;
  peak_heap_words : int;
  pst_nodes_built : int;
  pst_est_words_built : int;
  census : census;
  drift : drift;
  quality : (string * float) option;
}

type t = { env : env; experiments : experiment list; micro : (string * float) list }

let sequences_per_s e =
  if e.cluseq_seconds > 0.0 then float_of_int e.sequences /. e.cluseq_seconds else 0.0

let symbols_per_s e =
  if e.cluseq_seconds > 0.0 then float_of_int e.symbols /. e.cluseq_seconds else 0.0

(* Allocation intensity of the scoring pipeline: minor-heap words
   allocated per symbol pushed through clustering. Derived from fields
   every schema-v2 record already carries, so it compares against old
   baselines without a schema bump. *)
let minor_words_per_symbol e =
  if e.symbols > 0 then e.gc.Obs.Resource.minor_words /. float_of_int e.symbols else 0.0

(* ------------------------------------------------------------------ *)
(* Environment probing                                                 *)
(* ------------------------------------------------------------------ *)

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all) with Sys_error _ -> None

let git_rev () =
  match read_file ".git/HEAD" with
  | None -> "unknown"
  | Some head -> (
      let head = String.trim head in
      match String.split_on_char ' ' head with
      | [ "ref:"; r ] -> (
          match read_file (".git/" ^ r) with
          | Some h -> String.trim h
          | None -> (
              (* the ref may live in packed-refs: "<hash> <refname>" lines *)
              match read_file ".git/packed-refs" with
              | None -> "unknown"
              | Some packed -> (
                  let match_line line =
                    match String.split_on_char ' ' (String.trim line) with
                    | [ hash; name ] when name = r -> Some hash
                    | _ -> None
                  in
                  match
                    List.find_map match_line (String.split_on_char '\n' packed)
                  with
                  | Some hash -> hash
                  | None -> "unknown")))
      | _ -> head (* detached HEAD: the hash itself *))

let hostname () =
  match read_file "/proc/sys/kernel/hostname" with
  | Some h when String.trim h <> "" -> String.trim h
  | _ -> ( match Sys.getenv_opt "HOSTNAME" with Some h when h <> "" -> h | _ -> "unknown")

let collect_env ~label ~scale ~domains ~shards =
  {
    label;
    git_rev = git_rev ();
    ocaml_version = Sys.ocaml_version;
    scale;
    hostname = hostname ();
    word_size = Sys.word_size;
    domains;
    shards;
  }

(* ------------------------------------------------------------------ *)
(* Capture from the live registry                                      *)
(* ------------------------------------------------------------------ *)

(* Must match Cluseq.phase_names (asserted by the telemetry tests). *)
let phase_names = [ "generation"; "reclustering"; "consolidation"; "threshold"; "convergence" ]

let capture ~id ~wall_s ~gc ~peak_heap_words ~quality =
  let counter name = Obs.Metrics.(counter_value (counter name)) in
  let hist_sum name = Obs.Metrics.(histogram_sum (histogram name)) in
  let hist_mean name =
    let h = Obs.Metrics.histogram name in
    let n = Obs.Metrics.histogram_count h in
    if n = 0 then 0.0 else Obs.Metrics.histogram_sum h /. float_of_int n
  in
  {
    id;
    wall_s;
    runs = counter "cluseq.runs";
    iterations = counter "cluseq.iterations";
    cluseq_seconds = hist_sum "cluseq.run_seconds";
    phases = List.map (fun p -> (p, hist_sum ("cluseq.iter." ^ p ^ "_seconds"))) phase_names;
    sequences = counter "cluseq.sequences";
    symbols = counter "cluseq.symbols";
    gc;
    peak_heap_words;
    pst_nodes_built = counter "cluseq.pst.nodes_built";
    pst_est_words_built = counter "cluseq.pst.est_words_built";
    census =
      {
        pairs_scored = counter "cluseq.scan.pairs_scored";
        pairs_joined = counter "cluseq.scan.pairs_joined";
        dirty_rescores = counter "cluseq.scan.dirty_rescores";
        assignments_changed = counter "cluseq.scan.assignments_changed";
        pairs_reused = counter "cluseq.scan.pairs_reused";
        index_candidates = counter "cluseq.index.candidates";
        index_filtered = counter "cluseq.index.filtered";
      };
    drift =
      {
        churn_rate = hist_mean "cluseq.drift.churn_rate";
        cluster_age = hist_mean "cluseq.drift.cluster_age";
        intercluster_kl = hist_mean "cluseq.drift.intercluster_kl";
        member_score = hist_mean "cluseq.drift.member_score";
      };
    quality;
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

type report = t

open Bench_json

let num_i i = Num (float_of_int i)

let env_to_json (e : env) =
  Obj
    [
      ("label", Str e.label);
      ("git_rev", Str e.git_rev);
      ("ocaml_version", Str e.ocaml_version);
      ("scale", Num e.scale);
      ("hostname", Str e.hostname);
      ("word_size", num_i e.word_size);
      ("domains", num_i e.domains);
      ("shards", num_i e.shards);
    ]

let gc_to_json (d : Obs.Resource.gc_delta) ~peak =
  Obj
    [
      ("minor_words", Num d.minor_words);
      ("promoted_words", Num d.promoted_words);
      ("major_words", Num d.major_words);
      ("minor_collections", num_i d.minor_collections);
      ("major_collections", num_i d.major_collections);
      ("compactions", num_i d.compactions);
      ("heap_words_delta", num_i d.heap_words);
      ("top_heap_words_delta", num_i d.top_heap_words);
      ("peak_heap_words", num_i peak);
    ]

let experiment_to_json (e : experiment) =
  Obj
    [
      ("wall_s", Num e.wall_s);
      ( "cluseq",
        Obj
          [
            ("runs", num_i e.runs);
            ("iterations", num_i e.iterations);
            ("seconds", Num e.cluseq_seconds);
            ("phases", Obj (List.map (fun (p, s) -> (p ^ "_s", Num s)) e.phases));
          ] );
      ( "throughput",
        Obj
          [
            ("sequences", num_i e.sequences);
            ("symbols", num_i e.symbols);
            ("sequences_per_s", Num (sequences_per_s e));
            ("symbols_per_s", Num (symbols_per_s e));
          ] );
      ("gc", gc_to_json e.gc ~peak:e.peak_heap_words);
      ( "pst",
        Obj
          [
            ("nodes_built", num_i e.pst_nodes_built);
            ("est_words_built", num_i e.pst_est_words_built);
          ] );
      ( "census",
        Obj
          [
            ("pairs_scored", num_i e.census.pairs_scored);
            ("pairs_joined", num_i e.census.pairs_joined);
            ("dirty_rescores", num_i e.census.dirty_rescores);
            ("assignments_changed", num_i e.census.assignments_changed);
            ("pairs_reused", num_i e.census.pairs_reused);
            ("index_candidates", num_i e.census.index_candidates);
            ("index_filtered", num_i e.census.index_filtered);
            ("wasted_pair_ratio", Num (wasted_pair_ratio e.census));
          ] );
      ( "drift",
        Obj
          [
            ("churn_rate", Num e.drift.churn_rate);
            ("cluster_age", Num e.drift.cluster_age);
            ("intercluster_kl", Num e.drift.intercluster_kl);
            ("member_score", Num e.drift.member_score);
          ] );
      ( "quality",
        match e.quality with
        | None -> Null
        | Some (metric, v) -> Obj [ ("metric", Str metric); ("value", Num v) ] );
    ]

let to_json (r : report) =
  Obj
    [
      ("schema", Str schema_name);
      ("version", num_i schema_version);
      ("env", env_to_json r.env);
      ("experiments", Obj (List.map (fun e -> (e.id, experiment_to_json e)) r.experiments));
      ("micro", Obj (List.map (fun (name, ns) -> (name, Num ns)) r.micro));
    ]

(* --- deserialization: missing numeric fields read as 0 so files from
   future minor schema additions still compare --- *)

let get_f path json =
  let v = List.fold_left (fun acc key -> Option.bind acc (member key)) (Some json) path in
  match Option.bind v to_float with Some f -> f | None -> 0.0

let get_i path json = int_of_float (get_f path json)

let get_s path json =
  let v = List.fold_left (fun acc key -> Option.bind acc (member key)) (Some json) path in
  match Option.bind v to_str with Some s -> s | None -> "unknown"

let env_of_json json =
  {
    label = get_s [ "label" ] json;
    git_rev = get_s [ "git_rev" ] json;
    ocaml_version = get_s [ "ocaml_version" ] json;
    scale = get_f [ "scale" ] json;
    hostname = get_s [ "hostname" ] json;
    word_size = get_i [ "word_size" ] json;
    (* Files written before the parallel engine lack this field; 0 means
       "unknown" and comparisons treat it as a wildcard. *)
    domains = get_i [ "domains" ] json;
    (* Same wildcard convention for files written before shard-and-merge. *)
    shards = get_i [ "shards" ] json;
  }

let experiment_of_json id json =
  {
    id;
    wall_s = get_f [ "wall_s" ] json;
    runs = get_i [ "cluseq"; "runs" ] json;
    iterations = get_i [ "cluseq"; "iterations" ] json;
    cluseq_seconds = get_f [ "cluseq"; "seconds" ] json;
    phases =
      (match member "cluseq" json |> Option.map (member "phases") |> Option.join with
      | Some (Obj fields) ->
          List.filter_map
            (fun (k, v) ->
              match (Filename.chop_suffix_opt ~suffix:"_s" k, to_float v) with
              | Some p, Some s -> Some (p, s)
              | _ -> None)
            fields
      | _ -> []);
    sequences = get_i [ "throughput"; "sequences" ] json;
    symbols = get_i [ "throughput"; "symbols" ] json;
    gc =
      {
        Obs.Resource.minor_words = get_f [ "gc"; "minor_words" ] json;
        promoted_words = get_f [ "gc"; "promoted_words" ] json;
        major_words = get_f [ "gc"; "major_words" ] json;
        minor_collections = get_i [ "gc"; "minor_collections" ] json;
        major_collections = get_i [ "gc"; "major_collections" ] json;
        compactions = get_i [ "gc"; "compactions" ] json;
        heap_words = get_i [ "gc"; "heap_words_delta" ] json;
        top_heap_words = get_i [ "gc"; "top_heap_words_delta" ] json;
      };
    peak_heap_words = get_i [ "gc"; "peak_heap_words" ] json;
    pst_nodes_built = get_i [ "pst"; "nodes_built" ] json;
    pst_est_words_built = get_i [ "pst"; "est_words_built" ] json;
    census =
      {
        pairs_scored = get_i [ "census"; "pairs_scored" ] json;
        pairs_joined = get_i [ "census"; "pairs_joined" ] json;
        dirty_rescores = get_i [ "census"; "dirty_rescores" ] json;
        assignments_changed = get_i [ "census"; "assignments_changed" ] json;
        pairs_reused = get_i [ "census"; "pairs_reused" ] json;
        index_candidates = get_i [ "census"; "index_candidates" ] json;
        index_filtered = get_i [ "census"; "index_filtered" ] json;
      };
    (* Files recorded before the drift gauges read as all-zero; compare
       treats that as "no baseline" and skips drift verdicts. *)
    drift =
      {
        churn_rate = get_f [ "drift"; "churn_rate" ] json;
        cluster_age = get_f [ "drift"; "cluster_age" ] json;
        intercluster_kl = get_f [ "drift"; "intercluster_kl" ] json;
        member_score = get_f [ "drift"; "member_score" ] json;
      };
    quality =
      (match member "quality" json with
      | Some (Obj _ as q) -> (
          match (member "metric" q |> Option.map to_str, member "value" q) with
          | Some (Some metric), Some (Num v) -> Some (metric, v)
          | _ -> None)
      | _ -> None);
  }

let of_json json =
  match (member "schema" json |> Option.map to_str |> Option.join, member "version" json) with
  | Some schema, _ when schema <> schema_name ->
      Error (Printf.sprintf "not a %s file (schema %S)" schema_name schema)
  | None, _ -> Error (Printf.sprintf "not a %s file (no schema field)" schema_name)
  | Some _, version -> (
      match Option.bind version to_int with
      | Some v when v = schema_version ->
          let env = match member "env" json with Some e -> env_of_json e | None -> env_of_json Null in
          let experiments =
            match member "experiments" json with
            | Some (Obj fields) -> List.map (fun (id, e) -> experiment_of_json id e) fields
            | _ -> []
          in
          let micro =
            match member "micro" json with
            | Some (Obj fields) ->
                List.filter_map (fun (name, v) -> Option.map (fun ns -> (name, ns)) (to_float v)) fields
            | _ -> []
          in
          Ok { env; experiments; micro }
      | Some v ->
          Error
            (Printf.sprintf
               "schema version %d, but this build reads version %d — regenerate the file \
                with the current bench harness (e.g. `dune exec bench/main.exe -- --scale \
                <s> --record <file>`)"
               v schema_version)
      | None -> Error "missing schema version")

let write path r = Obs.Export.write_file path (Bench_json.to_string (to_json r))

let read path =
  match read_file path with
  | None -> Error (Printf.sprintf "cannot read %s" path)
  | Some contents -> (
      match Bench_json.parse contents with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json -> (
          match of_json json with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok r -> Ok r))
