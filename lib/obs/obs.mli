(** Observability for the CLUSEQ pipeline: a process-global metrics
    registry, span-based tracing on the monotonic clock, and exporters.

    Design constraints (see DESIGN.md §6):

    - {b Counters multicore-safe, everything else single-domain.}
      Counters are atomic because the [Par] worker domains drive
      instrumented read paths ([Similarity.score], [Pst.log_prob]);
      gauges, histograms, tracing, and registration are plain mutable
      data touched only by the main (serial-mutate) domain.
    - {b Free when disabled.} Both metrics and tracing default to
      disabled; an instrumented call site then costs one [bool ref]
      dereference and branch (a few ns at most), so hot paths stay
      permanently instrumented.
    - {b Find-or-create registration.} Instruments are registered by
      name at module-initialization time ([let c = Obs.Metrics.counter
      "pst.insertions"]) and the returned handle is used directly on
      the hot path — no per-event name lookup. Requesting the same name
      twice returns the same instrument; requesting it with a different
      kind raises [Invalid_argument]. *)

(** Counters, gauges, and fixed-bucket histograms. *)
module Metrics : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool
  (** Metrics recording is off by default: all [incr]/[set]/[observe]
      calls are no-ops until {!enable}. *)

  (** {1 Counters} *)

  type counter
  (** A monotonically increasing integer. *)

  val counter : string -> counter
  (** [counter name] finds or creates the counter registered as
      [name]. *)

  val incr : ?by:int -> counter -> unit
  (** [incr ?by c] adds [by] (default 1) when metrics are enabled. *)

  val counter_value : counter -> int
  val counter_name : counter -> string

  (** {1 Gauges} *)

  type gauge
  (** A floating-point value that can go up and down. *)

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val gauge_value : gauge -> float
  val gauge_name : gauge -> string

  (** {1 Histograms} *)

  type histogram
  (** A fixed-bucket distribution: observations land in the first
      bucket whose upper bound is ≥ the value, or in the implicit
      [+Inf] overflow bucket. *)

  val default_time_buckets : float array
  (** Log-spaced latency buckets from 1µs to 60s, suitable for both
      single similarity scans and whole clustering phases. *)

  val histogram : ?buckets:float array -> string -> histogram
  (** [histogram ?buckets name] finds or creates a histogram with the
      given strictly-increasing upper bounds (default
      {!default_time_buckets}). [buckets] is ignored when [name] is
      already registered. *)

  val observe : histogram -> float -> unit
  val histogram_count : histogram -> int
  val histogram_sum : histogram -> float
  val histogram_name : histogram -> string

  val bucket_counts : histogram -> (float * int) array
  (** Per-bucket (upper bound, count) pairs, non-cumulative; the last
      entry's bound is [infinity]. *)

  val reset : unit -> unit
  (** Zero every registered instrument in place. Handles held by
      instrumented modules stay valid. *)

  (**/**)

  type entry = Counter of counter | Gauge of gauge | Histogram of histogram

  val entries : unit -> (string * entry) list
  (** Registered instruments sorted by name (exporter interface). *)

  (**/**)
end

(** Span-based tracing: a tree of timed spans on the monotonic clock. *)
module Trace : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool
  (** Tracing is off by default: {!with_span} then runs its thunk
      directly, recording nothing. *)

  type span

  val with_span : string -> (unit -> 'a) -> 'a
  (** [with_span name f] runs [f ()] inside a span: the span nests
      under the innermost open span (or becomes a root), is timed with
      {!Timer.now_ns}, and is closed even if [f] raises. *)

  val name : span -> string
  val children : span -> span list

  val duration_ns : span -> int64
  (** Duration of the span; for a still-open span, the time elapsed so
      far. *)

  val duration_s : span -> float

  val on_start : (span -> unit) -> unit
  (** Register a hook called when any span opens (after it is pushed,
      so [duration_ns] is live). *)

  val on_stop : (span -> unit) -> unit
  (** Register a hook called when any span closes. *)

  val clear_hooks : unit -> unit

  val roots : unit -> span list
  (** Completed-or-open root spans, oldest first. *)

  val reset : unit -> unit
  (** Drop all recorded spans (and any open-span stack). *)

  val pp : Format.formatter -> unit -> unit
  (** Render the span forest as an indented tree with durations. *)
end

(** Runtime resource profiling: span-scoped GC deltas, a peak-heap
    watermark sampler, and gauge publication of both — the memory half
    of the benchmark telemetry (DESIGN.md §6). All readings come from
    [Gc.quick_stat], which never forces a collection. *)
module Resource : sig
  type gc_delta = {
    minor_words : float;  (** Words allocated in the minor heap. *)
    promoted_words : float;  (** Words promoted minor → major. *)
    major_words : float;  (** Words allocated in the major heap. *)
    minor_collections : int;
    major_collections : int;
    compactions : int;
    heap_words : int;
        (** Change of the major-heap size over the span; the only field
            that can be negative (compaction can shrink the heap). *)
    top_heap_words : int;
        (** Growth of the process-lifetime heap watermark during the
            span. *)
  }
  (** What one measured span cost the runtime. All fields except
      [heap_words] derive from monotonic [Gc] counters and are
      non-negative; a span's delta includes everything its nested spans
      did. *)

  val zero : gc_delta

  val add : gc_delta -> gc_delta -> gc_delta
  (** Componentwise sum — for accumulating deltas across repeated
      measurements. *)

  val measure : (unit -> 'a) -> 'a * gc_delta
  (** [measure f] runs [f ()] and returns its result together with the
      GC work it (and anything it called) performed. Unlike metrics and
      tracing this is not gated on an [enable] switch: the two
      [Gc.quick_stat] calls are cheap and callers invoke [measure]
      explicitly. Nests freely. *)

  val publish : ?prefix:string -> gc_delta -> unit
  (** [publish ?prefix d] surfaces [d] as gauges
      [<prefix>.minor_words], [<prefix>.promoted_words], …,
      [<prefix>.peak_heap_words] (default prefix ["gc"]). No-op while
      {!Metrics} is disabled. *)

  val publish_current : ?prefix:string -> unit -> unit
  (** [publish_current ()] publishes the absolute [Gc.quick_stat]
      values (process-lifetime totals) plus the sampler's
      [peak_heap_words] under the same gauge names — the right report
      for a whole process, e.g. the CLI at exit. *)

  (** {1 Peak-heap watermark sampler}

      [Gc.top_heap_words] only ever grows, so it cannot attribute a
      peak to one experiment of many in the same process. The sampler
      hooks a [Gc.alarm] (end of every major cycle) to track the
      maximum major-heap size since the last {!reset_peak} — a
      per-window watermark. *)

  val start_sampler : unit -> unit
  (** Install the alarm (idempotent) and take an immediate sample. *)

  val stop_sampler : unit -> unit
  (** Remove the alarm; the recorded peak remains readable. *)

  val reset_peak : unit -> unit
  (** Restart the window: forget the old peak and sample now. *)

  val peak_heap_words : unit -> int
  (** Largest major-heap size (in words) observed since the last
      {!reset_peak} — includes a sample taken at the call itself, so it
      is meaningful even if no major cycle ended in the window. *)
end

(** Render the registry (and span forest, if any) in three formats. *)
module Export : sig
  val pp_summary : Format.formatter -> unit -> unit
  (** Human-readable summary: counters, gauges, histogram count/mean,
      span tree. *)

  val summary : unit -> string

  val to_json : unit -> string
  (** JSON object with ["counters"], ["gauges"], ["histograms"] (count,
      sum, per-bucket [le]/count), and — when spans were recorded —
      ["spans"] (name, duration_ns, children). *)

  val to_prometheus : unit -> string
  (** Prometheus text exposition format; metric names are sanitized
      ([pst.insertions] → [pst_insertions]) and histogram buckets are
      cumulative, per the format's conventions. *)

  val write_file : string -> string -> unit
  (** [write_file path contents] writes [contents] to [path]. *)
end

(** {!Logs} reporter installation shared by the CLI and the bench. *)
module Logging : sig
  val level_of_verbosity : int -> Logs.level option
  (** 0 → [Warning], 1 → [Info], ≥ 2 → [Debug]. *)

  val setup : ?level:Logs.level option -> unit -> unit
  (** Install an [Fmt]-based reporter writing to stderr and set the
      global level. The [CLUSEQ_LOG] environment variable (a
      {!Logs.level_of_string} value, e.g. [debug]) overrides [level]
      (default [Warning]). *)
end

val enable_all : unit -> unit
(** Enable both metrics and tracing. *)

val reset : unit -> unit
(** {!Metrics.reset} + {!Trace.reset}. *)
