(** Observability for the CLUSEQ pipeline: a process-global metrics
    registry, span-based tracing on the monotonic clock, a multi-domain
    flight recorder, and exporters.

    Design constraints (see DESIGN.md §6 and §10):

    - {b Counters and histograms multicore-safe, the rest
      single-domain.} Counters are atomic because the [Par] worker
      domains drive instrumented read paths ([Similarity.score],
      [Pst.log_prob]); histogram buckets are atomic (and the float sum
      a CAS loop) because any domain owning a pool may observe
      latencies ([par.steal_wait_seconds]). Gauges, span tracing, and
      registration are plain mutable data touched only by the main
      (serial-mutate) domain. Worker domains additionally write to
      their own {!Recorder} rings, which are per-domain by
      construction.
    - {b Free when disabled.} Metrics, tracing, and the recorder
      default to disabled; an instrumented call site then costs one
      [bool ref] dereference and branch (a few ns at most), so hot
      paths stay permanently instrumented.
    - {b Find-or-create registration.} Instruments are registered by
      name at module-initialization time ([let c = Obs.Metrics.counter
      "pst.insertions"]) and the returned handle is used directly on
      the hot path — no per-event name lookup. Requesting the same name
      twice returns the same instrument; requesting it with a different
      kind raises [Invalid_argument]. {!Recorder.intern} follows the
      same pattern for event names. *)

(** Counters, gauges, and fixed-bucket histograms. *)
module Metrics : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool
  (** Metrics recording is off by default: all [incr]/[set]/[observe]
      calls are no-ops until {!enable}. *)

  (** {1 Counters} *)

  type counter
  (** A monotonically increasing integer. *)

  val counter : string -> counter
  (** [counter name] finds or creates the counter registered as
      [name]. *)

  val incr : ?by:int -> counter -> unit
  (** [incr ?by c] adds [by] (default 1) when metrics are enabled. *)

  val counter_value : counter -> int
  val counter_name : counter -> string

  (** {1 Gauges} *)

  type gauge
  (** A floating-point value that can go up and down. *)

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val gauge_value : gauge -> float
  val gauge_name : gauge -> string

  (** {1 Histograms} *)

  type histogram
  (** A fixed-bucket distribution: observations land in the first
      bucket whose upper bound is ≥ the value, or in the implicit
      [+Inf] overflow bucket. *)

  val default_time_buckets : float array
  (** Log-spaced latency buckets from 1µs to 60s, suitable for both
      single similarity scans and whole clustering phases. *)

  val histogram : ?buckets:float array -> string -> histogram
  (** [histogram ?buckets name] finds or creates a histogram with the
      given strictly-increasing upper bounds (default
      {!default_time_buckets}). [buckets] is ignored when [name] is
      already registered. *)

  val observe : histogram -> float -> unit
  (** Record one observation. Safe from any domain: bucket counts and
      the running count are atomic increments and the sum is a
      compare-and-set loop (unlike gauges, which remain main-domain
      writes). *)

  val histogram_count : histogram -> int
  val histogram_sum : histogram -> float
  val histogram_name : histogram -> string

  val bucket_counts : histogram -> (float * int) array
  (** Per-bucket (upper bound, count) pairs, non-cumulative; the last
      entry's bound is [infinity]. *)

  val quantile : histogram -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([0 ≤ q ≤ 1]) from the
      bucket counts by linear interpolation inside the bucket holding
      the rank-[q] observation (first bucket's lower edge is 0).
      Observations in the [+Inf] overflow bucket report the last finite
      bound — a floor, not an extrapolation. [nan] on an empty
      histogram; [Invalid_argument] if [q] is outside [\[0, 1\]]. *)

  val reset : unit -> unit
  (** Zero every registered instrument in place. Handles held by
      instrumented modules stay valid. *)

  (**/**)

  type entry = Counter of counter | Gauge of gauge | Histogram of histogram

  val entries : unit -> (string * entry) list
  (** Registered instruments sorted by name (exporter interface). *)

  (**/**)
end

(** Span-based tracing: a tree of timed spans on the monotonic clock. *)
module Trace : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool
  (** Tracing is off by default: {!with_span} then runs its thunk
      directly, recording nothing. *)

  type span

  val with_span : string -> (unit -> 'a) -> 'a
  (** [with_span name f] runs [f ()] inside a span: the span nests
      under the innermost open span (or becomes a root), is timed with
      {!Timer.now_ns}, and is closed even if [f] raises. Span state is
      main-domain-only; on a worker domain this is a plain call that
      records nothing (use the {!Recorder} for worker-side events). *)

  val name : span -> string
  val children : span -> span list

  val start_ns : span -> int64
  (** Absolute {!Timer.now_ns} timestamp at which the span opened —
      the trace exporter aligns spans with recorder and runtime events
      through it. *)

  val duration_ns : span -> int64
  (** Duration of the span; for a still-open span, the time elapsed so
      far. *)

  val duration_s : span -> float

  val on_start : (span -> unit) -> unit
  (** Register a hook called when any span opens (after it is pushed,
      so [duration_ns] is live). *)

  val on_stop : (span -> unit) -> unit
  (** Register a hook called when any span closes. *)

  val clear_hooks : unit -> unit

  val roots : unit -> span list
  (** Completed-or-open root spans, oldest first. *)

  val reset : unit -> unit
  (** Drop all recorded spans (and any open-span stack). *)

  val pp : Format.formatter -> unit -> unit
  (** Render the span forest as an indented tree with durations. *)
end

(** Multi-domain flight recorder: a fixed-capacity event ring per
    domain, written lock-free by the owning domain and merged by the
    main domain at export time (DESIGN.md §10).

    {b Threading model.} Each domain lazily gets its own ring
    (domain-local storage) on its first event; only the owning domain
    ever writes it. The read side ({!events}, {!dropped}, {!reset})
    must run on the main domain {e outside} parallel regions — the
    [Par] pool joins every chunk before a job returns, so this never
    races live writers.

    {b Cost model.} When disabled, {!begin_}/{!end_}/{!instant} cost
    one [bool ref] dereference and allocate nothing. When enabled, an
    event writes four ints (timestamp, kind, interned name id,
    argument) into preallocated arrays — still allocation-free. When a
    ring wraps, the oldest events are overwritten and counted in
    {!dropped}. *)
module Recorder : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val is_enabled : unit -> bool
  (** Recording is off by default. Toggle only from the main domain
      outside parallel regions. *)

  val set_capacity : int -> unit
  (** Per-domain ring capacity in events, rounded up to a power of two
      (default [65536], minimum 16). Affects rings created afterwards —
      call before enabling, before any domain has emitted. *)

  type name
  (** An interned event name: register once at module-initialization
      time ([let ev = Obs.Recorder.intern "par.chunk"]), then emit by
      handle — the hot path never touches the string. *)

  val intern : string -> name
  (** Find-or-create the id for an event name (thread-safe; intended
      for initialization time, not per event). *)

  val begin_ : ?arg:int -> name -> unit
  (** Open a duration event on the calling domain's ring. [arg] is a
      free integer payload (chunk index, count, …) shown in the trace. *)

  val end_ : name -> unit
  (** Close the most recent open duration event of this name. Pairing
      is by timeline order within the domain, as in the Chrome trace
      format. *)

  val instant : ?arg:int -> name -> unit
  (** A zero-duration marker on the calling domain's ring. *)

  val with_event : ?arg:int -> name -> (unit -> 'a) -> 'a
  (** [with_event n f] wraps [f ()] in {!begin_}/{!end_} (the end event
      is emitted even if [f] raises). Runs [f] directly when
      disabled. *)

  (** {1 Read side (main domain, between jobs)} *)

  type kind = Begin | End | Instant

  type event = {
    domain : int;  (** OCaml domain id of the writer. *)
    ts_ns : int64;  (** {!Timer.now_ns} at emission. *)
    kind : kind;
    ev_name : string;
    arg : int;
  }

  val events : unit -> event list
  (** All live events across every domain ring, merged and sorted by
      timestamp (ties by domain id). Events overwritten by ring wrap
      are gone — see {!dropped}. *)

  val dropped : unit -> int
  (** Total events lost to ring wrap-around since the last {!reset}. *)

  val reset : unit -> unit
  (** Empty every ring (rings themselves are kept and reused). *)
end

(** Decision-provenance journal: a structured, append-only JSONL event
    log of {e model} decisions — cluster lifecycle, per-sequence
    assignment deltas, threshold moves, per-iteration drift — written by
    the serial main-domain code of the pipeline (so records are
    deterministic at any domain count, modulo timestamps).

    {b Cost model.} Journaling is off until {!open_file}; a disabled
    {!emit} call site costs one [bool ref] dereference and must be
    guarded so its field thunk is never built (the hot-path pattern is
    [if Obs.Journal.is_enabled () then Obs.Journal.emit ...], hoisting
    the test out of inner loops). Enabled records are buffered (~64 KiB)
    and flushed to the file in batches; write failures drop the batch
    and are counted in {!dropped}, like {!Recorder} ring wraps — the
    journal never aborts the run it is observing.

    {b Record shape.} One JSON object per line:
    [{"rec":N,"ts_ns":T,"event":"cluster.seeded",...fields}] — [rec] is
    a 0-based ordinal, [ts_ns] the {!Timer.now_ns} monotonic timestamp,
    [event] a dotted name, and the remaining fields event-specific
    (encoded with [Bench_json]; field names must avoid the three
    envelope keys). *)
module Journal : sig
  val open_file : string -> unit
  (** [open_file path] truncates/creates [path] and starts journaling to
      it (closing any previously open journal first). Raises [Sys_error]
      if the file cannot be opened. *)

  val is_enabled : unit -> bool
  (** Whether a journal file is open. Call sites in loops should read
      this once per pass and skip {!emit} entirely when false. *)

  val current_path : unit -> string option
  (** The open journal's file path, if any — lets a consumer (e.g.
      [cluseq explain]) {!flush} and read back the journal it is
      writing. *)

  val emit : string -> (unit -> (string * Bench_json.t) list) -> unit
  (** [emit event fields] appends one record. [fields] is a thunk so a
      disabled journal never pays for field construction; it runs
      synchronously when enabled. Main-domain only (the writer state is
      unsynchronized); the pipeline only journals from its serial
      sections. *)

  val flush : unit -> unit
  (** Force buffered records to the file (e.g. before reading it back
      mid-process). *)

  val with_suspended : (unit -> 'a) -> 'a
  (** [with_suspended f] runs [f ()] with journaling disabled, then
      restores the previous state (even if [f] raises). Used around
      parallel fan-outs (shard orchestration): the journal writer is
      main-domain-only, so worker-side runs must not emit; the
      orchestrator journals its own summary events after restore. *)

  val close : unit -> unit
  (** Flush, close the file, and disable journaling. Idempotent. *)

  val events_written : unit -> int
  (** Records emitted since the process started (across files). *)

  val dropped : unit -> int
  (** Records lost to write failures since the process started. *)

  (** {1 Reading journals back} *)

  type entry = {
    j_seq : int;  (** Record ordinal within the file. *)
    j_ts_ns : int64;  (** Monotonic emission timestamp. *)
    j_event : string;  (** Event name, e.g. ["seq.joined"]. *)
    j_fields : (string * Bench_json.t) list;
        (** Event-specific fields (envelope keys stripped). *)
  }

  val read_file : string -> (entry list, string) result
  (** Parse a journal back, oldest first. Blank lines are skipped;
      [Error] names the first unparseable line. *)
end

(** Bridge from the stdlib [Runtime_events] tracing system: buffers GC
    begin/end (minor, major, slices, compactions) and domain-lifecycle
    events so the exporter can interleave them with recorder rings and
    spans — GC pauses become visible against scoring work (DESIGN.md
    §10). Timestamps share [Timer]'s CLOCK_MONOTONIC. *)
module Runtime_bridge : sig
  val start : unit -> bool
  (** Start the runtime's event ring and open a self cursor. Returns
      [false] (bridge stays inactive) if the runtime cannot create its
      ring file — e.g. an unwritable working directory. Idempotent. *)

  val is_active : unit -> bool

  val poll : unit -> int
  (** Drain pending runtime events into the bridge buffer; returns the
      number consumed. Call from the main domain — at phase boundaries
      and before export. *)

  val stop : unit -> unit
  (** Free the cursor and pause runtime event collection. Idempotent:
      stopping twice, or without ever having started, is a no-op (the
      cursor is cleared before the runtime calls so a reentrant or
      repeated stop can never double-free it). *)

  type kind = Begin | End | Instant

  type event = {
    rb_domain : int;  (** Runtime ring id ≈ domain id. *)
    rb_ts : int64;
    rb_name : string;  (** ["gc.minor"], ["gc.major_slice"], ["rt.domain_spawn"], … *)
    rb_kind : kind;
  }

  val events : unit -> event list
  (** Buffered events, oldest first. The buffer is capped (200k
      events); overflow is counted in {!dropped}. *)

  val dropped : unit -> int
  val reset : unit -> unit
end

(** Runtime resource profiling: span-scoped GC deltas, a peak-heap
    watermark sampler, and gauge publication of both — the memory half
    of the benchmark telemetry (DESIGN.md §6). All readings come from
    [Gc.quick_stat], which never forces a collection. *)
module Resource : sig
  type gc_delta = {
    minor_words : float;  (** Words allocated in the minor heap. *)
    promoted_words : float;  (** Words promoted minor → major. *)
    major_words : float;  (** Words allocated in the major heap. *)
    minor_collections : int;
    major_collections : int;
    compactions : int;
    heap_words : int;
        (** Change of the major-heap size over the span; the only field
            that can be negative (compaction can shrink the heap). *)
    top_heap_words : int;
        (** Growth of the process-lifetime heap watermark during the
            span. *)
  }
  (** What one measured span cost the runtime. All fields except
      [heap_words] derive from monotonic [Gc] counters and are
      non-negative; a span's delta includes everything its nested spans
      did. *)

  val zero : gc_delta

  val add : gc_delta -> gc_delta -> gc_delta
  (** Componentwise sum — for accumulating deltas across repeated
      measurements. *)

  val measure : (unit -> 'a) -> 'a * gc_delta
  (** [measure f] runs [f ()] and returns its result together with the
      GC work it (and anything it called) performed. Unlike metrics and
      tracing this is not gated on an [enable] switch: the two
      [Gc.quick_stat] calls are cheap and callers invoke [measure]
      explicitly. Nests freely. *)

  val publish : ?prefix:string -> gc_delta -> unit
  (** [publish ?prefix d] surfaces [d] as gauges
      [<prefix>.minor_words], [<prefix>.promoted_words], …,
      [<prefix>.peak_heap_words] (default prefix ["gc"]). No-op while
      {!Metrics} is disabled. *)

  val publish_current : ?prefix:string -> unit -> unit
  (** [publish_current ()] publishes the absolute [Gc.quick_stat]
      values (process-lifetime totals) plus the sampler's
      [peak_heap_words] under the same gauge names — the right report
      for a whole process, e.g. the CLI at exit. *)

  (** {1 Peak-heap watermark sampler}

      [Gc.top_heap_words] only ever grows, so it cannot attribute a
      peak to one experiment of many in the same process. The sampler
      hooks a [Gc.alarm] (end of every major cycle) to track the
      maximum major-heap size since the last {!reset_peak} — a
      per-window watermark. *)

  val start_sampler : unit -> unit
  (** Install the alarm (idempotent) and take an immediate sample. *)

  val stop_sampler : unit -> unit
  (** Remove the alarm; the recorded peak remains readable. *)

  val reset_peak : unit -> unit
  (** Restart the window: forget the old peak and sample now. *)

  val peak_heap_words : unit -> int
  (** Largest major-heap size (in words) observed since the last
      {!reset_peak} — includes a sample taken at the call itself, so it
      is meaningful even if no major cycle ended in the window. *)
end

(** Render the registry (and span forest, if any) in three formats. *)
module Export : sig
  val pp_summary : Format.formatter -> unit -> unit
  (** Human-readable summary: counters, gauges, histogram count/mean,
      span tree. *)

  val summary : unit -> string

  val to_json : unit -> string
  (** JSON object with ["counters"], ["gauges"], ["histograms"] (count,
      sum, [p50]/[p95]/[p99] quantile estimates, per-bucket
      [le]/count), and — when spans were recorded — ["spans"] (name,
      duration_ns, children). Empty histograms carry no quantile keys
      at all (there is no rank-q observation to estimate — omitting
      beats fabricating). *)

  val to_chrome_trace : unit -> string
  (** Chrome trace-format JSON (open at {:https://ui.perfetto.dev}):
      the main-domain span tree (["X"] complete events), every
      {!Recorder} ring's begin/end/instant events, and the
      {!Runtime_bridge}'s GC/lifecycle events, merged onto one
      timeline. [tid] is the OCaml domain id; timestamps are rebased to
      the earliest event and expressed in microseconds. Callers should
      {!Runtime_bridge.poll} first so pending runtime events are
      included. *)

  val to_prometheus : unit -> string
  (** Prometheus text exposition format; metric names are sanitized
      ([pst.insertions] → [pst_insertions]) and histogram buckets are
      cumulative, per the format's conventions. *)

  val write_file : string -> string -> unit
  (** [write_file path contents] writes [contents] to [path]. *)
end

(** {!Logs} reporter installation shared by the CLI and the bench. *)
module Logging : sig
  val level_of_verbosity : int -> Logs.level option
  (** 0 → [Warning], 1 → [Info], ≥ 2 → [Debug]. *)

  val setup : ?level:Logs.level option -> unit -> unit
  (** Install an [Fmt]-based reporter writing to stderr and set the
      global level. The [CLUSEQ_LOG] environment variable (a
      {!Logs.level_of_string} value, e.g. [debug]) overrides [level]
      (default [Warning]). *)
end

val enable_all : unit -> unit
(** Enable both metrics and tracing. *)

val reset : unit -> unit
(** {!Metrics.reset} + {!Trace.reset} + {!Recorder.reset}. *)
