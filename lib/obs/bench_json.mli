(** A minimal JSON value type, parser, and printer for the benchmark
    telemetry files ([BENCH_*.json]) and the decision-provenance journal
    ([Obs.Journal]'s JSONL records).

    Self-contained on purpose: the repo carries no JSON dependency, and
    the bench schema (Bench_report) only needs objects, arrays, strings,
    numbers, booleans, and null. Numbers are held as [float] (as in
    JSON itself); integral values print without a fractional part.

    Lives in [lib/obs] (not [lib/benchtel]) so the journal can encode
    events without a dependency cycle; every library is [wrapped false],
    so the module keeps its global [Bench_json] name for the bench
    telemetry. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** Insertion-ordered; keys assumed unique. *)

val to_string : t -> string
(** Render with two-space indentation and a trailing newline. Non-finite
    numbers render as [null] (JSON has no Inf/NaN literal). *)

val to_compact_string : t -> string
(** Render on a single line with no whitespace and no trailing newline —
    one JSONL record. Same number formatting as {!to_string}. *)

val parse : string -> (t, string) result
(** Parse one JSON document (trailing whitespace allowed). [Error msg]
    carries the byte offset of the failure. Supports the full escape set
    including [\uXXXX] (decoded to UTF-8); numbers are read with
    [float_of_string] semantics. *)

(** {1 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [Obj], else [None]. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option

val obj_items : t -> (string * t) list
(** The bindings of an [Obj], or [[]] for any other constructor. *)

val equal : t -> t -> bool
(** Structural equality with order-insensitive object comparison (keys
    are matched by name) — round-trip tests. *)
