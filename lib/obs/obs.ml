(* Process-global observability: a metrics registry (counters, gauges,
   fixed-bucket histograms), span-based tracing on the monotonic clock,
   and exporters (human summary, JSON, Prometheus text format).

   Counters are [Atomic.t]: the Par worker domains score sequences
   through instrumented read paths (Similarity.score, Pst.log_prob), so
   counter increments must not race. Everything else (gauges,
   histograms, tracing, registration) remains main-domain mutable state
   — the serial-mutate side of the pipeline is the only writer.
   Instrumented code pays one [bool ref] dereference per event while
   disabled, so leaving call sites permanently instrumented is free. *)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  let enabled = ref false
  let enable () = enabled := true
  let disable () = enabled := false
  let is_enabled () = !enabled

  type counter = { c_name : string; c_value : int Atomic.t }
  type gauge = { g_name : string; mutable g_value : float }

  type histogram = {
    h_name : string;
    bounds : float array; (* strictly increasing bucket upper bounds *)
    counts : int array; (* length bounds + 1; last is the +Inf bucket *)
    mutable h_sum : float;
    mutable h_count : int;
  }

  type entry = Counter of counter | Gauge of gauge | Histogram of histogram

  let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

  let kind_mismatch name =
    invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered with a different kind" name)

  let counter name =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> c
    | Some _ -> kind_mismatch name
    | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add registry name (Counter c);
        c

  let incr ?(by = 1) c = if !enabled then ignore (Atomic.fetch_and_add c.c_value by)
  let counter_value c = Atomic.get c.c_value
  let counter_name c = c.c_name

  let gauge name =
    match Hashtbl.find_opt registry name with
    | Some (Gauge g) -> g
    | Some _ -> kind_mismatch name
    | None ->
        let g = { g_name = name; g_value = 0.0 } in
        Hashtbl.add registry name (Gauge g);
        g

  let set g v = if !enabled then g.g_value <- v
  let gauge_value g = g.g_value
  let gauge_name g = g.g_name

  (* Log-ish spacing from 1µs to 1min: latency histograms over the whole
     range the pipeline produces, from single similarity scans to full
     clustering phases. *)
  let default_time_buckets =
    [| 1e-6; 1e-5; 1e-4; 1e-3; 5e-3; 1e-2; 5e-2; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]

  let histogram ?(buckets = default_time_buckets) name =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some _ -> kind_mismatch name
    | None ->
        let n = Array.length buckets in
        if n = 0 then invalid_arg "Obs.Metrics.histogram: empty buckets";
        for i = 1 to n - 1 do
          if buckets.(i) <= buckets.(i - 1) then
            invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing"
        done;
        let h =
          { h_name = name; bounds = Array.copy buckets; counts = Array.make (n + 1) 0;
            h_sum = 0.0; h_count = 0 }
        in
        Hashtbl.add registry name (Histogram h);
        h

  let observe h v =
    if !enabled then begin
      let n = Array.length h.bounds in
      let i = ref 0 in
      while !i < n && v > h.bounds.(!i) do
        i := !i + 1
      done;
      h.counts.(!i) <- h.counts.(!i) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1
    end

  let histogram_count h = h.h_count
  let histogram_sum h = h.h_sum
  let histogram_name h = h.h_name

  let bucket_counts h =
    let n = Array.length h.bounds in
    Array.init (n + 1) (fun i -> ((if i = n then infinity else h.bounds.(i)), h.counts.(i)))

  let reset () =
    Hashtbl.iter
      (fun _ e ->
        match e with
        | Counter c -> Atomic.set c.c_value 0
        | Gauge g -> g.g_value <- 0.0
        | Histogram h ->
            Array.fill h.counts 0 (Array.length h.counts) 0;
            h.h_sum <- 0.0;
            h.h_count <- 0)
      registry

  (* Registered entries sorted by name, for the exporters. *)
  let entries () =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  let enabled = ref false
  let enable () = enabled := true
  let disable () = enabled := false
  let is_enabled () = !enabled

  type span = {
    span_name : string;
    start_ns : int64;
    mutable stop_ns : int64; (* 0 while the span is open *)
    mutable rev_children : span list;
  }

  let roots_rev : span list ref = ref []
  let stack : span list ref = ref []
  let start_hooks : (span -> unit) list ref = ref []
  let stop_hooks : (span -> unit) list ref = ref []

  let on_start f = start_hooks := !start_hooks @ [ f ]
  let on_stop f = stop_hooks := !stop_hooks @ [ f ]
  let clear_hooks () =
    start_hooks := [];
    stop_hooks := []

  let name sp = sp.span_name
  let children sp = List.rev sp.rev_children

  let duration_ns sp =
    Int64.sub (if sp.stop_ns = 0L then Timer.now_ns () else sp.stop_ns) sp.start_ns

  let duration_s sp = Int64.to_float (duration_ns sp) /. 1e9

  let with_span name f =
    if not !enabled then f ()
    else begin
      let sp = { span_name = name; start_ns = Timer.now_ns (); stop_ns = 0L; rev_children = [] } in
      (match !stack with
      | parent :: _ -> parent.rev_children <- sp :: parent.rev_children
      | [] -> roots_rev := sp :: !roots_rev);
      stack := sp :: !stack;
      List.iter (fun h -> h sp) !start_hooks;
      Fun.protect
        ~finally:(fun () ->
          sp.stop_ns <- Timer.now_ns ();
          (match !stack with s :: rest when s == sp -> stack := rest | _ -> ());
          List.iter (fun h -> h sp) !stop_hooks)
        f
    end

  let roots () = List.rev !roots_rev

  let reset () =
    roots_rev := [];
    stack := []

  let pp ppf () =
    let rec go indent sp =
      Format.fprintf ppf "%s%s  %.3f ms@\n" (String.make indent ' ') sp.span_name
        (duration_s sp *. 1e3);
      List.iter (go (indent + 2)) (children sp)
    in
    List.iter (go 0) (roots ())
end

(* ------------------------------------------------------------------ *)
(* Resource profiling                                                  *)
(* ------------------------------------------------------------------ *)

module Resource = struct
  type gc_delta = {
    minor_words : float;
    promoted_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
    compactions : int;
    heap_words : int;
    top_heap_words : int;
  }

  let zero =
    {
      minor_words = 0.0;
      promoted_words = 0.0;
      major_words = 0.0;
      minor_collections = 0;
      major_collections = 0;
      compactions = 0;
      heap_words = 0;
      top_heap_words = 0;
    }

  let add a b =
    {
      minor_words = a.minor_words +. b.minor_words;
      promoted_words = a.promoted_words +. b.promoted_words;
      major_words = a.major_words +. b.major_words;
      minor_collections = a.minor_collections + b.minor_collections;
      major_collections = a.major_collections + b.major_collections;
      compactions = a.compactions + b.compactions;
      heap_words = a.heap_words + b.heap_words;
      top_heap_words = a.top_heap_words + b.top_heap_words;
    }

  let delta (before : Gc.stat) (after : Gc.stat) =
    {
      minor_words = after.Gc.minor_words -. before.Gc.minor_words;
      promoted_words = after.Gc.promoted_words -. before.Gc.promoted_words;
      major_words = after.Gc.major_words -. before.Gc.major_words;
      minor_collections = after.Gc.minor_collections - before.Gc.minor_collections;
      major_collections = after.Gc.major_collections - before.Gc.major_collections;
      compactions = after.Gc.compactions - before.Gc.compactions;
      heap_words = after.Gc.heap_words - before.Gc.heap_words;
      top_heap_words = after.Gc.top_heap_words - before.Gc.top_heap_words;
    }

  let measure f =
    let before = Gc.quick_stat () in
    let r = f () in
    (r, delta before (Gc.quick_stat ()))

  (* --- peak-heap watermark sampler --- *)

  let peak = ref 0
  let alarm : Gc.alarm option ref = ref None

  let sample () =
    let hw = (Gc.quick_stat ()).Gc.heap_words in
    if hw > !peak then peak := hw

  let start_sampler () =
    sample ();
    match !alarm with Some _ -> () | None -> alarm := Some (Gc.create_alarm sample)

  let stop_sampler () =
    match !alarm with
    | None -> ()
    | Some a ->
        Gc.delete_alarm a;
        alarm := None

  let reset_peak () =
    peak := 0;
    sample ()

  let peak_heap_words () =
    sample ();
    !peak

  (* --- gauge publication --- *)

  let set name v = Metrics.set (Metrics.gauge name) v

  let publish_values ~prefix ~minor_words ~promoted_words ~major_words ~minor_collections
      ~major_collections ~compactions ~heap_words ~top_heap_words =
    let p s = prefix ^ "." ^ s in
    set (p "minor_words") minor_words;
    set (p "promoted_words") promoted_words;
    set (p "major_words") major_words;
    set (p "minor_collections") (float_of_int minor_collections);
    set (p "major_collections") (float_of_int major_collections);
    set (p "compactions") (float_of_int compactions);
    set (p "heap_words") (float_of_int heap_words);
    set (p "top_heap_words") (float_of_int top_heap_words);
    set (p "peak_heap_words") (float_of_int (peak_heap_words ()))

  let publish ?(prefix = "gc") d =
    publish_values ~prefix ~minor_words:d.minor_words ~promoted_words:d.promoted_words
      ~major_words:d.major_words ~minor_collections:d.minor_collections
      ~major_collections:d.major_collections ~compactions:d.compactions
      ~heap_words:d.heap_words ~top_heap_words:d.top_heap_words

  let publish_current ?(prefix = "gc") () =
    let s = Gc.quick_stat () in
    publish_values ~prefix ~minor_words:s.Gc.minor_words ~promoted_words:s.Gc.promoted_words
      ~major_words:s.Gc.major_words ~minor_collections:s.Gc.minor_collections
      ~major_collections:s.Gc.major_collections ~compactions:s.Gc.compactions
      ~heap_words:s.Gc.heap_words ~top_heap_words:s.Gc.top_heap_words
end

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

module Export = struct
  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float v =
    if Float.is_finite v then Printf.sprintf "%.17g" v
    else "null" (* JSON has no Inf/NaN literal *)

  let to_json () =
    let b = Buffer.create 4096 in
    let comma first = if !first then first := false else Buffer.add_string b "," in
    Buffer.add_string b "{\n  \"counters\": {";
    let first = ref true in
    List.iter
      (fun (name, e) ->
        match e with
        | Metrics.Counter c ->
            comma first;
            Buffer.add_string b
              (Printf.sprintf "\n    \"%s\": %d" (json_escape name) (Metrics.counter_value c))
        | _ -> ())
      (Metrics.entries ());
    Buffer.add_string b "\n  },\n  \"gauges\": {";
    let first = ref true in
    List.iter
      (fun (name, e) ->
        match e with
        | Metrics.Gauge g ->
            comma first;
            Buffer.add_string b
              (Printf.sprintf "\n    \"%s\": %s" (json_escape name)
                 (json_float (Metrics.gauge_value g)))
        | _ -> ())
      (Metrics.entries ());
    Buffer.add_string b "\n  },\n  \"histograms\": {";
    let first = ref true in
    List.iter
      (fun (name, e) ->
        match e with
        | Metrics.Histogram h ->
            comma first;
            Buffer.add_string b
              (Printf.sprintf "\n    \"%s\": { \"count\": %d, \"sum\": %s, \"buckets\": ["
                 (json_escape name) (Metrics.histogram_count h)
                 (json_float (Metrics.histogram_sum h)));
            let bfirst = ref true in
            Array.iter
              (fun (le, count) ->
                comma bfirst;
                let le_str =
                  if Float.is_finite le then json_float le else "\"+Inf\""
                in
                Buffer.add_string b (Printf.sprintf "{ \"le\": %s, \"count\": %d }" le_str count))
              (Metrics.bucket_counts h);
            Buffer.add_string b "] }"
        | _ -> ())
      (Metrics.entries ());
    Buffer.add_string b "\n  }";
    (match Trace.roots () with
    | [] -> ()
    | roots ->
        Buffer.add_string b ",\n  \"spans\": [";
        let rec emit_span first sp =
          comma first;
          Buffer.add_string b
            (Printf.sprintf "{ \"name\": \"%s\", \"duration_ns\": %Ld, \"children\": ["
               (json_escape (Trace.name sp)) (Trace.duration_ns sp));
          let cfirst = ref true in
          List.iter (emit_span cfirst) (Trace.children sp);
          Buffer.add_string b "] }"
        in
        let sfirst = ref true in
        List.iter (emit_span sfirst) roots;
        Buffer.add_string b "]");
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  (* Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. *)
  let prom_name s =
    let s = String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_') s in
    if s = "" || match s.[0] with '0' .. '9' -> true | _ -> false then "_" ^ s else s

  let prom_float v =
    if v = infinity then "+Inf"
    else if v = neg_infinity then "-Inf"
    else if Float.is_nan v then "NaN"
    else
      (* Shortest representation that round-trips, so bucket labels read
         as "0.005" rather than "0.0050000000000000001". *)
      let s = Printf.sprintf "%g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v

  let to_prometheus () =
    let b = Buffer.create 4096 in
    List.iter
      (fun (name, e) ->
        let pname = prom_name name in
        match e with
        | Metrics.Counter c ->
            Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pname);
            Buffer.add_string b (Printf.sprintf "%s %d\n" pname (Metrics.counter_value c))
        | Metrics.Gauge g ->
            Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pname);
            Buffer.add_string b (Printf.sprintf "%s %s\n" pname (prom_float (Metrics.gauge_value g)))
        | Metrics.Histogram h ->
            Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
            let cumulative = ref 0 in
            Array.iter
              (fun (le, count) ->
                cumulative := !cumulative + count;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname (prom_float le) !cumulative))
              (Metrics.bucket_counts h);
            Buffer.add_string b
              (Printf.sprintf "%s_sum %s\n" pname (prom_float (Metrics.histogram_sum h)));
            Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname (Metrics.histogram_count h)))
      (Metrics.entries ());
    Buffer.contents b

  let pp_summary ppf () =
    let entries = Metrics.entries () in
    let width =
      List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 entries
    in
    let counters = List.filter (fun (_, e) -> match e with Metrics.Counter _ -> true | _ -> false) entries in
    let gauges = List.filter (fun (_, e) -> match e with Metrics.Gauge _ -> true | _ -> false) entries in
    let histograms = List.filter (fun (_, e) -> match e with Metrics.Histogram _ -> true | _ -> false) entries in
    Format.fprintf ppf "== metrics ==@\n";
    if counters <> [] then begin
      Format.fprintf ppf "counters:@\n";
      List.iter
        (fun (name, e) ->
          match e with
          | Metrics.Counter c ->
              Format.fprintf ppf "  %-*s %d@\n" width name (Metrics.counter_value c)
          | _ -> ())
        counters
    end;
    if gauges <> [] then begin
      Format.fprintf ppf "gauges:@\n";
      List.iter
        (fun (name, e) ->
          match e with
          | Metrics.Gauge g ->
              Format.fprintf ppf "  %-*s %g@\n" width name (Metrics.gauge_value g)
          | _ -> ())
        gauges
    end;
    if histograms <> [] then begin
      Format.fprintf ppf "histograms:@\n";
      List.iter
        (fun (name, e) ->
          match e with
          | Metrics.Histogram h ->
              let n = Metrics.histogram_count h in
              let mean = if n = 0 then 0.0 else Metrics.histogram_sum h /. float_of_int n in
              Format.fprintf ppf "  %-*s n=%d mean=%.6g sum=%.6g@\n" width name n mean
                (Metrics.histogram_sum h)
          | _ -> ())
        histograms
    end;
    match Trace.roots () with
    | [] -> ()
    | _ ->
        Format.fprintf ppf "spans:@\n";
        Trace.pp ppf ()

  let summary () = Format.asprintf "%a" pp_summary ()

  let write_file path contents =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
end

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

module Logging = struct
  let level_of_verbosity n =
    if n <= 0 then Some Logs.Warning else if n = 1 then Some Logs.Info else Some Logs.Debug

  let setup ?(level = Some Logs.Warning) () =
    let level =
      match Sys.getenv_opt "CLUSEQ_LOG" with
      | Some s -> (
          match Logs.level_of_string (String.trim s) with Ok l -> l | Error _ -> level)
      | None -> level
    in
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ~app:Fmt.stderr ~dst:Fmt.stderr ())
end

let enable_all () =
  Metrics.enable ();
  Trace.enable ()

let reset () =
  Metrics.reset ();
  Trace.reset ()
