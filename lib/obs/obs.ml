(* Process-global observability: a metrics registry (counters, gauges,
   fixed-bucket histograms), span-based tracing on the monotonic clock,
   and exporters (human summary, JSON, Prometheus text format).

   Counters and histograms are atomic: the Par worker domains score
   sequences through instrumented read paths (Similarity.score,
   Pst.log_prob) and any domain owning a pool may observe latencies, so
   neither increments nor bucket updates may race. Gauges, tracing, and
   registration remain main-domain mutable state — the serial-mutate
   side of the pipeline is the only writer. Instrumented code pays one
   [bool ref] dereference per event while disabled, so leaving call
   sites permanently instrumented is free.

   The flight recorder ([Recorder]) extends visibility to the worker
   domains themselves: each domain owns a fixed-capacity event ring
   (begin/end/instant, interned name, monotonic timestamp) written
   without locks; the main domain merges all rings at export time. The
   [Runtime_bridge] interleaves GC and domain-lifecycle events from the
   OCaml runtime into the same timeline, and [Export.to_chrome_trace]
   renders everything as Chrome trace-format JSON for Perfetto. *)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  let enabled = ref false
  let enable () = enabled := true
  let disable () = enabled := false
  let is_enabled () = !enabled

  type counter = { c_name : string; c_value : int Atomic.t }
  type gauge = { g_name : string; mutable g_value : float }

  (* Histograms are observable from any domain (the pool submitter in
     [Par.run_job] may not be the main domain in tests): bucket counts
     and the total count are atomic increments, and the float sum is a
     CAS retry loop. Readers may see a momentarily torn (sum, count)
     pair mid-observation; exporters only run after parallel regions
     complete, so published snapshots are consistent. *)
  type histogram = {
    h_name : string;
    bounds : float array; (* strictly increasing bucket upper bounds *)
    counts : int Atomic.t array; (* length bounds + 1; last is the +Inf bucket *)
    h_sum : float Atomic.t;
    h_count : int Atomic.t;
  }

  type entry = Counter of counter | Gauge of gauge | Histogram of histogram

  let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

  let kind_mismatch name =
    invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered with a different kind" name)

  let counter name =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> c
    | Some _ -> kind_mismatch name
    | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add registry name (Counter c);
        c

  let incr ?(by = 1) c = if !enabled then ignore (Atomic.fetch_and_add c.c_value by)
  let counter_value c = Atomic.get c.c_value
  let counter_name c = c.c_name

  let gauge name =
    match Hashtbl.find_opt registry name with
    | Some (Gauge g) -> g
    | Some _ -> kind_mismatch name
    | None ->
        let g = { g_name = name; g_value = 0.0 } in
        Hashtbl.add registry name (Gauge g);
        g

  let set g v = if !enabled then g.g_value <- v
  let gauge_value g = g.g_value
  let gauge_name g = g.g_name

  (* Log-ish spacing from 1µs to 1min: latency histograms over the whole
     range the pipeline produces, from single similarity scans to full
     clustering phases. *)
  let default_time_buckets =
    [| 1e-6; 1e-5; 1e-4; 1e-3; 5e-3; 1e-2; 5e-2; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]

  let histogram ?(buckets = default_time_buckets) name =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some _ -> kind_mismatch name
    | None ->
        let n = Array.length buckets in
        if n = 0 then invalid_arg "Obs.Metrics.histogram: empty buckets";
        for i = 1 to n - 1 do
          if buckets.(i) <= buckets.(i - 1) then
            invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing"
        done;
        let h =
          { h_name = name; bounds = Array.copy buckets;
            counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.0; h_count = Atomic.make 0 }
        in
        Hashtbl.add registry name (Histogram h);
        h

  let rec atomic_add_float a v =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. v)) then atomic_add_float a v

  let observe h v =
    if !enabled then begin
      let n = Array.length h.bounds in
      let i = ref 0 in
      while !i < n && v > h.bounds.(!i) do
        i := !i + 1
      done;
      ignore (Atomic.fetch_and_add h.counts.(!i) 1);
      atomic_add_float h.h_sum v;
      ignore (Atomic.fetch_and_add h.h_count 1)
    end

  let histogram_count h = Atomic.get h.h_count
  let histogram_sum h = Atomic.get h.h_sum
  let histogram_name h = h.h_name

  let bucket_counts h =
    let n = Array.length h.bounds in
    Array.init (n + 1) (fun i ->
        ((if i = n then infinity else h.bounds.(i)), Atomic.get h.counts.(i)))

  (* Quantile estimate from the bucket histogram: find the bucket holding
     the rank-q observation and interpolate linearly inside it (lower
     edge 0 for the first bucket). The +Inf bucket has no upper edge, so
     a rank landing there reports the last finite bound — a documented
     floor, not an extrapolation. *)
  let quantile h q =
    if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
      invalid_arg "Obs.Metrics.quantile: q must be in [0, 1]";
    let total = histogram_count h in
    if total = 0 then Float.nan
    else begin
      let n = Array.length h.bounds in
      let rank = q *. float_of_int total in
      let cum = ref 0.0 and i = ref 0 and res = ref h.bounds.(n - 1) and found = ref false in
      while (not !found) && !i <= n do
        let c = float_of_int (Atomic.get h.counts.(!i)) in
        if (!cum +. c >= rank && c > 0.0) || !i = n then begin
          if !i = n then res := h.bounds.(n - 1)
          else begin
            let lo = if !i = 0 then 0.0 else h.bounds.(!i - 1) in
            let hi = h.bounds.(!i) in
            let frac = if c = 0.0 then 1.0 else (rank -. !cum) /. c in
            res := lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 frac))
          end;
          found := true
        end
        else begin
          cum := !cum +. c;
          i := !i + 1
        end
      done;
      !res
    end

  let reset () =
    Hashtbl.iter
      (fun _ e ->
        match e with
        | Counter c -> Atomic.set c.c_value 0
        | Gauge g -> g.g_value <- 0.0
        | Histogram h ->
            Array.iter (fun a -> Atomic.set a 0) h.counts;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_count 0)
      registry

  (* Registered entries sorted by name, for the exporters. *)
  let entries () =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  let enabled = ref false
  let enable () = enabled := true
  let disable () = enabled := false
  let is_enabled () = !enabled

  type span = {
    span_name : string;
    start_ns : int64;
    mutable stop_ns : int64; (* 0 while the span is open *)
    mutable rev_children : span list;
  }

  let roots_rev : span list ref = ref []
  let stack : span list ref = ref []
  let start_hooks : (span -> unit) list ref = ref []
  let stop_hooks : (span -> unit) list ref = ref []

  let on_start f = start_hooks := !start_hooks @ [ f ]
  let on_stop f = stop_hooks := !stop_hooks @ [ f ]
  let clear_hooks () =
    start_hooks := [];
    stop_hooks := []

  let name sp = sp.span_name
  let children sp = List.rev sp.rev_children
  let start_ns sp = sp.start_ns

  let duration_ns sp =
    Int64.sub (if sp.stop_ns = 0L then Timer.now_ns () else sp.stop_ns) sp.start_ns

  let duration_s sp = Int64.to_float (duration_ns sp) /. 1e9

  let with_span name f =
    (* Span state is a pair of global refs, so only the main domain may
       record spans: a worker-domain span (e.g. inside a shard task)
       degrades to a plain call instead of corrupting the stack. *)
    if (not !enabled) || not (Domain.is_main_domain ()) then f ()
    else begin
      let sp = { span_name = name; start_ns = Timer.now_ns (); stop_ns = 0L; rev_children = [] } in
      (match !stack with
      | parent :: _ -> parent.rev_children <- sp :: parent.rev_children
      | [] -> roots_rev := sp :: !roots_rev);
      stack := sp :: !stack;
      List.iter (fun h -> h sp) !start_hooks;
      Fun.protect
        ~finally:(fun () ->
          sp.stop_ns <- Timer.now_ns ();
          (match !stack with s :: rest when s == sp -> stack := rest | _ -> ());
          List.iter (fun h -> h sp) !stop_hooks)
        f
    end

  let roots () = List.rev !roots_rev

  let reset () =
    roots_rev := [];
    stack := []

  let pp ppf () =
    let rec go indent sp =
      Format.fprintf ppf "%s%s  %.3f ms@\n" (String.make indent ' ') sp.span_name
        (duration_s sp *. 1e3);
      List.iter (go (indent + 2)) (children sp)
    in
    List.iter (go 0) (roots ())
end

(* ------------------------------------------------------------------ *)
(* Flight recorder: per-domain event rings                             *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  (* Read cross-domain without synchronization, like [Metrics.enabled]:
     enable/disable happen on the main domain outside parallel regions,
     so workers observe a stable value while jobs run. *)
  let enabled = ref false
  let enable () = enabled := true
  let disable () = enabled := false
  let is_enabled () = !enabled

  (* --- interned event names --- *)

  (* Events store an integer name id so the hot path writes four ints
     and nothing else. Interning is find-or-create under a mutex — call
     sites intern once at module initialization, never per event. *)
  type name = int

  let intern_mutex = Mutex.create ()
  let name_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
  let name_arr : string array ref = ref (Array.make 8 "")
  let n_names = ref 0

  let intern s =
    Mutex.lock intern_mutex;
    let id =
      match Hashtbl.find_opt name_tbl s with
      | Some id -> id
      | None ->
          let id = !n_names in
          if id = Array.length !name_arr then begin
            let bigger = Array.make (2 * id) "" in
            Array.blit !name_arr 0 bigger 0 id;
            name_arr := bigger
          end;
          !name_arr.(id) <- s;
          Hashtbl.add name_tbl s id;
          n_names := id + 1;
          id
    in
    Mutex.unlock intern_mutex;
    id

  let name_string id = !name_arr.(id)

  (* --- rings --- *)

  (* Fixed-capacity ring per domain, created lazily via DLS on the
     domain's first event. Only the owning domain writes; the main
     domain reads after parallel regions complete (the pool joins every
     chunk before a job returns, so reads never race live writes).
     Capacity is a power of two so the slot index is a mask. Timestamps
     are [Timer.now_ns] truncated to int — CLOCK_MONOTONIC ns since
     boot fits in 62 bits for ~146 years, and an int store allocates
     nothing, keeping the hot path allocation-free. *)
  type ring = {
    r_domain : int;
    r_cap : int;
    r_ts : int array;
    r_kind : int array; (* 0 begin, 1 end, 2 instant *)
    r_name : int array;
    r_arg : int array;
    mutable r_next : int; (* total events ever written; slot = next land (cap-1) *)
  }

  let default_capacity = 1 lsl 16

  let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

  let capacity = ref default_capacity

  let set_capacity n =
    if n < 16 then invalid_arg "Obs.Recorder.set_capacity: capacity must be >= 16";
    capacity := pow2_at_least n 16

  let rings : ring list ref = ref []
  let rings_mutex = Mutex.create ()

  let make_ring () =
    let cap = !capacity in
    let r =
      {
        r_domain = (Domain.self () :> int);
        r_cap = cap;
        r_ts = Array.make cap 0;
        r_kind = Array.make cap 0;
        r_name = Array.make cap 0;
        r_arg = Array.make cap 0;
        r_next = 0;
      }
    in
    Mutex.lock rings_mutex;
    rings := r :: !rings;
    Mutex.unlock rings_mutex;
    r

  let dls_key : ring Domain.DLS.key = Domain.DLS.new_key make_ring

  let emit kind name arg =
    let r = Domain.DLS.get dls_key in
    let i = r.r_next land (r.r_cap - 1) in
    r.r_ts.(i) <- Int64.to_int (Timer.now_ns ());
    r.r_kind.(i) <- kind;
    r.r_name.(i) <- name;
    r.r_arg.(i) <- arg;
    r.r_next <- r.r_next + 1

  let begin_ ?(arg = 0) n = if !enabled then emit 0 n arg
  let end_ n = if !enabled then emit 1 n 0
  let instant ?(arg = 0) n = if !enabled then emit 2 n arg

  let with_event ?arg n f =
    if not !enabled then f ()
    else begin
      begin_ ?arg n;
      Fun.protect ~finally:(fun () -> end_ n) f
    end

  (* --- draining (main domain, outside parallel regions) --- *)

  type kind = Begin | End | Instant

  type event = { domain : int; ts_ns : int64; kind : kind; ev_name : string; arg : int }

  let snapshot_rings () =
    Mutex.lock rings_mutex;
    let rs = !rings in
    Mutex.unlock rings_mutex;
    rs

  let dropped () =
    List.fold_left (fun acc r -> acc + max 0 (r.r_next - r.r_cap)) 0 (snapshot_rings ())

  let events () =
    let of_ring r =
      let live = min r.r_next r.r_cap in
      let first = r.r_next - live in
      List.init live (fun k ->
          let i = (first + k) land (r.r_cap - 1) in
          {
            domain = r.r_domain;
            ts_ns = Int64.of_int r.r_ts.(i);
            kind = (match r.r_kind.(i) with 0 -> Begin | 1 -> End | _ -> Instant);
            ev_name = name_string r.r_name.(i);
            arg = r.r_arg.(i);
          })
    in
    snapshot_rings ()
    |> List.concat_map of_ring
    |> List.stable_sort (fun a b ->
           let c = Int64.compare a.ts_ns b.ts_ns in
           if c <> 0 then c else compare a.domain b.domain)

  let reset () = List.iter (fun r -> r.r_next <- 0) (snapshot_rings ())
end

(* ------------------------------------------------------------------ *)
(* Decision-provenance journal                                         *)
(* ------------------------------------------------------------------ *)

module Journal = struct
  (* Append-only JSONL writer for model decisions. Single-writer by
     contract: the pipeline only emits from its serial main-domain
     sections, so plain refs suffice (same discipline as the auditor
     hook in Cluseq). Records are buffered and flushed in batches; a
     failing flush drops the whole batch and counts it, mirroring the
     Recorder's wrap accounting — observability must never abort the
     run it observes. *)

  type state = {
    oc : out_channel;
    path : string;
    buf : Buffer.t;
    mutable buffered : int;  (* records currently sitting in [buf] *)
    mutable seq : int;  (* next record ordinal in this file *)
  }

  let flush_threshold = 64 * 1024
  let enabled = ref false
  let state : state option ref = ref None

  (* Survive [close] so CLI/bench exit paths can still report totals. *)
  let n_written = ref 0
  let n_dropped = ref 0

  let is_enabled () = !enabled

  let flush_state st =
    if st.buffered > 0 then begin
      (try
         output_string st.oc (Buffer.contents st.buf);
         Stdlib.flush st.oc;
         n_written := !n_written + st.buffered
       with Sys_error _ -> n_dropped := !n_dropped + st.buffered);
      Buffer.clear st.buf;
      st.buffered <- 0
    end

  let close () =
    match !state with
    | None -> ()
    | Some st ->
        enabled := false;
        state := None;
        flush_state st;
        (try close_out st.oc with Sys_error _ -> ())

  let open_file path =
    close ();
    let oc = open_out path in
    state := Some { oc; path; buf = Buffer.create (flush_threshold + 4096); buffered = 0; seq = 0 };
    enabled := true

  let current_path () = Option.map (fun st -> st.path) !state

  let emit event fields =
    if !enabled then
      match !state with
      | None -> ()
      | Some st ->
          (* ts_ns as a JSON number: exact below 2^53 ns of uptime
             (~104 days), which covers any run we journal. *)
          (* Envelope keys are chosen not to collide with event fields
             ("rec", not "seq" — events about sequences carry a "seq"
             field of their own). *)
          let record =
            Bench_json.Obj
              (("rec", Bench_json.Num (float_of_int st.seq))
              :: ("ts_ns", Bench_json.Num (Int64.to_float (Timer.now_ns ())))
              :: ("event", Bench_json.Str event)
              :: fields ())
          in
          st.seq <- st.seq + 1;
          Buffer.add_string st.buf (Bench_json.to_compact_string record);
          Buffer.add_char st.buf '\n';
          st.buffered <- st.buffered + 1;
          if Buffer.length st.buf >= flush_threshold then flush_state st

  let flush () = match !state with None -> () | Some st -> flush_state st

  (* The journal is single-writer by contract, so a parallel fan-out
     (shard orchestration) suspends emission around the parallel region:
     [enabled] is cleared on the main domain before workers start (the
     pool's mutex publishes the write), workers see emission disabled,
     and the orchestrator journals its own events after restore. *)
  let with_suspended f =
    let was = !enabled in
    enabled := false;
    Fun.protect ~finally:(fun () -> enabled := was) f

  let events_written () = !n_written
  let dropped () = !n_dropped

  (* ---- reading journals back ---- *)

  type entry = {
    j_seq : int;
    j_ts_ns : int64;
    j_event : string;
    j_fields : (string * Bench_json.t) list;
  }

  let entry_of_json json =
    match
      ( Option.bind (Bench_json.member "rec" json) Bench_json.to_int,
        Option.bind (Bench_json.member "ts_ns" json) Bench_json.to_float,
        Option.bind (Bench_json.member "event" json) Bench_json.to_str )
    with
    | Some seq, Some ts, Some event ->
        let fields =
          List.filter
            (fun (k, _) -> k <> "rec" && k <> "ts_ns" && k <> "event")
            (Bench_json.obj_items json)
        in
        Some { j_seq = seq; j_ts_ns = Int64.of_float ts; j_event = event; j_fields = fields }
    | _ -> None

  let read_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | contents ->
        let lines = String.split_on_char '\n' contents in
        let rec go lineno acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest ->
              if String.trim line = "" then go (lineno + 1) acc rest
              else begin
                match Bench_json.parse line with
                | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
                | Ok json -> (
                    match entry_of_json json with
                    | None -> Error (Printf.sprintf "line %d: not a journal record" lineno)
                    | Some e -> go (lineno + 1) (e :: acc) rest)
              end
        in
        go 1 [] lines
end

(* ------------------------------------------------------------------ *)
(* Runtime_events bridge                                               *)
(* ------------------------------------------------------------------ *)

module Runtime_bridge = struct
  (* Subscribes to the stdlib [Runtime_events] ring buffers and buffers
     GC begin/end plus domain-lifecycle events for the trace exporter.
     All callbacks run on the domain calling [poll] (the main domain),
     so plain refs suffice. Timestamps come from the runtime's
     CLOCK_MONOTONIC — the same clock as [Timer.now_ns] — so they
     interleave directly with recorder events and spans. *)

  type kind = Begin | End | Instant

  type event = { rb_domain : int; rb_ts : int64; rb_name : string; rb_kind : kind }

  let events_rev : event list ref = ref []
  let n_events = ref 0
  let max_events = 200_000
  let n_dropped = ref 0
  let cursor : Runtime_events.cursor option ref = ref None

  let push e =
    if !n_events >= max_events then incr n_dropped
    else begin
      events_rev := e :: !events_rev;
      incr n_events
    end

  (* Top-level GC phases only: the runtime also emits fine-grained
     sub-phases (minor roots, ephe sweeps, barriers) that would swamp a
     clustering trace without adding signal at this zoom level. *)
  let interesting (p : Runtime_events.runtime_phase) =
    match p with
    | EV_MINOR | EV_MAJOR | EV_MAJOR_SLICE | EV_MAJOR_GC_STW | EV_EXPLICIT_GC_FULL_MAJOR
    | EV_EXPLICIT_GC_COMPACT | EV_EXPLICIT_GC_MAJOR ->
        true
    | _ -> false

  let runtime_ev kind ring_id ts phase =
    if interesting phase then
      push
        {
          rb_domain = ring_id;
          rb_ts = Runtime_events.Timestamp.to_int64 ts;
          rb_name = "gc." ^ Runtime_events.runtime_phase_name phase;
          rb_kind = kind;
        }

  let lifecycle_ev ring_id ts (l : Runtime_events.lifecycle) _arg =
    push
      {
        rb_domain = ring_id;
        rb_ts = Runtime_events.Timestamp.to_int64 ts;
        rb_name = "rt." ^ Runtime_events.lifecycle_name l;
        rb_kind = Instant;
      }

  let lost_ev ring_id n =
    n_dropped := !n_dropped + n;
    ignore ring_id

  let callbacks =
    lazy
      (Runtime_events.Callbacks.create ~runtime_begin:(runtime_ev Begin)
         ~runtime_end:(runtime_ev End) ~lifecycle:lifecycle_ev ~lost_events:lost_ev ())

  let is_active () = !cursor <> None

  (* [Runtime_events.start] creates a <pid>.events ring file (in
     OCAML_RUNTIME_EVENTS_DIR or the cwd); a read-only cwd makes it
     raise, in which case the bridge degrades to inactive rather than
     failing the run. *)
  let start () =
    match !cursor with
    | Some _ -> true
    | None -> (
        try
          Runtime_events.start ();
          cursor := Some (Runtime_events.create_cursor None);
          true
        with _ -> false)

  let poll () =
    match !cursor with
    | None -> 0
    | Some c -> Runtime_events.read_poll c (Lazy.force callbacks) None

  let stop () =
    match !cursor with
    | None -> ()
    | Some c ->
        cursor := None;
        (try Runtime_events.free_cursor c with _ -> ());
        (try Runtime_events.pause () with _ -> ())

  let events () = List.rev !events_rev
  let dropped () = !n_dropped

  let reset () =
    events_rev := [];
    n_events := 0;
    n_dropped := 0
end

(* ------------------------------------------------------------------ *)
(* Resource profiling                                                  *)
(* ------------------------------------------------------------------ *)

module Resource = struct
  type gc_delta = {
    minor_words : float;
    promoted_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
    compactions : int;
    heap_words : int;
    top_heap_words : int;
  }

  let zero =
    {
      minor_words = 0.0;
      promoted_words = 0.0;
      major_words = 0.0;
      minor_collections = 0;
      major_collections = 0;
      compactions = 0;
      heap_words = 0;
      top_heap_words = 0;
    }

  let add a b =
    {
      minor_words = a.minor_words +. b.minor_words;
      promoted_words = a.promoted_words +. b.promoted_words;
      major_words = a.major_words +. b.major_words;
      minor_collections = a.minor_collections + b.minor_collections;
      major_collections = a.major_collections + b.major_collections;
      compactions = a.compactions + b.compactions;
      heap_words = a.heap_words + b.heap_words;
      top_heap_words = a.top_heap_words + b.top_heap_words;
    }

  let delta (before : Gc.stat) (after : Gc.stat) =
    {
      minor_words = after.Gc.minor_words -. before.Gc.minor_words;
      promoted_words = after.Gc.promoted_words -. before.Gc.promoted_words;
      major_words = after.Gc.major_words -. before.Gc.major_words;
      minor_collections = after.Gc.minor_collections - before.Gc.minor_collections;
      major_collections = after.Gc.major_collections - before.Gc.major_collections;
      compactions = after.Gc.compactions - before.Gc.compactions;
      heap_words = after.Gc.heap_words - before.Gc.heap_words;
      top_heap_words = after.Gc.top_heap_words - before.Gc.top_heap_words;
    }

  let measure f =
    let before = Gc.quick_stat () in
    let r = f () in
    (r, delta before (Gc.quick_stat ()))

  (* --- peak-heap watermark sampler --- *)

  let peak = ref 0
  let alarm : Gc.alarm option ref = ref None

  let sample () =
    let hw = (Gc.quick_stat ()).Gc.heap_words in
    if hw > !peak then peak := hw

  let start_sampler () =
    sample ();
    match !alarm with Some _ -> () | None -> alarm := Some (Gc.create_alarm sample)

  let stop_sampler () =
    match !alarm with
    | None -> ()
    | Some a ->
        Gc.delete_alarm a;
        alarm := None

  let reset_peak () =
    peak := 0;
    sample ()

  let peak_heap_words () =
    sample ();
    !peak

  (* --- gauge publication --- *)

  let set name v = Metrics.set (Metrics.gauge name) v

  let publish_values ~prefix ~minor_words ~promoted_words ~major_words ~minor_collections
      ~major_collections ~compactions ~heap_words ~top_heap_words =
    let p s = prefix ^ "." ^ s in
    set (p "minor_words") minor_words;
    set (p "promoted_words") promoted_words;
    set (p "major_words") major_words;
    set (p "minor_collections") (float_of_int minor_collections);
    set (p "major_collections") (float_of_int major_collections);
    set (p "compactions") (float_of_int compactions);
    set (p "heap_words") (float_of_int heap_words);
    set (p "top_heap_words") (float_of_int top_heap_words);
    set (p "peak_heap_words") (float_of_int (peak_heap_words ()))

  let publish ?(prefix = "gc") d =
    publish_values ~prefix ~minor_words:d.minor_words ~promoted_words:d.promoted_words
      ~major_words:d.major_words ~minor_collections:d.minor_collections
      ~major_collections:d.major_collections ~compactions:d.compactions
      ~heap_words:d.heap_words ~top_heap_words:d.top_heap_words

  let publish_current ?(prefix = "gc") () =
    let s = Gc.quick_stat () in
    publish_values ~prefix ~minor_words:s.Gc.minor_words ~promoted_words:s.Gc.promoted_words
      ~major_words:s.Gc.major_words ~minor_collections:s.Gc.minor_collections
      ~major_collections:s.Gc.major_collections ~compactions:s.Gc.compactions
      ~heap_words:s.Gc.heap_words ~top_heap_words:s.Gc.top_heap_words
end

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

module Export = struct
  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let json_float v =
    if Float.is_finite v then Printf.sprintf "%.17g" v
    else "null" (* JSON has no Inf/NaN literal *)

  let to_json () =
    let b = Buffer.create 4096 in
    let comma first = if !first then first := false else Buffer.add_string b "," in
    Buffer.add_string b "{\n  \"counters\": {";
    let first = ref true in
    List.iter
      (fun (name, e) ->
        match e with
        | Metrics.Counter c ->
            comma first;
            Buffer.add_string b
              (Printf.sprintf "\n    \"%s\": %d" (json_escape name) (Metrics.counter_value c))
        | _ -> ())
      (Metrics.entries ());
    Buffer.add_string b "\n  },\n  \"gauges\": {";
    let first = ref true in
    List.iter
      (fun (name, e) ->
        match e with
        | Metrics.Gauge g ->
            comma first;
            Buffer.add_string b
              (Printf.sprintf "\n    \"%s\": %s" (json_escape name)
                 (json_float (Metrics.gauge_value g)))
        | _ -> ())
      (Metrics.entries ());
    Buffer.add_string b "\n  },\n  \"histograms\": {";
    let first = ref true in
    List.iter
      (fun (name, e) ->
        match e with
        | Metrics.Histogram h ->
            comma first;
            (* An empty histogram has no rank-q observation: omit the
               quantile keys rather than fabricate "null" estimates —
               consumers can then distinguish "no data" from "quantile
               happens to be unrepresentable". *)
            let quantiles =
              if Metrics.histogram_count h = 0 then ""
              else
                Printf.sprintf " \"p50\": %s, \"p95\": %s, \"p99\": %s,"
                  (json_float (Metrics.quantile h 0.50))
                  (json_float (Metrics.quantile h 0.95))
                  (json_float (Metrics.quantile h 0.99))
            in
            Buffer.add_string b
              (Printf.sprintf "\n    \"%s\": { \"count\": %d, \"sum\": %s,%s \"buckets\": ["
                 (json_escape name) (Metrics.histogram_count h)
                 (json_float (Metrics.histogram_sum h))
                 quantiles);
            let bfirst = ref true in
            Array.iter
              (fun (le, count) ->
                comma bfirst;
                let le_str =
                  if Float.is_finite le then json_float le else "\"+Inf\""
                in
                Buffer.add_string b (Printf.sprintf "{ \"le\": %s, \"count\": %d }" le_str count))
              (Metrics.bucket_counts h);
            Buffer.add_string b "] }"
        | _ -> ())
      (Metrics.entries ());
    Buffer.add_string b "\n  }";
    (match Trace.roots () with
    | [] -> ()
    | roots ->
        Buffer.add_string b ",\n  \"spans\": [";
        let rec emit_span first sp =
          comma first;
          Buffer.add_string b
            (Printf.sprintf "{ \"name\": \"%s\", \"duration_ns\": %Ld, \"children\": ["
               (json_escape (Trace.name sp)) (Trace.duration_ns sp));
          let cfirst = ref true in
          List.iter (emit_span cfirst) (Trace.children sp);
          Buffer.add_string b "] }"
        in
        let sfirst = ref true in
        List.iter (emit_span sfirst) roots;
        Buffer.add_string b "]");
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  (* Chrome trace-format JSON (https://ui.perfetto.dev loads it): one
     merged timeline of the main-domain span tree (ph "X" complete
     events), every domain ring's begin/end/instant events, and the
     Runtime_bridge's GC/lifecycle events. All three sources timestamp
     with CLOCK_MONOTONIC ns; we rebase to the earliest event and emit
     microseconds, the format's unit. pid is always 0; tid is the OCaml
     domain id, so each domain renders as its own track. *)
  let to_chrome_trace () =
    let rec_events = Recorder.events () in
    let rt_events = Runtime_bridge.events () in
    let spans = Trace.roots () in
    let min64 a b = if Int64.compare a b <= 0 then a else b in
    let t0 =
      let acc = ref Int64.max_int in
      List.iter (fun sp -> acc := min64 !acc (Trace.start_ns sp)) spans;
      List.iter (fun (e : Recorder.event) -> acc := min64 !acc e.ts_ns) rec_events;
      List.iter (fun (e : Runtime_bridge.event) -> acc := min64 !acc e.rb_ts) rt_events;
      if !acc = Int64.max_int then 0L else !acc
    in
    let us ts = Int64.to_float (Int64.sub ts t0) /. 1e3 in
    let b = Buffer.create 8192 in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let comma () = if !first then first := false else Buffer.add_string b ",\n" in
    comma ();
    Buffer.add_string b
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"cluseq\"}}";
    (* One thread_name metadata record per domain that appears anywhere. *)
    let tids = Hashtbl.create 8 in
    Hashtbl.replace tids 0 ();
    List.iter (fun (e : Recorder.event) -> Hashtbl.replace tids e.domain ()) rec_events;
    List.iter (fun (e : Runtime_bridge.event) -> Hashtbl.replace tids e.rb_domain ()) rt_events;
    Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
    |> List.sort compare
    |> List.iter (fun tid ->
           comma ();
           Buffer.add_string b
             (Printf.sprintf
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
                tid
                (if tid = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" tid)));
    let rec emit_span sp =
      comma ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":%s,\"dur\":%s}"
           (json_escape (Trace.name sp))
           (json_float (us (Trace.start_ns sp)))
           (json_float (Int64.to_float (Trace.duration_ns sp) /. 1e3)));
      List.iter emit_span (Trace.children sp)
    in
    List.iter emit_span spans;
    List.iter
      (fun (e : Recorder.event) ->
        comma ();
        let common =
          Printf.sprintf "\"name\":\"%s\",\"cat\":\"ring\",\"pid\":0,\"tid\":%d,\"ts\":%s"
            (json_escape e.ev_name) e.domain
            (json_float (us e.ts_ns))
        in
        match e.kind with
        | Recorder.Begin ->
            Buffer.add_string b
              (Printf.sprintf "{%s,\"ph\":\"B\",\"args\":{\"arg\":%d}}" common e.arg)
        | Recorder.End -> Buffer.add_string b (Printf.sprintf "{%s,\"ph\":\"E\"}" common)
        | Recorder.Instant ->
            Buffer.add_string b
              (Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\",\"args\":{\"arg\":%d}}" common e.arg))
      rec_events;
    List.iter
      (fun (e : Runtime_bridge.event) ->
        comma ();
        let common =
          Printf.sprintf "\"name\":\"%s\",\"cat\":\"runtime\",\"pid\":0,\"tid\":%d,\"ts\":%s"
            (json_escape e.rb_name) e.rb_domain
            (json_float (us e.rb_ts))
        in
        match e.rb_kind with
        | Runtime_bridge.Begin -> Buffer.add_string b (Printf.sprintf "{%s,\"ph\":\"B\"}" common)
        | Runtime_bridge.End -> Buffer.add_string b (Printf.sprintf "{%s,\"ph\":\"E\"}" common)
        | Runtime_bridge.Instant ->
            Buffer.add_string b (Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\"}" common))
      rt_events;
    Buffer.add_string b "],\n\"displayTimeUnit\":\"ms\",\n";
    Buffer.add_string b
      (Printf.sprintf
         "\"otherData\":{\"clock\":\"CLOCK_MONOTONIC\",\"ring_events_dropped\":%d,\"runtime_events_dropped\":%d}}\n"
         (Recorder.dropped ()) (Runtime_bridge.dropped ()));
    Buffer.contents b

  (* Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. *)
  let prom_name s =
    let s = String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_') s in
    if s = "" || match s.[0] with '0' .. '9' -> true | _ -> false then "_" ^ s else s

  let prom_float v =
    if v = infinity then "+Inf"
    else if v = neg_infinity then "-Inf"
    else if Float.is_nan v then "NaN"
    else
      (* Shortest representation that round-trips, so bucket labels read
         as "0.005" rather than "0.0050000000000000001". *)
      let s = Printf.sprintf "%g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v

  let to_prometheus () =
    let b = Buffer.create 4096 in
    List.iter
      (fun (name, e) ->
        let pname = prom_name name in
        match e with
        | Metrics.Counter c ->
            Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pname);
            Buffer.add_string b (Printf.sprintf "%s %d\n" pname (Metrics.counter_value c))
        | Metrics.Gauge g ->
            Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pname);
            Buffer.add_string b (Printf.sprintf "%s %s\n" pname (prom_float (Metrics.gauge_value g)))
        | Metrics.Histogram h ->
            Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
            let cumulative = ref 0 in
            Array.iter
              (fun (le, count) ->
                cumulative := !cumulative + count;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname (prom_float le) !cumulative))
              (Metrics.bucket_counts h);
            Buffer.add_string b
              (Printf.sprintf "%s_sum %s\n" pname (prom_float (Metrics.histogram_sum h)));
            Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname (Metrics.histogram_count h)))
      (Metrics.entries ());
    Buffer.contents b

  let pp_summary ppf () =
    let entries = Metrics.entries () in
    let width =
      List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 entries
    in
    let counters = List.filter (fun (_, e) -> match e with Metrics.Counter _ -> true | _ -> false) entries in
    let gauges = List.filter (fun (_, e) -> match e with Metrics.Gauge _ -> true | _ -> false) entries in
    let histograms = List.filter (fun (_, e) -> match e with Metrics.Histogram _ -> true | _ -> false) entries in
    Format.fprintf ppf "== metrics ==@\n";
    if counters <> [] then begin
      Format.fprintf ppf "counters:@\n";
      List.iter
        (fun (name, e) ->
          match e with
          | Metrics.Counter c ->
              Format.fprintf ppf "  %-*s %d@\n" width name (Metrics.counter_value c)
          | _ -> ())
        counters
    end;
    if gauges <> [] then begin
      Format.fprintf ppf "gauges:@\n";
      List.iter
        (fun (name, e) ->
          match e with
          | Metrics.Gauge g ->
              Format.fprintf ppf "  %-*s %g@\n" width name (Metrics.gauge_value g)
          | _ -> ())
        gauges
    end;
    if histograms <> [] then begin
      Format.fprintf ppf "histograms:@\n";
      List.iter
        (fun (name, e) ->
          match e with
          | Metrics.Histogram h ->
              let n = Metrics.histogram_count h in
              let mean = if n = 0 then 0.0 else Metrics.histogram_sum h /. float_of_int n in
              if n = 0 then
                Format.fprintf ppf "  %-*s n=%d mean=%.6g sum=%.6g@\n" width name n mean
                  (Metrics.histogram_sum h)
              else
                Format.fprintf ppf
                  "  %-*s n=%d mean=%.6g sum=%.6g p50=%.6g p95=%.6g p99=%.6g@\n" width name n
                  mean (Metrics.histogram_sum h) (Metrics.quantile h 0.50)
                  (Metrics.quantile h 0.95) (Metrics.quantile h 0.99)
          | _ -> ())
        histograms
    end;
    match Trace.roots () with
    | [] -> ()
    | _ ->
        Format.fprintf ppf "spans:@\n";
        Trace.pp ppf ()

  let summary () = Format.asprintf "%a" pp_summary ()

  let write_file path contents =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
end

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

module Logging = struct
  let level_of_verbosity n =
    if n <= 0 then Some Logs.Warning else if n = 1 then Some Logs.Info else Some Logs.Debug

  let setup ?(level = Some Logs.Warning) () =
    let level =
      match Sys.getenv_opt "CLUSEQ_LOG" with
      | Some s -> (
          match Logs.level_of_string (String.trim s) with Ok l -> l | Error _ -> level)
      | None -> level
    in
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ~app:Fmt.stderr ~dst:Fmt.stderr ())
end

let enable_all () =
  Metrics.enable ();
  Trace.enable ()

let reset () =
  Metrics.reset ();
  Trace.reset ();
  Recorder.reset ()
