(* Minimal JSON for the benchmark telemetry files. See bench_json.mli. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let to_string json =
  let b = Buffer.create 4096 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num v -> Buffer.add_string b (num_to_string v)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (indent + 2) v)
          fields;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b '}'
  in
  go 0 json;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Single-line rendering for JSONL records (Obs.Journal): no padding, no
   trailing newline — the writer appends its own '\n' per record. *)
let to_compact_string json =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num v -> Buffer.add_string b (num_to_string v)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            go item)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go json;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    (* encode one Unicode scalar value; surrogates arrive pre-combined *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = input.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              let hi = hex4 () in
              let code =
                if hi >= 0xD800 && hi <= 0xDBFF && !pos + 6 <= n && input.[!pos] = '\\'
                   && input.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + (((hi - 0xD800) lsl 10) lor (lo - 0xDC00))
                end
                else hi
              in
              utf8_of_code b code
          | _ -> fail "bad escape");
          go ())
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && number_char input.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  with Parse_error (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let obj_items = function Obj fields -> fields | _ -> []

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Str x, Str y -> x = y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all
           (fun (k, v) -> match List.assoc_opt k y with Some v' -> equal v v' | None -> false)
           x
  | _ -> false
