(** Shared q-gram key and sketch kernel.

    Both the [Qgram] baseline (count profiles) and the core candidate
    index (bottom-k minhash sketches, cluster Bloom gates) need the same
    primitive: turn a length-[q] window of symbol codes into a single
    [int] key, cheaply and deterministically.

    Keys are {e packed} whenever they can be exact: for [q <= 3] and
    symbol codes below [2^20], the key is the base-[2^20] packing of the
    window, so distinct q-grams always get distinct keys (no collisions).
    Outside that envelope (longer grams, or pathological symbol codes)
    keys fall back to an iterated 64-bit mix; collisions are then
    possible in principle but negligible in practice. The choice of
    representation depends only on the gram's own contents, so the same
    gram always maps to the same key regardless of which sequence it came
    from. *)

val packed_q_limit : int
(** Largest [q] for which keys are exact packings ([3]). *)

val packed_symbol_limit : int
(** Symbol codes must be below this ([2^20]) for packed keys. *)

val gram_key : Sequence.t -> pos:int -> q:int -> int
(** [gram_key s ~pos ~q] is the key of the window [s.(pos) ..
    s.(pos+q-1)]. No bounds checking beyond the array's own. The result
    is non-negative. *)

val key_of_list : q:int -> int list -> int
(** [key_of_list ~q syms] is the key of the gram given as a symbol list
    (e.g. a PST node label). Produces exactly the same key as [gram_key]
    on the same symbols. Raises [Invalid_argument] if the list length is
    not [q]. *)

val hash_of_key : int -> int
(** Finalizing 62-bit mix (splitmix-style). Keys are structured (packed
    grams differ only in low bits); this spreads them uniformly for
    Bloom indexing and bottom-k selection. Non-negative. *)

val of_sequence : q:int -> ?max_hashes:int -> Sequence.t -> int array
(** [of_sequence ~q s] is the bottom-[max_hashes] (default 64) distinct
    mixed q-gram hashes of [s], sorted ascending — a minhash-style
    sketch. Empty when [|s| < q]. Deterministic: depends only on the
    sequence contents and [q]. Raises [Invalid_argument] when
    [q <= 0]. *)
