(* Shared q-gram key and sketch kernel. See mli. *)

let packed_symbol_bits = 20
let packed_symbol_limit = 1 lsl packed_symbol_bits

(* 3 * 20 = 60 bits: packed keys stay well inside OCaml's 63-bit int. *)
let packed_q_limit = 3

(* Splitmix64-style finalizer, adapted to OCaml's 63-bit native ints
   (the multiplier constants must fit; these are < 2^62). The exact
   constants don't matter beyond avalanche quality — what matters is
   that the function is a fixed pure permutation-ish mix, so sketches
   are deterministic across runs, domains and processes. *)
let hash_of_key h =
  let h = h lxor (h lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 32)) land max_int

(* Fallback for grams that can't be packed exactly: fold each symbol
   through the mixer. Collisions are possible but ~2^-62 per pair. *)
let chained_step acc sym = hash_of_key ((acc lsl 7) lxor sym)

let gram_key s ~pos ~q =
  if q <= 0 then invalid_arg "Sketch.gram_key";
  if q <= packed_q_limit then begin
    let k = ref 0 and packed = ref true in
    for j = pos to pos + q - 1 do
      let sym = Array.unsafe_get s j in
      if sym < 0 || sym >= packed_symbol_limit then packed := false;
      k := (!k lsl packed_symbol_bits) lor (sym land (packed_symbol_limit - 1))
    done;
    if !packed then !k
    else begin
      let h = ref 0 in
      for j = pos to pos + q - 1 do
        h := chained_step !h s.(j)
      done;
      !h
    end
  end
  else begin
    let h = ref 0 in
    for j = pos to pos + q - 1 do
      h := chained_step !h s.(j)
    done;
    !h
  end

let key_of_list ~q syms =
  if List.length syms <> q then invalid_arg "Sketch.key_of_list";
  gram_key (Array.of_list syms) ~pos:0 ~q

let of_sequence ~q ?(max_hashes = 64) s =
  if q <= 0 then invalid_arg "Sketch.of_sequence";
  if max_hashes <= 0 then invalid_arg "Sketch.of_sequence";
  let n = Array.length s - q + 1 in
  if n <= 0 then [||]
  else begin
    let hs = Array.init n (fun i -> hash_of_key (gram_key s ~pos:i ~q)) in
    Array.sort compare hs;
    (* Sorted ascending: keeping the first [max_hashes] distinct values
       is exactly bottom-k minhash selection. *)
    let cap = min max_hashes n in
    let out = Array.make cap 0 in
    let m = ref 0 in
    Array.iter
      (fun h ->
        if !m < cap && (!m = 0 || out.(!m - 1) <> h) then begin
          out.(!m) <- h;
          incr m
        end)
      hs;
    if !m = cap then out else Array.sub out 0 !m
  end
