(* The reference model is a flat table: context label (original symbol
   order) -> occurrence count + next-symbol counters. Everything the
   tree shares structurally is duplicated here, which is the point —
   the two representations can only agree if both count correctly. *)

type entry = {
  mutable count : int;
  next : int array; (* next-symbol counters, length |Σ| *)
  mutable next_total : int;
}

type t = {
  cfg : Pst.config;
  table : (int list, entry) Hashtbl.t;
  log_uniform : float;
}

let create (cfg : Pst.config) =
  if cfg.alphabet_size <= 0 then invalid_arg "Ref_pst.create: alphabet_size";
  if cfg.max_depth <= 0 then invalid_arg "Ref_pst.create: max_depth";
  if cfg.significance <= 0 then invalid_arg "Ref_pst.create: significance";
  if cfg.p_min < 0.0 || cfg.p_min *. float_of_int cfg.alphabet_size >= 1.0 then
    invalid_arg "Ref_pst.create: p_min must satisfy 0 <= n*p_min < 1";
  let t =
    { cfg; table = Hashtbl.create 64; log_uniform = -.log (float_of_int cfg.alphabet_size) }
  in
  Hashtbl.replace t.table []
    { count = 0; next = Array.make cfg.alphabet_size 0; next_total = 0 };
  t

let entry t label =
  match Hashtbl.find_opt t.table label with
  | Some e -> e
  | None ->
      let e = { count = 0; next = Array.make t.cfg.alphabet_size 0; next_total = 0 } in
      Hashtbl.replace t.table label e;
      e

let bump t label next_sym =
  let e = entry t label in
  e.count <- e.count + 1;
  if next_sym >= 0 then begin
    e.next.(next_sym) <- e.next.(next_sym) + 1;
    e.next_total <- e.next_total + 1
  end

let insert_segment t s ~lo ~hi =
  let len = Array.length s in
  if lo < 0 || hi >= len || lo > hi then invalid_arg "Ref_pst.insert_segment";
  for e = lo to hi do
    let next_sym = if e < hi then s.(e + 1) else -1 in
    bump t [] next_sym;
    let max_d = min t.cfg.max_depth (e - lo + 1) in
    for d = 1 to max_d do
      (* The context ending at position [e] of length [d], original order. *)
      let label = List.init d (fun j -> s.(e - d + 1 + j)) in
      bump t label next_sym
    done
  done

let insert_sequence t s =
  if Array.length s > 0 then insert_segment t s ~lo:0 ~hi:(Array.length s - 1)

let n_contexts t = Hashtbl.length t.table

(* The longest recorded-and-significant suffix of s.(lo) .. s.(pos-1),
   extended one symbol at a time exactly like Pst.prediction_node's
   walk: stop at the first extension that is absent or insignificant. *)
let prediction_entry t s ~lo ~pos =
  let best = ref (entry t []) in
  let best_label = ref [] in
  let d = ref 0 in
  let max_d = min t.cfg.max_depth (pos - lo) in
  let continue_ = ref true in
  while !continue_ && !d < max_d do
    let label = List.init (!d + 1) (fun j -> s.(pos - 1 - !d + j)) in
    match Hashtbl.find_opt t.table label with
    | Some e when e.count >= t.cfg.significance ->
        best := e;
        best_label := label;
        incr d
    | _ -> continue_ := false
  done;
  (!best, !best_label)

let prediction_label t s ~lo ~pos = snd (prediction_entry t s ~lo ~pos)

(* Written token-for-token like Pst.next_log_prob so the comparison is
   exact float equality, not within-epsilon. *)
let next_log_prob t (e : entry) sym =
  if sym < 0 || sym >= t.cfg.alphabet_size then invalid_arg "Ref_pst.next_log_prob";
  if e.next_total = 0 then t.log_uniform
  else begin
    let raw = float_of_int e.next.(sym) /. float_of_int e.next_total in
    let n = float_of_int t.cfg.alphabet_size in
    let p =
      if t.cfg.p_min > 0.0 then ((1.0 -. (n *. t.cfg.p_min)) *. raw) +. t.cfg.p_min else raw
    in
    if p <= 0.0 then neg_infinity else log p
  end

let log_prob t s ~lo ~pos = next_log_prob t (fst (prediction_entry t s ~lo ~pos)) s.(pos)

let string_of_label = function
  | [] -> "(root)"
  | l -> String.concat "," (List.map string_of_int l)

let diff t pst =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if Pst.n_nodes pst <> n_contexts t then
    err "node count: tree has %d, oracle has %d contexts" (Pst.n_nodes pst) (n_contexts t);
  let seen = Hashtbl.create (n_contexts t) in
  let rec walk node =
    let label = Pst.node_label pst node in
    Hashtbl.replace seen label ();
    (match Hashtbl.find_opt t.table label with
    | None -> err "tree node %s missing from oracle" (string_of_label label)
    | Some e ->
        if Pst.node_count node <> e.count then
          err "count at %s: tree %d, oracle %d" (string_of_label label) (Pst.node_count node)
            e.count;
        if Pst.next_total node <> e.next_total then
          err "next_total at %s: tree %d, oracle %d" (string_of_label label)
            (Pst.next_total node) e.next_total;
        for sym = 0 to t.cfg.alphabet_size - 1 do
          if Pst.next_count node sym <> e.next.(sym) then
            err "next count at %s for symbol %d: tree %d, oracle %d" (string_of_label label)
              sym (Pst.next_count node sym) e.next.(sym)
        done);
    List.iter (fun (_, child) -> walk child) (Pst.node_children node)
  in
  walk (Pst.root pst);
  Hashtbl.iter
    (fun label _ ->
      if not (Hashtbl.mem seen label) then
        err "oracle context %s missing from tree" (string_of_label label))
    t.table;
  List.rev !errs
