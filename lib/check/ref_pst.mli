(** Brute-force reference implementation of the probabilistic suffix tree.

    A differential oracle for {!Pst}: the same counting model — every
    context of length [<= max_depth] with its next-symbol counters — held
    in a flat hashtable keyed by the context label instead of a tree.
    There is no sharing, no suffix structure, and no pruning, so the code
    is small enough to be obviously correct; any structural or
    probability disagreement with {!Pst} on an identical insertion
    history points at a tree bug (or, symmetrically, at an oracle bug —
    either way a bug).

    The probability formulas are written token-for-token like their
    {!Pst} counterparts so agreement is exact float equality, not
    within-epsilon: both sides compute
    [(1 - n·p_min)·raw + p_min] from the same integer counters.

    Valid for comparison only while the real tree has never pruned
    (compare {!n_contexts} against [Pst.n_nodes]); the fuzz harness
    arranges an effectively unbounded node budget for differential
    cases. *)

type t
(** A mutable reference model. *)

val create : Pst.config -> t
(** Same validation and semantics as {!Pst.create}. *)

val insert_segment : t -> Sequence.t -> lo:int -> hi:int -> unit
(** Mirrors {!Pst.insert_segment}: for every position [e] of the segment
    bump the empty context and every context [s.(e-d+1) .. s.(e)],
    [d <= max_depth], with the next symbol ([s.(e+1)] inside the
    segment, nothing at its end). *)

val insert_sequence : t -> Sequence.t -> unit
(** Mirrors {!Pst.insert_sequence}. *)

val n_contexts : t -> int
(** Number of distinct contexts recorded, the empty context included —
    comparable to [Pst.n_nodes] when no pruning has occurred. *)

val prediction_label : t -> Sequence.t -> lo:int -> pos:int -> int list
(** The label (original symbol order) of the prediction context for
    position [pos]: the longest suffix of [s.(lo) .. s.(pos-1)] that is
    recorded with a significant count, mirroring
    {!Pst.prediction_node}'s walk. *)

val log_prob : t -> Sequence.t -> lo:int -> pos:int -> float
(** Mirrors {!Pst.log_prob}: prediction context lookup followed by the
    smoothed conditional probability. Exact-equal to the tree's answer
    on an identical insertion history (no pruning). *)

val diff : t -> Pst.t -> string list
(** [diff oracle pst] is a list of human-readable structural
    disagreements: node/context count, per-label occurrence counts,
    next-symbol counters, and contexts present on only one side.
    Empty means the structures agree exactly. *)
