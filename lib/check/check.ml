exception Violation of string list

let () =
  Printexc.register_printer (function
    | Violation msgs ->
        Some (Printf.sprintf "Check.Violation [%s]" (String.concat "; " msgs))
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* PST invariants                                                      *)
(* ------------------------------------------------------------------ *)

(* Every checker accumulates messages into a list ref so the caller gets
   all violations at once, not just the first. *)

let pst_invariants pst =
  let cfg = Pst.config pst in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let n = cfg.alphabet_size in
  let traversed = ref 0 in
  let rec walk node =
    incr traversed;
    let count = Pst.node_count node and depth = Pst.node_depth node in
    let where = Printf.sprintf "depth-%d node (count %d)" depth count in
    if count < 0 then err "%s: negative count" where;
    if depth > cfg.max_depth then err "%s: exceeds max_depth %d" where cfg.max_depth;
    let nt = Pst.next_total node in
    let sum_next = ref 0 in
    for sym = 0 to n - 1 do
      let c = Pst.next_count node sym in
      if c < 0 then err "%s: negative next counter for symbol %d" where sym;
      sum_next := !sum_next + c
    done;
    if nt <> !sum_next then err "%s: next_total %d <> counter sum %d" where nt !sum_next;
    if nt > count then err "%s: next_total %d exceeds count %d" where nt count;
    let dist = Pst.next_distribution pst node in
    let sum = Array.fold_left ( +. ) 0.0 dist in
    if Float.abs (sum -. 1.0) > 1e-9 then err "%s: distribution sums to %.17g" where sum;
    if nt = 0 then begin
      let uniform = 1.0 /. float_of_int n in
      Array.iteri
        (fun sym p ->
          if Float.abs (p -. uniform) > 1e-12 then
            err "%s: no observations but P(%d) = %.17g, expected uniform %.17g" where sym p
              uniform)
        dist
    end
    else if cfg.p_min > 0.0 then begin
      (* Smoothing bounds: raw in [0,1] maps to [p_min, 1-(n-1)p_min]. *)
      let lo = cfg.p_min -. 1e-12 in
      let hi = 1.0 -. (float_of_int (n - 1) *. cfg.p_min) +. 1e-12 in
      Array.iteri
        (fun sym p ->
          if p < lo || p > hi then
            err "%s: P(%d) = %.17g outside smoothed range [%.17g, %.17g]" where sym p lo hi)
        dist
    end;
    let child_sum = ref 0 in
    let prev_sym = ref (-1) in
    List.iter
      (fun (sym, child) ->
        if sym <= !prev_sym then err "%s: child symbols not strictly increasing" where;
        prev_sym := sym;
        if sym < 0 || sym >= n then err "%s: edge symbol %d outside alphabet" where sym;
        if Pst.node_depth child <> depth + 1 then
          err "%s: child at depth %d, expected %d" where (Pst.node_depth child) (depth + 1);
        if Pst.node_count child > count then
          err "%s: child count %d exceeds parent count %d" where (Pst.node_count child) count;
        child_sum := !child_sum + Pst.node_count child;
        walk child)
      (Pst.node_children node);
    if !child_sum > count then
      err "%s: children counts sum to %d, more than the parent's %d" where !child_sum count
  in
  walk (Pst.root pst);
  if !traversed <> Pst.n_nodes pst then
    err "n_nodes says %d but traversal found %d" (Pst.n_nodes pst) !traversed;
  if Pst.n_nodes pst > cfg.max_nodes then
    err "node budget violated: %d nodes > max_nodes %d" (Pst.n_nodes pst) cfg.max_nodes;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Clustering result invariants                                        *)
(* ------------------------------------------------------------------ *)

let result_invariants ~n (r : Cluseq.result) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if r.n_clusters <> Array.length r.clusters then
    err "n_clusters %d <> clusters array length %d" r.n_clusters (Array.length r.clusters);
  if Array.length r.assignments <> n then
    err "assignments length %d <> n %d" (Array.length r.assignments) n;
  let ids = Hashtbl.create 16 in
  Array.iter
    (fun (id, members) ->
      if Hashtbl.mem ids id then err "duplicate cluster id %d" id;
      Hashtbl.replace ids id (Bitset.of_list n (Array.to_list members));
      let prev = ref (-1) in
      Array.iter
        (fun m ->
          if m < 0 || m >= n then err "cluster %d: member %d out of range" id m
          else begin
            if m <= !prev then err "cluster %d: members not sorted strictly increasing" id;
            prev := m;
            if not (List.mem id r.assignments.(m)) then
              err "cluster %d lists member %d but %d's assignments omit it" id m m
          end)
        members)
    r.clusters;
  Array.iteri
    (fun sid l ->
      let seen = Hashtbl.create 4 in
      List.iter
        (fun id ->
          if Hashtbl.mem seen id then err "sequence %d assigned to cluster %d twice" sid id;
          Hashtbl.replace seen id ();
          match Hashtbl.find_opt ids id with
          | None -> err "sequence %d assigned to unknown/dismissed cluster %d" sid id
          | Some members ->
              if not (Bitset.mem members sid) then
                err "sequence %d assigned to cluster %d but not in its member list" sid id)
        l)
    r.assignments;
  let expected_outliers =
    List.filter (fun i -> r.assignments.(i) = []) (List.init n Fun.id)
  in
  if r.outliers <> expected_outliers then
    err "outliers list (%d entries) is not exactly the unassigned sequences (%d)"
      (List.length r.outliers)
      (List.length expected_outliers);
  Array.iteri
    (fun sid b ->
      match b with
      | Some (_, s) when not (Float.is_finite s) ->
          err "sequence %d: best score %.17g is not finite" sid s
      | _ -> ())
    r.best;
  let id_of (id, _) = id in
  let cluster_ids = Array.map id_of r.clusters in
  if Array.map id_of r.models <> cluster_ids then err "models ids do not match cluster ids";
  if Array.map id_of r.pst_stats <> cluster_ids then
    err "pst_stats ids do not match cluster ids";
  Array.iter
    (fun (id, model) ->
      List.iter (err "model %d: %s" id) (pst_invariants model))
    r.models;
  List.rev !errs

let cluster_invariants clusters ~assignments =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let n = Array.length assignments in
  let ids = Hashtbl.create 16 in
  List.iter
    (fun cl ->
      let id = Cluster.id cl in
      if Hashtbl.mem ids id then err "duplicate live cluster id %d" id;
      Hashtbl.replace ids id (Cluster.members cl);
      let members = Cluster.members cl in
      if Bitset.capacity members <> n then
        err "cluster %d: bitset capacity %d <> database size %d" id (Bitset.capacity members) n
      else
        Bitset.iter
          (fun sid ->
            if not (List.mem id assignments.(sid)) then
              err "cluster %d holds member %d missing from its assignments" id sid)
          members;
      List.iter (err "cluster %d PST: %s" id) (pst_invariants (Cluster.pst cl)))
    clusters;
  Array.iteri
    (fun sid l ->
      List.iter
        (fun id ->
          match Hashtbl.find_opt ids id with
          | None -> err "sequence %d still assigned to dismissed cluster %d" sid id
          | Some members ->
              if not (Bitset.mem members sid) then
                err "sequence %d assigned to cluster %d without bitset membership" sid id)
        l)
    assignments;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Reclustering replay oracle                                          *)
(* ------------------------------------------------------------------ *)

let reference_recluster (snap : Cluseq.recluster_snapshot) =
  let db = snap.snap_db in
  let n = Seq_database.n_sequences db in
  let lbg = Seq_database.log_background db in
  let k = Array.length snap.snap_before in
  (* Private model copies: the replay mutates them exactly as the engine
     mutates the live clusters, so scoring "the current model" below is
     always against the same counts the engine saw. *)
  let psts = Array.map (fun (_, pst, _) -> Pst.copy pst) snap.snap_before in
  (* The candidate gate, rederived independently: cluster bitmaps come
     from the snapshot's iteration-start model copies (never from the
     mutating replay copies — the engine, too, gates against pass-start
     sketches only), sequence sketches from the database. Members
     bypass the gate, exactly as in the engine. *)
  let admit =
    match snap.snap_index_ratio with
    | None -> fun _ ~before:_ ~ci:_ -> true
    | Some ratio ->
        let cl_sketches = Array.map (fun (_, pst, _) -> Index.of_pst pst) snap.snap_before in
        let seq_sketches =
          Array.init n (fun i -> Index.sketch_of_sequence (Seq_database.get db i))
        in
        fun sid ~before ~ci ->
          Bitset.mem before sid || Index.admit seq_sketches.(sid) cl_sketches.(ci) ~ratio
  in
  let members = Array.init k (fun _ -> Bitset.create n) in
  let assignments = Array.make n [] in
  Array.iter
    (fun sid ->
      let s = Seq_database.get db sid in
      Array.iteri
        (fun ci (id, _, before) ->
          if admit sid ~before ~ci then begin
            let r = Similarity.score psts.(ci) ~log_background:lbg s in
            if r.log_sim >= snap.snap_log_t then begin
              Bitset.add members.(ci) sid;
              (* Only a fresh joiner's best segment feeds the model; a
                 returning member must not inflate the counts. *)
              if not (Bitset.mem before sid) then
                Pst.insert_segment psts.(ci) s ~lo:r.seg_lo ~hi:r.seg_hi;
              assignments.(sid) <- id :: assignments.(sid)
            end
          end)
        snap.snap_before)
    snap.snap_order;
  Array.iteri (fun i l -> assignments.(i) <- List.rev l) assignments;
  (Array.mapi (fun ci (id, _, _) -> (id, members.(ci))) snap.snap_before, assignments)

let recluster_matches (snap : Cluseq.recluster_snapshot) ~after ~assignments =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let ref_after, ref_assignments = reference_recluster snap in
  if Array.length after <> Array.length ref_after then
    err "engine reports %d clusters, replay %d" (Array.length after) (Array.length ref_after)
  else
    Array.iteri
      (fun ci (id, members) ->
        let rid, rmembers = ref_after.(ci) in
        if id <> rid then err "cluster #%d: engine id %d, replay id %d" ci id rid
        else if not (Bitset.equal members rmembers) then
          err "cluster %d: engine members {%s} but serial replay says {%s}" id
            (String.concat "," (List.map string_of_int (Bitset.to_list members)))
            (String.concat "," (List.map string_of_int (Bitset.to_list rmembers))))
      after;
  if Array.length assignments <> Array.length ref_assignments then
    err "engine reports %d assignment rows, replay %d" (Array.length assignments)
      (Array.length ref_assignments)
  else
    Array.iteri
      (fun sid l ->
        let rl = ref_assignments.(sid) in
        if l <> rl then
          err "sequence %d: engine assignments [%s] but serial replay says [%s]" sid
            (String.concat ";" (List.map string_of_int l))
            (String.concat ";" (List.map string_of_int rl)))
      assignments;
  List.rev !errs

(* Compiled-vs-tree scoring oracle: the automaton must be a pure
   representation change, so every float it produces — per-position X_i
   profile, final log-similarity, and the maximizing segment bounds —
   must equal the tree walk's exactly. *)
let psa_scoring_matches pst ~log_background probes =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let psa = Psa.compile pst in
  Array.iteri
    (fun pi s ->
      let xt = Similarity.xs pst ~log_background s in
      let xc = Similarity.xs_psa psa ~log_background s in
      Array.iteri
        (fun i a ->
          if not (Float.equal a xc.(i)) then
            err "probe %d pos %d: tree X_i %.17g, compiled %.17g" pi i a xc.(i))
        xt;
      (* The prediction state must track the prediction node depth-wise:
         a transition bug can keep X_i equal by luck on one tree but not
         land on the same context. *)
      let state = ref 0 in
      Array.iteri
        (fun pos sym ->
          let want = Pst.node_depth (Pst.prediction_node pst s ~lo:0 ~pos) in
          let got = Psa.prediction_depth psa !state in
          if want <> got then
            err "probe %d pos %d: prediction depth %d, automaton state depth %d" pi pos want got;
          state := Psa.step psa !state sym)
        s;
      let rt = Similarity.score pst ~log_background s in
      let rc = Similarity.score_psa psa ~log_background s in
      if not (Float.equal rt.log_sim rc.log_sim)
         || rt.seg_lo <> rc.seg_lo || rt.seg_hi <> rc.seg_hi
      then
        err "probe %d: tree score %.17g [%d,%d], compiled %.17g [%d,%d]" pi rt.log_sim
          rt.seg_lo rt.seg_hi rc.log_sim rc.seg_lo rc.seg_hi)
    probes;
  List.rev !errs

(* Batched-vs-serial scoring oracle: [Psa.score_batch] interleaves the
   lanes position-major, so the thing that can silently go wrong is
   cross-lane state leaking (a lane reading another's accumulator or
   automaton state, or a retired lane still advancing). Scoring the
   block batched and each sequence serially must agree exactly — float
   bits and segment bounds — including on empty sequences and after the
   scratch has been resized by a previous, larger block. *)
let batch_scoring_matches pst ~log_background blocks =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let psa = Psa.compile pst in
  (* One scratch across all blocks, deliberately starting tiny: block
     boundaries must fully reset every reused column. *)
  let batch = Psa.batch_create ~capacity:1 () in
  List.iteri
    (fun bi block ->
      let batched = Similarity.score_batch psa ~log_background ~batch block in
      Array.iteri
        (fun j s ->
          let serial = Similarity.score_psa psa ~log_background s in
          let b = batched.(j) in
          if not (Float.equal serial.Similarity.log_sim b.Similarity.log_sim)
             || serial.seg_lo <> b.seg_lo || serial.seg_hi <> b.seg_hi
          then
            err "block %d lane %d (len %d): serial %.17g [%d,%d], batched %.17g [%d,%d]" bi j
              (Array.length s) serial.log_sim serial.seg_lo serial.seg_hi b.log_sim b.seg_lo
              b.seg_hi)
        block)
    blocks;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Index-gate end-to-end oracle                                        *)
(* ------------------------------------------------------------------ *)

(* The gated scan is allowed to take a different trajectory (pruned
   outliers lose their [best] entry, threshold samples shrink), but the
   final clustering — clusters, assignments, outliers — must match the
   full scan's. On divergence, probe halved ratios to report where the
   two agree again, and record the divergence on the
   [cluseq.index.false_negatives] counter. *)
type index_verdict = Index_skipped | Index_identical | Index_diverged of string

let index_agrees ?config ?ratio db =
  let enabled0 = Index.enabled () and runtime0 = Index.ratio () in
  (* The runtime ratio defaults to 0 (gate opt-in), so callers that want
     to exercise the gate regardless — the fuzz harness — pass the ratio
     explicitly. *)
  let ratio0 = Option.value ratio ~default:runtime0 in
  if not (enabled0 && ratio0 > 0.0) then Index_skipped
  else
    Fun.protect
      ~finally:(fun () ->
        Index.set_enabled enabled0;
        Index.set_ratio runtime0)
      (fun () ->
        let run_with ~on ~ratio =
          Index.set_enabled on;
          Index.set_ratio ratio;
          Cluseq.run ?config db
        in
        let full = run_with ~on:false ~ratio:ratio0 in
        let same (g : Cluseq.result) =
          g.clusters = full.clusters && g.assignments = full.assignments
          && g.outliers = full.outliers
        in
        let gated = run_with ~on:true ~ratio:ratio0 in
        if same gated then Index_identical
        else begin
          let diverging = ref 0 in
          Array.iteri
            (fun i l -> if l <> full.assignments.(i) then incr diverging)
            gated.assignments;
          Index.record_false_negatives (max 1 !diverging);
          let rec probe r = if r < 1e-3 then None else if same (run_with ~on:true ~ratio:r) then Some r else probe (r /. 2.0) in
          match probe (ratio0 /. 2.0) with
          | Some r ->
              Index_diverged
                (Printf.sprintf
                   "gated scan diverges from the full scan at ratio %g (%d assignment rows \
                    differ); it agrees at ratio %g"
                   ratio0 !diverging r)
          | None ->
              Index_diverged
                (Printf.sprintf
                   "gated scan diverges from the full scan at ratio %g (%d assignment rows \
                    differ) and at every probed smaller ratio"
                   ratio0 !diverging)
        end)

(* ------------------------------------------------------------------ *)
(* Auditor wiring                                                      *)
(* ------------------------------------------------------------------ *)

let raise_if ctx = function
  | [] -> ()
  | errs -> raise (Violation (List.map (fun e -> ctx ^ ": " ^ e) errs))

let auditor () : Cluseq.auditor =
  {
    on_recluster =
      (fun snap ~after ~assignments ->
        raise_if "recluster" (recluster_matches snap ~after ~assignments));
    on_iteration =
      (fun ~iteration ~clusters ~assignments ->
        raise_if
          (Printf.sprintf "iteration %d" iteration)
          (cluster_invariants clusters ~assignments));
  }

let install_auditor () = Cluseq.set_auditor (Some (auditor ()))
let uninstall_auditor () = Cluseq.set_auditor None

let env_enabled () =
  match Sys.getenv_opt "CLUSEQ_CHECK" with
  | None | Some ("" | "0" | "false" | "no") -> false
  | Some _ -> true

let install_from_env () = if env_enabled () then install_auditor ()
