type case = {
  case_seed : int;
  alphabet_size : int;
  seqs : Sequence.t array;
  probes : Sequence.t array;
  cluseq_cfg : Cluseq.config;
}

type failure = {
  f_index : int;
  f_replay_seed : int;
  f_messages : string list;
  f_case : case;
}

let gen_case ~seed =
  let rng = Rng.create seed in
  let alphabet_size = 2 + Rng.int rng 4 in
  let max_depth = 1 + Rng.int rng 4 in
  let significance = 1 + Rng.int rng 5 in
  let p_min = [| 0.0; 1e-3; 0.01 |].(Rng.int rng 3) in
  let gen_seq max_len =
    Array.init (Rng.int rng (max_len + 1)) (fun _ -> Rng.int rng alphabet_size)
  in
  let seqs = Array.init (4 + Rng.int rng 13) (fun _ -> gen_seq 24) in
  let probes = Array.init 3 (fun _ -> gen_seq 16) in
  let order =
    match Rng.int rng 4 with 0 -> Order.Random | 1 -> Order.Cluster_based | _ -> Order.Fixed
  in
  let pruning =
    [| Pruning.Smallest_count_first; Pruning.Longest_label_first; Pruning.Expected_vector_first |]
      .(Rng.int rng 3)
  in
  let cluseq_cfg =
    {
      Cluseq.k_init = 1 + Rng.int rng 2;
      significance;
      t_init = [| 1.0; 1.05; 1.2; 2.0 |].(Rng.int rng 4);
      max_depth;
      (* Far above what these workloads can build: the differential
         oracle requires that the tree never prunes. *)
      max_nodes = 100_000;
      p_min;
      pruning;
      adjust_threshold = Rng.bool rng;
      consolidate = Rng.bool rng;
      order;
      sample_factor = 1 + Rng.int rng 4;
      max_iterations = 2 + Rng.int rng 4;
      min_residual = (if Rng.bool rng then None else Some (1 + Rng.int rng 3));
      seed;
    }
  in
  { case_seed = seed; alphabet_size; seqs; probes; cluseq_cfg }

let dedup msgs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun m ->
      if Hashtbl.mem seen m then false
      else begin
        Hashtbl.replace seen m ();
        true
      end)
    msgs

let run_case ?(on_divergence = ignore) case =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let add_all prefix = List.iter (fun m -> err "%s: %s" prefix m) in
  let cfg = case.cluseq_cfg in
  let alphabet =
    Alphabet.of_char_range 'a' (Char.chr (Char.code 'a' + case.alphabet_size - 1))
  in
  let db = Seq_database.create alphabet case.seqs in
  let n = Seq_database.n_sequences db in
  let lbg = Seq_database.log_background db in
  (* --- 1. PST vs brute-force reference on an identical history --- *)
  let pcfg : Pst.config =
    {
      alphabet_size = case.alphabet_size;
      max_depth = cfg.max_depth;
      significance = cfg.significance;
      max_nodes = 1_000_000;
      p_min = cfg.p_min;
      pruning = cfg.pruning;
    }
  in
  let pst = Pst.create pcfg in
  let oracle = Ref_pst.create pcfg in
  Array.iter
    (fun s ->
      Pst.insert_sequence pst s;
      Ref_pst.insert_sequence oracle s)
    case.seqs;
  add_all "pst-diff" (Ref_pst.diff oracle pst);
  add_all "pst-invariants" (Check.pst_invariants pst);
  Array.iter
    (fun s ->
      for pos = 0 to Array.length s - 1 do
        let a = Pst.log_prob pst s ~lo:0 ~pos in
        let b = Ref_pst.log_prob oracle s ~lo:0 ~pos in
        if not (Float.equal a b) then
          err "log_prob at probe pos %d: tree %.17g, oracle %.17g" pos a b;
        let la = Pst.node_label pst (Pst.prediction_node pst s ~lo:0 ~pos) in
        let lb = Ref_pst.prediction_label oracle s ~lo:0 ~pos in
        if la <> lb then
          err "prediction label at probe pos %d: tree [%s], oracle [%s]" pos
            (String.concat "," (List.map string_of_int la))
            (String.concat "," (List.map string_of_int lb))
      done)
    case.probes;
  (* Pruning must preserve the structural invariants (on a copy, so the
     unpruned tree keeps serving the similarity checks below). *)
  let pruned = Pst.copy pst in
  Pst.prune_to pruned (max 1 (Pst.n_nodes pruned / 2));
  add_all "post-prune invariants" (Check.pst_invariants pruned);
  (* --- 2. Kadane scan vs O(l²) reference --- *)
  Array.iter
    (fun s ->
      let fast = Similarity.score pst ~log_background:lbg s in
      let brute = Similarity.score_brute pst ~log_background:lbg s in
      if not (Float.equal fast.log_sim brute.log_sim) then
        err "similarity: fast scan %.17g <> brute force %.17g" fast.log_sim brute.log_sim)
    case.probes;
  (* Compiled-automaton scan vs tree walk — exact equality, on both the
     unpruned tree and the pruned copy (pruning reshapes the active set). *)
  add_all "psa" (Check.psa_scoring_matches pst ~log_background:lbg case.probes);
  add_all "psa-pruned" (Check.psa_scoring_matches pruned ~log_background:lbg case.probes);
  (* Batched kernel vs serial compiled scan (check #6): one automaton
     over whole blocks must be bit-identical lane by lane. The block
     list covers the shapes the engine produces — a full block (the
     training sequences), a small block (probes), the empty block, a
     block of one, and a block containing an empty sequence — all
     through one shared scratch so cross-block reuse is exercised. *)
  let batch_blocks =
    [
      case.seqs;
      case.probes;
      [||];
      [| [||] |];
      (if Array.length case.probes > 0 then Array.sub case.probes 0 1 else [||]);
    ]
  in
  add_all "batch" (Check.batch_scoring_matches pst ~log_background:lbg batch_blocks);
  add_all "batch-pruned" (Check.batch_scoring_matches pruned ~log_background:lbg batch_blocks);
  (* Merge oracle (check #7): splitting the training set in two, building
     each half independently and counts-merging must reproduce the tree
     built over the whole set exactly — structure, counts, and the scores
     derived from them (the shard-and-merge contract, DESIGN.md §14).
     Holds because max_nodes is far above these workloads: no pruning. *)
  let half = Array.length case.seqs / 2 in
  let build_half lo hi =
    let t = Pst.create pcfg in
    for i = lo to hi - 1 do
      Pst.insert_sequence t case.seqs.(i)
    done;
    t
  in
  let merged = Pst.merge (build_half 0 half) (build_half half (Array.length case.seqs)) in
  if not (Pst.equal_structure pst merged) then
    err "merge: half-and-half merged tree differs from whole-database tree";
  Array.iter
    (fun s ->
      let a = (Similarity.score pst ~log_background:lbg s).log_sim in
      let b = (Similarity.score merged ~log_background:lbg s).log_sim in
      if not (Float.equal a b) then
        err "merge: merged-tree score %.17g <> whole-tree score %.17g" b a)
    case.probes;
  (* --- 3. audited clustering at 1 vs 4 domains --- *)
  let saved = Par.default_domains () in
  Fun.protect ~finally:(fun () ->
      Check.uninstall_auditor ();
      Par.set_default_domains saved)
  @@ fun () ->
  Check.install_auditor ();
  let run_at d =
    Par.set_default_domains d;
    try Ok (Cluseq.run ~config:cfg db) with Check.Violation msgs -> Error msgs
  in
  let r1 = run_at 1 in
  let r4 = run_at 4 in
  (match (r1, r4) with
  | Error msgs, _ -> add_all "auditor@1" msgs
  | _, Error msgs -> add_all "auditor@4" msgs
  | Ok r1, Ok r4 ->
      add_all "result" (Check.result_invariants ~n r1);
      if r1.clusters <> r4.clusters then err "clusters differ between 1 and 4 domains";
      if r1.assignments <> r4.assignments then err "assignments differ between 1 and 4 domains";
      if r1.best <> r4.best then err "best scores differ between 1 and 4 domains";
      if r1.outliers <> r4.outliers then err "outliers differ between 1 and 4 domains";
      if r1.final_t <> r4.final_t then
        err "final_t %.17g (1 domain) <> %.17g (4 domains)" r1.final_t r4.final_t;
      if r1.iterations <> r4.iterations then
        err "iterations %d (1 domain) <> %d (4 domains)" r1.iterations r4.iterations;
      (* Timings are wall-clock and excluded; everything else must agree. *)
      let strip =
        List.map (fun (st : Cluseq.iteration_stats) ->
            ( st.iteration, st.new_clusters, st.consolidated, st.clusters, st.unclustered,
              st.threshold, st.membership_changes ))
      in
      if strip r1.history <> strip r4.history then
        err "iteration history differs between 1 and 4 domains";
      if Array.map fst r1.models <> Array.map fst r4.models then
        err "model ids differ between 1 and 4 domains"
      else
        Array.iteri
          (fun i (id, m1) ->
            if not (Pst.equal_structure m1 (snd r4.models.(i))) then
              err "model %d structure differs between 1 and 4 domains" id)
          r1.models;
      Array.iter
        (fun (id, m) ->
          let m' = Pst.of_string (Pst.to_string m) in
          if not (Pst.equal_structure m m') then
            err "model %d changes across a serialization round-trip" id)
        r1.models;
      (* --- 4. classification at 1 vs 4 domains --- *)
      if r1.n_clusters > 0 && Array.length case.probes > 0 then begin
        let probes_db = Seq_database.create alphabet case.probes in
        let clf = Classifier.of_result r1 db in
        Par.set_default_domains 1;
        let v1 = Classifier.classify_all clf probes_db in
        Par.set_default_domains 4;
        let v4 = Classifier.classify_all clf probes_db in
        if v1 <> v4 then err "classifier verdicts differ between 1 and 4 domains";
        Array.iteri
          (fun i v ->
            if Classifier.classify clf (Seq_database.get probes_db i) <> v then
              err "classify and classify_all disagree on probe %d" i)
          v1
      end);
  (* --- 5. sketch-gated scan vs full scan --- *)
  (* The auditor is still installed, so these runs also exercise the
     gated serial replay — a mismatch there is an engine bug and raises
     {!Check.Violation}. A different final clustering, by contrast, is
     a sketch false negative: possible by design for any ratio above 0
     on adversarial inputs, so it is counted
     ([cluseq.index.false_negatives]) and surfaced through
     [on_divergence] rather than failing the case. *)
  Par.set_default_domains 1;
  (match Check.index_agrees ~config:cfg ~ratio:Index.default_ratio db with
  | Check.Index_skipped | Check.Index_identical -> ()
  | Check.Index_diverged report -> on_divergence report);
  dedup (List.rev !errs)

let drop_at arr i =
  Array.append (Array.sub arr 0 i) (Array.sub arr (i + 1) (Array.length arr - i - 1))

let shrink case ~still_fails =
  let budget = ref 60 in
  let try_case c =
    if !budget <= 0 then false
    else begin
      decr budget;
      still_fails c
    end
  in
  let current = ref case in
  let improved = ref true in
  while !improved do
    improved := false;
    (* Pass 1: drop whole sequences. *)
    let i = ref 0 in
    while !i < Array.length !current.seqs && Array.length !current.seqs > 1 do
      let cand = { !current with seqs = drop_at !current.seqs !i } in
      if try_case cand then begin
        current := cand;
        improved := true
        (* same index now holds the next sequence *)
      end
      else incr i
    done;
    (* Pass 2: halve the surviving sequences. *)
    for i = 0 to Array.length !current.seqs - 1 do
      let s = !current.seqs.(i) in
      if Array.length s > 0 then begin
        let cand_seqs = Array.copy !current.seqs in
        cand_seqs.(i) <- Array.sub s 0 (Array.length s / 2);
        let cand = { !current with seqs = cand_seqs } in
        if try_case cand then begin
          current := cand;
          improved := true
        end
      end
    done
  done;
  !current

let run ?(progress = ignore) ?(on_divergence = fun _ _ -> ()) ~n ~seed () =
  let rec go i =
    if i >= n then Ok n
    else begin
      let case = gen_case ~seed:(seed + i) in
      match run_case ~on_divergence:(on_divergence (seed + i)) case with
      | [] ->
          progress i;
          go (i + 1)
      | msgs ->
          let minimized = shrink case ~still_fails:(fun c -> run_case c <> []) in
          (* Report the minimized case's messages when it still fails
             (it must, but be defensive about a flaky shrink). *)
          let messages = match run_case minimized with [] -> msgs | m -> m in
          Error { f_index = i; f_replay_seed = seed + i; f_messages = messages; f_case = minimized }
    end
  in
  go 0

let decode s = String.init (Array.length s) (fun i -> Char.chr (Char.code 'a' + s.(i)))

let pp_failure fmt f =
  let case = f.f_case in
  Format.fprintf fmt "@[<v>fuzz case #%d (seed %d) failed:@," f.f_index f.f_replay_seed;
  let total = List.length f.f_messages in
  List.iteri
    (fun i m -> if i < 12 then Format.fprintf fmt "  - %s@," m)
    f.f_messages;
  if total > 12 then Format.fprintf fmt "  … and %d more@," (total - 12);
  Format.fprintf fmt "minimized workload (alphabet size %d, %d sequences):@," case.alphabet_size
    (Array.length case.seqs);
  Array.iter (fun s -> Format.fprintf fmt "  %S@," (decode s)) case.seqs;
  Format.fprintf fmt "replay: cluseq check --fuzz 1 --seed %d@]" f.f_replay_seed
