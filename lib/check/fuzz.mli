(** Deterministic fuzz harness cross-checking every correctness oracle.

    Each case is generated from a single seed ([Rng.create seed], case
    [i] of a run uses [seed + i]) and drives a random workload through
    the full pipeline:

    - builds a {!Pst} and a {!Ref_pst} from the same insertions and
      demands exact structural and probability agreement, then prunes
      the tree and re-checks {!Check.pst_invariants};
    - compares the Kadane similarity scan against the O(l²) brute-force
      reference on every probe;
    - runs {!Cluseq.run} at 1 and at 4 domains with the
      {!Check.auditor} installed (serial reclustering replay + live
      invariants every iteration) and demands structurally identical
      results — the determinism contract of the domain pool;
    - classifies probes at both domain counts and compares verdicts;
    - round-trips every final model through the textual serialization.

    On failure the workload is shrunk greedily (drop whole sequences,
    then halve survivors) while it still fails, and the report carries a
    replay seed: [cluseq check --fuzz 1 --seed <replay>] regenerates
    and re-runs the original failing case. *)

type case = {
  case_seed : int;  (** The generation seed; replays the case exactly. *)
  alphabet_size : int;
  seqs : Sequence.t array;  (** The workload to cluster. *)
  probes : Sequence.t array;  (** Held-out sequences to classify. *)
  cluseq_cfg : Cluseq.config;
}
(** A self-contained fuzz case. *)

type failure = {
  f_index : int;  (** Which case of the run failed (0-based). *)
  f_replay_seed : int;  (** Pass as [--seed] with [--fuzz 1] to replay. *)
  f_messages : string list;  (** The oracle mismatches, deduplicated. *)
  f_case : case;  (** The shrunk (minimized) failing case. *)
}

val gen_case : seed:int -> case
(** Deterministically generate a case from its seed: alphabet size 2–5,
    4–16 sequences of length 0–24 (empty sequences included, to exercise
    the [empty_result] paths), small PST/clustering parameters, and a
    node budget high enough that the differential oracle's no-pruning
    requirement holds. *)

val run_case : ?on_divergence:(string -> unit) -> case -> string list
(** Run every oracle over one case; the (possibly empty) list of
    mismatch messages. Temporarily installs the {!Check} auditor and
    switches the default domain count; both are restored on exit.
    [on_divergence] (default [ignore]) receives the diagnostic report
    when the sketch-gated run produces a different final clustering
    than the full scan — a heuristic false negative, counted on
    [cluseq.index.false_negatives] but not treated as a failure (the
    gated run's {e engine} correctness is separately enforced by the
    installed auditor's serial replay, which raises on mismatch). *)

val shrink : case -> still_fails:(case -> bool) -> case
(** Greedy, budget-capped minimization: repeatedly drop a sequence or
    halve one while the predicate still fails. *)

val run :
  ?progress:(int -> unit) ->
  ?on_divergence:(int -> string -> unit) ->
  n:int ->
  seed:int ->
  unit ->
  (int, failure) result
(** [run ~n ~seed ()] executes cases [seed, seed+1, …, seed+n-1],
    stopping at the first failure (shrunk before reporting).
    [progress] is called with each completed case index;
    [on_divergence] with the case seed and report whenever the index
    oracle observes a (non-failing) sketch false negative. [Ok n] when
    every case passes. *)

val pp_failure : Format.formatter -> failure -> unit
(** Human-readable report: messages, the minimized workload (decoded),
    and the replay command line. *)
