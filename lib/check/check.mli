(** Runtime invariant checkers and differential oracles for the CLUSEQ
    pipeline (see DESIGN.md §8).

    Each checker returns a list of human-readable violation messages —
    empty means clean — so callers can aggregate, print, or turn them
    into a {!Violation}. The {!install_auditor} entry point wires the
    live checkers into {!Cluseq.run}'s audit hooks; production runs pay
    a single ref read per iteration unless the auditor is installed
    (the [--check] CLI flag or [CLUSEQ_CHECK=1]). *)

exception Violation of string list
(** Raised by the installed auditor when a checker reports violations.
    Aborts the surrounding run; the messages name every failed
    invariant. *)

val pst_invariants : Pst.t -> string list
(** Structural soundness of a probabilistic suffix tree:
    - the traversal node count equals [Pst.n_nodes], which respects the
      [max_nodes] budget;
    - depths grow by one along edges and never exceed [max_depth]; edge
      symbols are in-alphabet and strictly increasing per node;
    - a child's count never exceeds its parent's, and the children's
      counts sum to at most the parent's (each inserted position bumps
      at most one child per node);
    - [next_total] equals the sum of the next-symbol counters and never
      exceeds the node count;
    - the smoothed distribution sums to 1 (±1e-9) with every entry in
      [[p_min, 1 - (n-1)·p_min]] when smoothing is on, and is exactly
      uniform at nodes with no observations. *)

val result_invariants : n:int -> Cluseq.result -> string list
(** Coherence of a finished run over [n] sequences: unique cluster ids;
    sorted in-range member lists; membership and [assignments] agree in
    both directions; [outliers] is exactly the empty-assignment
    sequences; [best] entries are finite; [models] / [pst_stats] ids
    match the clusters; every final model passes {!pst_invariants}. *)

val cluster_invariants : Cluster.t list -> assignments:int list array -> string list
(** Live variant used by the auditor after each consolidation: bitset
    membership must mirror the assignment lists in both directions — in
    particular no dismissed cluster id survives in any assignment — and
    every surviving cluster's PST passes {!pst_invariants}. *)

val reference_recluster :
  Cluseq.recluster_snapshot -> (int * Bitset.t) array * int list array
(** Serial reference replay of one reclustering pass from its frozen
    snapshot: visit sequences in the recorded order and score each
    against every cluster's {e current} (evolving) model copy — no
    parallel score matrix, no dirty tracking — joining, absorbing and
    recording assignments with the engine's exact rules. Returns the
    per-cluster memberships and per-sequence assignment lists the pass
    must produce. When the snapshot records an active sketch gate
    ([snap_index_ratio]), the replay rederives the same gate from the
    snapshot's iteration-start model copies and skips pruned pairs
    exactly as the engine did. Because scoring and gating are
    deterministic, the engine's optimized pass (parallel matrix +
    dirty-cluster rescoring + sketch gate) must match this replay
    bit-for-bit. *)

val recluster_matches :
  Cluseq.recluster_snapshot ->
  after:(int * Bitset.t) array ->
  assignments:int list array ->
  string list
(** Compare the engine's reclustering outcome against
    {!reference_recluster}; messages name each diverging cluster or
    sequence. *)

val psa_scoring_matches :
  Pst.t -> log_background:float array -> Sequence.t array -> string list
(** Differential oracle for the compiled scoring automaton: compiles the
    tree with {!Psa.compile} and demands {e exact} float equality of the
    per-position X_i profiles ({!Similarity.xs} vs {!Similarity.xs_psa}),
    identical maximizing segments and log-similarities
    ({!Similarity.score} vs {!Similarity.score_psa}), and per-position
    agreement of the automaton state's depth with
    {!Pst.prediction_node}'s. Run by the fuzz harness on every case,
    against both the unpruned and a pruned tree. *)

val batch_scoring_matches :
  Pst.t -> log_background:float array -> Sequence.t array list -> string list
(** Differential oracle for the batched kernel: compiles the tree and
    scores each block with {!Similarity.score_batch} against
    {!Similarity.score_psa} per sequence, demanding {e exact} float
    equality of every log-similarity plus identical segment bounds. All
    blocks share one scratch (created with capacity 1) so lane-reset and
    resize bugs across block boundaries are exercised too. Run by the
    fuzz harness (check #6) on both the unpruned and a pruned tree, with
    blocks that include the empty block, singletons, and empty
    sequences. *)

type index_verdict =
  | Index_skipped  (** The index is globally disabled (or the ratio is 0). *)
  | Index_identical  (** Gated and full scans produced identical clusterings. *)
  | Index_diverged of string
      (** A sketch false negative changed the final clustering; the
          report names the diverging ratio, the number of differing
          assignment rows, and the largest probed ratio at which the
          two runs agree. Divergence is a {e heuristic} miss — possible
          by design for any ratio above 0 — not an engine bug; engine
          bugs surface as {!Violation} from the installed auditor's
          gated replay instead. *)

val index_agrees : ?config:Cluseq.config -> ?ratio:float -> Seq_database.t -> index_verdict
(** End-to-end oracle for the candidate index: run the full scan
    (index disabled) and the gated scan at [ratio] (default: the
    current runtime ratio, which starts at 0 — the fuzz harness passes
    [Index.default_ratio] explicitly so the gate is exercised even
    though it is opt-in) on the same database and compare the {e final}
    clusterings — clusters, assignments, and outliers (the trajectory
    may differ: pruned outlier pairs drop [best] entries). On
    divergence, records it on [cluseq.index.false_negatives] and probes
    halved ratios for the largest agreeing one. Restores the global
    index settings on exit. *)

val auditor : unit -> Cluseq.auditor
(** An auditor running {!recluster_matches} after every reclustering
    pass and {!cluster_invariants} after every consolidation, raising
    {!Violation} on the first report. *)

val install_auditor : unit -> unit
(** [Cluseq.set_auditor (Some (auditor ()))]. *)

val uninstall_auditor : unit -> unit
(** Clear the hook; runs go back to paying one ref read per iteration. *)

val env_enabled : unit -> bool
(** Whether [CLUSEQ_CHECK] is set to anything but [0]/[false]/[no]/empty. *)

val install_from_env : unit -> unit
(** {!install_auditor} iff {!env_enabled}; the CLI calls this at startup
    so [CLUSEQ_CHECK=1 cluseq cluster …] audits any run. *)
