(** Monotonic timing: one-shot measurements and accumulating stopwatches.

    All readings come from the system monotonic clock
    ([clock_gettime(CLOCK_MONOTONIC)]), so they are immune to NTP steps
    and wall-clock adjustments; only durations are meaningful, not
    absolute times. *)

val now_ns : unit -> int64
(** [now_ns ()] is the monotonic clock reading in nanoseconds since an
    arbitrary fixed origin (typically boot). *)

val now_s : unit -> float
(** [now_s ()] is {!now_ns} converted to seconds. *)

val span_s : int64 -> int64 -> float
(** [span_s t0 t1] is the duration [t1 - t0] in seconds, for two
    {!now_ns} readings. *)

(** {1 Accumulating stopwatch}

    A stopwatch accumulates elapsed time over any number of
    start/stop intervals — the primitive under [Obs.Trace] spans. *)

type t
(** A stopwatch: stopped with zero accumulated time at creation. *)

val create : unit -> t

val start : t -> unit
(** Start the stopwatch; a no-op if it is already running. *)

val stop : t -> unit
(** Stop the stopwatch, adding the current interval to the accumulated
    total; a no-op if it is not running. *)

val reset : t -> unit
(** Stop and zero the accumulated total. *)

val running : t -> bool

val accumulate : t -> int64 -> unit
(** [accumulate t ns] adds [ns] (ignored if negative) nanoseconds to the
    accumulated total — for merging measurements taken elsewhere. *)

val elapsed_ns : t -> int64
(** Accumulated nanoseconds, including the in-flight interval if the
    stopwatch is running. *)

val elapsed_s : t -> float
(** {!elapsed_ns} in seconds. *)

(** {1 One-shot helpers} *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    monotonic time in seconds. *)

val time_s : (unit -> unit) -> float
(** [time_s f] is the elapsed monotonic seconds of [f ()]. *)
