type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ?(n_buckets = 50) ~lo ~hi () =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if n_buckets < 3 then invalid_arg "Histogram.create: need >= 3 buckets";
  { lo; hi; width = (hi -. lo) /. float_of_int n_buckets; counts = Array.make n_buckets 0; total = 0 }

let add t x =
  let i = int_of_float ((x -. t.lo) /. t.width) in
  let i = max 0 (min (Array.length t.counts - 1) i) in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let of_samples ?(n_buckets = 50) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_samples: empty";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  let pad = Float.max 1e-9 ((hi -. lo) *. 0.001) in
  let t = create ~n_buckets ~lo:(lo -. pad) ~hi:(hi +. pad) () in
  Array.iter (add t) xs;
  t

let count t = t.total
let n_buckets t = Array.length t.counts
let bucket_count t i = t.counts.(i)
let bucket_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)

let to_points t =
  Array.mapi (fun i c -> (bucket_center t i, float_of_int c)) t.counts

let valley_on t y =
  if t.total = 0 then None
  else begin
    let n = Array.length t.counts in
    let x = Array.init n (bucket_center t) in
    let left, right = Stats.prefix_suffix_slopes ~x ~y in
    (* Interior buckets only, as in the paper's \hat t = max_{i=2}^{n-1}. *)
    let best = ref 1 and best_diff = ref neg_infinity in
    let scale = ref 0.0 in
    for i = 1 to n - 2 do
      let d = Float.abs (left.(i) -. right.(i)) in
      scale := Float.max !scale (Float.max (Float.abs left.(i)) (Float.abs right.(i)));
      if d > !best_diff then begin
        best_diff := d;
        best := i
      end
    done;
    (* A flat or exactly linear count curve turns nowhere: every interior
       slope contrast is zero (up to float noise in the regression sums).
       Reporting bucket 1 for such a curve would be a spurious valley, so
       report none at all — Threshold.adjust then leaves t in place. *)
    if !best_diff <= 1e-9 *. (1.0 +. !scale) then None else Some (bucket_center t !best)
  end

let valley t = valley_on t (Array.map float_of_int t.counts)

let valley_log t =
  valley_on t (Array.map (fun c -> log1p (float_of_int c)) t.counts)
