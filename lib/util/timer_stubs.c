/* Monotonic clock for Timer: CLOCK_MONOTONIC nanoseconds since an
   arbitrary epoch (boot), immune to wall-clock adjustments. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value cluseq_monotonic_clock_ns(value unit)
{
  struct timespec ts;
  (void) unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return caml_copy_int64(0);
  return caml_copy_int64((int64_t) ts.tv_sec * 1000000000LL + (int64_t) ts.tv_nsec);
}
