(** Fixed-width histogram with the "sharpest turn" valley detector of paper
    Sec. 4.6.

    The CLUSEQ threshold adjuster builds a histogram of the similarities of
    all sequence–cluster combinations and looks for the similarity value at
    which the count curve turns most sharply: the point maximizing the
    difference between the regression slope of the left-hand portion and the
    right-hand portion of the curve. *)

type t
(** A histogram over a fixed range with equal-width buckets. *)

val create : ?n_buckets:int -> lo:float -> hi:float -> unit -> t
(** [create ~n_buckets ~lo ~hi ()] is an empty histogram over [\[lo, hi\]]
    with [n_buckets] buckets (default [50]). Raises [Invalid_argument] if
    [hi <= lo] or [n_buckets < 3]. *)

val of_samples : ?n_buckets:int -> float array -> t
(** [of_samples xs] builds a histogram spanning the sample range (slightly
    widened). Raises [Invalid_argument] when [xs] is empty. *)

val add : t -> float -> unit
(** [add t x] increments the bucket containing [x]; values outside the range
    are clamped into the first/last bucket. *)

val count : t -> int
(** Total number of added samples. *)

val n_buckets : t -> int
(** Number of buckets. *)

val bucket_count : t -> int -> int
(** [bucket_count t i] is the number of samples in bucket [i]. *)

val bucket_center : t -> int -> float
(** [bucket_center t i] is the median value {m x_i} of bucket [i]'s range. *)

val valley : t -> float option
(** [valley t] is the bucket-center {m \hat t} maximizing
    {m |b_i^l - b_i^r|} over interior buckets [1 .. n-2], where {m b_i^l}
    and {m b_i^r} are the regression slopes of the left and right portions
    of the count curve (paper Sec. 4.6). [None] when the histogram holds no
    samples, or when the count curve has no turn at all (flat or exactly
    linear: every interior slope contrast is zero, so any reported bucket
    would be a spurious valley). *)

val valley_log : t -> float option
(** Like {!valley} but computed on [log(1 + count)] — the robust choice
    when counts span orders of magnitude, as similarity histograms do: raw
    counts make the slope difference at the edge of the biggest hump drown
    every later turn, while log counts weight relative declines. *)

val to_points : t -> (float * float) array
(** [(center, count)] pairs for every bucket, for printing/plotting. *)
