(** Compact sorted integer-keyed maps.

    PST nodes store their children and next-symbol counters keyed by symbol
    code. Fan-outs are small (rarely above a few dozen), so a pair of sorted
    parallel arrays with binary search beats hash tables on both memory and
    lookup latency — and lookups dominate the similarity computation, the
    hottest loop in CLUSEQ. *)

type 'a t
(** A mutable map from [int] keys to ['a] values. *)

val create : unit -> 'a t
(** An empty map. *)

val copy : 'a t -> 'a t
(** [copy t] is an independent map with the same bindings (values are
    shared, the key/value storage is not). *)

val length : 'a t -> int
(** Number of bindings. *)

val find_idx : 'a t -> int -> int
(** [find_idx t k] is the internal slot of key [k], or [-1] when absent.
    Use with {!value_at} to avoid allocating an option on hot paths. *)

val value_at : 'a t -> int -> 'a
(** [value_at t idx] is the value in slot [idx] (from {!find_idx}). *)

val find_opt : 'a t -> int -> 'a option
(** [find_opt t k] is the binding of [k], if any. *)

val set : 'a t -> int -> 'a -> unit
(** [set t k v] binds [k] to [v], replacing any previous binding. *)

val remove : 'a t -> int -> unit
(** [remove t k] deletes the binding of [k] (no-op when absent). *)

val get_int : int t -> int -> int
(** [get_int t k] is the binding of [k] in an integer-valued map, defaulting
    to [0] — the natural read for occurrence counters. *)

val add_int : int t -> int -> int -> unit
(** [add_int t k d] adds [d] to the counter at key [k] (treating a missing
    key as [0]). *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate bindings in increasing key order. *)

val fold : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over bindings in increasing key order. *)

val keys : 'a t -> int array
(** Keys in increasing order. *)
