external now_ns : unit -> int64 = "cluseq_monotonic_clock_ns"

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let span_s a b = Int64.to_float (Int64.sub b a) /. 1e9

type t = { mutable acc_ns : int64; mutable started_at : int64; mutable running : bool }

let create () = { acc_ns = 0L; started_at = 0L; running = false }

let start t =
  if not t.running then begin
    t.started_at <- now_ns ();
    t.running <- true
  end

let stop t =
  if t.running then begin
    t.acc_ns <- Int64.add t.acc_ns (Int64.sub (now_ns ()) t.started_at);
    t.running <- false
  end

let reset t =
  t.acc_ns <- 0L;
  t.running <- false

let running t = t.running
let accumulate t ns = if ns > 0L then t.acc_ns <- Int64.add t.acc_ns ns

let elapsed_ns t =
  if t.running then Int64.add t.acc_ns (Int64.sub (now_ns ()) t.started_at) else t.acc_ns

let elapsed_s t = Int64.to_float (elapsed_ns t) /. 1e9

let time f =
  let start = now_ns () in
  let result = f () in
  (result, span_s start (now_ns ()))

let time_s f = snd (time f)
