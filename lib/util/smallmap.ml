type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { keys = [||]; vals = [||]; len = 0 }
let copy t = { keys = Array.copy t.keys; vals = Array.copy t.vals; len = t.len }
let length t = t.len

(* Binary search over [keys.(0 .. len-1)]; returns slot or [-1]. *)
let find_idx t k =
  let lo = ref 0 and hi = ref (t.len - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let km = t.keys.(mid) in
    if km = k then begin
      found := mid;
      lo := !hi + 1
    end
    else if km < k then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let value_at t idx = t.vals.(idx)

let find_opt t k =
  let i = find_idx t k in
  if i < 0 then None else Some t.vals.(i)

(* Index of the first key >= k, i.e. the insertion point. *)
let lower_bound t k =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let grow t v =
  let cap = Array.length t.keys in
  if t.len = cap then begin
    let ncap = max 4 (cap * 2) in
    let nk = Array.make ncap 0 and nv = Array.make ncap v in
    Array.blit t.keys 0 nk 0 t.len;
    Array.blit t.vals 0 nv 0 t.len;
    t.keys <- nk;
    t.vals <- nv
  end

let set t k v =
  let pos = lower_bound t k in
  if pos < t.len && t.keys.(pos) = k then t.vals.(pos) <- v
  else begin
    grow t v;
    Array.blit t.keys pos t.keys (pos + 1) (t.len - pos);
    Array.blit t.vals pos t.vals (pos + 1) (t.len - pos);
    t.keys.(pos) <- k;
    t.vals.(pos) <- v;
    t.len <- t.len + 1
  end

let remove t k =
  let i = find_idx t k in
  if i >= 0 then begin
    Array.blit t.keys (i + 1) t.keys i (t.len - i - 1);
    Array.blit t.vals (i + 1) t.vals i (t.len - i - 1);
    t.len <- t.len - 1
  end

let get_int t k =
  let i = find_idx t k in
  if i < 0 then 0 else t.vals.(i)

let add_int t k d =
  let i = find_idx t k in
  if i >= 0 then t.vals.(i) <- t.vals.(i) + d else set t k d

let iter f t =
  for i = 0 to t.len - 1 do
    f t.keys.(i) t.vals.(i)
  done

let fold f t init =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f t.keys.(i) t.vals.(i) !acc
  done;
  !acc

let keys t = Array.sub t.keys 0 t.len
