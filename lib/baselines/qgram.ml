(* q-gram profiles over packed keys from the shared sketch kernel
   (Sketch.gram_key): exact for the q <= 3 / small-code envelope every
   workload here lives in, and a single int compares and hashes far
   faster than the old int-list keys. Counts are stored behind a ref so
   the hot increment path does one lookup on repeat grams instead of a
   find_opt + replace pair. *)

type profile = { counts : (int, float ref) Hashtbl.t; norm : float }

let profile ~q s =
  if q <= 0 then invalid_arg "Qgram.profile";
  let counts = Hashtbl.create 64 in
  let l = Array.length s in
  for i = 0 to l - q do
    let key = Sketch.gram_key s ~pos:i ~q in
    match Hashtbl.find_opt counts key with
    | Some c -> c := !c +. 1.0
    | None -> Hashtbl.add counts key (ref 1.0)
  done;
  let norm = sqrt (Hashtbl.fold (fun _ c acc -> acc +. (!c *. !c)) counts 0.0) in
  { counts; norm }

let dimensions p = Hashtbl.length p.counts
let is_empty p = Hashtbl.length p.counts = 0

let cosine a b =
  if a.norm <= 0.0 || b.norm <= 0.0 then 0.0
  else begin
    (* Iterate the smaller table. *)
    let small, large =
      if Hashtbl.length a.counts <= Hashtbl.length b.counts then (a, b) else (b, a)
    in
    let dot =
      Hashtbl.fold
        (fun key v acc ->
          match Hashtbl.find_opt large.counts key with
          | Some w -> acc +. (!v *. !w)
          | None -> acc)
        small.counts 0.0
    in
    dot /. (a.norm *. b.norm)
  end

type result = { labels : int array; iterations : int }

let unassigned = -1

let centroid_of profiles members =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun i ->
      let p = profiles.(i) in
      if p.norm > 0.0 then
        Hashtbl.iter
          (fun key v ->
            let nv = !v /. p.norm in
            match Hashtbl.find_opt counts key with
            | Some acc -> acc := !acc +. nv
            | None -> Hashtbl.add counts key (ref nv))
          p.counts)
    members;
  let norm = sqrt (Hashtbl.fold (fun _ c acc -> acc +. (!c *. !c)) counts 0.0) in
  { counts; norm }

let cluster rng ~k ~q ?(rounds = 20) data =
  let n = Array.length data in
  if k <= 0 || k > n then invalid_arg "Qgram.cluster";
  let profiles = Array.map (profile ~q) data in
  let seeds = Rng.sample_without_replacement rng ~k ~n in
  let centroids = Array.map (fun i -> centroid_of profiles [ i ]) seeds in
  (* A retired cluster never competes in the argmax again: clusters
     seeded from an empty profile start retired, and a cluster that
     loses its last member is retired rather than left as a stale ghost
     attractor (the old behaviour kept its previous centroid, which
     could capture sequences on later rounds). *)
  let retired = Array.map (fun c -> c.norm <= 0.0) centroids in
  let labels = Array.make n unassigned in
  let iters = ref 0 and changed = ref true in
  while !changed && !iters < rounds do
    incr iters;
    changed := false;
    Array.iteri
      (fun i p ->
        (* Empty profiles (|s| < q) have cosine 0 against everything;
           the old argmax silently dumped them into cluster 0. They stay
           deterministically unassigned instead. *)
        if p.norm > 0.0 then begin
          let best = ref unassigned and best_c = ref neg_infinity in
          Array.iteri
            (fun c centroid ->
              if not retired.(c) then begin
                let cs = cosine p centroid in
                if cs > !best_c then begin
                  best_c := cs;
                  best := c
                end
              end)
            centroids;
          if !best <> unassigned && labels.(i) <> !best then begin
            labels.(i) <- !best;
            changed := true
          end
        end)
      profiles;
    if !changed then
      for c = 0 to k - 1 do
        if not retired.(c) then begin
          let members = ref [] in
          Array.iteri (fun i l -> if l = c then members := i :: !members) labels;
          if !members = [] then retired.(c) <- true
          else centroids.(c) <- centroid_of profiles !members
        end
      done
  done;
  { labels; iterations = !iters }
