(** q-gram profile clustering — the "q-gram" baseline of paper Table 2
    (the paper runs it with [q = 3]).

    Each sequence is reduced to the multiset of its length-[q] segments
    (sliding window); similarity is the cosine between (weighted) q-gram
    count vectors, and clustering is spherical k-means over the sparse
    profiles. As the paper argues, the representation discards the
    sequential relationships {e between} q-grams, which is precisely the
    accuracy gap Table 2 demonstrates.

    Profiles are keyed by [Sketch.gram_key]: exact packed ints for
    [q <= 3] with symbol codes below [Sketch.packed_symbol_limit] (every
    workload in this repo), a negligible-collision 62-bit mix outside
    that envelope. *)

type profile
(** A sparse q-gram count vector with its L2 norm. *)

val profile : q:int -> Sequence.t -> profile
(** [profile ~q s] is the q-gram profile of [s]; the profile is empty when
    [|s| < q]. Raises [Invalid_argument] when [q <= 0]. *)

val cosine : profile -> profile -> float
(** Cosine similarity in [\[0, 1\]]; [0.] when either profile is empty. *)

val dimensions : profile -> int
(** Number of distinct q-grams in the profile. *)

val is_empty : profile -> bool
(** [true] iff the profile has no grams (sequence shorter than [q]). *)

val unassigned : int
(** The label ([-1]) given to sequences k-means cannot place: empty
    profiles, or (degenerately) when every cluster has retired. *)

type result = {
  labels : int array;
      (** Cluster index per sequence, or {!unassigned} for sequences
          shorter than [q]. *)
  iterations : int;  (** k-means rounds executed. *)
}

val cluster :
  Rng.t -> k:int -> q:int -> ?rounds:int -> Sequence.t array -> result
(** [cluster rng ~k ~q data] runs spherical k-means: centroids start from
    random distinct sequences' profiles; each round assigns every
    non-empty profile to the max-cosine live centroid and recomputes
    centroids as normalized member sums; stops when assignments stabilize
    or after [rounds] (default 20). Empty profiles stay {!unassigned}; a
    cluster that ends a round with no members (or was seeded from an
    empty profile) is retired deterministically and never claims
    sequences again. *)
