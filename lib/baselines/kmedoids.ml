type result = {
  labels : int array;
  medoids : int array;
  cost : float;
  iterations : int;
}

let[@inline] pair_key i j = if i < j then (i, j) else (j, i)

(* Pairwise-distance cache with batched fill: each alternation phase
   first declares the pairs it is about to read, the missing ones are
   computed in one parallel pass over the domain pool, and the phase
   itself then reads cache-only. Every pair is evaluated exactly once
   (the cache dedupes across phases and iterations) and the todo list
   is sorted, so the set of [dist] calls — and hence the result — is
   identical for any domain count. *)
let make_cache ~n dist =
  let cache = Hashtbl.create (4 * n) in
  let get i j = if i = j then 0.0 else Hashtbl.find cache (pair_key i j) in
  let ensure add_pairs =
    let fresh = Hashtbl.create 64 in
    add_pairs (fun i j ->
        if i <> j then begin
          let key = pair_key i j in
          if not (Hashtbl.mem cache key) then Hashtbl.replace fresh key ()
        end);
    let todo =
      Array.of_list
        (List.sort compare (Hashtbl.fold (fun key () acc -> key :: acc) fresh []))
    in
    let ds =
      Par.map_chunks (Par.get_pool ()) ~n:(Array.length todo) (fun t ->
          let i, j = todo.(t) in
          dist i j)
    in
    Array.iteri (fun t key -> Hashtbl.replace cache key ds.(t)) todo
  in
  (get, ensure)

let precompute ~n dist =
  let m = Array.make_matrix n n 0.0 in
  Par.parallel_for (Par.get_pool ()) ~lo:0 ~hi:n (fun i ->
      for j = i + 1 to n - 1 do
        m.(i).(j) <- dist i j
      done);
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      m.(j).(i) <- m.(i).(j)
    done
  done;
  fun i j -> m.(i).(j)

let run rng ~k ~n ?(max_iterations = 20) dist =
  if k <= 0 || k > n then invalid_arg "Kmedoids.run";
  let get, ensure = make_cache ~n dist in
  let medoids = Rng.sample_without_replacement rng ~k ~n in
  let labels = Array.make n 0 in
  let assign () =
    ensure (fun need ->
        Array.iter (fun m -> for i = 0 to n - 1 do need i m done) medoids);
    let cost = ref 0.0 in
    for i = 0 to n - 1 do
      let best = ref 0 and best_d = ref infinity in
      for c = 0 to k - 1 do
        let d = get i medoids.(c) in
        if d < !best_d then begin
          best_d := d;
          best := c
        end
      done;
      labels.(i) <- !best;
      cost := !cost +. !best_d
    done;
    !cost
  in
  let update () =
    (* New medoid of each cluster: the member minimizing total in-cluster
       distance. Returns whether any medoid moved. Member lists are built
       in descending index order so candidate tie-breaking matches the
       pre-batching implementation. *)
    let members = Array.make k [] in
    for i = 0 to n - 1 do
      members.(labels.(i)) <- i :: members.(labels.(i))
    done;
    ensure (fun need ->
        Array.iter
          (fun ms -> List.iter (fun a -> List.iter (fun b -> need a b) ms) ms)
          members);
    let moved = ref false in
    for c = 0 to k - 1 do
      match members.(c) with
      | [] -> () (* empty cluster keeps its medoid *)
      | ms ->
          let best = ref medoids.(c) and best_cost = ref infinity in
          List.iter
            (fun cand ->
              let cost = List.fold_left (fun acc i -> acc +. get cand i) 0.0 ms in
              if cost < !best_cost then begin
                best_cost := cost;
                best := cand
              end)
            ms;
          if !best <> medoids.(c) then begin
            medoids.(c) <- !best;
            moved := true
          end
    done;
    !moved
  in
  let cost = ref (assign ()) in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < max_iterations do
    incr iters;
    let moved = update () in
    cost := assign ();
    if not moved then continue_ := false
  done;
  { labels; medoids; cost = !cost; iterations = !iters }
