(** k-medoids clustering (PAM-style alternation) over an arbitrary
    distance, used to turn the pairwise baselines (edit distance, block
    edit distance) into clusterers for the Table 2 comparison. *)

type result = {
  labels : int array;  (** Cluster index in [\[0, k)] per item. *)
  medoids : int array;  (** Item index of each cluster's medoid. *)
  cost : float;  (** Sum of item→medoid distances. *)
  iterations : int;  (** Alternation rounds executed. *)
}

val run :
  Rng.t ->
  k:int ->
  n:int ->
  ?max_iterations:int ->
  (int -> int -> float) ->
  result
(** [run rng ~k ~n dist] clusters items [0 .. n-1] with distance
    [dist i j]: random distinct initial medoids, then alternate
    (assign-to-nearest-medoid / recompute medoid as the member minimizing
    total in-cluster distance) until stable or [max_iterations] (default
    20). [dist] is memoized internally (symmetric, zero diagonal assumed),
    so callers can pass the raw O(l²) distance function directly; missing
    entries are evaluated in batched parallel passes over the [Par]
    domain pool, with identical results for any domain count ([dist]
    must be pure and safe to call from worker domains).
    Raises [Invalid_argument] when [k > n] or [k <= 0]. *)

val precompute : n:int -> (int -> int -> float) -> int -> int -> float
(** [precompute ~n dist] eagerly evaluates the full n×n matrix and returns
    a lookup function — useful when the caller wants to time the distance
    phase separately from the clustering phase. *)
