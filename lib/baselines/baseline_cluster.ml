type method_ =
  | Edit_distance
  | Block_edit
  | Hmm of int
  | Qgram of int

let method_name = function
  | Edit_distance -> "ED"
  | Block_edit -> "EDBO"
  | Hmm _ -> "HMM"
  | Qgram _ -> "q-gram"

let m_runs = Obs.Metrics.counter "baseline.runs"
let h_run = Obs.Metrics.histogram "baseline.run_seconds"

let run_method rng ~k m db =
  let n = Seq_database.n_sequences db in
  let seqs = Seq_database.sequences db in
  match m with
  | Edit_distance ->
      let dist i j = float_of_int (Edit_distance.distance seqs.(i) seqs.(j)) in
      (Kmedoids.run rng ~k ~n ~max_iterations:6 dist).labels
  | Block_edit ->
      (* Each extraction round is a full O(l^2) scan; 16 rounds bound the
         per-pair cost while covering the planted shared blocks. *)
      let dist i j =
        let a = seqs.(i) and b = seqs.(j) in
        let d = Block_edit.distance ~max_blocks:16 a b in
        (* Normalize by total length so length variation doesn't dominate
           (the paper's ED keeps its raw length bias — that is its flaw). *)
        float_of_int d /. float_of_int (max 1 (Array.length a + Array.length b))
      in
      (Kmedoids.run rng ~k ~n ~max_iterations:5 dist).labels
  | Hmm n_states ->
      let n_symbols = Alphabet.size (Seq_database.alphabet db) in
      let init = (Qgram.cluster (Rng.split rng) ~k ~q:3 seqs).labels in
      (Hmm.cluster rng ~k ~n_states ~n_symbols ~rounds:1 ~em_iterations:8 ~init_labels:init seqs)
        .labels
  | Qgram q -> (Qgram.cluster rng ~k ~q seqs).labels

let run rng ~k m db =
  Obs.Metrics.incr m_runs;
  Obs.Trace.with_span ("baseline." ^ method_name m) @@ fun () ->
  let t0 = if Obs.Metrics.is_enabled () then Timer.now_ns () else 0L in
  let labels = run_method rng ~k m db in
  if Obs.Metrics.is_enabled () then Obs.Metrics.observe h_run (Timer.span_s t0 (Timer.now_ns ()));
  labels
