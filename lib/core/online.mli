(** Online (streaming) sequence clustering on top of CLUSEQ.

    The paper's motivating domains include web access logs and system
    traces — data that arrives as an unbounded stream. This module extends
    the batch algorithm to that setting (an extension beyond the paper,
    built from its own primitives):

    - each arriving sequence is scored against the current cluster models
      (the paper's similarity measure) and {e absorbed} into every cluster
      it clears the threshold for (best-segment PST update, Sec. 4.4);
    - sequences matching nothing are {e buffered}; when the buffer fills,
      a batch CLUSEQ run mines it for new clusters, which join the live
      model set;
    - the background distribution is maintained incrementally over all
      symbols seen;
    - memory stays bounded: per-cluster PSTs by their node budget, the
      buffer by [buffer_capacity] (oldest unmatched sequences are dropped
      and counted as outliers).

    When {!Obs.Journal} is enabled the stream's decisions are journaled
    as [online.assigned] (best cluster + deciding score),
    [online.mined], and [online.dropped] records, alongside the batch
    events of the embedded {!Cluseq.run} during mining.

    Determinism: given the same config and feed order, the state evolution
    is reproducible. *)

type t
(** Mutable streaming state. *)

type stats = {
  fed : int;  (** Sequences fed so far. *)
  assigned : int;  (** Assignments to existing clusters at feed time. *)
  mined_clusters : int;  (** Clusters discovered by buffer mining. *)
  buffered : int;  (** Sequences currently awaiting mining. *)
  dropped_outliers : int;  (** Unmatched sequences evicted from the buffer. *)
  n_clusters : int;  (** Live clusters. *)
}

val create :
  ?config:Cluseq.config ->
  ?buffer_capacity:int ->
  ?mine_at:int ->
  alphabet_size:int ->
  unit ->
  t
(** [create ~alphabet_size ()] starts with no clusters. [mine_at] (default
    64) triggers a batch mining run once that many sequences are buffered;
    [buffer_capacity] (default [4 × mine_at]) bounds the buffer — the
    oldest sequences beyond it are evicted as outliers. [config] controls
    both feed-time thresholds and the mining runs (its [t_init] is the
    decision threshold; threshold auto-adjustment applies within mining
    runs only). *)

val feed : t -> Sequence.t -> int option
(** [feed t s] processes one arriving sequence: [Some cluster_id] when it
    joined an existing cluster (the best one — overlap joins update every
    matching cluster's PST), [None] when it was buffered. May trigger a
    mining run. Raises [Invalid_argument] on symbols outside the
    alphabet. *)

val mine : t -> int
(** [mine t] forces a mining run over the buffer now; returns the number
    of new clusters discovered. Mined clusters absorb their members from
    the buffer; everything else stays buffered. *)

val classify : t -> Sequence.t -> (int * float) option
(** [classify t s] is the best (cluster, log-similarity) if it clears the
    threshold — read-only, no state update. *)

val stats : t -> stats
(** Current counters. *)

val cluster_sizes : t -> (int * int) list
(** Live (cluster id, members absorbed) pairs, ascending ids. *)
