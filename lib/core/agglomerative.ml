type linkage = Single | Complete | Average
type measure = Variational | Kl_symmetric

let default_pst_config ~alphabet_size : Pst.config =
  { (Pst.default_config ~alphabet_size) with significance = 2; max_depth = 5 }

let cluster ?(linkage = Average) ?(measure = Variational) ?pst_config ~k db =
  let n = Seq_database.n_sequences db in
  if k <= 0 || k > n then invalid_arg "Agglomerative.cluster";
  let alphabet_size = Alphabet.size (Seq_database.alphabet db) in
  let cfg = Option.value ~default:(default_pst_config ~alphabet_size) pst_config in
  let models =
    Array.map
      (fun s ->
        let t = Pst.create cfg in
        Pst.insert_sequence t s;
        t)
      (Seq_database.sequences db)
  in
  let dist_fn = match measure with Variational -> Divergence.variational | Kl_symmetric -> Divergence.kl_symmetric in
  (* O(N²) model-divergence matrix: rows fan out over the domain pool
     (each worker writes only its own row's upper triangle), the mirror
     fill stays serial. Divergence evaluation is read-only on the
     models, and each cell is computed exactly once, so the matrix is
     identical for any domain count. *)
  let dist = Array.make_matrix n n 0.0 in
  Par.parallel_for (Par.get_pool ()) ~lo:0 ~hi:n (fun i ->
      for j = i + 1 to n - 1 do
        dist.(i).(j) <- dist_fn models.(i) models.(j)
      done);
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      dist.(j).(i) <- dist.(i).(j)
    done
  done;
  (* Union-find-free agglomeration: active cluster = list of members;
     linkage distances recomputed from the pairwise matrix. *)
  let clusters = ref (List.init n (fun i -> [ i ])) in
  let linkage_dist a b =
    let pairs = List.concat_map (fun i -> List.map (fun j -> dist.(i).(j)) b) a in
    match linkage with
    | Single -> List.fold_left Float.min infinity pairs
    | Complete -> List.fold_left Float.max neg_infinity pairs
    | Average -> List.fold_left ( +. ) 0.0 pairs /. float_of_int (List.length pairs)
  in
  while List.length !clusters > k do
    (* Find the closest pair of active clusters. *)
    let best = ref None in
    let rec scan = function
      | [] | [ _ ] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              let d = linkage_dist a b in
              match !best with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> best := Some (a, b, d))
            rest;
          scan rest
    in
    scan !clusters;
    match !best with
    | None -> invalid_arg "Agglomerative.cluster: unreachable"
    | Some (a, b, _) ->
        clusters := (a @ b) :: List.filter (fun c -> c != a && c != b) !clusters
  done;
  let labels = Array.make n 0 in
  List.iteri (fun ci members -> List.iter (fun i -> labels.(i) <- ci) members) !clusters;
  labels
