(** The CLUSEQ similarity measure (paper Sec. 2 and 4.3).

    The similarity of a sequence {m σ} to a cluster {m S} is
    {m SIM_S(σ) = \max_{j \le i} sim_S(s_j \ldots s_i)} where
    {m sim_S} is the ratio of the probability of predicting the segment
    under the cluster's CPD to the probability of generating it by a
    memoryless random process (Eq. 1).

    All computation is carried out in log space: with
    {m X_i = \log P_S(s_i \mid s_1 \ldots s_{i-1}) - \log p(s_i)} the
    paper's dynamic program becomes
    {m Y_i = \max(Y_{i-1} + X_i,\; X_i)}, {m Z_i = \max(Z_{i-1}, Y_i)}
    — a single left-to-right scan (Kadane's maximum-subarray scheme). The
    conditional probabilities are retrieved from the cluster's PST via its
    prediction nodes, exactly the procedure of paper Sec. 3. *)

type result = {
  log_sim : float;  (** {m \log SIM_S(σ)}; [neg_infinity] for an empty σ. *)
  seg_lo : int;  (** Start of the maximizing segment (inclusive). *)
  seg_hi : int;  (** End of the maximizing segment (inclusive). *)
}

val score : Pst.t -> log_background:float array -> Sequence.t -> result
(** [score pst ~log_background s] evaluates {m SIM} of [s] against the
    cluster modeled by [pst]. [log_background] is the database-wide
    {m \log p(s)} vector ({!Seq_database.log_background}). O(l · L) where
    L is the PST's max context depth. *)

val score_psa : Psa.t -> log_background:float array -> Sequence.t -> result
(** [score_psa psa ~log_background s]: the same measure over a compiled
    automaton ({!Psa.compile} of the same tree) — a single O(l) pass,
    one transition and one table read per symbol, no allocation and no
    per-symbol [log]. Bit-for-bit equal to {!score} on the tree the
    automaton was compiled from (exact float equality; enforced by the
    property tests and the fuzz oracle). Raises [Invalid_argument] on a
    symbol outside the compiled alphabet. *)

val score_batch :
  Psa.t -> log_background:float array -> batch:Psa.batch -> Sequence.t array -> result array
(** [score_batch psa ~log_background ~batch seqs] scores the whole block
    in one position-major pass over the automaton ({!Psa.score_batch})
    and returns one {!result} per sequence, in input order. Bit-for-bit
    equal to [Array.map (score_psa psa ~log_background) seqs] — the
    kernel performs the identical per-lane float operations in the
    identical order, and empty sequences yield the [empty_result]
    sentinel — while allocating nothing per symbol ([batch] holds the
    reusable scratch columns; one per worker domain). Raises
    [Invalid_argument] on a symbol outside the compiled alphabet. *)

val xs_psa : Psa.t -> log_background:float array -> Sequence.t -> float array
(** The per-position {m X_i} profile via the automaton; bit-for-bit equal
    to {!xs} on the source tree. *)

type attribution = {
  attr_result : result;  (** Exactly what {!score_psa} would return. *)
  attr_xs : float array;
      (** Per-position log-odds contribution
          {m X_i = \log P_S(s_i \mid ctx) - \log p(s_i)}: how much each
          symbol argues for (positive) or against (negative) the
          cluster. *)
  attr_depths : int array;
      (** Per position, the length of the context the PST actually used
          to predict symbol [i] (its prediction node's depth) — 0 means
          the empty context / root estimate. *)
}
(** The decomposition behind one similarity score — the paper's whole
    case for the measure is that it {e has} such a decomposition
    (Sec. 2: per-symbol conditional-probability ratios against the
    background), so surfacing it is what makes [cluseq explain]
    possible. *)

val score_attributed : Psa.t -> log_background:float array -> Sequence.t -> attribution
(** [score_attributed psa ~log_background s] is {!score_psa} plus the
    per-position provenance above. Same float operations in the same
    order, so [attr_result] is bit-for-bit equal to [score_psa]'s
    result, and {!attribution_segment_sum} rebuilds [log_sim] exactly
    (property-tested). Two O(l) arrays per call — use {!score_psa} in
    scans, this only when explaining. *)

val attribution_segment_sum : attribution -> float
(** Left fold of [attr_xs] over the winning segment
    [seg_lo .. seg_hi], replaying the scan's own accumulation order —
    equals [attr_result.log_sim] {e bit-for-bit}, not merely
    approximately ([neg_infinity] when there is no segment). *)

val validate_log_background : float array -> unit
(** Rejects (with [Invalid_argument]) any entry that is not a finite
    [log p <= 0] — i.e. zero-probability, NaN, or [p > 1] background
    symbols, which would otherwise silently poison every score. Called
    once per run / classifier build, where the background vector enters
    the engine — never per scoring call. *)

val score_brute : Pst.t -> log_background:float array -> Sequence.t -> result
(** Reference implementation: explicitly maximizes over all O(l²) segments.
    Exposed for property tests; do not use on long sequences. *)

val xs : Pst.t -> log_background:float array -> Sequence.t -> float array
(** [xs pst ~log_background s] is the per-position {m X_i} array the DP
    maximizes over — the same kernel {!score} scans, exposed so tests can
    check the two never drift apart (and for callers that need the raw
    profile, e.g. threshold histograms). *)

val log_of_linear : float -> float
(** [log_of_linear t] converts a user-facing linear similarity threshold
    (e.g. the paper's [t = 1.0005]) into log space. Raises
    [Invalid_argument] unless [t] is finite and [> 0] — NaN and
    infinities are rejected, not just non-positive values. *)

val linear_of_log : float -> float
(** Inverse of {!log_of_linear}, with the input clamped at [500.] nats so
    the result never overflows to [infinity] ([exp 500 ≈ 1.4e217]).
    [neg_infinity] — the {!empty_result} sentinel — returns an exact
    [0.], never a subnormal. *)
