type t = {
  models : (int * Pst.t) array; (* sorted by cluster id *)
  (* Parallel to [models]: automata compiled once at construction (the
     models never mutate), shared read-only by the classify_all workers.
     [None] per entry when compilation is disabled (--no-psa). *)
  compiled : Psa.t option array;
  log_background : float array;
  log_t : float;
  alphabet : Alphabet.t option;
}

type verdict = {
  cluster : int option;
  log_sim : float;
  scores : (int * float) list;
}

(* Shared by [make] and [load]; the one place classifier state is built,
   so corrupt persisted background vectors are rejected here too. *)
let build ~models ~log_background ~log_t ~alphabet =
  Similarity.validate_log_background log_background;
  let compiled =
    Array.map
      (fun (_, pst) -> if Psa.enabled () then Some (Psa.compile pst) else None)
      models
  in
  { models; compiled; log_background; log_t; alphabet }

let make ~models ~log_background ~t_linear ?alphabet () =
  if models = [] then invalid_arg "Classifier.make: no models";
  (* [< 1.0] alone lets NaN through (NaN comparisons are false). *)
  if not (Float.is_finite t_linear && t_linear >= 1.0) then
    invalid_arg "Classifier.make: t_linear must be a finite value >= 1";
  let models = Array.of_list (List.sort compare models) in
  build ~models ~log_background ~log_t:(log t_linear) ~alphabet

let of_result (result : Cluseq.result) db =
  make
    ~models:(Array.to_list result.models)
    ~log_background:(Seq_database.log_background db)
    ~t_linear:(Float.max 1.0 result.final_t)
    ~alphabet:(Seq_database.alphabet db) ()

let alphabet t = t.alphabet

let classify t s =
  let scores =
    Array.to_list
      (Array.mapi
         (fun i (id, pst) ->
           let r =
             match t.compiled.(i) with
             | Some psa -> Similarity.score_psa psa ~log_background:t.log_background s
             | None -> Similarity.score pst ~log_background:t.log_background s
           in
           (id, r.Similarity.log_sim))
         t.models)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  match scores with
  | [] -> assert false
  | (best, score) :: _ ->
      { cluster = (if score >= t.log_t then Some best else None); log_sim = score; scores }

(* Batch scoring is read-only against the stored models, so verdicts fan
   out over the domain pool; results are gathered by sequence index, so
   the output is identical for any domain count. Each task owns a block
   of sequences and scores it model-major — one batched automaton pass
   per (model, block) via [Similarity.score_batch] — then assembles each
   lane's verdict from the same per-model score list, in the same model
   order, that [classify] builds, so the sorted verdicts are identical
   to the per-sequence path (the fuzz harness cross-checks the two). *)
let classify_all t db =
  let seqs = Seq_database.sequences db in
  let n = Array.length seqs in
  let block = 64 in
  let nb = (n + block - 1) / block in
  let blocks =
    Par.map_chunks (Par.get_pool ()) ~n:nb (fun b ->
        let lo = b * block in
        let bn = min block (n - lo) in
        let sub = Array.sub seqs lo bn in
        let batch = Psa.batch_create ~capacity:bn () in
        (* cols.(i).(j): lane j's log-similarity against model i. *)
        let cols =
          Array.mapi
            (fun i (_, pst) ->
              match t.compiled.(i) with
              | Some psa ->
                  Array.map
                    (fun (r : Similarity.result) -> r.log_sim)
                    (Similarity.score_batch psa ~log_background:t.log_background ~batch sub)
              | None ->
                  Array.map
                    (fun s -> (Similarity.score pst ~log_background:t.log_background s).log_sim)
                    sub)
            t.models
        in
        Array.init bn (fun j ->
            let scores =
              Array.to_list (Array.mapi (fun i (id, _) -> (id, cols.(i).(j))) t.models)
              |> List.sort (fun (_, a) (_, b) -> compare b a)
            in
            match scores with
            | [] -> assert false
            | (best, score) :: _ ->
                {
                  cluster = (if score >= t.log_t then Some best else None);
                  log_sim = score;
                  scores;
                }))
  in
  Array.init n (fun i -> blocks.(i / block).(i mod block))

let n_clusters t = Array.length t.models
let threshold t = exp t.log_t

(* --- persistence ------------------------------------------------------ *)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "cluseq-classifier 1\n";
      Printf.fprintf oc "log_t %.17g\n" t.log_t;
      Printf.fprintf oc "background %s\n"
        (String.concat " "
           (Array.to_list (Array.map (Printf.sprintf "%.17g") t.log_background)));
      (match t.alphabet with
      | Some a ->
          Printf.fprintf oc "alphabet\t%s\n"
            (String.concat "\t"
               (List.init (Alphabet.size a) (fun i -> Alphabet.symbol a i)))
      | None -> Printf.fprintf oc "alphabet\t-\n");
      Printf.fprintf oc "models %d\n" (Array.length t.models);
      Array.iter
        (fun (id, pst) ->
          Printf.fprintf oc "model %d\n" id;
          Pst.to_channel oc pst)
        t.models)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail msg = failwith ("Classifier.load: " ^ msg) in
      let line () = try input_line ic with End_of_file -> fail "truncated" in
      if line () <> "cluseq-classifier 1" then fail "bad header";
      let log_t =
        match String.split_on_char ' ' (line ()) with
        | [ "log_t"; v ] -> (
            match float_of_string_opt v with Some f -> f | None -> fail "bad log_t")
        | _ -> fail "bad log_t line"
      in
      let log_background =
        match String.split_on_char ' ' (line ()) with
        | "background" :: rest ->
            Array.of_list
              (List.map
                 (fun v ->
                   match float_of_string_opt v with Some f -> f | None -> fail "bad background")
                 rest)
        | _ -> fail "bad background line"
      in
      let alphabet =
        match String.split_on_char '\t' (line ()) with
        | "alphabet" :: [ "-" ] -> None
        | "alphabet" :: syms when syms <> [] -> Some (Alphabet.of_symbols syms)
        | _ -> fail "bad alphabet line"
      in
      let n_models =
        match String.split_on_char ' ' (line ()) with
        | [ "models"; v ] -> (
            match int_of_string_opt v with Some n when n > 0 -> n | _ -> fail "bad model count")
        | _ -> fail "bad models line"
      in
      let models =
        List.init n_models (fun _ ->
            match String.split_on_char ' ' (line ()) with
            | [ "model"; id ] -> (
                match int_of_string_opt id with
                | Some id -> (id, Pst.of_channel ic)
                | None -> fail "bad model id")
            | _ -> fail "bad model line")
      in
      build ~models:(Array.of_list (List.sort compare models)) ~log_background ~log_t ~alphabet)
