type t = { id : int; pst : Pst.t; members : Bitset.t }

let m_absorbs = Obs.Metrics.counter "cluster.absorbs"

let create ~id ~capacity cfg seed =
  let pst = Pst.create cfg in
  Pst.insert_sequence pst seed;
  { id; pst; members = Bitset.create capacity }

let id t = t.id
let pst t = t.pst
let members t = t.members
let size t = Bitset.cardinal t.members
let mem t i = Bitset.mem t.members i
let add_member t i = Bitset.add t.members i
let clear_members t = Bitset.clear t.members
let similarity t ~log_background s = Similarity.score t.pst ~log_background s

let absorb t ~seq_id s (r : Similarity.result) =
  Obs.Metrics.incr m_absorbs;
  add_member t seq_id;
  if r.seg_lo >= 0 && r.seg_hi >= r.seg_lo then
    Pst.insert_segment t.pst s ~lo:r.seg_lo ~hi:r.seg_hi
