type t = {
  id : int;
  born : int;
  pst : Pst.t;
  members : Bitset.t;
  (* One compiled automaton per frozen tree: built at pass start
     (Cluseq compiles before each read-only fan-out), dropped whenever
     the tree mutates. [None] means "score via the tree walk". *)
  mutable compiled : Psa.t option;
  (* Candidate-index bitmap over the PST's active contexts, cached with
     the same lifecycle as [compiled]: built lazily at pass start,
     dropped whenever the tree mutates. *)
  mutable sketch : Index.cluster_sketch option;
  (* Previous reclustering pass's score column against this model —
     valid only while the tree is unchanged (same lifecycle again), in
     which case a fresh evaluation would be bit-identical. *)
  mutable scores : Similarity.result array option;
}

let m_absorbs = Obs.Metrics.counter "cluster.absorbs"

let create ~id ?(born = 0) ~capacity cfg seed =
  let pst = Pst.create cfg in
  Pst.insert_sequence pst seed;
  {
    id;
    born;
    pst;
    members = Bitset.create capacity;
    compiled = None;
    sketch = None;
    scores = None;
  }

let id t = t.id
let born t = t.born
let pst t = t.pst
let members t = t.members
let size t = Bitset.cardinal t.members
let mem t i = Bitset.mem t.members i
let add_member t i = Bitset.add t.members i
let clear_members t = Bitset.clear t.members

let compile t =
  match t.compiled with
  | Some _ -> ()
  | None ->
      if Psa.enabled () then begin
        let psa = Psa.compile t.pst in
        t.compiled <- Some psa;
        if Obs.Journal.is_enabled () then
          Obs.Journal.emit "cluster.froze" (fun () ->
              [
                ("cluster", Bench_json.Num (float_of_int t.id));
                ("n_states", Bench_json.Num (float_of_int (Psa.n_states psa)));
                ("size", Bench_json.Num (float_of_int (Bitset.cardinal t.members)));
              ])
      end

let sketch t =
  match t.sketch with
  | Some s -> s
  | None ->
      let s = Index.of_pst t.pst in
      t.sketch <- Some s;
      s

let score_cache t = t.scores
let set_score_cache t col = t.scores <- Some col

let similarity t ~log_background s =
  match t.compiled with
  | Some psa -> Similarity.score_psa psa ~log_background s
  | None -> Similarity.score t.pst ~log_background s

let similarity_batch t ~log_background ~batch seqs =
  match t.compiled with
  | Some psa -> Similarity.score_batch psa ~log_background ~batch seqs
  | None -> Array.map (Similarity.score t.pst ~log_background) seqs

let absorb t ~seq_id s (r : Similarity.result) =
  Obs.Metrics.incr m_absorbs;
  add_member t seq_id;
  if r.seg_lo >= 0 && r.seg_hi >= r.seg_lo then begin
    Pst.insert_segment t.pst s ~lo:r.seg_lo ~hi:r.seg_hi;
    (* The tree changed (insertion, possibly pruning): the automaton is
       stale. Scores fall back to the tree walk until the next compile —
       which is bit-identical, so callers cannot tell which path ran. *)
    t.compiled <- None;
    t.sketch <- None;
    t.scores <- None
  end
