(** Automatic adjustment of the similarity threshold [t] (paper Sec. 4.6).

    Each iteration histograms the (log-)similarities of every
    sequence–cluster combination, finds the valley {m \hat t} where the
    count curve turns most sharply (largest left/right regression-slope
    difference), and moves the threshold halfway toward it:
    {m t \leftarrow (t + \hat t)/2}. When {m t} and {m \hat t} are within
    1% the threshold freezes.

    We work in log space throughout; a 1% relative difference in linear
    similarity is a 0.01 absolute difference in log similarity, which is
    the freeze criterion used here. The threshold never drops below
    {m t = 1} (log 0), the paper's meaningful-separation floor. *)

type t
(** Mutable threshold state. *)

val create : t_init:float -> t
(** [create ~t_init] starts from the linear threshold [t_init] (must be
    finite and [>= 1.0], per paper Sec. 2; NaN and infinities raise
    [Invalid_argument]). *)

val log_t : t -> float
(** Current threshold, in log space. *)

val linear_t : t -> float
(** Current threshold, linear. *)

val frozen : t -> bool
(** Whether the 1% convergence criterion has been met. *)

val adjust : ?n_buckets:int -> t -> float array -> unit
(** [adjust t log_sims] performs one adjustment step from the iteration's
    log-similarity samples (finite values only are used; default 50
    buckets). No-op when frozen or when fewer than 10 finite samples
    exist. *)
