(* Sketch-gated candidate index. See mli. *)

let q = 3
let max_seq_hashes = 64
let min_seq_hashes = 8
let bloom_bits = 16384
let bloom_mask = bloom_bits - 1

(* 32 bits per word keeps the shift arithmetic trivially safe on 63-bit
   OCaml ints; 512 words = 4 KiB per cluster. *)
let bloom_words = bloom_bits / 32
let min_cluster_contexts = 32
let default_ratio = 0.3
let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* The heuristic gate is opt-in: out of the box only the exact
   score-column cache runs. See the mli for why. *)
let ratio_value = ref 0.0
let ratio () = !ratio_value

let set_ratio r =
  if not (Float.is_finite r) || r < 0.0 || r > 1.0 then invalid_arg "Index.set_ratio";
  ratio_value := r

let m_sketch_builds = Obs.Metrics.counter "cluseq.index.sketch_builds"
let m_false_negatives = Obs.Metrics.counter "cluseq.index.false_negatives"
let record_false_negatives n = if n > 0 then Obs.Metrics.incr ~by:n m_false_negatives

type cluster_sketch = { bits : int array }

let empty = { bits = [||] }
let is_empty cs = Array.length cs.bits = 0
let sketch_of_sequence s = Sketch.of_sequence ~q ~max_hashes:max_seq_hashes s

let of_pst pst =
  let cfg = Pst.config pst in
  if cfg.Pst.max_depth < q then empty
  else begin
    Obs.Metrics.incr m_sketch_builds;
    let bits = Array.make bloom_words 0 in
    let active = ref 0 in
    Pst.iter_nodes pst (fun node ->
        (* Active contexts: depth-q nodes at or above the significance
           count. Ancestors of a significant node are significant too
           (child counts never exceed the parent's), so depth-q nodes
           alone characterize the model's deep structure. *)
        if Pst.node_depth node = q && Pst.node_count node >= cfg.Pst.significance then begin
          let key = Sketch.key_of_list ~q (Pst.node_label pst node) in
          let h = Sketch.hash_of_key key land bloom_mask in
          bits.(h lsr 5) <- bits.(h lsr 5) lor (1 lsl (h land 31));
          incr active
        end);
    (* A model with few active deep contexts is mostly characterized by
       the shorter contexts the bitmap cannot see — sequences can clear
       the similarity threshold without touching any active depth-q
       context at all — so its bitmap is no evidence of absence: treat
       the model as ungateable. Measured floor: wrongly-pruned joins
       appeared against clusters with up to ~12 active contexts, while
       models where gating is sound carry several dozen to hundreds. *)
    if !active >= min_cluster_contexts then { bits } else empty
  end

let admit sk cs ~ratio =
  if ratio <= 0.0 || is_empty cs then true
  else begin
    let m = Array.length sk in
    (* A tiny sketch carries too little evidence to prune on. *)
    if m < min_seq_hashes then true
    else begin
      let needed = max 1 (int_of_float (Float.ceil (ratio *. float_of_int m))) in
      let bits = cs.bits in
      let rec loop i hits =
        if hits >= needed then true
        else if hits + (m - i) < needed then false
        else begin
          let h = Array.unsafe_get sk i land bloom_mask in
          let hit = Array.unsafe_get bits (h lsr 5) land (1 lsl (h land 31)) <> 0 in
          loop (i + 1) (if hit then hits + 1 else hits)
        end
      in
      loop 0 0
    end
  end
