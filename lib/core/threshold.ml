type t = { mutable log_t : float; mutable frozen : bool }

let create ~t_init =
  (* [t_init < 1.0] alone lets NaN through (NaN comparisons are false);
     [log nan] would then make every subsequent join test silently
     false. Reject non-finite inputs outright. *)
  if not (Float.is_finite t_init) || t_init < 1.0 then
    invalid_arg "Threshold.create: t_init must be a finite value >= 1";
  { log_t = log t_init; frozen = false }

let log_t t = t.log_t
let linear_t t = Similarity.linear_of_log t.log_t
let frozen t = t.frozen

let freeze_epsilon = 0.01

let adjust ?(n_buckets = 50) t log_sims =
  if not t.frozen then begin
    let finite = Array.of_seq (Seq.filter Float.is_finite (Array.to_seq log_sims)) in
    if Array.length finite >= 10 then begin
      let hist = Histogram.of_samples ~n_buckets finite in
      match Histogram.valley_log hist with
      | None -> ()
      | Some valley ->
          (* Move conservatively toward the valley, clamped at t = 1. *)
          let valley = Float.max 0.0 valley in
          if Float.abs (t.log_t -. valley) < freeze_epsilon then t.frozen <- true
          else t.log_t <- Float.max 0.0 ((t.log_t +. valley) /. 2.0)
    end
  end
