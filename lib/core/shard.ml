(* Shard-and-merge orchestration. See shard.mli and DESIGN.md §14. *)

let log_src = Logs.Src.create "shard" ~doc:"Shard-and-merge orchestration"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_shard_runs = Obs.Metrics.counter "cluseq.shard.runs"
let m_consolidations = Obs.Metrics.counter "cluseq.shard.consolidations"
let m_fixup_rescored = Obs.Metrics.counter "cluseq.shard.fixup_rescored"
let g_shard_count = Obs.Metrics.gauge "cluseq.shard.count"
let h_shard_run_seconds = Obs.Metrics.histogram "cluseq.shard.run_seconds"
let h_merge_seconds = Obs.Metrics.histogram "cluseq.shard.merge_seconds"

(* Flight-recorder lane: one [shard.run] duration event per shard on
   the executing domain's ring (arg = shard index), so the Perfetto
   export shows each shard as a block on its worker's track. *)
let rec_shard_run = Obs.Recorder.intern "shard.run"

(* The divergence PREFILTER for consolidation candidates — not the
   decision rule. Measured same-family and different-family divergence
   bands move with the per-shard sample size and overlap across
   workloads (DESIGN.md §14), so no absolute threshold can decide a
   merge; the cap only discards pairs saturated at the smoothing
   ceiling (per-symbol log ratios are bounded by log(1/p_min) ≈ 6.9
   with p_min = 1e-3; foreign models measure ≥ 6.5 once both are well
   trained). The decision is the cross-acceptance score test in
   [run]. *)
let default_merge_divergence = 6.5

let clamp lo hi v = max lo (min hi v)

let env_shards () =
  match Sys.getenv_opt "CLUSEQ_SHARDS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some (clamp 1 64 v)
      | _ -> None)

(* SplitMix64 finalizer: the same mixer [Rng] builds on, used here as a
   stateless hash so shard membership is a pure function of (seed, id). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let shard_of_id ~seed ~shards id =
  if shards <= 1 then 0
  else
    let h = mix64 Int64.(add (mul (of_int seed) golden) (of_int (id + 1))) in
    Int64.to_int (Int64.unsigned_rem h (Int64.of_int shards))

(* Per-shard RNG seed: a function of (run seed, shard index) only, so a
   shard's run is independent of how many other shards exist and of the
   order they execute in. Shifted right so the int is non-negative. *)
let shard_seed seed s =
  Int64.to_int
    (Int64.shift_right_logical (mix64 Int64.(logxor (of_int seed) (mul (of_int (s + 1)) golden))) 1)

(* Union-find over global cluster indices with the minimum index as
   root, so each merged component's survivor is its smallest global id
   (deterministic and stable under pair ordering). *)
let rec find parent i = if parent.(i) = i then i else find parent parent.(i)

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then parent.(max ri rj) <- min ri rj

(* One per-shard cluster lifted to the global numbering. *)
type gcluster = {
  g_shard : int;
  g_members : int array; (* global sequence ids, strictly increasing *)
  g_pst : Pst.t;
  g_log_t : float; (* the home shard's final log threshold *)
}

let run ?(config = Cluseq.default_config) ?(shards = 1)
    ?(merge_divergence = default_merge_divergence) db =
  let n = Seq_database.n_sequences db in
  let shards = clamp 1 64 shards in
  if shards <= 1 then Cluseq.run ~config db
  else begin
    let journal_on = Obs.Journal.is_enabled () in
    if journal_on then
      Obs.Journal.emit "run.start" (fun () ->
          [
            ("sequences", Bench_json.Num (float_of_int n));
            ("k_init", Bench_json.Num (float_of_int config.Cluseq.k_init));
            ("t_init", Bench_json.Num config.Cluseq.t_init);
            ("seed", Bench_json.Num (float_of_int config.Cluseq.seed));
            ("max_iterations", Bench_json.Num (float_of_int config.Cluseq.max_iterations));
            ("shards", Bench_json.Num (float_of_int shards));
          ]);
    (* --- partition: hash-of-id, empty shards dropped --- *)
    let seed = config.Cluseq.seed in
    let owner = Array.init n (fun i -> shard_of_id ~seed ~shards i) in
    let counts = Array.make shards 0 in
    Array.iter (fun s -> counts.(s) <- counts.(s) + 1) owner;
    let ids = Array.map (fun c -> Array.make c 0) counts in
    let fill = Array.make shards 0 in
    for i = 0 to n - 1 do
      let s = owner.(i) in
      ids.(s).(fill.(s)) <- i;
      fill.(s) <- fill.(s) + 1
    done;
    let live =
      Array.of_list
        (List.filter_map
           (fun s -> if counts.(s) > 0 then Some (s, ids.(s)) else None)
           (List.init shards Fun.id))
    in
    let k = Array.length live in
    Obs.Metrics.set g_shard_count (float_of_int k);
    Obs.Metrics.incr ~by:k m_shard_runs;
    if journal_on then
      Array.iter
        (fun (s, ids) ->
          Obs.Journal.emit "shard.started" (fun () ->
              [
                ("shard", Bench_json.Num (float_of_int s));
                ("sequences", Bench_json.Num (float_of_int (Array.length ids)));
                ("seed", Bench_json.Num (float_of_int (shard_seed seed s)));
              ]))
        live;
    Log.info (fun m -> m "fanning out %d shards over %d sequences" k n);
    (* --- per-shard runs: one pool task per shard. The journal is a
       main-domain single writer, so it is suspended for the duration;
       nested pool submissions inside each Cluseq.run fall back to
       inline execution (the pool is busy), so shards never deadlock
       the pool they run on. --- *)
    let sub_results =
      Obs.Journal.with_suspended (fun () ->
          let pool = Par.get_pool () in
          Par.map_chunks pool ~chunks:k ~n:k (fun j ->
              let s, ids = live.(j) in
              Obs.Recorder.begin_ rec_shard_run ~arg:s;
              let t0 = Timer.now_ns () in
              let sub = Seq_database.subset db ids in
              let r = Cluseq.run ~config:{ config with Cluseq.seed = shard_seed seed s } sub in
              Obs.Metrics.observe h_shard_run_seconds (Timer.span_s t0 (Timer.now_ns ()));
              Obs.Recorder.end_ rec_shard_run;
              r))
    in
    if journal_on then
      Array.iteri
        (fun j (r : Cluseq.result) ->
          let s, _ = live.(j) in
          Obs.Journal.emit "shard.merged" (fun () ->
              [
                ("shard", Bench_json.Num (float_of_int s));
                ("clusters", Bench_json.Num (float_of_int r.Cluseq.n_clusters));
                ("iterations", Bench_json.Num (float_of_int r.Cluseq.iterations));
                ("final_t", Bench_json.Num r.Cluseq.final_t);
              ]))
        sub_results;
    let merge_t0 = if Obs.Metrics.is_enabled () then Timer.now_ns () else 0L in
    (* --- lift per-shard clusters to the global numbering (shard-major
       order, so ids are deterministic) --- *)
    let best = Array.make n None in
    let gs = ref [] in
    let n_g = ref 0 in
    Array.iteri
      (fun j (r : Cluseq.result) ->
        let s, ids = live.(j) in
        let base = !n_g in
        let local_gid = Hashtbl.create 16 in
        Array.iteri
          (fun ci (lid, _) -> Hashtbl.replace local_gid lid (base + ci))
          r.Cluseq.clusters;
        let log_t = Similarity.log_of_linear r.Cluseq.final_t in
        Array.iteri
          (fun ci (lid, lmembers) ->
            (* clusters and models are index-aligned (same id order) *)
            let mid, pst = r.Cluseq.models.(ci) in
            assert (mid = lid);
            gs :=
              {
                g_shard = s;
                g_members = Array.map (fun l -> ids.(l)) lmembers;
                g_pst = pst;
                g_log_t = log_t;
              }
              :: !gs)
          r.Cluseq.clusters;
        n_g := base + Array.length r.Cluseq.clusters;
        Array.iteri
          (fun l b ->
            best.(ids.(l)) <-
              Option.bind b (fun (lid, score) ->
                  Option.map (fun g -> (g, score)) (Hashtbl.find_opt local_gid lid)))
          r.Cluseq.best)
      sub_results;
    let gs = Array.of_list (List.rev !gs) in
    let m = Array.length gs in
    let lbg = Seq_database.log_background db in
    (* --- cross-shard consolidation (DESIGN.md §14). Three stages,
       because the divergence bands alone cannot decide a merge:
       1. prefilter — only cross-shard pairs whose symmetrized KL is
          under [merge_divergence] (pairs at the smoothing ceiling are
          never the same family); same-shard pairs were already
          separated by their own run's consolidation pass;
       2. candidacy — a pair is considered only if one side is the
          other's nearest neighbour among that shard's clusters (the
          true counterpart is always the nearest; skipping the rest
          avoids chaining through moderately-close foreign models);
       3. decision — mutual cross-acceptance: a strided sample of each
          side's members must, by majority, clear the pair's lenient
          retention threshold under the *other* side's model. This is
          the algorithm's own membership criterion, so it needs no
          workload-dependent constant. --- *)
    let d = Array.make_matrix m m infinity in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        if gs.(i).g_shard <> gs.(j).g_shard then begin
          let v = Divergence.kl_symmetric gs.(i).g_pst gs.(j).g_pst in
          d.(i).(j) <- v;
          d.(j).(i) <- v
        end
      done
    done;
    (* [accepts a b]: do [b]'s members, by majority of a deterministic
       strided sample, clear the lenient threshold under [a]'s model? *)
    let accepts a b =
      let lt = Float.min gs.(a).g_log_t gs.(b).g_log_t in
      let members = gs.(b).g_members in
      let len = Array.length members in
      let take = min 16 len in
      let ok = ref 0 in
      for q = 0 to take - 1 do
        let id = members.(q * len / take) in
        let r = Similarity.score gs.(a).g_pst ~log_background:lbg (Seq_database.get db id) in
        if r.Similarity.log_sim >= lt then incr ok
      done;
      2 * !ok >= take
    in
    (* Nearest cross-shard neighbour of [i] within shard [s']. *)
    let nearest i s' =
      let best = ref (-1) in
      for j = 0 to m - 1 do
        if gs.(j).g_shard = s' && (!best < 0 || d.(i).(j) < d.(i).(!best)) then best := j
      done;
      !best
    in
    let parent = Array.init m Fun.id in
    for i = 0 to m - 1 do
      Array.iter
        (fun (s', _) ->
          if s' <> gs.(i).g_shard then
            let j = nearest i s' in
            if
              j >= 0
              && d.(i).(j) < merge_divergence
              && find parent i <> find parent j
              && accepts i j && accepts j i
            then union parent i j)
        live
    done;
    let canon i = find parent i in
    let comp_members = Array.make m [] in
    for i = m - 1 downto 0 do
      comp_members.(canon i) <- i :: comp_members.(canon i)
    done;
    (* Journal every absorbed cluster with the divergence against its
       survivor's original (pre-merge) model — the record `cluseq
       explain` uses to answer "why did my shard-local cluster
       disappear". *)
    for i = 0 to m - 1 do
      let s = canon i in
      if s <> i then begin
        Obs.Metrics.incr m_consolidations;
        if journal_on then
          Obs.Journal.emit "shard.consolidated" (fun () ->
              [
                ("cluster", Bench_json.Num (float_of_int i));
                ("into", Bench_json.Num (float_of_int s));
                ("shard", Bench_json.Num (float_of_int gs.(i).g_shard));
                ( "divergence",
                  Bench_json.Num (Divergence.kl_symmetric gs.(s).g_pst gs.(i).g_pst) );
              ])
      end
    done;
    (* --- merge models and fix up memberships. Only sequences whose
       home cluster was merged are rescored (against the merged model,
       with the global database's background); everything else passes
       through untouched. --- *)
    let final = ref [] in
    for s = 0 to m - 1 do
      match comp_members.(s) with
      | [] -> ()
      | [ i ] ->
          if Array.length gs.(i).g_members > 0 then
            final := (i, gs.(i).g_members, gs.(i).g_pst, gs.(i).g_log_t) :: !final
      | (first :: rest) as comp ->
          let pst =
            List.fold_left (fun acc i -> Pst.merge acc gs.(i).g_pst) gs.(first).g_pst rest
          in
          (* Lenient retention: a sequence stays if it clears the most
             permissive of its component's home-shard thresholds. *)
          let log_t = List.fold_left (fun acc i -> Float.min acc gs.(i).g_log_t) infinity comp in
          let cand = Hashtbl.create 64 in
          List.iter (fun i -> Array.iter (fun id -> Hashtbl.replace cand id ()) gs.(i).g_members) comp;
          let cand = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) cand []) in
          let members = ref [] in
          List.iter
            (fun id ->
              Obs.Metrics.incr m_fixup_rescored;
              let r = Similarity.score pst ~log_background:lbg (Seq_database.get db id) in
              if r.Similarity.log_sim >= log_t then members := id :: !members;
              if Float.is_finite r.Similarity.log_sim then
                best.(id) <-
                  (match best.(id) with
                  | Some (b, _) when canon b = s -> Some (s, r.Similarity.log_sim)
                  | Some (_, bs) when r.Similarity.log_sim > bs -> Some (s, r.Similarity.log_sim)
                  | other -> other))
            cand;
          let members = Array.of_list (List.rev !members) in
          if Array.length members > 0 then final := (s, members, pst, log_t) :: !final
    done;
    let final = Array.of_list (List.rev !final) in
    (* Remap surviving best entries through the union-find so no entry
       points at an absorbed id; entries may keep a pre-merge score
       (best is diagnostic — invariants only require finiteness). *)
    for id = 0 to n - 1 do
      best.(id) <- Option.map (fun (b, score) -> (canon b, score)) best.(id)
    done;
    let member_of = Array.map (fun (_, members, _, _) -> Bitset.of_list n (Array.to_list members)) final in
    (* --- outlier rescue: a sequence can be an outlier in its shard yet
       belong to a cluster once that cluster's model has absorbed the
       other shards' counts — the shard simply never saw enough of the
       family. Sequences in no cluster after the merge are rescored
       against every final model (there are few of them, so this is a
       narrow sweep, not a re-scan) and join any cluster whose
       retention threshold they clear. --- *)
    let rescued = Array.make (Array.length final) [] in
    for id = n - 1 downto 0 do
      if not (Array.exists (fun ms -> Bitset.mem ms id) member_of) then begin
        let seq = Seq_database.get db id in
        Array.iteri
          (fun fi (s, _, pst, log_t) ->
            Obs.Metrics.incr m_fixup_rescored;
            let r = Similarity.score pst ~log_background:lbg seq in
            if r.Similarity.log_sim >= log_t then rescued.(fi) <- id :: rescued.(fi);
            if Float.is_finite r.Similarity.log_sim then
              best.(id) <-
                (match best.(id) with
                | Some (_, bs) when r.Similarity.log_sim > bs -> Some (s, r.Similarity.log_sim)
                | None -> Some (s, r.Similarity.log_sim)
                | other -> other))
          final
      end
    done;
    let final =
      Array.mapi
        (fun fi (gid, members, pst, log_t) ->
          match rescued.(fi) with
          | [] -> (gid, members, pst, log_t)
          | extra ->
              (* [extra] is ascending (built by the downward loop) and
                 disjoint from [members]; a linear merge keeps the
                 member list strictly increasing. *)
              let merged = Array.make (Array.length members + List.length extra) 0 in
              let i = ref 0 and j = ref 0 and rest = ref extra in
              while !i < Array.length members || !rest <> [] do
                match !rest with
                | e :: tl when !i >= Array.length members || e < members.(!i) ->
                    merged.(!j) <- e;
                    incr j;
                    rest := tl
                | _ ->
                    merged.(!j) <- members.(!i);
                    incr i;
                    incr j
              done;
              (gid, merged, pst, log_t))
        final
    in
    let assignments = Array.make n [] in
    Array.iter
      (fun (gid, members, _, _) ->
        Array.iter (fun id -> assignments.(id) <- gid :: assignments.(id)) members)
      final;
    (* Cons order above leaves each list descending by gid; restore
       ascending order to match the unsharded path's presentation. *)
    let assignments = Array.map List.rev assignments in
    let outliers = List.filter (fun i -> assignments.(i) = []) (List.init n Fun.id) in
    let pst_stats = Array.map (fun (gid, _, pst, _) -> (gid, Pst.stats pst)) final in
    let models = Array.map (fun (gid, _, pst, _) -> (gid, pst)) final in
    let total_seqs = Array.fold_left (fun acc (_, ids) -> acc + Array.length ids) 0 live in
    let final_t =
      if total_seqs = 0 then config.Cluseq.t_init
      else
        Array.to_list sub_results
        |> List.mapi (fun j (r : Cluseq.result) ->
               r.Cluseq.final_t *. float_of_int (Array.length (snd live.(j))))
        |> List.fold_left ( +. ) 0.0
        |> fun sum -> sum /. float_of_int total_seqs
    in
    let iterations =
      Array.fold_left (fun acc (r : Cluseq.result) -> max acc r.Cluseq.iterations) 0 sub_results
    in
    (* Final-model gauges: per-shard runs raced on these from worker
       domains (benign, but nondeterministic) — re-set them here from
       the merged result so exported values are deterministic. *)
    Obs.Metrics.set g_shard_count (float_of_int k);
    Obs.Metrics.set (Obs.Metrics.gauge "cluseq.clusters") (float_of_int (Array.length final));
    Obs.Metrics.set (Obs.Metrics.gauge "cluseq.final_t") final_t;
    let nodes = Array.fold_left (fun acc (_, (st : Pst.stats)) -> acc + st.Pst.nodes) 0 pst_stats in
    let words =
      Array.fold_left (fun acc (_, (st : Pst.stats)) -> acc + st.Pst.approx_bytes) 0 pst_stats
      / (Sys.word_size / 8)
    in
    Obs.Metrics.set (Obs.Metrics.gauge "cluseq.pst.nodes") (float_of_int nodes);
    Obs.Metrics.set (Obs.Metrics.gauge "cluseq.pst.est_words") (float_of_int words);
    if Obs.Metrics.is_enabled () then
      Obs.Metrics.observe h_merge_seconds (Timer.span_s merge_t0 (Timer.now_ns ()));
    Log.info (fun m ->
        m "merged %d shard clusters into %d (threshold %.3g, %d rescored)" (Array.length gs)
          (Array.length final) merge_divergence
          (Obs.Metrics.counter_value m_fixup_rescored));
    if journal_on then begin
      Obs.Journal.emit "run.end" (fun () ->
          [
            ("clusters", Bench_json.Num (float_of_int (Array.length final)));
            ("iterations", Bench_json.Num (float_of_int iterations));
            ("final_t", Bench_json.Num final_t);
            ("outliers", Bench_json.Num (float_of_int (List.length outliers)));
            ("shards", Bench_json.Num (float_of_int shards));
          ]);
      Obs.Journal.flush ()
    end;
    {
      Cluseq.clusters = Array.map (fun (gid, members, _, _) -> (gid, members)) final;
      assignments;
      best;
      outliers;
      n_clusters = Array.length final;
      final_t;
      iterations;
      history = [];
      pst_stats;
      models;
    }
  end
