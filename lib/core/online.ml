let log_src = Logs.Src.create "online" ~doc:"Streaming CLUSEQ feed and mining"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_fed = Obs.Metrics.counter "online.fed"
let m_assigned = Obs.Metrics.counter "online.assigned"
let m_mined_clusters = Obs.Metrics.counter "online.mined_clusters"
let m_dropped_outliers = Obs.Metrics.counter "online.dropped_outliers"
let h_mine = Obs.Metrics.histogram "online.mine_seconds"

type live_cluster = {
  id : int;
  pst : Pst.t;
  mutable absorbed : int;
  (* Automaton for the current tree, [None] while stale. Emissions do not
     fold in the background, so a cached automaton survives the lazy
     background rebuilds; only tree mutation (feed absorption) drops it.
     Rebuilt at mine time and on [classify] — not inside [feed], where a
     joining stream would force a recompile per absorbed sequence. *)
  mutable compiled : Psa.t option;
}

type stats = {
  fed : int;
  assigned : int;
  mined_clusters : int;
  buffered : int;
  dropped_outliers : int;
  n_clusters : int;
}

type t = {
  config : Cluseq.config;
  alphabet_size : int;
  buffer_capacity : int;
  mine_at : int;
  mutable clusters : live_cluster list; (* ascending id *)
  mutable next_id : int;
  buffer : Sequence.t Queue.t;
  symbol_counts : int array;
  mutable total_symbols : int;
  mutable log_background : float array; (* cached, rebuilt lazily *)
  mutable background_stale : bool;
  mutable fed : int;
  mutable assigned : int;
  mutable mined_clusters : int;
  mutable dropped_outliers : int;
}

let create ?(config = Cluseq.default_config) ?buffer_capacity ?(mine_at = 64) ~alphabet_size
    () =
  if alphabet_size <= 0 then invalid_arg "Online.create: alphabet_size";
  if mine_at < 2 then invalid_arg "Online.create: mine_at";
  let buffer_capacity = Option.value ~default:(4 * mine_at) buffer_capacity in
  if buffer_capacity < mine_at then invalid_arg "Online.create: buffer_capacity < mine_at";
  {
    config;
    alphabet_size;
    buffer_capacity;
    mine_at;
    clusters = [];
    next_id = 0;
    buffer = Queue.create ();
    symbol_counts = Array.make alphabet_size 0;
    total_symbols = 0;
    log_background = Array.make alphabet_size (-.log (float_of_int alphabet_size));
    background_stale = false;
    fed = 0;
    assigned = 0;
    mined_clusters = 0;
    dropped_outliers = 0;
  }

let log_t t = Similarity.log_of_linear t.config.Cluseq.t_init

let background t =
  if t.background_stale then begin
    let total = float_of_int (max 1 t.total_symbols) in
    let eps = 1e-9 in
    let raw = Array.map (fun c -> Float.max eps (float_of_int c /. total)) t.symbol_counts in
    let s = Array.fold_left ( +. ) 0.0 raw in
    t.log_background <- Array.map (fun x -> log (x /. s)) raw;
    t.background_stale <- false
  end;
  t.log_background

let observe_symbols t s =
  Array.iter
    (fun c ->
      if c < 0 || c >= t.alphabet_size then invalid_arg "Online.feed: symbol out of range";
      t.symbol_counts.(c) <- t.symbol_counts.(c) + 1)
    s;
  t.total_symbols <- t.total_symbols + Array.length s;
  t.background_stale <- true

let refresh_compiled cl =
  match cl.compiled with
  | Some _ -> ()
  | None -> if Psa.enabled () then cl.compiled <- Some (Psa.compile cl.pst)

let score_against t s =
  let lbg = background t in
  List.map
    (fun cl ->
      let r =
        match cl.compiled with
        | Some psa -> Similarity.score_psa psa ~log_background:lbg s
        | None -> Similarity.score cl.pst ~log_background:lbg s
      in
      (cl, r))
    t.clusters

(* Mining: run batch CLUSEQ over the buffered sequences; each discovered
   cluster becomes a live cluster, and its members leave the buffer. *)
let mine t =
  Obs.Trace.with_span "online.mine" @@ fun () ->
  let t0 = if Obs.Metrics.is_enabled () then Timer.now_ns () else 0L in
  let pending = Array.of_seq (Queue.to_seq t.buffer) in
  if Array.length pending < 2 then 0
  else begin
    let alphabet =
      if t.alphabet_size <= 26 then
        Alphabet.of_char_range 'a' (Char.chr (Char.code 'a' + t.alphabet_size - 1))
      else Alphabet.of_symbols (List.init t.alphabet_size (Printf.sprintf "s%d"))
    in
    let db = Seq_database.create alphabet pending in
    let result = Cluseq.run ~config:t.config db in
    let taken = Array.make (Array.length pending) false in
    let fresh = ref 0 in
    Array.iter
      (fun (_, members) ->
        if Array.length members > 0 then begin
          let pst =
            Pst.create
              {
                Pst.alphabet_size = t.alphabet_size;
                max_depth = t.config.Cluseq.max_depth;
                significance = t.config.Cluseq.significance;
                max_nodes = t.config.Cluseq.max_nodes;
                p_min =
                  Float.min t.config.Cluseq.p_min (0.99 /. float_of_int t.alphabet_size);
                pruning = t.config.Cluseq.pruning;
              }
          in
          Array.iter
            (fun i ->
              Pst.insert_sequence pst pending.(i);
              taken.(i) <- true)
            members;
          let cl = { id = t.next_id; pst; absorbed = Array.length members; compiled = None } in
          refresh_compiled cl;
          t.clusters <- t.clusters @ [ cl ];
          if Obs.Journal.is_enabled () then
            Obs.Journal.emit "online.mined" (fun () ->
                [
                  ("cluster", Bench_json.Num (float_of_int cl.id));
                  ("members", Bench_json.Num (float_of_int (Array.length members)));
                ]);
          t.next_id <- t.next_id + 1;
          incr fresh
        end)
      result.clusters;
    (* Rebuild the buffer with the sequences no mined cluster claimed. *)
    Queue.clear t.buffer;
    Array.iteri (fun i s -> if not taken.(i) then Queue.add s t.buffer) pending;
    t.mined_clusters <- t.mined_clusters + !fresh;
    Obs.Metrics.incr ~by:!fresh m_mined_clusters;
    if Obs.Metrics.is_enabled () then
      Obs.Metrics.observe h_mine (Timer.span_s t0 (Timer.now_ns ()));
    Log.debug (fun m ->
        m "mined %d clusters from %d buffered sequences (%d still buffered)" !fresh
          (Array.length pending) (Queue.length t.buffer));
    !fresh
  end

let feed t s =
  t.fed <- t.fed + 1;
  Obs.Metrics.incr m_fed;
  observe_symbols t s;
  let scored = score_against t s in
  let joined =
    List.filter (fun (_, (r : Similarity.result)) -> r.log_sim >= log_t t) scored
  in
  match joined with
  | [] ->
      Queue.add s t.buffer;
      while Queue.length t.buffer > t.buffer_capacity do
        ignore (Queue.pop t.buffer);
        t.dropped_outliers <- t.dropped_outliers + 1;
        Obs.Metrics.incr m_dropped_outliers;
        if Obs.Journal.is_enabled () then
          Obs.Journal.emit "online.dropped" (fun () ->
              [ ("fed", Bench_json.Num (float_of_int t.fed)) ])
      done;
      if Queue.length t.buffer >= t.mine_at then ignore (mine t);
      None
  | _ ->
      t.assigned <- t.assigned + 1;
      Obs.Metrics.incr m_assigned;
      (* Update every matching cluster (overlap, Sec. 4.2); report the
         best. *)
      let best = ref None in
      List.iter
        (fun (cl, (r : Similarity.result)) ->
          cl.absorbed <- cl.absorbed + 1;
          if r.seg_lo >= 0 && r.seg_hi >= r.seg_lo then begin
            Pst.insert_segment cl.pst s ~lo:r.seg_lo ~hi:r.seg_hi;
            cl.compiled <- None
          end;
          match !best with
          | Some (_, b) when b >= r.log_sim -> ()
          | _ -> best := Some (cl.id, r.log_sim))
        joined;
      (match (!best, Obs.Journal.is_enabled ()) with
      | Some (id, score), true ->
          Obs.Journal.emit "online.assigned" (fun () ->
              [
                ("fed", Bench_json.Num (float_of_int t.fed));
                ("cluster", Bench_json.Num (float_of_int id));
                ("log_sim", Bench_json.Num score);
                ("matches", Bench_json.Num (float_of_int (List.length joined)));
              ])
      | _ -> ());
      Option.map fst !best

let classify t s =
  (* Query path: worth an automaton per cluster (classify is typically
     called many times between mutations; feed keeps whatever is fresh). *)
  List.iter refresh_compiled t.clusters;
  match score_against t s with
  | [] -> None
  | scored ->
      let cl, (r : Similarity.result) =
        List.fold_left
          (fun ((_, (ra : Similarity.result)) as a) ((_, rb) as b) ->
            if rb.Similarity.log_sim > ra.log_sim then b else a)
          (List.hd scored) (List.tl scored)
      in
      if r.log_sim >= log_t t then Some (cl.id, r.log_sim) else None

let stats t =
  {
    fed = t.fed;
    assigned = t.assigned;
    mined_clusters = t.mined_clusters;
    buffered = Queue.length t.buffer;
    dropped_outliers = t.dropped_outliers;
    n_clusters = List.length t.clusters;
  }

let cluster_sizes t = List.map (fun cl -> (cl.id, cl.absorbed)) t.clusters
