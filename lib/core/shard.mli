(** Shard-and-merge orchestration: partition the database, run the full
    CLUSEQ iteration loop per shard (one shard per domain-pool task),
    then merge the per-shard cluster models into consolidated clusters
    (DESIGN.md §14).

    Sharding trades a little merge work for coarse-grained parallelism
    the intra-run pool cannot reach: each shard runs the {e whole}
    pipeline — including the serial sections (generation, membership
    apply, convergence) — concurrently with the others. The merge is
    model-to-model: cross-shard cluster pairs are consolidated when
    they are symmetrized-KL nearest neighbours under a saturation cap
    {e and} each side's members clear the other's retention threshold
    under its model (mutual cross-acceptance — the algorithm's own
    membership criterion), merged components' PSTs are counts-added
    ({!Pst.merge}), and only the sequences of merged clusters are
    rescored (against the merged model) in a final membership fix-up
    pass — no full re-scan of the database.

    {b Determinism.} Shard assignment is a pure hash of (run seed,
    sequence id); each shard's RNG seed is derived from (run seed, shard
    index) alone. Results are therefore a function of [(config, shards)]
    only — independent of domain count, pool scheduling, and shard
    completion order. [shards <= 1] delegates to {!Cluseq.run} directly
    and is bit-identical to the unsharded path.

    {b Observability.} Worker-side shard runs record [shard.run] lanes
    in the {!Obs.Recorder} (per-domain rings) and feed the atomic
    counters/histograms; the {!Obs.Journal} (a main-domain single
    writer) is suspended around the fan-out, and the orchestrator
    journals [run.start], [shard.started]/[shard.merged],
    [shard.consolidated] (absorbed cluster, surviving cluster,
    divergence) and [run.end] from the main domain. *)

val default_merge_divergence : float
(** Symmetrized-KL {e prefilter} cap for consolidation candidates (see
    {!Divergence.kl_symmetric}): pairs at or past it are saturated near
    the smoothing ceiling (log(1/p_min) ≈ 6.9) and are never the same
    family. It is not the merge decision — that is the mutual
    cross-acceptance score test (DESIGN.md §14), which carries no
    workload-dependent constant. *)

val shard_of_id : seed:int -> shards:int -> int -> int
(** [shard_of_id ~seed ~shards id] is the deterministic shard of a
    sequence id: a SplitMix64 hash of (seed, id) mod [shards]. Exposed
    for the partitioning tests. *)

val env_shards : unit -> int option
(** A valid [CLUSEQ_SHARDS] environment value ([>= 1], clamped to 64),
    if present. *)

val run :
  ?config:Cluseq.config ->
  ?shards:int ->
  ?merge_divergence:float ->
  Seq_database.t ->
  Cluseq.result
(** [run ~config ~shards db] clusters [db] with [shards] independent
    CLUSEQ runs fanned out over the {!Par} global pool, then merges.
    [shards <= 1] is exactly [Cluseq.run ~config db]. The merged result
    satisfies every {!Check.result_invariants} property: cluster ids
    are globally renumbered shard-major, member lists stay sorted,
    [assignments]/[outliers]/[best] are rebuilt over the whole
    database. [final_t] is the sequence-weighted mean of the shard
    thresholds, [iterations] the maximum over shards, and [history] is
    empty (per-shard histories do not compose). *)
