type result = { log_sim : float; seg_lo : int; seg_hi : int }

let empty_result = { log_sim = neg_infinity; seg_lo = -1; seg_hi = -1 }

(* Hot-loop counters are batched: published once per call (with ~by for
   the symbol count), never from inside a scan loop — the compiled kernel
   below must stay free of Obs traffic per symbol. *)
let m_calls = Obs.Metrics.counter "similarity.calls"
let m_symbols_scanned = Obs.Metrics.counter "similarity.symbols_scanned"

let validate_log_background lbg =
  Array.iteri
    (fun sym v ->
      (* [Float.is_finite && <= 0] rejects -inf (a zero-probability
         symbol), NaN, and log p > 0 (p > 1) in one test. *)
      if not (Float.is_finite v && v <= 0.0) then
        invalid_arg
          (Printf.sprintf
             "Similarity: log_background.(%d) = %g — symbol %d has a zero or invalid \
              background probability; every alphabet symbol needs p > 0"
             sym v sym))
    lbg

(* The X_i kernel of the paper's dynamic program:
   X_i = log P_S(s_i | s_1 .. s_{i-1}) - log p(s_i). The one definition
   shared by the fast scan ([score]) and the O(l²) reference
   ([score_brute] via [xs]), so the two cannot drift; the brute-vs-fast
   property test in test_similarity.ml guards the equivalence. *)
let[@inline] x_at pst ~log_background s i =
  Pst.log_prob pst s ~lo:0 ~pos:i -. log_background.(s.(i))

let xs pst ~log_background s =
  Array.init (Array.length s) (fun i -> x_at pst ~log_background s i)

let score pst ~log_background s =
  let l = Array.length s in
  Obs.Metrics.incr m_calls;
  Obs.Metrics.incr ~by:l m_symbols_scanned;
  if l = 0 then empty_result
  else begin
    let y = ref neg_infinity in
    let z = ref neg_infinity in
    let start = ref 0 in
    let best_lo = ref 0 and best_hi = ref 0 in
    for i = 0 to l - 1 do
      let x = x_at pst ~log_background s i in
      (* Y_i = max (Y_{i-1} + X_i, X_i): extend the running segment only
         when its accumulated log-similarity is non-negative. *)
      if !y >= 0.0 then y := !y +. x
      else begin
        y := x;
        start := i
      end;
      if !y > !z then begin
        z := !y;
        best_lo := !start;
        best_hi := i
      end
    done;
    { log_sim = !z; seg_lo = !best_lo; seg_hi = !best_hi }
  end

(* The same Kadane scan over a compiled automaton (Psa.compile of the
   same tree): one transition + one table read per symbol, no tree walk,
   no per-symbol [log], no allocation. The emission table stores the very
   floats [Pst.next_log_prob] computes, and each X_i is formed with the
   identical subtraction, so the scan is bit-for-bit equal to [score] —
   the fuzz oracle and the qcheck properties assert exact equality. *)
let score_psa psa ~log_background s =
  let l = Array.length s in
  Obs.Metrics.incr m_calls;
  Obs.Metrics.incr ~by:l m_symbols_scanned;
  if l = 0 then empty_result
  else begin
    let n = Psa.alphabet_size psa in
    if Array.length log_background < n then
      invalid_arg "Similarity.score_psa: log_background shorter than the alphabet";
    let trans = Psa.transitions psa in
    let emit = Psa.emissions psa in
    (* Tail recursion keeps the accumulators in registers — a float [ref]
       would box on every store. The unsafe reads are guarded by the
       symbol range check ([state] only ever comes from [trans], whose
       entries are states by construction). *)
    let rec go i state y z start blo bhi =
      if i >= l then { log_sim = z; seg_lo = blo; seg_hi = bhi }
      else begin
        let sym = Array.unsafe_get s i in
        if sym < 0 || sym >= n then
          invalid_arg "Similarity.score_psa: symbol outside the compiled alphabet";
        let idx = (state * n) + sym in
        let x = Bigarray.Array1.unsafe_get emit idx -. Array.unsafe_get log_background sym in
        let extend = y >= 0.0 in
        let y' = if extend then y +. x else x in
        let start' = if extend then start else i in
        let state' = Bigarray.Array1.unsafe_get trans idx in
        if y' > z then go (i + 1) state' y' y' start' start' i
        else go (i + 1) state' y' z start' blo bhi
      end
    in
    go 0 0 neg_infinity neg_infinity 0 0 0
  end

(* Batch-first front end over [Psa.score_batch]: one automaton over a
   whole block of sequences, reading the scratch columns back into
   [result] records. Bit-for-bit equal to mapping [score_psa] over the
   block (the kernel performs the identical per-lane float operations in
   the identical order; empty lanes reproduce [empty_result]). Metrics
   are bumped once per block — same totals as the per-sequence calls. *)
let score_batch psa ~log_background ~batch seqs =
  let b = Array.length seqs in
  Obs.Metrics.incr ~by:b m_calls;
  Obs.Metrics.incr
    ~by:(Array.fold_left (fun acc s -> acc + Array.length s) 0 seqs)
    m_symbols_scanned;
  Psa.score_batch psa ~log_background ~batch seqs;
  Array.init b (fun j ->
      {
        log_sim = Psa.batch_log_sim batch j;
        seg_lo = Psa.batch_seg_lo batch j;
        seg_hi = Psa.batch_seg_hi batch j;
      })

type attribution = { attr_result : result; attr_xs : float array; attr_depths : int array }

(* [score_psa] with per-position provenance: the recursion below is a
   verbatim copy of the one above plus two array stores per symbol, so
   every float operation happens in the same order on the same values —
   the totals are bit-for-bit equal (property-tested). Kept separate
   rather than folding the stores into the hot scan: reclustering calls
   [score_psa] n×k times per iteration and must not allocate two arrays
   per pair. *)
let score_attributed psa ~log_background s =
  let l = Array.length s in
  Obs.Metrics.incr m_calls;
  Obs.Metrics.incr ~by:l m_symbols_scanned;
  if l = 0 then { attr_result = empty_result; attr_xs = [||]; attr_depths = [||] }
  else begin
    let n = Psa.alphabet_size psa in
    if Array.length log_background < n then
      invalid_arg "Similarity.score_attributed: log_background shorter than the alphabet";
    let trans = Psa.transitions psa in
    let emit = Psa.emissions psa in
    let xs = Array.make l 0.0 in
    let depths = Array.make l 0 in
    let rec go i state y z start blo bhi =
      if i >= l then
        {
          attr_result = { log_sim = z; seg_lo = blo; seg_hi = bhi };
          attr_xs = xs;
          attr_depths = depths;
        }
      else begin
        let sym = Array.unsafe_get s i in
        if sym < 0 || sym >= n then
          invalid_arg "Similarity.score_attributed: symbol outside the compiled alphabet";
        let idx = (state * n) + sym in
        let x = Bigarray.Array1.unsafe_get emit idx -. Array.unsafe_get log_background sym in
        Array.unsafe_set xs i x;
        Array.unsafe_set depths i (Psa.prediction_depth psa state);
        let extend = y >= 0.0 in
        let y' = if extend then y +. x else x in
        let start' = if extend then start else i in
        let state' = Bigarray.Array1.unsafe_get trans idx in
        if y' > z then go (i + 1) state' y' y' start' start' i
        else go (i + 1) state' y' z start' blo bhi
      end
    in
    go 0 0 neg_infinity neg_infinity 0 0 0
  end

(* Kadane never resets inside a winning segment (a reset would have moved
   [seg_lo]), so within [seg_lo .. seg_hi] the accumulator evolved as
   [y = xs.(lo)] then [y <- y +. xs.(i)] left to right. Replaying exactly
   that fold reproduces [log_sim] bit-for-bit — this is the equality the
   qcheck property asserts, and what makes the printed contributions an
   honest decomposition of the score. *)
let attribution_segment_sum a =
  let { seg_lo; seg_hi; _ } = a.attr_result in
  if seg_lo < 0 || seg_hi < seg_lo then neg_infinity
  else begin
    let acc = ref a.attr_xs.(seg_lo) in
    for i = seg_lo + 1 to seg_hi do
      acc := !acc +. a.attr_xs.(i)
    done;
    !acc
  end

(* Per-position X_i via the automaton; mirrors [xs] exactly (an explicit
   loop because the scan threads the state left to right). *)
let xs_psa psa ~log_background s =
  let n = Psa.alphabet_size psa in
  if Array.length log_background < n then
    invalid_arg "Similarity.xs_psa: log_background shorter than the alphabet";
  let trans = Psa.transitions psa in
  let emit = Psa.emissions psa in
  let l = Array.length s in
  let x = Array.make l 0.0 in
  let state = ref 0 in
  for i = 0 to l - 1 do
    let sym = s.(i) in
    if sym < 0 || sym >= n then
      invalid_arg "Similarity.xs_psa: symbol outside the compiled alphabet";
    let idx = (!state * n) + sym in
    x.(i) <- Bigarray.Array1.unsafe_get emit idx -. Array.unsafe_get log_background sym;
    state := Bigarray.Array1.unsafe_get trans idx
  done;
  x

let score_brute pst ~log_background s =
  let l = Array.length s in
  if l = 0 then empty_result
  else begin
    let x = xs pst ~log_background s in
    let best = ref neg_infinity and blo = ref 0 and bhi = ref 0 in
    for j = 0 to l - 1 do
      let acc = ref 0.0 in
      for i = j to l - 1 do
        acc := !acc +. x.(i);
        if !acc > !best then begin
          best := !acc;
          blo := j;
          bhi := i
        end
      done
    done;
    { log_sim = !best; seg_lo = !blo; seg_hi = !bhi }
  end

let log_of_linear t =
  (* [t <= 0.0] alone lets NaN through (every NaN comparison is false),
     which would propagate a NaN log threshold that silently fails all
     join tests downstream. *)
  if not (Float.is_finite t) || t <= 0.0 then
    invalid_arg "Similarity.log_of_linear: t must be a positive finite value";
  log t

let linear_of_log lt =
  (* Clamp at 500 nats: exp 500 ≈ 1.4e217 is comfortably finite, while an
     unclamped huge log would overflow to +inf. The empty-result sentinel
     [neg_infinity] maps to an exact 0. up front so callers formatting or
     comparing the linear value never meet a subnormal (exp of a large
     negative finite stays whatever IEEE gives — only the sentinel is
     special-cased). *)
  if lt = neg_infinity then 0.0 else exp (Float.min 500.0 lt)
