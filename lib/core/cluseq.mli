(** The CLUSEQ clustering algorithm (paper Sec. 4).

    Iteration progress is traced on the ["cluseq"] {!Logs} source (info:
    run summary; debug: per-iteration stats) — enable a reporter to see
    it.

    Starting from a sequence database, CLUSEQ iterates four steps until the
    clustering stabilizes:

    + {b New cluster generation} (4.1): seed [k] new single-sequence
      clusters on the first iteration; afterwards seed {m k' \cdot f} where
      the growth factor {m f} rises toward 1 when consolidation removes few
      clusters and falls toward 0 when it removes many. Seeds are chosen
      greedily from a random sample of [sample_factor × k_n] unclustered
      sequences, preferring sequences least similar to every existing
      cluster.
    + {b Sequence reclustering} (4.2): every sequence joins every cluster
      whose similarity exceeds the threshold [t] (clusters may overlap);
      each join inserts the best-matching segment into the cluster's PST.
    + {b Cluster consolidation} (4.5): ascending by size, a cluster whose
      members are almost all covered by larger clusters (fewer than
      [min_residual] uncovered) is dismissed.
    + {b Threshold adjustment} (4.6, optional): move [t] toward the valley
      of the similarity histogram.

    The process stops when an iteration leaves both the set of clusters and
    every membership unchanged, or after [max_iterations].

    {b Decision provenance.} When {!Obs.Journal} is enabled, {!run}
    journals every model decision from its serial sections (so records
    are deterministic at any domain count): [run.start]/[run.end],
    [cluster.seeded]/[cluster.grew]/[cluster.froze]/[cluster.dismissed]
    (with the absorbing clusters), [threshold.adjusted] (old/new [t]),
    [seq.joined]/[seq.left] (with the deciding log-similarity against
    the threshold), and one [iteration.drift] quality record per
    iteration. Membership events decided inside the timed reclustering
    scan are recorded as plain tuples and written (in scan order) right
    after the phase timer stops, so journaling does not distort the
    [reclustering_s] it documents. When the journal is disabled every
    hook costs one [bool ref] read — the same contract as the
    {!auditor}. *)

type config = {
  k_init : int;  (** Initial number of clusters [k] (paper default 1). *)
  significance : int;  (** Significance threshold [c] (paper default 30). *)
  t_init : float;  (** Initial linear similarity threshold (≥ 1). *)
  max_depth : int;  (** PST max context length L. *)
  max_nodes : int;  (** PST node budget per cluster. *)
  p_min : float;  (** Probability smoothing floor (Sec. 5.2). *)
  pruning : Pruning.strategy;  (** PST pruning policy (Sec. 5.1). *)
  adjust_threshold : bool;  (** Enable the Sec. 4.6 auto-adjustment. *)
  consolidate : bool;  (** Enable the Sec. 4.5 consolidation. *)
  order : Order.t;  (** Examination order (Sec. 6.3). *)
  sample_factor : int;  (** m = sample_factor × k_n seeds sample (paper 5). *)
  max_iterations : int;  (** Safety cap on iterations. *)
  min_residual : int option;
      (** Consolidation keep-threshold; [None] uses [significance],
          mirroring the paper's "< c". *)
  seed : int;  (** PRNG seed: runs are fully deterministic. *)
}

val default_config : config
(** Paper-faithful defaults: [k_init = 1], [significance = 30],
    [t_init = 1.2], [max_depth = 10], [max_nodes = 20_000],
    [p_min = 1e-3], smallest-count pruning, adjustment and consolidation
    on, fixed order, [sample_factor = 5], [max_iterations = 50],
    [seed = 42]. *)

type recluster_snapshot = {
  snap_db : Seq_database.t;  (** The database being clustered. *)
  snap_log_t : float;  (** The log threshold the pass joined against. *)
  snap_order : int array;  (** The examination order of this iteration. *)
  snap_before : (int * Pst.t * Bitset.t) array;
      (** Per cluster (in examination order of the cluster list):
          id, a private {!Pst.copy} of its model at iteration start, and
          its membership from the {e previous} iteration. *)
  snap_index_ratio : float option;
      (** [Some ratio] when the sketch gate was active for this pass.
          The replay derives the same gate from [snap_before]'s model
          copies ({!Index.of_pst}) and the database's sequence sketches
          ({!Index.sketch_of_sequence}), so admit decisions are
          reproducible bit-for-bit. *)
}
(** Everything a serial reference implementation needs to replay one
    reclustering pass independently (see [Check.reference_recluster]). *)

type auditor = {
  on_recluster :
    recluster_snapshot -> after:(int * Bitset.t) array -> assignments:int list array -> unit;
      (** Called at the end of every reclustering pass with the frozen
          inputs and the produced memberships/assignments. *)
  on_iteration : iteration:int -> clusters:Cluster.t list -> assignments:int list array -> unit;
      (** Called after consolidation each iteration with the surviving
          clusters and the (stripped) assignment lists. *)
}
(** Correctness hooks for the [cluseq.check] subsystem. Installed hooks
    may raise to abort the run (e.g. [Check.Violation]); when none is
    installed the run pays a single ref read per iteration. *)

val set_auditor : auditor option -> unit
(** Install (or clear) the process-wide auditor. Not domain-safe: set it
    before {!run}, from the same domain. *)

type phase_timings = {
  generation_s : float;  (** New-cluster generation (Sec. 4.1). *)
  reclustering_s : float;  (** Sequence reclustering scan (Sec. 4.2). *)
  consolidation_s : float;  (** Cluster consolidation (Sec. 4.5). *)
  threshold_s : float;  (** Threshold adjustment (Sec. 4.6). *)
  convergence_s : float;  (** Membership-diff convergence test. *)
}
(** Wall-clock seconds spent in each phase of one iteration, measured
    on the monotonic clock. The same durations feed the
    [cluseq.iter.<phase>_seconds] histograms of {!Obs.Metrics}. *)

type scan_census = {
  pairs_scored : int;
      (** (sequence, cluster) similarity evaluations in this iteration's
          reclustering pass: the full n×k parallel matrix plus serial
          rescores against clusters whose PST absorbed a joiner. *)
  pairs_joined : int;  (** Evaluations at or above the join threshold. *)
  dirty_rescores : int;
      (** Serial re-evaluations against mutated ("dirty") clusters —
          the part of the scan the parallel matrix could not cover. *)
  assignments_changed : int;
      (** Sequences whose membership set changed this iteration (equals
          [membership_changes]). *)
  pairs_reused : int;
      (** Matrix entries satisfied from a clean cluster's cached score
          column instead of a fresh evaluation (bit-identical by
          determinism — see {!Cluster.score_cache}); [0] when the index
          is disabled. Reused pairs are {e not} in [pairs_scored]. *)
  index_candidates : int;
      (** Pairs the sketch gate admitted to the parallel matrix this
          iteration (whether evaluated or reused); [0] when the gate
          was inactive. *)
  index_filtered : int;
      (** Pairs the sketch gate pruned (never scored); [0] when the
          gate was inactive. [index_candidates + index_filtered = n·k]
          on gated iterations. *)
  score_calls : (int * int) array;
      (** Per cluster scored this iteration: (cluster id, similarity
          calls against it) — its admitted matrix entries plus its
          dirty rescores. *)
}
(** Scan-efficiency census of one reclustering pass (DESIGN.md §10):
    the baseline any candidate-pruning optimization must beat. Counts
    are pure arithmetic — no clock reads — so they are bit-identical
    for every domain count and independent of whether [Obs.Metrics] is
    enabled. Accumulated run-wide in the [cluseq.scan.*] counters. *)

val wasted_pair_ratio : scan_census -> float
(** Fraction of scored pairs that did not produce a join:
    [(pairs_scored - pairs_joined) / pairs_scored] (0 when nothing was
    scored). High values mean the all-pairs scan is mostly wasted work
    — the quantity index-first pruning (SEQR) targets. *)

type drift = {
  churn_rate : float;
      (** Fraction of sequences whose membership set changed this
          iteration ([membership_changes / n]) — the primary
          stability gauge: it should decay toward 0 as the clustering
          converges. *)
  mean_cluster_age : float;
      (** Mean iterations-since-seeding over live clusters. Persistently
          low values mean clusters churn (seeded and dismissed) instead
          of maturing. *)
  mean_intercluster_kl : float;
      (** Mean pairwise {!Divergence.kl_symmetric} over (a panel of up
          to 8 of) the live cluster models. Falling values mean the
          models are blending together. *)
  mean_member_score : float;
      (** Mean log-similarity over every (member, cluster) join of the
          reclustering pass, restricted to clusters that survived
          consolidation. *)
  scored_members : int;  (** Number of joins behind [mean_member_score]. *)
}
(** Per-iteration clustering-quality gauges. Every input is a
    deterministic function of the serial model state, so values are
    bit-identical at any domain count. Also published to the
    [cluseq.drift.*] histograms of {!Obs.Metrics} and journaled as
    [iteration.drift] records (with per-cluster score sketches) when
    {!Obs.Journal} is enabled. *)

type iteration_stats = {
  iteration : int;  (** 1-based iteration number. *)
  new_clusters : int;  (** Clusters seeded this iteration ({m k_n}). *)
  consolidated : int;  (** Clusters dismissed this iteration ({m k_c}). *)
  clusters : int;  (** Clusters alive at iteration end. *)
  unclustered : int;  (** Sequences in no cluster. *)
  threshold : float;  (** Linear [t] at iteration end. *)
  membership_changes : int;  (** Sequences whose membership set changed. *)
  census : scan_census;  (** Scan-efficiency census of the reclustering pass. *)
  timings : phase_timings option;
      (** Per-phase wall-clock breakdown; [Some] only when
          [Obs.Metrics] was enabled during the run, so that disabled
          runs pay no clock reads and results stay structurally equal
          across identically-seeded runs. *)
  drift : drift option;
      (** Quality gauges; [Some] when [Obs.Metrics] or {!Obs.Journal}
          was enabled — computed outside the phase timers, so
          [timings] never charges for them. *)
}

type result = {
  clusters : (int * int array) array;
      (** (cluster id, sorted member sequence ids) for each final cluster. *)
  assignments : int list array;
      (** Per sequence: ids of every cluster it belongs to (overlap allowed). *)
  best : (int * float) option array;
      (** Per sequence: best final cluster and its log-similarity — also set
          for sequences below threshold (useful for diagnostics); [None]
          only if no cluster produced a finite score. *)
  outliers : int list;  (** Sequences belonging to no cluster. *)
  n_clusters : int;  (** Final number of clusters. *)
  final_t : float;  (** Final linear threshold. *)
  iterations : int;  (** Iterations executed. *)
  history : iteration_stats list;  (** Per-iteration stats, oldest first. *)
  pst_stats : (int * Pst.stats) array;
      (** Structural statistics of each final cluster's PST (size, depth,
          approximate bytes) — reported by the Figure 4 bench. *)
  models : (int * Pst.t) array;
      (** Each final cluster's probabilistic suffix tree, for classifying
          new sequences after the run (see {!Classifier}). The trees are
          live references — treat as read-only. *)
}

val scaled_config : ?base:config -> expected_cluster_size:int -> unit -> config
(** [scaled_config ~expected_cluster_size ()] adapts the statistical
    thresholds of [base] (default {!default_config}) to the data scale:
    the significance count [c] becomes
    [max 4 (min 30 (expected_cluster_size / 4))] and the consolidation
    residual [c] likewise — the paper's [c = 30] presumes hundreds of
    members per cluster, and keeping it there on small databases makes
    every context insignificant and every new cluster die in
    consolidation. [expected_cluster_size] is a rough guess of N/k; it
    only needs to be the right order of magnitude. *)

val run : ?config:config -> Seq_database.t -> result
(** [run ?config db] executes CLUSEQ on [db]. Deterministic for a fixed
    [config.seed]. *)

val hard_labels : result -> n:int -> int array
(** [hard_labels r ~n] flattens the overlapping clustering into one label
    per sequence: the sequence's best cluster id among the clusters it
    actually joined, or [-1] for outliers. For evaluation against ground
    truth. *)
