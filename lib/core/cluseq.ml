let log_src = Logs.Src.create "cluseq" ~doc:"CLUSEQ clustering iterations"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_runs = Obs.Metrics.counter "cluseq.runs"
let m_iterations = Obs.Metrics.counter "cluseq.iterations"
let g_clusters = Obs.Metrics.gauge "cluseq.clusters"
let g_final_t = Obs.Metrics.gauge "cluseq.final_t"

(* Throughput + model-size accounting, read back by the benchmark
   telemetry (bench --record): work done per run accumulates in
   counters so one experiment's several runs sum naturally; the gauges
   describe the most recent run's final model. *)
let m_sequences = Obs.Metrics.counter "cluseq.sequences"
let m_symbols = Obs.Metrics.counter "cluseq.symbols"
let h_run_seconds = Obs.Metrics.histogram "cluseq.run_seconds"
let m_pst_nodes_built = Obs.Metrics.counter "cluseq.pst.nodes_built"
let m_pst_words_built = Obs.Metrics.counter "cluseq.pst.est_words_built"
let g_pst_nodes = Obs.Metrics.gauge "cluseq.pst.nodes"
let g_pst_words = Obs.Metrics.gauge "cluseq.pst.est_words"

(* Reclustering scan census: how much of the all-pairs scan is useful
   work. These accumulate across iterations and runs; the wasted-pair
   gauge reflects the most recent iteration. The counts themselves are
   maintained unconditionally (plain int arithmetic, no clock reads) so
   per-iteration census records stay bit-identical for any domain count
   and whether or not metrics are enabled — only the counter/gauge
   publication below is gated. *)
let m_pairs_scored = Obs.Metrics.counter "cluseq.scan.pairs_scored"
let m_pairs_joined = Obs.Metrics.counter "cluseq.scan.pairs_joined"
let m_dirty_rescores = Obs.Metrics.counter "cluseq.scan.dirty_rescores"
let m_assignments_changed = Obs.Metrics.counter "cluseq.scan.assignments_changed"
let g_wasted_ratio = Obs.Metrics.gauge "cluseq.scan.wasted_pair_ratio"

(* Candidate-index accounting: pairs the sketch gate admitted to the
   scan vs pairs it pruned. Like the census above these are maintained
   as plain ints inside the pass and only published here. *)
let m_pairs_reused = Obs.Metrics.counter "cluseq.scan.pairs_reused"
let m_index_candidates = Obs.Metrics.counter "cluseq.index.candidates"
let m_index_filtered = Obs.Metrics.counter "cluseq.index.filtered"
let h_index_fill = Obs.Metrics.histogram "cluseq.index.fill_seconds"

(* Clustering-quality drift gauges: one observation per iteration (one
   per cluster for ages, one per live pair for KL, one per joined pair
   for scores). Sum/count recover per-run means for the BENCH [drift]
   block; the same numbers feed the journal's [iteration.drift]
   records. Computed only when metrics or the journal are on, and after
   the phase timers, so [reclustering_s] never includes them. *)
let h_churn_rate =
  Obs.Metrics.histogram
    ~buckets:[| 0.001; 0.005; 0.01; 0.05; 0.1; 0.25; 0.5; 1.0 |]
    "cluseq.drift.churn_rate"

let h_cluster_age =
  Obs.Metrics.histogram ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |] "cluseq.drift.cluster_age"

let h_intercluster_kl =
  Obs.Metrics.histogram
    ~buckets:[| 0.01; 0.05; 0.1; 0.25; 0.5; 1.0; 2.0; 4.0 |]
    "cluseq.drift.intercluster_kl"

let h_member_score =
  Obs.Metrics.histogram
    ~buckets:[| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]
    "cluseq.drift.member_score"

(* Physical sentinel for pairs the candidate gate pruned from the score
   matrix. A NaN log_sim makes every numeric test in the apply loop
   (sample collection, join test, best tracking) a no-op on its own;
   the census tallies tell pruned pairs apart by physical equality. *)
let not_scored : Similarity.result = { log_sim = Float.nan; seg_lo = -1; seg_hi = -1 }

(* Scoring fan-out granularity: sequences are scored in blocks of this
   many lanes so one compiled automaton streams over a whole block per
   call ({!Psa.score_batch}) instead of being re-entered per sequence.
   Each parallel task owns one block and its own scratch columns; the
   per-pair results are independent of the block split, so any block
   size yields the same bits. 64 lanes keep the scratch (~4 KiB) and the
   state column cache-resident. *)
let scan_block = 64

(* The five phases of one iteration, in execution order; indexes into
   [h_phase] and the per-iteration timing array in [run]. *)
let phase_names = [| "generation"; "reclustering"; "consolidation"; "threshold"; "convergence" |]

let h_phase =
  Array.map (fun p -> Obs.Metrics.histogram ("cluseq.iter." ^ p ^ "_seconds")) phase_names

type config = {
  k_init : int;
  significance : int;
  t_init : float;
  max_depth : int;
  max_nodes : int;
  p_min : float;
  pruning : Pruning.strategy;
  adjust_threshold : bool;
  consolidate : bool;
  order : Order.t;
  sample_factor : int;
  max_iterations : int;
  min_residual : int option;
  seed : int;
}

let default_config =
  {
    k_init = 1;
    significance = 30;
    t_init = 1.2;
    max_depth = 10;
    max_nodes = 20_000;
    p_min = 1e-3;
    pruning = Pruning.Smallest_count_first;
    adjust_threshold = true;
    consolidate = true;
    order = Order.Fixed;
    sample_factor = 5;
    max_iterations = 50;
    min_residual = None;
    seed = 42;
  }

(* --- runtime audit hooks (the cluseq.check subsystem) ----------------- *)

type recluster_snapshot = {
  snap_db : Seq_database.t;
  snap_log_t : float;
  snap_order : int array;
  snap_before : (int * Pst.t * Bitset.t) array;
  (* [Some ratio] when the candidate gate was active for this pass; the
     serial replay recomputes the same sketches from the snapshot
     models and must reproduce the gate's admit decisions exactly. *)
  snap_index_ratio : float option;
}

type auditor = {
  on_recluster :
    recluster_snapshot -> after:(int * Bitset.t) array -> assignments:int list array -> unit;
  on_iteration : iteration:int -> clusters:Cluster.t list -> assignments:int list array -> unit;
}

(* A single ref deref per iteration when no auditor is installed — the
   production path pays nothing beyond that. *)
let auditor : auditor option ref = ref None
let set_auditor a = auditor := a

type phase_timings = {
  generation_s : float;
  reclustering_s : float;
  consolidation_s : float;
  threshold_s : float;
  convergence_s : float;
}

type scan_census = {
  pairs_scored : int;
  pairs_joined : int;
  dirty_rescores : int;
  assignments_changed : int;
  pairs_reused : int;
  index_candidates : int;
  index_filtered : int;
  score_calls : (int * int) array;
}

let wasted_pair_ratio c =
  if c.pairs_scored = 0 then 0.0
  else float_of_int (c.pairs_scored - c.pairs_joined) /. float_of_int c.pairs_scored

type drift = {
  churn_rate : float;
  mean_cluster_age : float;
  mean_intercluster_kl : float;
  mean_member_score : float;
  scored_members : int;
}

(* Journal events decided inside the timed reclustering scan. Recording
   them is one cons per decision; JSON formatting and file writes happen
   after the phase timer stops, so journaling cannot distort the
   reclustering_s it documents (same discipline as the drift gauges). *)
type pending_event =
  | Ev_joined of int * int * float  (* seq, cluster, deciding log_sim *)
  | Ev_left of int * int * float
  | Ev_grew of int * int * int  (* cluster, fresh joiners, end-of-pass size *)

type iteration_stats = {
  iteration : int;
  new_clusters : int;
  consolidated : int;
  clusters : int;
  unclustered : int;
  threshold : float;
  membership_changes : int;
  census : scan_census;
  timings : phase_timings option;
  drift : drift option;
}

type result = {
  clusters : (int * int array) array;
  assignments : int list array;
  best : (int * float) option array;
  outliers : int list;
  n_clusters : int;
  final_t : float;
  iterations : int;
  history : iteration_stats list;
  pst_stats : (int * Pst.stats) array;
  models : (int * Pst.t) array;
}

let pst_config (cfg : config) ~alphabet_size : Pst.config =
  {
    Pst.alphabet_size;
    max_depth = cfg.max_depth;
    significance = cfg.significance;
    max_nodes = cfg.max_nodes;
    p_min = Float.min cfg.p_min (0.99 /. float_of_int alphabet_size);
    pruning = cfg.pruning;
  }

(* Seed selection (paper Sec. 4.1): greedily pick, among sampled unclustered
   sequences, the one least similar to every cluster chosen so far. The
   similarity sweeps are read-only against frozen PSTs and fan out over
   the domain pool; the greedy argmin and all max-similarity updates run
   on the calling domain in sample order, so the chosen seeds are
   independent of the pool size. *)
let generate_new_clusters cfg db rng ~iter ~next_id ~clusters ~unclustered ~k_n ~index =
  let lbg = Seq_database.log_background db in
  let pool = Array.of_list unclustered in
  if Array.length pool = 0 || k_n <= 0 then []
  else begin
    let par = Par.get_pool () in
    let k_n = min k_n (Array.length pool) in
    let m = min (cfg.sample_factor * k_n) (Array.length pool) in
    let chosen = Rng.sample_without_replacement rng ~k:m ~n:(Array.length pool) in
    let samples = Array.map (fun i -> pool.(i)) chosen in
    (* Compile the frozen models on this domain before fanning out; the
       automata are immutable and shared read-only by the workers. *)
    List.iter Cluster.compile clusters;
    (* Cluster gate bitmaps, built on this domain for the same reason. *)
    let cl_sketches =
      match index with
      | None -> [||]
      | Some _ -> Array.of_list (List.map Cluster.sketch clusters)
    in
    (* Cache each sample's max similarity to the existing clusters; the
       greedy loop only adds similarities to freshly created clusters. *)
    let full_max_sim s =
      List.fold_left
        (fun acc cl -> Float.max acc (Cluster.similarity cl ~log_background:lbg s).log_sim)
        neg_infinity clusters
    in
    let clusters_arr = Array.of_list clusters in
    let max_sim =
      match index with
      | None ->
          (* Ungated: score cluster-major over blocks of samples, one
             batched automaton pass per (cluster, block). The per-sample
             [Float.max] fold visits clusters in list order — the same
             operations in the same order as [full_max_sim], so the
             maxima are bit-identical. *)
          let nb = (m + scan_block - 1) / scan_block in
          let blocks =
            Par.map_chunks par ~n:nb (fun b ->
                let lo = b * scan_block in
                let bn = min scan_block (m - lo) in
                let seqs = Array.init bn (fun j -> Seq_database.get db samples.(lo + j)) in
                let batch = Psa.batch_create ~capacity:bn () in
                let acc = Array.make bn neg_infinity in
                Array.iter
                  (fun cl ->
                    let res = Cluster.similarity_batch cl ~log_background:lbg ~batch seqs in
                    for j = 0 to bn - 1 do
                      acc.(j) <- Float.max acc.(j) res.(j).Similarity.log_sim
                    done)
                  clusters_arr;
                acc)
          in
          Array.init m (fun j -> blocks.(j / scan_block).(j mod scan_block))
      | Some (ratio, sketches) ->
          Par.map_chunks par ~n:m (fun j ->
              let s = Seq_database.get db samples.(j) in
              let sk = sketches.(samples.(j)) in
              let acc = ref neg_infinity and admitted = ref false in
              List.iteri
                (fun ci cl ->
                  if Index.admit sk cl_sketches.(ci) ~ratio then begin
                    admitted := true;
                    let v = (Cluster.similarity cl ~log_background:lbg s).log_sim in
                    if v > !acc then acc := v
                  end)
                clusters;
              (* The greedy argmin below prefers the lowest max-sim; a
                 sample every cluster gated out would otherwise win with
                 -inf on no evidence, so fall back to the exact sweep. *)
              if !admitted || clusters = [] then !acc else full_max_sim s)
    in
    let taken = Array.make m false in
    let new_clusters = ref [] in
    let id = ref next_id in
    let jrn = Obs.Journal.is_enabled () in
    for _ = 1 to k_n do
      (* argmin over remaining samples of max-similarity-to-T *)
      let best = ref (-1) in
      for j = 0 to m - 1 do
        if not taken.(j) && (!best < 0 || max_sim.(j) < max_sim.(!best)) then best := j
      done;
      if !best >= 0 then begin
        let j = !best in
        taken.(j) <- true;
        let seed_seq = Seq_database.get db samples.(j) in
        let cl =
          Cluster.create ~id:!id ~born:iter ~capacity:(Seq_database.n_sequences db)
            (pst_config cfg ~alphabet_size:(Alphabet.size (Seq_database.alphabet db)))
            seed_seq
        in
        if jrn then
          Obs.Journal.emit "cluster.seeded" (fun () ->
              [
                ("iter", Bench_json.Num (float_of_int iter));
                ("cluster", Bench_json.Num (float_of_int !id));
                ("seed_seq", Bench_json.Num (float_of_int samples.(j)));
              ]);
        incr id;
        Cluster.compile cl;
        new_clusters := cl :: !new_clusters;
        (* Update remaining samples' max similarity with the new cluster
           (read-only scores in parallel, element-wise maxima serially).
           A freshly seeded cluster rarely has an active context yet, so
           its gate usually admits everything; when it does fire, a
           pruned pair just skips the max update. *)
        let fresh_sketch =
          match index with None -> Index.empty | Some _ -> Cluster.sketch cl
        in
        let sims =
          match index with
          | None ->
              (* Ungated: one batched pass of the fresh cluster's
                 automaton per block, over the still-untaken lanes
                 ([taken] is read-only during the sweep). *)
              let nb = (m + scan_block - 1) / scan_block in
              let blocks =
                Par.map_chunks par ~n:nb (fun b ->
                    let lo = b * scan_block in
                    let bn = min scan_block (m - lo) in
                    let out = Array.make bn neg_infinity in
                    let pending = Array.make bn 0 in
                    let np = ref 0 in
                    for j = 0 to bn - 1 do
                      if not taken.(lo + j) then begin
                        pending.(!np) <- j;
                        incr np
                      end
                    done;
                    if !np > 0 then begin
                      let seqs =
                        Array.init !np (fun p ->
                            Seq_database.get db samples.(lo + pending.(p)))
                      in
                      let batch = Psa.batch_create ~capacity:!np () in
                      let res = Cluster.similarity_batch cl ~log_background:lbg ~batch seqs in
                      for p = 0 to !np - 1 do
                        out.(pending.(p)) <- res.(p).Similarity.log_sim
                      done
                    end;
                    out)
              in
              Array.init m (fun j -> blocks.(j / scan_block).(j mod scan_block))
          | Some (ratio, sketches) ->
              Par.map_chunks par ~n:m (fun j' ->
                  if taken.(j') then neg_infinity
                  else if Index.admit sketches.(samples.(j')) fresh_sketch ~ratio then
                    (Cluster.similarity cl ~log_background:lbg
                       (Seq_database.get db samples.(j')))
                      .log_sim
                  else neg_infinity)
        in
        for j' = 0 to m - 1 do
          if (not taken.(j')) && sims.(j') > max_sim.(j') then max_sim.(j') <- sims.(j')
        done
      end
    done;
    List.rev !new_clusters
  end

(* Consolidation (paper Sec. 4.5): examine clusters in ascending size order
   and dismiss any whose members are nearly all covered by other clusters.
   The paper counts coverage by "larger" clusters only; under that literal
   rule the largest cluster can never be dismissed, so the blended
   mega-cluster that forms in early low-threshold iterations would survive
   forever. We count coverage by every not-yet-dismissed cluster instead:
   small sharp clusters can then jointly retire a large blend, while
   identical twins cannot annihilate each other (the first to be dismissed
   stops covering the second). See DESIGN.md. *)
let consolidate ~min_residual ~with_absorbers clusters =
  let arr = Array.of_list clusters in
  let cmp a b =
    let c = compare (Cluster.size a) (Cluster.size b) in
    if c <> 0 then c else compare (Cluster.id a) (Cluster.id b)
  in
  Array.sort cmp arr;
  let n = Array.length arr in
  let kept = Array.make n true in
  let dismissed = ref [] in
  for i = 0 to n - 1 do
    let cover =
      let acc = Bitset.create (Bitset.capacity (Cluster.members arr.(i))) in
      for j = 0 to n - 1 do
        if j <> i && kept.(j) then Bitset.union_into ~dst:acc (Cluster.members arr.(j))
      done;
      acc
    in
    let residual = Bitset.diff_cardinal (Cluster.members arr.(i)) cover in
    if residual < min_residual then begin
      kept.(i) <- false;
      (* Provenance for the journal: which still-alive clusters held the
         dismissed cluster's members at the moment of dismissal. Only
         worth the member intersections when someone is listening. *)
      let absorbers =
        if not with_absorbers then []
        else begin
          let acc = ref [] in
          for j = n - 1 downto 0 do
            if
              j <> i && kept.(j)
              && Bitset.inter_cardinal (Cluster.members arr.(i)) (Cluster.members arr.(j)) > 0
            then acc := Cluster.id arr.(j) :: !acc
          done;
          List.sort compare !acc
        end
      in
      dismissed := (Cluster.id arr.(i), Cluster.size arr.(i), absorbers) :: !dismissed
    end
  done;
  let retained = ref [] in
  for i = n - 1 downto 0 do
    if kept.(i) then retained := arr.(i) :: !retained
  done;
  (* Restore id order for deterministic downstream iteration. *)
  let retained = List.sort (fun a b -> compare (Cluster.id a) (Cluster.id b)) !retained in
  (retained, List.rev !dismissed)

let scaled_config ?(base = default_config) ~expected_cluster_size () =
  if expected_cluster_size < 1 then invalid_arg "Cluseq.scaled_config";
  let c = max 4 (min 30 (expected_cluster_size / 4)) in
  { base with significance = c; min_residual = Some c }

let hard_labels (r : result) ~n =
  Array.init n (fun i ->
      match r.assignments.(i) with
      | [] -> -1
      | joined -> (
          match r.best.(i) with
          | Some (c, _) when List.mem c joined -> c
          | _ -> List.hd joined))

let run ?(config = default_config) db =
  let cfg = config in
  if cfg.k_init < 1 then invalid_arg "Cluseq.run: k_init must be >= 1";
  (* [not (>= 1.0)] rather than [< 1.0]: the latter lets NaN through. *)
  if not (Float.is_finite cfg.t_init && cfg.t_init >= 1.0) then
    invalid_arg "Cluseq.run: t_init must be a finite value >= 1";
  Obs.Metrics.incr m_runs;
  let run_t0 = if Obs.Metrics.is_enabled () then Timer.now_ns () else 0L in
  Obs.Trace.with_span "cluseq.run" @@ fun () ->
  (* Per-iteration phase durations (seconds); only filled while metrics
     are enabled so disabled runs skip the clock reads entirely. *)
  let phase_s = Array.make (Array.length phase_names) 0.0 in
  let phase idx f =
    Obs.Trace.with_span phase_names.(idx) (fun () ->
        if Obs.Metrics.is_enabled () then begin
          let t0 = Timer.now_ns () in
          let r = f () in
          let dt = Timer.span_s t0 (Timer.now_ns ()) in
          phase_s.(idx) <- dt;
          Obs.Metrics.observe h_phase.(idx) dt;
          r
        end
        else f ())
  in
  let n = Seq_database.n_sequences db in
  (* Built once per database (Seq_database caches it) and validated once
     per run — never recomputed or re-checked inside a scoring call. *)
  let lbg = Seq_database.log_background db in
  Similarity.validate_log_background lbg;
  let rng = Rng.create cfg.seed in
  if Obs.Journal.is_enabled () then
    Obs.Journal.emit "run.start" (fun () ->
        [
          ("sequences", Bench_json.Num (float_of_int n));
          ("k_init", Bench_json.Num (float_of_int cfg.k_init));
          ("t_init", Bench_json.Num cfg.t_init);
          ("seed", Bench_json.Num (float_of_int cfg.seed));
          ("max_iterations", Bench_json.Num (float_of_int cfg.max_iterations));
        ]);
  let threshold = Threshold.create ~t_init:cfg.t_init in
  (* Candidate index: per-sequence sketches are a pure function of the
     database, so they are filled once per run, in parallel like the
     score matrix (bit-identical for any domain count). The gate itself
     is decided per pass — see [gate_ratio] in the loop. *)
  let index_allowed = Index.enabled () && Index.ratio () > 0.0 && cfg.max_depth >= Index.q in
  (* The score-column cache half of the index needs no sketches — only
     deterministic scoring — so it rides on [Index.enabled] alone; the
     ratio and depth valves above only guard the sketch gate. *)
  let cache_on = Index.enabled () in
  let seq_sketches =
    if not index_allowed then [||]
    else
      Obs.Trace.with_span "index.fill" @@ fun () ->
      let t0 = if Obs.Metrics.is_enabled () then Timer.now_ns () else 0L in
      let sk =
        Par.map_chunks (Par.get_pool ()) ~n (fun i ->
            Index.sketch_of_sequence (Seq_database.get db i))
      in
      if Obs.Metrics.is_enabled () then
        Obs.Metrics.observe h_index_fill (Timer.span_s t0 (Timer.now_ns ()));
      sk
  in
  let min_residual = match cfg.min_residual with Some v -> v | None -> cfg.significance in
  let clusters = ref [] in
  let next_id = ref 0 in
  let best = ref (Array.make n None) in
  let assignments = ref (Array.make n []) in
  let prev_memberships : (int * int list) list ref = ref [] in
  let prev_k_n = ref 0 and prev_k_c = ref 0 in
  let history = ref [] in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < cfg.max_iterations do
    incr iterations;
    Obs.Metrics.incr m_iterations;
    Obs.Trace.with_span "iteration" @@ fun () ->
    let iter = !iterations in
    (* Gate activation for this iteration (generation and reclustering
       see the same threshold — it only moves in phase 4). Three valves,
       all required for the gated run to reproduce the full scan:
       - While the threshold still adjusts, every scored pair feeds the
         valley histogram, so skipping any pair would shift the
         threshold trajectory: the gate waits until the samples are
         inert ([adjust_threshold] off, or the threshold frozen).
       - Cluster-based examination order sorts sequences by their best
         score of the previous pass, which pruning perturbs for
         outliers; the gate stays off under that order.
       - While log t <= 0 the similarity bar sits at or below the
         background model, so any sequence can clear it regardless of
         shared content; pruning on content overlap would be unsound
         there. *)
    let gate_ratio =
      if
        index_allowed
        && ((not cfg.adjust_threshold) || Threshold.frozen threshold)
        && cfg.order <> Order.Cluster_based
        && Threshold.log_t threshold > 0.0
      then Some (Index.ratio ())
      else None
    in
    let index = Option.map (fun r -> (r, seq_sketches)) gate_ratio in
    (* --- 1. new cluster generation --- *)
    let fresh =
      phase 0 @@ fun () ->
      let k' = List.length !clusters in
      let unclustered =
        List.filter (fun i -> !assignments.(i) = []) (List.init n Fun.id)
      in
      let k_n =
        if iter = 1 then cfg.k_init
        else begin
          let f =
            if !prev_k_n = 0 then 0.0
            else float_of_int (max (!prev_k_n - !prev_k_c) 0) /. float_of_int !prev_k_n
          in
          let k_n = int_of_float (Float.round (float_of_int k' *. f)) in
          (* f = 0 is a fixed point of the paper's growth formula; keep probing
             with one seed per iteration while unclustered sequences remain (a
             fruitless seed attracts < c exclusive members and is consolidated
             away the same iteration, so termination is unaffected). *)
          if unclustered = [] then 0 else max k_n 1
        end
      in
      let k_n = min k_n (List.length unclustered) in
      generate_new_clusters cfg db rng ~iter ~next_id:!next_id ~clusters:!clusters
        ~unclustered ~k_n ~index
    in
    next_id := !next_id + List.length fresh;
    clusters := !clusters @ fresh;
    (* --- 2. sequence reclustering --- *)
    (* Split into a read-only scoring sweep and a serial apply pass (the
       dominant cost the paper's Sec. 6 scalability figures measure).

       Scoring: every (sequence, cluster) pair is scored against the
       clusters' iteration-start PSTs, fanned out over the domain pool.
       Each pair is independent and the PSTs are frozen, so the score
       matrix is bit-identical for any domain count and any chunking.

       Apply: joins, membership updates, and PST segment insertions run
       on this domain only, visiting sequences in the arranged
       examination order — all model mutation is serial and
       deterministic. Once a cluster's PST absorbs a fresh joiner it
       diverges from its scored snapshot, so scores against that cluster
       are recomputed serially from then on ("dirty" below). This keeps
       the pass equivalent to the fully serial algorithm — a growing
       cluster attracts later sequences within the same iteration, which
       the paper's incremental one-pass design depends on — while the
       stable majority of clusters still reads the parallel matrix.

       A segment updates a cluster's PST only when the sequence joins it
       afresh: re-inserting stable members every iteration would inflate
       counts without information, making member similarities (and then
       the threshold valley) grow without bound. *)
    let new_best, new_assignments, samples, census0, member_scores, pending_journal, pruned_info
        =
      phase 1 @@ fun () ->
      (* Hoisted journal/drift gates: one bool each for the whole pass, so
         the disabled path adds no closure allocation per scored pair. *)
      let jrn = Obs.Journal.is_enabled () in
      let drift_on = jrn || Obs.Metrics.is_enabled () in
      let clusters_arr = Array.of_list !clusters in
      let k = Array.length clusters_arr in
      (* Iteration-start memberships, aligned with [clusters_arr]: the
         apply loop's was-member tests and the gate's member bypass both
         index it by cluster position. *)
      let prev_arr = Array.map (fun cl -> Bitset.copy (Cluster.members cl)) clusters_arr in
      List.iter Cluster.clear_members !clusters;
      let order = Order.arrange cfg.order rng ~n ~best:!best in
      (* Freeze the audit snapshot before any scoring: iteration-start
         model copies, previous memberships, the threshold, the
         examination order, and the gate setting — everything a serial
         replay needs. *)
      let snapshot =
        match !auditor with
        | None -> None
        | Some _ ->
            Some
              {
                snap_db = db;
                snap_log_t = Threshold.log_t threshold;
                snap_order = Array.copy order;
                snap_before =
                  Array.mapi
                    (fun ci cl ->
                      (Cluster.id cl, Pst.copy (Cluster.pst cl), Bitset.copy prev_arr.(ci)))
                    clusters_arr;
                snap_index_ratio = gate_ratio;
              }
      in
      (* One compiled scorer per (cluster, pass): clusters untouched since
         their last compile keep the cache; any absorbed segment dropped
         it, so this rebuilds exactly the stale ones — on this domain,
         before the fan-out. Gate bitmaps share the same lifecycle. *)
      Array.iter Cluster.compile clusters_arr;
      let gate =
        match gate_ratio with
        | None -> None
        | Some ratio -> Some (ratio, Array.map Cluster.sketch clusters_arr)
      in
      (* Score-column reuse: a cluster whose PST was not mutated since
         the last pass would score every sequence bit-identically, so
         its cached column substitutes for recomputation. [absorb]
         drops the cache, so a [Some] here is always current. Cached
         gate holes ([not_scored]) fall through to a fresh evaluation —
         they can only be read if an admit decision flipped, which the
         sticky valves prevent, but computing is always correct. *)
      let caches =
        if cache_on then Array.map Cluster.score_cache clusters_arr
        else Array.make k None
      in
      (* Batch-first fan-out: each parallel task owns a block of
         [scan_block] sequences and scores it cluster-major — per
         cluster, the lanes not satisfied by the score-column cache or
         pruned by the gate are gathered and scored in ONE batched
         automaton pass ([Cluster.similarity_batch]). The matrix rows
         are identical, record for record, to the per-pair sweep this
         replaces: cache hits install the cached record itself (the
         apply loop's census relies on that physical identity), pruned
         pairs install the [not_scored] sentinel, and the batched kernel
         is bit-for-bit equal to [Cluster.similarity] on each lane. *)
      let nblocks = (n + scan_block - 1) / scan_block in
      let score_blocks =
        Par.map_chunks (Par.get_pool ()) ~n:nblocks (fun b ->
            let lo = b * scan_block in
            let bn = min scan_block (n - lo) in
            let block_seqs = Array.init bn (fun j -> Seq_database.get db (lo + j)) in
            let rows = Array.init bn (fun _ -> Array.make k not_scored) in
            let batch = Psa.batch_create ~capacity:bn () in
            (* Lane gather scratch, reused across the k clusters. *)
            let pending = Array.make (max bn 1) 0 in
            Array.iteri
              (fun ci cl ->
                let np = ref 0 in
                for j = 0 to bn - 1 do
                  let sid = lo + j in
                  match caches.(ci) with
                  | Some col when col.(sid) != not_scored -> rows.(j).(ci) <- col.(sid)
                  | _ ->
                      let admitted =
                        match gate with
                        | None -> true
                        | Some (ratio, cl_sketches) ->
                            (* Members always bypass the gate: exits must
                               be decided by a real score, never by a
                               sketch miss. *)
                            Bitset.mem prev_arr.(ci) sid
                            || Index.admit seq_sketches.(sid) cl_sketches.(ci) ~ratio
                      in
                      if admitted then begin
                        pending.(!np) <- j;
                        incr np
                      end
                      (* else: the row already holds [not_scored]. *)
                done;
                if !np > 0 then begin
                  let seqs = Array.init !np (fun p -> block_seqs.(pending.(p))) in
                  let fresh = Cluster.similarity_batch cl ~log_background:lbg ~batch seqs in
                  for p = 0 to !np - 1 do
                    rows.(pending.(p)).(ci) <- fresh.(p)
                  done
                end)
              clusters_arr;
            rows)
      in
      let scores =
        Array.init n (fun sid -> score_blocks.(sid / scan_block).(sid mod scan_block))
      in
      let new_best = Array.make n None in
      let new_assignments = Array.make n [] in
      let dirty = Array.make k false in
      (* Census tallies: the parallel matrix above scored every admitted
         (sequence, cluster) pair — all n×k when the gate is off; serial
         rescores against dirty clusters add to that. Plain int
         arithmetic — deterministic for any domain count, maintained
         whether or not metrics are enabled. *)
      let scored_base = Array.make k 0 in
      let reused_base = Array.make k 0 in
      let rescores = Array.make k 0 in
      let joined = ref 0 in
      let fresh_joins = Array.make k 0 in
      let member_scores = Array.make k [] in
      let pending = ref [] in
      let samples = ref [] and n_samples = ref 0 in
      let log_t = Threshold.log_t threshold in
      Array.iter
        (fun sid ->
          let s = Seq_database.get db sid in
          Array.iteri
            (fun ci matrix_r ->
              (* A pruned pair stays pruned even if the cluster went
                 dirty: the gate decided against the iteration-start
                 model, and the serial replay mirrors exactly that. *)
              if matrix_r != not_scored then begin
                let cl = clusters_arr.(ci) in
                (* A matrix entry physically shared with the cached
                   column was reused, not evaluated; anything else was a
                   fresh similarity call. The test is serial and
                   pointer-based, so the tally is domain-count
                   independent. *)
                (match caches.(ci) with
                | Some col when col.(sid) == matrix_r ->
                    reused_base.(ci) <- reused_base.(ci) + 1
                | _ -> scored_base.(ci) <- scored_base.(ci) + 1);
                let r : Similarity.result =
                  if dirty.(ci) then begin
                    rescores.(ci) <- rescores.(ci) + 1;
                    Cluster.similarity cl ~log_background:lbg s
                  end
                  else matrix_r
                in
                if Float.is_finite r.log_sim then begin
                  samples := r.log_sim :: !samples;
                  incr n_samples
                end;
                if r.log_sim >= log_t then begin
                  incr joined;
                  if drift_on then member_scores.(ci) <- r.log_sim :: member_scores.(ci);
                  if Bitset.mem prev_arr.(ci) sid then Cluster.add_member cl sid
                  else begin
                    Cluster.absorb cl ~seq_id:sid s r;
                    dirty.(ci) <- true;
                    fresh_joins.(ci) <- fresh_joins.(ci) + 1;
                    if jrn then pending := Ev_joined (sid, Cluster.id cl, r.log_sim) :: !pending
                  end;
                  new_assignments.(sid) <- Cluster.id cl :: new_assignments.(sid)
                end
                else if jrn && Bitset.mem prev_arr.(ci) sid then
                  pending := Ev_left (sid, Cluster.id cl, r.log_sim) :: !pending;
                match new_best.(sid) with
                | Some (_, b) when b >= r.log_sim -> ()
                | _ ->
                    if Float.is_finite r.log_sim then
                      new_best.(sid) <- Some (Cluster.id cl, r.log_sim)
              end)
            scores.(sid))
        order;
      Array.iteri (fun i l -> new_assignments.(i) <- List.rev l) new_assignments;
      (* Persist the columns of clusters that stayed clean through the
         whole pass: their matrix scores are against a PST that is still
         current, so the next pass can reuse them verbatim. Dirty
         clusters already dropped their cache inside [absorb]. *)
      if cache_on then
        Array.iteri
          (fun ci cl ->
            if not dirty.(ci) then
              Cluster.set_score_cache cl (Array.init n (fun sid -> scores.(sid).(ci))))
          clusters_arr;
      if jrn then
        Array.iteri
          (fun ci cl ->
            if fresh_joins.(ci) > 0 then
              pending := Ev_grew (Cluster.id cl, fresh_joins.(ci), Cluster.size cl) :: !pending)
          clusters_arr;
      (match (!auditor, snapshot) with
      | Some a, Some snap ->
          a.on_recluster snap
            ~after:
              (Array.map
                 (fun cl -> (Cluster.id cl, Bitset.copy (Cluster.members cl)))
                 clusters_arr)
            ~assignments:(Array.copy new_assignments)
      | _ -> ());
      let total_rescores = Array.fold_left ( + ) 0 rescores in
      let total_scored = Array.fold_left ( + ) 0 scored_base in
      let total_reused = Array.fold_left ( + ) 0 reused_base in
      let admitted = total_scored + total_reused in
      let census0 =
        {
          pairs_scored = total_scored + total_rescores;
          pairs_joined = !joined;
          dirty_rescores = total_rescores;
          assignments_changed = 0 (* filled in after the convergence test *);
          pairs_reused = total_reused;
          index_candidates = (match gate with Some _ -> admitted | None -> 0);
          index_filtered = (match gate with Some _ -> (n * k) - admitted | None -> 0);
          score_calls =
            Array.mapi
              (fun ci cl -> (Cluster.id cl, scored_base.(ci) + rescores.(ci)))
              clusters_arr;
        }
      in
      let pruned_info =
        match gate_ratio with
        | Some ratio when jrn ->
            Some
              ( ratio,
                Array.mapi
                  (fun ci cl -> (Cluster.id cl, n - scored_base.(ci) - reused_base.(ci)))
                  clusters_arr )
        | _ -> None
      in
      ( new_best,
        new_assignments,
        !samples,
        census0,
        Array.mapi (fun ci cl -> (Cluster.id cl, member_scores.(ci))) clusters_arr,
        List.rev !pending,
        pruned_info )
    in
    (* Write the scan's deferred journal events now that its timer has
       stopped — still this domain, still scan order, so the journal is
       unchanged except for timestamps. *)
    if pending_journal <> [] then begin
      let log_t = Threshold.log_t threshold in
      let num v = Bench_json.Num v in
      let fi = float_of_int in
      List.iter
        (function
          | Ev_joined (sid, cid, log_sim) ->
              Obs.Journal.emit "seq.joined" (fun () ->
                  [
                    ("iter", num (fi iter)); ("seq", num (fi sid)); ("cluster", num (fi cid));
                    ("log_sim", num log_sim); ("log_t", num log_t);
                  ])
          | Ev_left (sid, cid, log_sim) ->
              Obs.Journal.emit "seq.left" (fun () ->
                  [
                    ("iter", num (fi iter)); ("seq", num (fi sid)); ("cluster", num (fi cid));
                    ("log_sim", num log_sim); ("log_t", num log_t);
                  ])
          | Ev_grew (cid, fresh, size) ->
              Obs.Journal.emit "cluster.grew" (fun () ->
                  [
                    ("iter", num (fi iter)); ("cluster", num (fi cid));
                    ("fresh", num (fi fresh)); ("size", num (fi size));
                  ]))
        pending_journal
    end;
    (* Gate provenance, also deferred past the phase timer: one record
       per gated iteration with the ratio and the per-cluster prune
       counts. *)
    (match pruned_info with
    | Some (ratio, per_cluster) when census0.index_filtered > 0 ->
        Obs.Journal.emit "index.pruned" (fun () ->
            let num v = Bench_json.Num v in
            let fi = float_of_int in
            [
              ("iter", num (fi iter));
              ("ratio", num ratio);
              ("candidates", num (fi census0.index_candidates));
              ("filtered", num (fi census0.index_filtered));
              ( "clusters",
                Bench_json.Arr
                  (Array.to_list per_cluster
                  |> List.filter (fun (_, f) -> f > 0)
                  |> List.map (fun (cid, f) ->
                         Bench_json.Obj
                           [ ("cluster", num (fi cid)); ("filtered", num (fi f)) ])) );
            ])
    | _ -> ());
    (* --- 3. consolidation --- *)
    let dropped =
      phase 2 @@ fun () ->
      let jrn = Obs.Journal.is_enabled () in
      let retained, dismissed =
        if cfg.consolidate then consolidate ~min_residual ~with_absorbers:jrn !clusters
        else (!clusters, [])
      in
      let dropped = List.length dismissed in
      if jrn then
        List.iter
          (fun (id, size, absorbers) ->
            Obs.Journal.emit "cluster.dismissed" (fun () ->
                [
                  ("iter", Bench_json.Num (float_of_int iter));
                  ("cluster", Bench_json.Num (float_of_int id));
                  ("size", Bench_json.Num (float_of_int size));
                  ( "absorbed_by",
                    Bench_json.Arr
                      (List.map (fun a -> Bench_json.Num (float_of_int a)) absorbers) );
                ]))
          dismissed;
      clusters := retained;
      (* Strip memberships of dismissed clusters. Alive ids go into a
         hash set first: filtering each assignment list against an alive
         *list* is O(n·k²) at scale (every sequence × every assignment ×
         every alive cluster). *)
      if dropped > 0 then begin
        let alive = Hashtbl.create (2 * List.length retained) in
        List.iter (fun cl -> Hashtbl.replace alive (Cluster.id cl) ()) retained;
        Array.iteri
          (fun i l -> new_assignments.(i) <- List.filter (Hashtbl.mem alive) l)
          new_assignments
      end;
      dropped
    in
    (match !auditor with
    | Some a -> a.on_iteration ~iteration:iter ~clusters:!clusters ~assignments:new_assignments
    | None -> ());
    (* --- 4. threshold adjustment --- *)
    phase 3 (fun () ->
        if cfg.adjust_threshold then begin
          let old_t = Threshold.linear_t threshold in
          Threshold.adjust threshold (Array.of_list samples);
          if Obs.Journal.is_enabled () then
            Obs.Journal.emit "threshold.adjusted" (fun () ->
                [
                  ("iter", Bench_json.Num (float_of_int iter));
                  ("old_t", Bench_json.Num old_t);
                  ("new_t", Bench_json.Num (Threshold.linear_t threshold));
                  ("frozen", Bench_json.Bool (Threshold.frozen threshold));
                ])
        end);
    (* --- 5. convergence test --- *)
    let memberships, changes, stable =
      phase 4 @@ fun () ->
      let memberships =
        List.map (fun cl -> (Cluster.id cl, Bitset.to_list (Cluster.members cl))) !clusters
      in
      let changes =
        let prev_tbl = Hashtbl.create 16 in
        List.iter (fun (id, ms) -> Hashtbl.replace prev_tbl id ms) !prev_memberships;
        let changed = Array.make n false in
        List.iter
          (fun (id, ms) ->
            let old = Option.value ~default:[] (Hashtbl.find_opt prev_tbl id) in
            let mark l l' =
              List.iter (fun i -> if not (List.mem i l') then changed.(i) <- true) l
            in
            mark ms old;
            mark old ms)
          memberships;
        (* clusters that disappeared entirely *)
        List.iter
          (fun (id, ms) ->
            if not (List.mem_assoc id memberships) then
              List.iter (fun i -> changed.(i) <- true) ms)
          !prev_memberships;
        Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 changed
      in
      (* The clustering is final only once the threshold has also settled:
         t moves halfway toward the valley each iteration, so an unchanged
         membership under a still-moving t is not yet a fixed point. *)
      let threshold_settled = (not cfg.adjust_threshold) || Threshold.frozen threshold in
      let stable =
        iter > 1 && changes = 0
        && List.length memberships = List.length !prev_memberships
        && threshold_settled
      in
      (memberships, changes, stable)
    in
    prev_memberships := memberships;
    prev_k_n := List.length fresh;
    prev_k_c := dropped;
    best := new_best;
    assignments := new_assignments;
    let unclustered_now =
      Array.fold_left (fun acc l -> if l = [] then acc + 1 else acc) 0 new_assignments
    in
    let census = { census0 with assignments_changed = changes } in
    Obs.Metrics.incr ~by:census.pairs_scored m_pairs_scored;
    Obs.Metrics.incr ~by:census.pairs_joined m_pairs_joined;
    Obs.Metrics.incr ~by:census.dirty_rescores m_dirty_rescores;
    Obs.Metrics.incr ~by:changes m_assignments_changed;
    Obs.Metrics.incr ~by:census.pairs_reused m_pairs_reused;
    Obs.Metrics.incr ~by:census.index_candidates m_index_candidates;
    Obs.Metrics.incr ~by:census.index_filtered m_index_filtered;
    Obs.Metrics.set g_wasted_ratio (wasted_pair_ratio census);
    (* --- drift telemetry --- *)
    (* Quality gauges for this iteration, computed outside the phase
       timers (so [reclustering_s] is never charged for them) and only
       when someone is listening. Every input is a deterministic
       function of the serial model state, so journaled drift records
       are bit-identical at any domain count. *)
    let drift =
      let jrn = Obs.Journal.is_enabled () in
      if not (jrn || Obs.Metrics.is_enabled ()) then None
      else begin
        let live = !clusters in
        let k_live = List.length live in
        let churn = if n = 0 then 0.0 else float_of_int changes /. float_of_int n in
        let ages = List.map (fun cl -> iter - Cluster.born cl) live in
        let mean_age =
          if k_live = 0 then 0.0
          else float_of_int (List.fold_left ( + ) 0 ages) /. float_of_int k_live
        in
        (* Pairwise model divergence is quadratic in clusters, so cap
           the panel at the first 8 live clusters (id order — the
           longest-lived, hence most informative, models). *)
        let panel = List.filteri (fun i _ -> i < 8) live in
        let kls =
          let rec pairs = function
            | [] -> []
            | a :: rest ->
                List.map
                  (fun b -> Divergence.kl_symmetric (Cluster.pst a) (Cluster.pst b))
                  rest
                @ pairs rest
          in
          pairs panel
        in
        let mean_kl =
          match kls with
          | [] -> 0.0
          | _ -> List.fold_left ( +. ) 0.0 kls /. float_of_int (List.length kls)
        in
        let alive = Hashtbl.create (2 * k_live) in
        List.iter (fun cl -> Hashtbl.replace alive (Cluster.id cl) ()) live;
        let live_scores =
          List.filter (fun (id, _) -> Hashtbl.mem alive id) (Array.to_list member_scores)
        in
        let scored_members =
          List.fold_left (fun acc (_, ss) -> acc + List.length ss) 0 live_scores
        in
        let score_sum =
          List.fold_left (fun acc (_, ss) -> List.fold_left ( +. ) acc ss) 0.0 live_scores
        in
        let mean_score =
          if scored_members = 0 then 0.0 else score_sum /. float_of_int scored_members
        in
        Obs.Metrics.observe h_churn_rate churn;
        List.iter (fun a -> Obs.Metrics.observe h_cluster_age (float_of_int a)) ages;
        List.iter (Obs.Metrics.observe h_intercluster_kl) kls;
        List.iter
          (fun (_, ss) -> List.iter (Obs.Metrics.observe h_member_score) ss)
          live_scores;
        if jrn then
          Obs.Journal.emit "iteration.drift" (fun () ->
              let sketch (id, ss) =
                let arr = Array.of_list ss in
                let points =
                  if Array.length arr = 0 then []
                  else
                    Histogram.of_samples ~n_buckets:8 arr
                    |> Histogram.to_points |> Array.to_list
                    |> List.map (fun (c, v) ->
                           Bench_json.Arr [ Bench_json.Num c; Bench_json.Num v ])
                in
                Bench_json.Obj
                  [
                    ("cluster", Bench_json.Num (float_of_int id));
                    ("n", Bench_json.Num (float_of_int (Array.length arr)));
                    ("points", Bench_json.Arr points);
                  ]
              in
              [
                ("iter", Bench_json.Num (float_of_int iter));
                ("clusters", Bench_json.Num (float_of_int k_live));
                ("churn_rate", Bench_json.Num churn);
                ("mean_cluster_age", Bench_json.Num mean_age);
                ("mean_intercluster_kl", Bench_json.Num mean_kl);
                ("mean_member_score", Bench_json.Num mean_score);
                ("score_sketches", Bench_json.Arr (List.map sketch live_scores));
              ]);
        Some
          {
            churn_rate = churn;
            mean_cluster_age = mean_age;
            mean_intercluster_kl = mean_kl;
            mean_member_score = mean_score;
            scored_members;
          }
      end
    in
    Log.debug (fun m ->
        m
          "iter %d: new=%d consolidated=%d clusters=%d unclustered=%d t=%.4g changes=%d \
           scored=%d joined=%d wasted=%.3f"
          iter (List.length fresh) dropped (List.length !clusters) unclustered_now
          (Threshold.linear_t threshold) changes census.pairs_scored census.pairs_joined
          (wasted_pair_ratio census));
    history :=
      {
        iteration = iter;
        new_clusters = List.length fresh;
        consolidated = dropped;
        clusters = List.length !clusters;
        unclustered = unclustered_now;
        threshold = Threshold.linear_t threshold;
        membership_changes = changes;
        census;
        timings =
          (if Obs.Metrics.is_enabled () then
             Some
               {
                 generation_s = phase_s.(0);
                 reclustering_s = phase_s.(1);
                 consolidation_s = phase_s.(2);
                 threshold_s = phase_s.(3);
                 convergence_s = phase_s.(4);
               }
           else None);
        drift;
      }
      :: !history;
    if stable then converged := true
  done;
  Obs.Metrics.set g_clusters (float_of_int (List.length !clusters));
  Obs.Metrics.set g_final_t (Threshold.linear_t threshold);
  let pst_stats =
    Array.of_list (List.map (fun cl -> (Cluster.id cl, Pst.stats (Cluster.pst cl))) !clusters)
  in
  if Obs.Metrics.is_enabled () then begin
    Obs.Metrics.incr ~by:n m_sequences;
    Obs.Metrics.incr ~by:(Seq_database.total_symbols db) m_symbols;
    Obs.Metrics.observe h_run_seconds (Timer.span_s run_t0 (Timer.now_ns ()));
    let nodes = Array.fold_left (fun acc (_, (st : Pst.stats)) -> acc + st.nodes) 0 pst_stats in
    let words =
      Array.fold_left (fun acc (_, (st : Pst.stats)) -> acc + st.approx_bytes) 0 pst_stats
      / (Sys.word_size / 8)
    in
    Obs.Metrics.incr ~by:nodes m_pst_nodes_built;
    Obs.Metrics.incr ~by:words m_pst_words_built;
    Obs.Metrics.set g_pst_nodes (float_of_int nodes);
    Obs.Metrics.set g_pst_words (float_of_int words)
  end;
  Log.info (fun m ->
      m "done: %d clusters in %d iterations (final t = %.4g)" (List.length !clusters)
        !iterations (Threshold.linear_t threshold));
  let outliers =
    List.filter (fun i -> !assignments.(i) = []) (List.init n Fun.id)
  in
  if Obs.Journal.is_enabled () then begin
    Obs.Journal.emit "run.end" (fun () ->
        [
          ("clusters", Bench_json.Num (float_of_int (List.length !clusters)));
          ("iterations", Bench_json.Num (float_of_int !iterations));
          ("final_t", Bench_json.Num (Threshold.linear_t threshold));
          ("outliers", Bench_json.Num (float_of_int (List.length outliers)));
        ]);
    (* A run boundary is a natural sync point for offline readers. *)
    Obs.Journal.flush ()
  end;
  {
    clusters =
      Array.of_list
        (List.map
           (fun cl -> (Cluster.id cl, Array.of_list (Bitset.to_list (Cluster.members cl))))
           !clusters);
    assignments = !assignments;
    best = !best;
    outliers;
    n_clusters = List.length !clusters;
    final_t = Threshold.linear_t threshold;
    iterations = !iterations;
    history = List.rev !history;
    pst_stats;
    models =
      Array.of_list (List.map (fun cl -> (Cluster.id cl, Cluster.pst cl)) !clusters);
  }
