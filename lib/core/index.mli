(** Sketch-gated candidate index for the reclustering scan.

    The all-pairs scan scores every sequence against every live cluster
    each iteration. Most of those pairs are hopeless: the sequence
    shares almost no deep context with the cluster's PST and will come
    nowhere near the similarity threshold. This module prices that
    intuition into a cheap gate, in the spirit of ALFATClust's
    Mash-sketch [--filter] pre-filter:

    - each {e sequence} gets a bottom-k minhash sketch of its distinct
      hashed q-grams ([q = 3]), computed once per run;
    - each {e cluster} gets a Bloom bitmap over the hashes of its PST's
      {e active contexts} — depth-[q] nodes whose count meets the
      significance threshold — rebuilt lazily whenever the PST grows
      (see [Cluster.sketch]);
    - a (sequence, cluster) pair is scored only when at least
      [ratio · |sketch|] of the sequence's sketch hashes hit the
      cluster's bitmap, or when one of the conservative bypasses below
      applies.

    Bypasses (gate admits unconditionally): the sequence was a member of
    the cluster at iteration start (membership exits must stay exact);
    the sequence sketch has fewer than [min_seq_hashes] grams; the
    cluster has fewer than {!min_cluster_contexts} active depth-[q]
    contexts (young or shallow model — its similarity is dominated by
    shorter contexts the bitmap cannot see); the PST depth bound is
    below [q]; the ratio is [0]. Bloom collisions can only {e admit}
    extra pairs, never wrongly prune.

    The gate is {e opt-in}: the runtime ratio defaults to [0], so out of
    the box only the exact score-column cache half of the index runs
    (see DESIGN.md §12). The gate's evidence is incomplete by
    construction — similarity mass that flows through depth-1/2 backoff
    contexts is invisible to a depth-[q] bitmap, and measured workloads
    exist where a genuinely similar sequence shares {e no} sampled deep
    gram with a rich model (150+ active contexts) and would be wrongly
    pruned at any positive ratio. Pass [--index-ratio] only after
    checking a corpus sample with the [cluseq check] oracle.

    Global on/off and ratio knobs follow the [Psa.enabled] escape-hatch
    pattern and are wired to [--no-index] / [--index-ratio]. *)

val q : int
(** Gram length used by the index (3). *)

val max_seq_hashes : int
(** Bottom-k size of per-sequence sketches (64). *)

val min_seq_hashes : int
(** Sequences with fewer distinct grams than this are never gated (8). *)

val min_cluster_contexts : int
(** Clusters with fewer active depth-[q] contexts than this get the
    {!empty} (admit-everything) sketch (32): a sparse bitmap is no
    evidence of absence, because similarity against such a model is
    dominated by the shorter contexts the bitmap cannot see. *)

val default_ratio : float
(** Recommended shared-hash-ratio cutoff for an explicit opt-in (0.3) —
    the value the fuzz oracle and the docs' [--index-ratio] examples
    use. Not the runtime default: {!ratio} starts at [0]. *)

val enabled : unit -> bool
(** Whether the index is allowed at all (default [true]). *)

val set_enabled : bool -> unit
(** Global escape hatch ([--no-index] sets [false]). *)

val ratio : unit -> float
(** Current shared-hash-ratio cutoff in [\[0, 1\]]; [0] (the default)
    disables the heuristic gate, leaving only the exact cache. *)

val set_ratio : float -> unit
(** Raises [Invalid_argument] outside [\[0, 1\]] (or non-finite). *)

val sketch_of_sequence : Sequence.t -> int array
(** Bottom-k sketch of a sequence (sorted distinct mixed hashes). Pure
    and deterministic — safe to fill in parallel. *)

type cluster_sketch
(** Bloom bitmap over a cluster PST's active depth-[q] contexts. *)

val empty : cluster_sketch
(** The sketch that admits everything. *)

val is_empty : cluster_sketch -> bool

val of_pst : Pst.t -> cluster_sketch
(** Build from a PST's current significant depth-[q] nodes. Returns
    {!empty} when the tree's [max_depth < q] or fewer than
    {!min_cluster_contexts} contexts are active. Deterministic for a
    given tree state. *)

val admit : int array -> cluster_sketch -> ratio:float -> bool
(** [admit seq_sketch cluster_sketch ~ratio] — should this pair be
    scored? Early-exits both ways; pure. *)

val record_false_negatives : int -> unit
(** Bump the [cluseq.index.false_negatives] counter (called by the
    check oracle when a gated run diverges from the full scan). *)
