(** A sequence cluster: a probabilistic suffix tree modeling the cluster's
    CPD plus a member bitset over sequence ids (paper Defn. 2.1). *)

type t
(** A mutable cluster. *)

val create : id:int -> ?born:int -> capacity:int -> Pst.config -> Sequence.t -> t
(** [create ~id ~capacity cfg seed] is a fresh cluster initialized from one
    seed sequence (paper Sec. 4.1): its PST is built from the seed and the
    seed is not yet recorded as a member (membership is decided by the
    reclustering pass). [capacity] is the database size, fixing the member
    bitset width. [born] (default 0) records the iteration that seeded the
    cluster, for the drift telemetry's age histogram. *)

val id : t -> int
(** Stable identifier assigned at creation. *)

val born : t -> int
(** Iteration at which the cluster was seeded (0 for initial clusters). *)

val pst : t -> Pst.t
(** The cluster's probabilistic suffix tree. *)

val members : t -> Bitset.t
(** The member set (shared, mutable through {!add_member} / {!clear}). *)

val size : t -> int
(** Number of members. *)

val mem : t -> int -> bool
(** Membership test by sequence id. *)

val add_member : t -> int -> unit
(** Record a sequence id as a member. *)

val clear_members : t -> unit
(** Empty the member set (start of a reclustering pass); the PST is kept. *)

val compile : t -> unit
(** Build (and cache) the {!Psa.t} scoring automaton for the cluster's
    current PST, if not already cached and {!Psa.enabled}. Called on the
    main domain at the start of every read-only scoring sweep; any later
    {!absorb} drops the cache, so the automaton can never go stale.
    Idempotent and cheap when the cache is already present. An actual
    (re)build journals a [cluster.froze] event when {!Obs.Journal} is
    enabled. *)

val sketch : t -> Index.cluster_sketch
(** The candidate-index bitmap for the cluster's current PST
    ({!Index.of_pst}), cached with the same lifecycle as {!compile}:
    built lazily on the main domain at pass start, dropped by any
    {!absorb} that grows the tree, so it can never go stale. *)

val score_cache : t -> Similarity.result array option
(** The previous reclustering pass's score column against this cluster
    (index [sid] → that sequence's {!Similarity.result}), if the PST is
    unchanged since it was computed. Because scoring is deterministic,
    a cached entry is bit-identical to a fresh evaluation against the
    current model — the candidate index reuses it instead of rescoring.
    Same lifecycle as {!compile}/{!sketch}: any {!absorb} that grows
    the tree drops it. *)

val set_score_cache : t -> Similarity.result array -> unit
(** Install the score column computed by a just-finished pass. Callers
    must only do this when the PST was not mutated during the pass. *)

val similarity : t -> log_background:float array -> Sequence.t -> Similarity.result
(** {!Similarity.score} against this cluster's PST — via the compiled
    automaton when one is cached ({!compile}), via the tree walk
    otherwise. The two paths are bit-for-bit equal, so the choice is
    invisible to callers. *)

val similarity_batch :
  t ->
  log_background:float array ->
  batch:Psa.batch ->
  Sequence.t array ->
  Similarity.result array
(** Score a whole block against this cluster in one pass — the batched
    kernel ({!Similarity.score_batch}) over the cached automaton when
    one is present, a per-sequence tree walk otherwise (the [--no-psa]
    fallback). Bit-for-bit equal to mapping {!similarity} over the
    block either way. [batch] is the caller's reusable scratch (one per
    worker domain). *)

val absorb : t -> seq_id:int -> Sequence.t -> Similarity.result -> unit
(** [absorb t ~seq_id s r] adds [seq_id] as a member and inserts the
    maximizing segment [r.seg_lo .. r.seg_hi] of [s] into the PST
    (paper Sec. 4.2/4.4: only the best segment updates the tree). *)
