(* Compiling a frozen PST into a flat probabilistic suffix automaton.

   The tree's *active* nodes — the root plus every node whose whole root
   path has count >= significance — are exactly the nodes
   Pst.prediction_node can return: the greedy walk descends only into
   significant children, and since a node's tree ancestors are the
   shorter suffixes of its context (each PST edge prepends one *older*
   symbol), "reachable by the walk" = "every ancestor significant".
   The prediction for a history h is therefore the longest active
   suffix of h, capped at max_depth.

   Tracking "longest suffix of the input that belongs to a given string
   set" online is the Aho–Corasick problem. We build the AC automaton
   of the active labels written oldest-symbol-first: trie edges append
   one *newer* symbol, so reading the input left to right walks the
   trie, and the trie's inherent prefix-closure supplies precisely the
   extra states needed when the active set is not closed under dropping
   the newest symbol. That closure matters: on a *pruned* tree, a
   context w may be gone while its extension w·a survives (w lives in a
   different subtree than w·a, so subtree pruning can remove one
   without the other), and then the prediction depth jumps by more than
   one — a state per active node with a parent-recursion transition
   table gets this wrong, which is exactly what the fuzz oracle caught.
   On a never-pruned tree counts are monotone (every occurrence of w·a
   ending at position e contains an occurrence of w ending at e-1), the
   closure adds nothing, and states = active nodes.

   Failure links and the dense transition table come from the standard
   BFS (fail(child of u via a) = trans(fail u, a); trans(u, a) = child
   or trans(fail u, a)). Each state's *prediction node* is the deepest
   active suffix of its label — its own tree node when the label is an
   active context, else the failure chain's prediction (any active
   proper suffix is itself a trie node, hence a suffix of the failure
   target's label). Emissions are then precomputed with
   Pst.next_log_prob itself, so the stored floats are bit-equal to what
   the tree walk computes at score time.

   The finished tables live in Bigarrays, i.e. off the OCaml heap: the
   GC neither scans nor moves them, a compiled automaton is one flat
   malloc'd block per table, and Par worker domains read them without
   copies or cross-domain write traffic. A float64 Bigarray stores the
   exact IEEE double written into it, so off-heap storage changes no
   bit of any emission the tree walk would produce. *)

let m_compilations = Obs.Metrics.counter "pst.compilations"
let m_compiled_states = Obs.Metrics.counter "pst.compiled_states"
let m_table_bytes = Obs.Metrics.counter "pst.compiled_table_bytes"
let h_compile_seconds = Obs.Metrics.histogram "similarity.compile_seconds"

type trans_table = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type emit_table = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  alphabet_size : int;
  n_states : int;
  trans : trans_table; (* state * n + sym -> next state *)
  emit : emit_table; (* state * n + sym -> log P(sym | prediction ctx) *)
  pred_depth : int array; (* state -> depth of its prediction node *)
}

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let alphabet_size t = t.alphabet_size
let n_states t = t.n_states
let transitions t = t.trans
let emissions t = t.emit
let prediction_depth t i = t.pred_depth.(i)
let step t state sym = Bigarray.Array1.get t.trans ((state * t.alphabet_size) + sym)
let emission t state sym = Bigarray.Array1.get t.emit ((state * t.alphabet_size) + sym)

let table_bytes t =
  (* 8 bytes per cell in both tables (int and float64 elements). *)
  8 * ((Bigarray.Array1.dim t.trans + Bigarray.Array1.dim t.emit) + Array.length t.pred_depth)

let compile pst =
  let t0 = if Obs.Metrics.is_enabled () then Timer.now_ns () else 0L in
  let cfg = Pst.config pst in
  let n = cfg.Pst.alphabet_size in
  let sigma = cfg.Pst.significance in
  (* --- 1. trie of active labels, oldest symbol first (growable) --- *)
  let cap = ref 64 in
  let children = ref (Array.make (!cap * n) (-1)) in
  let anode = ref (Array.make !cap None) in
  let count = ref 1 in
  let grow () =
    let cap' = 2 * !cap in
    let c' = Array.make (cap' * n) (-1) in
    Array.blit !children 0 c' 0 (!cap * n);
    children := c';
    let a' = Array.make cap' None in
    Array.blit !anode 0 a' 0 !cap;
    anode := a';
    cap := cap'
  in
  let add_child u a =
    let c = !children.((u * n) + a) in
    if c >= 0 then c
    else begin
      if !count >= !cap then grow ();
      let id = !count in
      incr count;
      !children.((u * n) + a) <- id;
      id
    end
  in
  (* DFS over active tree nodes. [path] holds the PST edge symbols with
     the most recent edge at the head; PST edges prepend older symbols,
     so the head is the *oldest* context symbol — the trie consumes the
     list front to back. *)
  let rec dfs node path =
    let u = List.fold_left add_child 0 path in
    !anode.(u) <- Some node;
    List.iter
      (fun (s, child) -> if Pst.node_count child >= sigma then dfs child (s :: path))
      (Pst.node_children node)
  in
  dfs (Pst.root pst) [];
  let n_states = !count in
  let children = !children and anode = !anode in
  (* --- 2. failure links + dense transitions, BFS (parents first) --- *)
  let trans = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (n_states * n) in
  Bigarray.Array1.fill trans 0;
  let fail = Array.make n_states 0 in
  let pred = Array.make n_states (Pst.root pst) in
  (match anode.(0) with Some root -> pred.(0) <- root | None -> ());
  let q = Queue.create () in
  let discover c failure =
    fail.(c) <- failure;
    (pred.(c) <- (match anode.(c) with Some nd -> nd | None -> pred.(failure)));
    Queue.add c q
  in
  for a = 0 to n - 1 do
    let c = children.(a) in
    if c >= 0 then begin
      discover c 0;
      Bigarray.Array1.set trans a c
    end
  done;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let base = u * n and fbase = fail.(u) * n in
    for a = 0 to n - 1 do
      let c = children.(base + a) in
      if c >= 0 then begin
        discover c (Bigarray.Array1.get trans (fbase + a));
        Bigarray.Array1.set trans (base + a) c
      end
      else Bigarray.Array1.set trans (base + a) (Bigarray.Array1.get trans (fbase + a))
    done
  done;
  (* --- 3. emissions via the tree's own smoothing: bit-equal floats --- *)
  let emit = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (n_states * n) in
  let pred_depth = Array.make n_states 0 in
  for u = 0 to n_states - 1 do
    let nd = pred.(u) in
    pred_depth.(u) <- Pst.node_depth nd;
    let base = u * n in
    for a = 0 to n - 1 do
      Bigarray.Array1.set emit (base + a) (Pst.next_log_prob pst nd a)
    done
  done;
  Obs.Metrics.incr m_compilations;
  Obs.Metrics.incr ~by:n_states m_compiled_states;
  let t = { alphabet_size = n; n_states; trans; emit; pred_depth } in
  Obs.Metrics.incr ~by:(table_bytes t) m_table_bytes;
  if Obs.Metrics.is_enabled () then
    Obs.Metrics.observe h_compile_seconds (Timer.span_s t0 (Timer.now_ns ()));
  t

(* --- batch scoring ---------------------------------------------------- *)

(* Reusable scratch for [score_batch]: one slot per lane (= sequence in
   the block) across five parallel columns. All columns are plain
   pre-sized OCaml arrays — the float columns are unboxed float arrays —
   so a scan performs zero heap allocation per symbol or per lane; the
   only per-call allocation is whatever the caller does with the
   results. *)
type batch = {
  mutable cap : int;
  mutable acc_y : float array; (* Kadane running-segment accumulator *)
  mutable acc_z : float array; (* best log-similarity so far (output) *)
  mutable seg_start : int array; (* start of the running segment *)
  mutable lo : int array; (* winning segment bounds (outputs) *)
  mutable hi : int array;
}

let batch_create ?(capacity = 64) () =
  let cap = max 1 capacity in
  {
    cap;
    acc_y = Array.make cap neg_infinity;
    acc_z = Array.make cap neg_infinity;
    seg_start = Array.make cap 0;
    lo = Array.make cap 0;
    hi = Array.make cap 0;
  }

let batch_capacity b = b.cap

let ensure_capacity b n =
  if n > b.cap then begin
    let cap = max n (2 * b.cap) in
    b.cap <- cap;
    b.acc_y <- Array.make cap neg_infinity;
    b.acc_z <- Array.make cap neg_infinity;
    b.seg_start <- Array.make cap 0;
    b.lo <- Array.make cap 0;
    b.hi <- Array.make cap 0
  end

let batch_log_sim b j = b.acc_z.(j)
let batch_seg_lo b j = b.lo.(j)
let batch_seg_hi b j = b.hi.(j)

(* One automaton over a block of sequences, lane-major: each lane is
   scanned to completion with the automaton state in an immediate
   (unallocated) ref and the Kadane floats in the unboxed scratch
   columns above — the whole block costs zero heap words per symbol,
   while each sequence streams through cache linearly exactly like the
   serial scan. (A position-major variant — all lanes advancing one
   symbol per step against a state column — was measured ~25% slower:
   automaton states diverge across lanes within a few symbols, so
   interleaving buys no table-row reuse and pays a lane gather per
   symbol.)

   Per lane, the float operations are the ones [Similarity.score_psa]
   performs, on the same values in the same order — lanes never interact
   — so every output is bit-for-bit what the serial scan returns (the
   QCheck properties and fuzz check #6 enforce exact equality). *)
let score_batch t ~log_background ~batch seqs =
  let b = Array.length seqs in
  ensure_capacity batch b;
  let n = t.alphabet_size in
  if Array.length log_background < n then
    invalid_arg "Psa.score_batch: log_background shorter than the alphabet";
  let acc_y = batch.acc_y
  and acc_z = batch.acc_z
  and seg_start = batch.seg_start
  and lo = batch.lo
  and hi = batch.hi in
  let trans = t.trans and emit = t.emit in
  for j = 0 to b - 1 do
    let s = Array.unsafe_get seqs j in
    let l = Array.length s in
    acc_y.(j) <- neg_infinity;
    acc_z.(j) <- neg_infinity;
    seg_start.(j) <- 0;
    (* Empty lanes keep the [empty_result] sentinel bounds; non-empty
       lanes start at [0, 0] exactly like the serial scan. *)
    if l = 0 then begin
      lo.(j) <- -1;
      hi.(j) <- -1
    end
    else begin
      lo.(j) <- 0;
      hi.(j) <- 0;
      let state = ref 0 in
      for i = 0 to l - 1 do
        let sym = Array.unsafe_get s i in
        if sym < 0 || sym >= n then
          invalid_arg "Psa.score_batch: symbol outside the compiled alphabet";
        let idx = (!state * n) + sym in
        let x =
          Bigarray.Array1.unsafe_get emit idx -. Array.unsafe_get log_background sym
        in
        let y = Array.unsafe_get acc_y j in
        let extend = y >= 0.0 in
        let y' = if extend then y +. x else x in
        let start' = if extend then Array.unsafe_get seg_start j else i in
        state := Bigarray.Array1.unsafe_get trans idx;
        Array.unsafe_set acc_y j y';
        Array.unsafe_set seg_start j start';
        if y' > Array.unsafe_get acc_z j then begin
          Array.unsafe_set acc_z j y';
          Array.unsafe_set lo j start';
          Array.unsafe_set hi j i
        end
      done
    end
  done
