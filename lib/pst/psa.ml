(* Compiling a frozen PST into a flat probabilistic suffix automaton.

   The tree's *active* nodes — the root plus every node whose whole root
   path has count >= significance — are exactly the nodes
   Pst.prediction_node can return: the greedy walk descends only into
   significant children, and since a node's tree ancestors are the
   shorter suffixes of its context (each PST edge prepends one *older*
   symbol), "reachable by the walk" = "every ancestor significant".
   The prediction for a history h is therefore the longest active
   suffix of h, capped at max_depth.

   Tracking "longest suffix of the input that belongs to a given string
   set" online is the Aho–Corasick problem. We build the AC automaton
   of the active labels written oldest-symbol-first: trie edges append
   one *newer* symbol, so reading the input left to right walks the
   trie, and the trie's inherent prefix-closure supplies precisely the
   extra states needed when the active set is not closed under dropping
   the newest symbol. That closure matters: on a *pruned* tree, a
   context w may be gone while its extension w·a survives (w lives in a
   different subtree than w·a, so subtree pruning can remove one
   without the other), and then the prediction depth jumps by more than
   one — a state per active node with a parent-recursion transition
   table gets this wrong, which is exactly what the fuzz oracle caught.
   On a never-pruned tree counts are monotone (every occurrence of w·a
   ending at position e contains an occurrence of w ending at e-1), the
   closure adds nothing, and states = active nodes.

   Failure links and the dense transition table come from the standard
   BFS (fail(child of u via a) = trans(fail u, a); trans(u, a) = child
   or trans(fail u, a)). Each state's *prediction node* is the deepest
   active suffix of its label — its own tree node when the label is an
   active context, else the failure chain's prediction (any active
   proper suffix is itself a trie node, hence a suffix of the failure
   target's label). Emissions are then precomputed with
   Pst.next_log_prob itself, so the stored floats are bit-equal to what
   the tree walk computes at score time. *)

let m_compilations = Obs.Metrics.counter "pst.compilations"
let m_compiled_states = Obs.Metrics.counter "pst.compiled_states"
let h_compile_seconds = Obs.Metrics.histogram "similarity.compile_seconds"

type t = {
  alphabet_size : int;
  n_states : int;
  trans : int array; (* state * n + sym -> next state *)
  emit : float array; (* state * n + sym -> log P(sym | prediction ctx) *)
  pred_depth : int array; (* state -> depth of its prediction node *)
}

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let alphabet_size t = t.alphabet_size
let n_states t = t.n_states
let transitions t = t.trans
let emissions t = t.emit
let prediction_depth t i = t.pred_depth.(i)

let compile pst =
  let t0 = if Obs.Metrics.is_enabled () then Timer.now_ns () else 0L in
  let cfg = Pst.config pst in
  let n = cfg.Pst.alphabet_size in
  let sigma = cfg.Pst.significance in
  (* --- 1. trie of active labels, oldest symbol first (growable) --- *)
  let cap = ref 64 in
  let children = ref (Array.make (!cap * n) (-1)) in
  let anode = ref (Array.make !cap None) in
  let count = ref 1 in
  let grow () =
    let cap' = 2 * !cap in
    let c' = Array.make (cap' * n) (-1) in
    Array.blit !children 0 c' 0 (!cap * n);
    children := c';
    let a' = Array.make cap' None in
    Array.blit !anode 0 a' 0 !cap;
    anode := a';
    cap := cap'
  in
  let add_child u a =
    let c = !children.((u * n) + a) in
    if c >= 0 then c
    else begin
      if !count >= !cap then grow ();
      let id = !count in
      incr count;
      !children.((u * n) + a) <- id;
      id
    end
  in
  (* DFS over active tree nodes. [path] holds the PST edge symbols with
     the most recent edge at the head; PST edges prepend older symbols,
     so the head is the *oldest* context symbol — the trie consumes the
     list front to back. *)
  let rec dfs node path =
    let u = List.fold_left add_child 0 path in
    !anode.(u) <- Some node;
    List.iter
      (fun (s, child) -> if Pst.node_count child >= sigma then dfs child (s :: path))
      (Pst.node_children node)
  in
  dfs (Pst.root pst) [];
  let n_states = !count in
  let children = !children and anode = !anode in
  (* --- 2. failure links + dense transitions, BFS (parents first) --- *)
  let trans = Array.make (n_states * n) 0 in
  let fail = Array.make n_states 0 in
  let pred = Array.make n_states (Pst.root pst) in
  (match anode.(0) with Some root -> pred.(0) <- root | None -> ());
  let q = Queue.create () in
  let discover c failure =
    fail.(c) <- failure;
    (pred.(c) <- (match anode.(c) with Some nd -> nd | None -> pred.(failure)));
    Queue.add c q
  in
  for a = 0 to n - 1 do
    let c = children.(a) in
    if c >= 0 then begin
      discover c 0;
      trans.(a) <- c
    end
  done;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let base = u * n and fbase = fail.(u) * n in
    for a = 0 to n - 1 do
      let c = children.(base + a) in
      if c >= 0 then begin
        discover c trans.(fbase + a);
        trans.(base + a) <- c
      end
      else trans.(base + a) <- trans.(fbase + a)
    done
  done;
  (* --- 3. emissions via the tree's own smoothing: bit-equal floats --- *)
  let emit = Array.make (n_states * n) 0.0 in
  let pred_depth = Array.make n_states 0 in
  for u = 0 to n_states - 1 do
    let nd = pred.(u) in
    pred_depth.(u) <- Pst.node_depth nd;
    let base = u * n in
    for a = 0 to n - 1 do
      emit.(base + a) <- Pst.next_log_prob pst nd a
    done
  done;
  Obs.Metrics.incr m_compilations;
  Obs.Metrics.incr ~by:n_states m_compiled_states;
  if Obs.Metrics.is_enabled () then
    Obs.Metrics.observe h_compile_seconds (Timer.span_s t0 (Timer.now_ns ()));
  { alphabet_size = n; n_states; trans; emit; pred_depth }
