let log_src = Logs.Src.create "pst" ~doc:"Probabilistic suffix tree maintenance"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Hot-path instruments: registered once at module init, each event is a
   single branch while metrics are disabled (see Obs). *)
let m_insertions = Obs.Metrics.counter "pst.insertions"
let m_symbols_inserted = Obs.Metrics.counter "pst.symbols_inserted"
let m_node_creations = Obs.Metrics.counter "pst.node_creations"
let m_prunings = Obs.Metrics.counter "pst.prunings"
let m_nodes_pruned = Obs.Metrics.counter "pst.nodes_pruned"
let m_prediction_lookups = Obs.Metrics.counter "pst.prediction_lookups"

type config = {
  alphabet_size : int;
  max_depth : int;
  significance : int;
  max_nodes : int;
  p_min : float;
  pruning : Pruning.strategy;
}

type node = {
  sym : int; (* edge symbol from parent; -1 at the root *)
  depth : int;
  parent : node option;
  mutable count : int;
  mutable next_total : int;
  next : int Smallmap.t; (* symbol -> C(label · symbol) *)
  children : node Smallmap.t; (* symbol -> child with label symbol·label *)
}

type t = {
  cfg : config;
  root : node;
  mutable n_nodes : int;
  log_uniform : float;
}

let default_config ~alphabet_size =
  {
    alphabet_size;
    max_depth = 10;
    significance = 30;
    max_nodes = 20_000;
    p_min = Float.min 1e-3 (1.0 /. (4.0 *. float_of_int alphabet_size));
    pruning = Pruning.Smallest_count_first;
  }

let make_node ~sym ~depth ~parent =
  { sym; depth; parent; count = 0; next_total = 0; next = Smallmap.create (); children = Smallmap.create () }

let create cfg =
  if cfg.alphabet_size <= 0 then invalid_arg "Pst.create: alphabet_size";
  if cfg.max_depth <= 0 then invalid_arg "Pst.create: max_depth";
  if cfg.significance <= 0 then invalid_arg "Pst.create: significance";
  if cfg.max_nodes < 1 then invalid_arg "Pst.create: max_nodes";
  if cfg.p_min < 0.0 || cfg.p_min *. float_of_int cfg.alphabet_size >= 1.0 then
    invalid_arg "Pst.create: p_min must satisfy 0 <= n*p_min < 1";
  {
    cfg;
    root = make_node ~sym:(-1) ~depth:0 ~parent:None;
    n_nodes = 1;
    log_uniform = -.log (float_of_int cfg.alphabet_size);
  }

let config t = t.cfg
let n_nodes t = t.n_nodes
let total_count t = t.root.count
let root t = t.root
let node_count n = n.count
let node_depth n = n.depth
let is_significant t n = n.depth = 0 || n.count >= t.cfg.significance

(* ------------------------------------------------------------------ *)
(* Pruning (paper Sec. 5.1)                                            *)
(* ------------------------------------------------------------------ *)

let subtree_size n =
  let rec go n acc = Smallmap.fold (fun _ child acc -> go child acc) n.children (acc + 1) in
  go n 0

(* Whether [n] is still reachable from the root: every ancestor must
   still list the next node on the path as its child. Checking only the
   immediate parent is not enough — a pruning pass that already removed
   an ancestor's subtree would otherwise "remove" [n] a second time and
   double-subtract its subtree from [n_nodes]. *)
let rec is_attached n =
  match n.parent with
  | None -> true
  | Some p ->
      (match Smallmap.find_opt p.children n.sym with Some c -> c == n | None -> false)
      && is_attached p

(* Detach [n] from its parent and account for the removed subtree. *)
let detach t n =
  match n.parent with
  | None -> ()
  | Some p ->
      if is_attached n then begin
        Smallmap.remove p.children n.sym;
        let sz = subtree_size n in
        t.n_nodes <- t.n_nodes - sz;
        Obs.Metrics.incr ~by:sz m_nodes_pruned
      end

let all_nodes_below t =
  let acc = ref [] in
  let rec go n = Smallmap.iter (fun _ c -> acc := c :: !acc; go c) n.children in
  go t.root;
  !acc

(* Remove whole subtrees in a given priority order until under [target]. *)
let prune_ordered t target order_key =
  let nodes = all_nodes_below t in
  let arr = Array.of_list nodes in
  let keyed = Array.map (fun n -> (order_key n, n)) arr in
  Array.sort (fun (a, _) (b, _) -> compare a b) keyed;
  let i = ref 0 in
  while t.n_nodes > target && !i < Array.length keyed do
    let _, n = keyed.(!i) in
    detach t n;
    incr i
  done

let raw_prob n sym =
  if n.next_total = 0 then None
  else Some (float_of_int (Smallmap.get_int n.next sym) /. float_of_int n.next_total)

(* L1 distance between a node's conditional distribution and its parent's:
   small distance = "expected" probability vector (strategy 3). *)
let divergence_from_parent t n =
  match n.parent with
  | None -> infinity
  | Some p ->
      let acc = ref 0.0 in
      for sym = 0 to t.cfg.alphabet_size - 1 do
        let pn = match raw_prob n sym with None -> 0.0 | Some x -> x in
        let pp = match raw_prob p sym with None -> 0.0 | Some x -> x in
        acc := !acc +. Float.abs (pn -. pp)
      done;
      !acc

let prune_expected_vector t target =
  (* Phase 1: drop insignificant nodes, smallest count first. *)
  prune_ordered t target (fun n ->
      if n.count < t.cfg.significance then (0, n.count, -n.depth) else (1, max_int, 0));
  (* Phase 2: while still over budget, peel leaves whose distribution is
     closest to their parent's. Chunked re-scans keep this near O(n log n). *)
  while t.n_nodes > target do
    let leaves =
      List.filter (fun n -> Smallmap.length n.children = 0) (all_nodes_below t)
    in
    match leaves with
    | [] -> (* only the root remains *) raise Exit
    | _ ->
        let keyed =
          List.map (fun n -> (divergence_from_parent t n, n)) leaves
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let excess = t.n_nodes - target in
        List.iteri (fun i (_, n) -> if i < excess then detach t n) keyed
  done

let prune_to t target =
  let target = max 1 target in
  if t.n_nodes > target then begin
    Obs.Metrics.incr m_prunings;
    let before = t.n_nodes in
    (match t.cfg.pruning with
    | Pruning.Smallest_count_first -> prune_ordered t target (fun n -> (n.count, -n.depth))
    | Pruning.Longest_label_first -> prune_ordered t target (fun n -> (-n.depth, n.count))
    | Pruning.Expected_vector_first -> ( try prune_expected_vector t target with Exit -> ()));
    Log.debug (fun m ->
        m "pruned %d -> %d nodes (target %d, %s)" before t.n_nodes target
          (Pruning.to_string t.cfg.pruning))
  end

let maybe_prune t =
  if t.n_nodes > t.cfg.max_nodes then
    (* Prune to 80% of the budget so insertion does not re-trigger at once. *)
    prune_to t (max 1 (t.cfg.max_nodes * 4 / 5))

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

let child_or_create t parent sym =
  let i = Smallmap.find_idx parent.children sym in
  if i >= 0 then Smallmap.value_at parent.children i
  else begin
    let n = make_node ~sym ~depth:(parent.depth + 1) ~parent:(Some parent) in
    Smallmap.set parent.children sym n;
    t.n_nodes <- t.n_nodes + 1;
    Obs.Metrics.incr m_node_creations;
    n
  end

let bump node next_sym =
  node.count <- node.count + 1;
  if next_sym >= 0 then begin
    Smallmap.add_int node.next next_sym 1;
    node.next_total <- node.next_total + 1
  end

let insert_segment t s ~lo ~hi =
  let len = Array.length s in
  if lo < 0 || hi >= len || lo > hi then invalid_arg "Pst.insert_segment";
  Obs.Metrics.incr m_insertions;
  Obs.Metrics.incr ~by:(hi - lo + 1) m_symbols_inserted;
  for e = lo to hi do
    let next_sym = if e < hi then s.(e + 1) else -1 in
    bump t.root next_sym;
    (* Walk the reversed context s.(e), s.(e-1), ... down to [max_depth]. *)
    let node = ref t.root in
    let d = ref 0 in
    let max_d = min t.cfg.max_depth (e - lo + 1) in
    while !d < max_d do
      node := child_or_create t !node s.(e - !d);
      bump !node next_sym;
      incr d
    done
  done;
  maybe_prune t

let insert_sequence t s =
  if Array.length s > 0 then insert_segment t s ~lo:0 ~hi:(Array.length s - 1)

(* ------------------------------------------------------------------ *)
(* Prediction                                                          *)
(* ------------------------------------------------------------------ *)

let prediction_node t s ~lo ~pos =
  (* Descend along s.(pos-1), s.(pos-2), ..., only into significant nodes. *)
  Obs.Metrics.incr m_prediction_lookups;
  let node = ref t.root in
  let d = ref 0 in
  let max_d = min t.cfg.max_depth (pos - lo) in
  let continue_ = ref true in
  while !continue_ && !d < max_d do
    let sym = s.(pos - 1 - !d) in
    let i = Smallmap.find_idx !node.children sym in
    if i >= 0 then begin
      let child = Smallmap.value_at !node.children i in
      if child.count >= t.cfg.significance then begin
        node := child;
        incr d
      end
      else continue_ := false
    end
    else continue_ := false
  done;
  !node

let next_log_prob t node sym =
  if sym < 0 || sym >= t.cfg.alphabet_size then invalid_arg "Pst.next_log_prob";
  if node.next_total = 0 then t.log_uniform
  else begin
    let raw = float_of_int (Smallmap.get_int node.next sym) /. float_of_int node.next_total in
    let n = float_of_int t.cfg.alphabet_size in
    let p =
      if t.cfg.p_min > 0.0 then ((1.0 -. (n *. t.cfg.p_min)) *. raw) +. t.cfg.p_min else raw
    in
    if p <= 0.0 then neg_infinity else log p
  end

let log_prob t s ~lo ~pos = next_log_prob t (prediction_node t s ~lo ~pos) s.(pos)

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let find_node t label =
  (* The node labeled s_j..s_{i-1} hangs off the path s_{i-1}, ..., s_j. *)
  let len = Array.length label in
  let rec go node d =
    if d = len then Some node
    else
      match Smallmap.find_opt node.children label.(len - 1 - d) with
      | None -> None
      | Some child -> go child (d + 1)
  in
  go t.root 0

let next_count n sym = Smallmap.get_int n.next sym
let next_total n = n.next_total

let node_children n =
  List.rev (Smallmap.fold (fun sym child acc -> (sym, child) :: acc) n.children [])

let next_distribution t n =
  Array.init t.cfg.alphabet_size (fun sym -> exp (next_log_prob t n sym))

let iter_nodes t f =
  let rec go n =
    f n;
    Smallmap.iter (fun _ c -> go c) n.children
  in
  go t.root

let node_label _t n =
  (* Climbing to the root yields the path in root-to-node order, which
     spells the label reversed (the tree is built on reversed contexts);
     reverse once more for the original symbol order. *)
  let rec go n acc = match n.parent with None -> acc | Some p -> go p (n.sym :: acc) in
  List.rev (go n [])

(* Deep structural copy: same counts, same Smallmap storage order, so
   every downstream operation (scoring, pruning scans) behaves
   bit-identically on the copy — the property the Check oracles rely on
   when snapshotting cluster models. *)
let copy t =
  let rec copy_node parent n =
    let n' =
      { sym = n.sym; depth = n.depth; parent; count = n.count; next_total = n.next_total;
        next = Smallmap.copy n.next; children = Smallmap.create () }
    in
    Smallmap.iter (fun sym child -> Smallmap.set n'.children sym (copy_node (Some n') child)) n.children;
    n'
  in
  { cfg = t.cfg; root = copy_node None t.root; n_nodes = t.n_nodes; log_uniform = t.log_uniform }

(* Counts-addition merge: a PST built from database A merged with one
   built from database B has exactly the counts of a PST built from
   A @ B (up to pruning), because every field is a sum of per-position
   observations. Smallmap keeps keys sorted, so the merged structure is
   independent of argument order — merge is commutative and associative
   under [equal_structure] as long as neither side has pruned. *)
let merge a b =
  if a.cfg <> b.cfg then invalid_arg "Pst.merge: configs differ";
  let t = copy a in
  let rec add dst src =
    dst.count <- dst.count + src.count;
    dst.next_total <- dst.next_total + src.next_total;
    Smallmap.iter (fun sym c -> Smallmap.add_int dst.next sym c) src.next;
    Smallmap.iter
      (fun sym child ->
        let dst_child =
          match Smallmap.find_opt dst.children sym with
          | Some c -> c
          | None ->
              let c = make_node ~sym ~depth:(dst.depth + 1) ~parent:(Some dst) in
              Smallmap.set dst.children sym c;
              t.n_nodes <- t.n_nodes + 1;
              Obs.Metrics.incr m_node_creations;
              c
        in
        add dst_child child)
      src.children
  in
  add t.root b.root;
  maybe_prune t;
  t

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let format_version = 1

(* The writer targets an abstract string sink and the reader an abstract
   line source, so the same (versioned) format serves channels and
   in-memory strings alike. *)
let write_to emit t =
  let c = t.cfg in
  emit (Printf.sprintf "pst %d\n" format_version);
  emit
    (Printf.sprintf "config %d %d %d %d %.17g %s\n" c.alphabet_size c.max_depth c.significance
       c.max_nodes c.p_min (Pruning.to_string c.pruning));
  (* One line per node: the root-to-node edge path (reversed label),
     count, and next-symbol counters. Parents precede children in DFS
     order, so reconstruction can create nodes along the path. *)
  let rec emit_node path node =
    let buf = Buffer.create 64 in
    Buffer.add_string buf
      (Printf.sprintf "node %s %d"
         (if path = [] then "-" else String.concat "," (List.rev_map string_of_int path))
         node.count);
    Smallmap.iter (fun sym cnt -> Buffer.add_string buf (Printf.sprintf " %d:%d" sym cnt)) node.next;
    Buffer.add_char buf '\n';
    emit (Buffer.contents buf);
    Smallmap.iter (fun sym child -> emit_node (sym :: path) child) node.children
  in
  emit_node [] t.root;
  emit "end\n"

let to_channel oc t = write_to (output_string oc) t

let to_string t =
  let buf = Buffer.create 1024 in
  write_to (Buffer.add_string buf) t;
  Buffer.contents buf

let read_from next_line =
  let fail msg = failwith ("Pst.of_channel: " ^ msg) in
  let line () = match next_line () with Some l -> l | None -> fail "truncated" in
  (match String.split_on_char ' ' (line ()) with
  | [ "pst"; v ] when int_of_string_opt v = Some format_version -> ()
  | _ -> fail "bad header or unsupported version");
  let t =
    match String.split_on_char ' ' (line ()) with
    | [ "config"; n; d; c; m; pmin; strategy ] -> (
        match
          ( int_of_string_opt n, int_of_string_opt d, int_of_string_opt c, int_of_string_opt m,
            float_of_string_opt pmin, Pruning.of_string strategy )
        with
        | Some n, Some d, Some c, Some m, Some pmin, Some strategy ->
            create
              { alphabet_size = n; max_depth = d; significance = c; max_nodes = m;
                p_min = pmin; pruning = strategy }
        | _ -> fail "bad config")
    | _ -> fail "bad config line"
  in
  (* Walk a root-to-node edge path, creating nodes without counting. *)
  let node_at path =
    List.fold_left
      (fun node sym ->
        match Smallmap.find_opt node.children sym with
        | Some child -> child
        | None ->
            let child = make_node ~sym ~depth:(node.depth + 1) ~parent:(Some node) in
            Smallmap.set node.children sym child;
            t.n_nodes <- t.n_nodes + 1;
            child)
      t.root path
  in
  let finished = ref false in
  while not !finished do
    match String.split_on_char ' ' (line ()) with
    | [ "end" ] -> finished := true
    | "node" :: path :: count :: next ->
        let path_syms =
          if path = "-" then []
          else
            List.map
              (fun x -> match int_of_string_opt x with Some v -> v | None -> fail "bad path")
              (String.split_on_char ',' path)
        in
        let node = node_at path_syms in
        (match int_of_string_opt count with
        | Some c -> node.count <- c
        | None -> fail "bad count");
        List.iter
          (fun pair ->
            match String.split_on_char ':' pair with
            | [ sym; cnt ] -> (
                match (int_of_string_opt sym, int_of_string_opt cnt) with
                | Some sym, Some cnt ->
                    Smallmap.set node.next sym cnt;
                    node.next_total <- node.next_total + cnt
                | _ -> fail "bad next entry")
            | _ -> fail "bad next entry")
          next
    | _ -> fail "unexpected line"
  done;
  t

let of_channel ic = read_from (fun () -> try Some (input_line ic) with End_of_file -> None)

let of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  read_from (fun () ->
      match !lines with
      | [] -> None
      | l :: rest ->
          lines := rest;
          Some l)

let equal_structure a b =
  let rec eq na nb =
    na.count = nb.count && na.next_total = nb.next_total
    && Smallmap.keys na.next = Smallmap.keys nb.next
    && Array.for_all (fun sym -> Smallmap.get_int na.next sym = Smallmap.get_int nb.next sym)
         (Smallmap.keys na.next)
    && Smallmap.keys na.children = Smallmap.keys nb.children
    && Array.for_all
         (fun sym ->
           match (Smallmap.find_opt na.children sym, Smallmap.find_opt nb.children sym) with
           | Some ca, Some cb -> eq ca cb
           | _ -> false)
         (Smallmap.keys na.children)
  in
  a.cfg = b.cfg && eq a.root b.root

let pp ?(max_depth = 3) ?(min_count = 1) ~symbol fmt t =
  let rec render node =
    if node.depth <= max_depth && (node.depth = 0 || node.count >= min_count) then begin
      let label = node_label t node in
      Format.fprintf fmt "%s" (String.make (2 * node.depth) ' ');
      if node.depth = 0 then Format.fprintf fmt "(root)"
      else List.iter (fun sym -> symbol fmt sym) label;
      Format.fprintf fmt "  C=%d%s" node.count (if is_significant t node then "*" else "");
      if node.next_total > 0 then begin
        (* Show the conditional distribution, most probable symbols first. *)
        let entries =
          Smallmap.fold (fun sym c acc -> (c, sym) :: acc) node.next []
          |> List.sort (fun a b -> compare b a)
        in
        Format.fprintf fmt "  P(next):";
        List.iteri
          (fun i (c, sym) ->
            if i < 4 then
              Format.fprintf fmt " %a=%.3f" symbol sym
                (float_of_int c /. float_of_int node.next_total))
          entries
      end;
      Format.fprintf fmt "@.";
      Smallmap.iter (fun _ child -> render child) node.children
    end
  in
  render t.root

type stats = {
  nodes : int;
  significant_nodes : int;
  max_depth_used : int;
  approx_bytes : int;
}

let stats t =
  let nodes = ref 0 and sig_nodes = ref 0 and maxd = ref 0 and bytes = ref 0 in
  iter_nodes t (fun n ->
      incr nodes;
      if is_significant t n then incr sig_nodes;
      if n.depth > !maxd then maxd := n.depth;
      (* record fields + two smallmaps (2 arrays each) *)
      bytes := !bytes + 64 + (16 * (Smallmap.length n.next + Smallmap.length n.children)));
  { nodes = !nodes; significant_nodes = !sig_nodes; max_depth_used = !maxd; approx_bytes = !bytes }
