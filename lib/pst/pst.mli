(** Probabilistic suffix trees (paper Sec. 3).

    A PST organizes the conditional probability distribution (CPD) of the
    next symbol given a preceding segment, for one sequence cluster. The
    tree is built over {e reversed} contexts: the node reached from the root
    along symbols {m s_{i-1}, s_{i-2}, \ldots} carries the label
    {m s_j \ldots s_{i-1}} (read in original order), its occurrence count
    {m C}, and a next-symbol count vector from which the probability vector
    {m P(s \mid label)} is derived as {m C(label\,s)/\sum_x C(label\,x)}.

    Prediction of {m P(s_i \mid s_1 \ldots s_{i-1})} walks from the root
    along {m s_{i-1}, s_{i-2}, \ldots}, descending only into
    {e significant} nodes (count {m \ge c}); the deepest node reached is the
    {e prediction node} — the longest significant suffix of the context.

    Trees are memory-bounded: when the node count exceeds the budget the
    tree prunes itself using a {!Pruning.strategy} (paper Sec. 5.1).
    Probability reads are smoothed with the {m p_{min}} adjustment of paper
    Sec. 5.2 so no symbol ever has probability zero. *)

type config = {
  alphabet_size : int;  (** |Σ|; symbol codes must lie in [\[0, n)]. *)
  max_depth : int;  (** Maximum context length L (short-memory bound). *)
  significance : int;  (** The significance threshold [c] (paper: ≥ 30). *)
  max_nodes : int;  (** Node budget; the tree prunes itself beyond this. *)
  p_min : float;
      (** Smoothing floor: adjusted probability is
          [(1 - n·p_min)·p + p_min]. [0.] disables smoothing. *)
  pruning : Pruning.strategy;  (** Policy applied when over budget. *)
}

val default_config : alphabet_size:int -> config
(** Sensible defaults: [max_depth = 10], [significance = 30],
    [max_nodes = 20_000], [p_min] clamped to [min 1e-3 (1/(4·n))],
    [pruning = Smallest_count_first]. *)

type t
(** A mutable probabilistic suffix tree. *)

type node
(** A node of the tree (opaque; obtained from walks or lookups). *)

val create : config -> t
(** An empty tree (root only, count 0). Raises [Invalid_argument] on
    non-positive [alphabet_size], [max_depth], [significance], or a
    [max_nodes < 1], or [p_min] outside [\[0, 1/n\]). *)

val config : t -> config
(** The construction-time configuration. *)

val n_nodes : t -> int
(** Number of nodes, root included. *)

val total_count : t -> int
(** The root count: total number of symbol positions inserted — "the overall
    size of the sequence cluster" (paper Sec. 3). *)

val insert_sequence : t -> Sequence.t -> unit
(** [insert_sequence t s] adds every context of [s] (up to [max_depth]) with
    its next-symbol observation, updating counts and probability vectors
    incrementally. May trigger pruning. *)

val insert_segment : t -> Sequence.t -> lo:int -> hi:int -> unit
(** [insert_segment t s ~lo ~hi] inserts the segment [s.(lo) .. s.(hi)]
    (inclusive) as if it were a standalone sequence — the cluster-update
    primitive of paper Sec. 4.4 (only the best-matching segment of a joining
    sequence is inserted). Raises [Invalid_argument] on bad bounds. *)

val root : t -> node
(** The root node (empty label). *)

val node_count : node -> int
(** Occurrence count {m C} of the node's label. *)

val node_depth : node -> int
(** Label length. *)

val is_significant : t -> node -> bool
(** [count >= significance]; the root is always significant. *)

val prediction_node : t -> Sequence.t -> lo:int -> pos:int -> node
(** [prediction_node t s ~lo ~pos] is the prediction node for the context
    [s.(lo) .. s.(pos-1)]: walk backwards from [s.(pos-1)], descending only
    into significant children, stopping after [max_depth] steps or when the
    context is exhausted. [pos = lo] yields the root. *)

val next_log_prob : t -> node -> int -> float
(** [next_log_prob t node sym] is {m \log \hat P(sym \mid label(node))}
    with the [p_min] adjustment applied. A node with no next observations
    yields the uniform [log (1/n)]. *)

val log_prob : t -> Sequence.t -> lo:int -> pos:int -> float
(** [log_prob t s ~lo ~pos] is
    {m \log \hat P(s_{pos} \mid s_{lo} \ldots s_{pos-1})} via
    {!prediction_node} + {!next_log_prob} — the unified two-step estimation
    procedure of paper Sec. 3. *)

val find_node : t -> Sequence.t -> node option
(** [find_node t label] locates the node with exactly this label (walking
    without the significance restriction); intended for tests and
    inspection. *)

val next_count : node -> int -> int
(** [next_count node sym] is the raw count {m C(label\,sym)}. *)

val next_total : node -> int
(** Sum of next-symbol counts at the node. *)

val node_children : node -> (int * node) list
(** [(edge symbol, child)] pairs in increasing symbol order — the walk
    primitive of the {!module:Check}-style invariant checkers (a child's
    label is [symbol · label(parent)]). *)

val copy : t -> t
(** [copy t] is a deep, independent copy with identical structure,
    counts, and internal storage order: every subsequent operation
    (scoring, pruning) behaves bit-identically on the copy. Used by the
    correctness oracles to snapshot a model before replaying mutations. *)

val merge : t -> t -> t
(** [merge a b] is a new tree (inputs untouched) whose counts are the
    node-by-node sum of [a] and [b] over the union of their node sets —
    the counts a single tree would have accumulated had it seen both
    databases, up to pruning. Because node storage is key-sorted, the
    result is independent of argument order: merge is commutative and
    associative under {!equal_structure} when no pruning fires. The
    merged tree re-prunes itself if the union exceeds [max_nodes].
    Raises [Invalid_argument] when the configs differ. *)

val next_distribution : t -> node -> float array
(** The full smoothed probability vector at a node (length |Σ|). *)

val prune_to : t -> int -> unit
(** [prune_to t target] prunes nodes (never the root) until
    [n_nodes t <= target], using the configured strategy. *)

type stats = {
  nodes : int;
  significant_nodes : int;
  max_depth_used : int;
  approx_bytes : int;  (** Rough in-memory footprint estimate. *)
}

val stats : t -> stats
(** Structural statistics, used by the Figure 4 bench. *)

val iter_nodes : t -> (node -> unit) -> unit
(** Depth-first iteration over all nodes (root first). *)

val node_label : t -> node -> int list
(** The node's label in original (unreversed) symbol order; for tests. *)

val to_channel : out_channel -> t -> unit
(** [to_channel oc t] writes a complete textual serialization of the tree
    (config, counts, next-symbol counters). The format is line-based,
    versioned, and stable across sessions. *)

val of_channel : in_channel -> t
(** [of_channel ic] reads a tree written by {!to_channel}. Raises
    [Failure] on malformed input or an unsupported version. *)

val to_string : t -> string
(** In-memory {!to_channel}: the same line-based format as a string. *)

val of_string : string -> t
(** In-memory {!of_channel}. Raises [Failure] on malformed input. Note
    that counts are restored {e verbatim} — a tampered serialization
    yields a structurally valid but semantically corrupt tree, which is
    exactly what [Check.pst_invariants] exists to catch. *)

val equal_structure : t -> t -> bool
(** [equal_structure a b] iff both trees have identical configs, node
    sets, counts, and next-symbol counters — serialization round-trip
    checks. *)

val pp :
  ?max_depth:int ->
  ?min_count:int ->
  symbol:(Format.formatter -> int -> unit) ->
  Format.formatter ->
  t ->
  unit
(** [pp ~symbol fmt t] renders the tree in the style of the paper's
    Figure 1: one line per node with its label, count, significance mark,
    and next-symbol probability vector (most probable first). [max_depth]
    (default 3) and [min_count] (default 1) bound the output. *)
