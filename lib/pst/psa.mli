(** Compiled probabilistic suffix automaton (PSA): a frozen PST flattened
    into dense struct-of-arrays tables for O(L) scoring.

    {!Pst.log_prob} re-walks the tree from the root on every position —
    O(depth) pointer chases through boxed {!Smallmap} nodes plus a fresh
    smoothing computation and [log] per read. {!compile} performs that
    work once: the prediction node for a history is its longest {e
    active} suffix (a node whose entire root path is significant —
    exactly what {!Pst.prediction_node}'s greedy walk returns), so the
    automaton is the Aho–Corasick machine of the active labels written
    oldest-symbol-first — active nodes plus the prefix-closure states a
    pruned tree needs — with failure links resolved into a dense
    [state × symbol → state] transition table and the smoothed
    log-probabilities of each state's prediction node precomputed with
    the token-identical formula of {!Pst.next_log_prob}. Scoring then
    advances one state and reads one float per symbol, with no
    allocation and no [log].

    The compiled tables are immutable and therefore safely shared
    read-only across [Par] domains. They snapshot the tree at compile
    time: any later mutation of the source PST (insertion, pruning) makes
    the automaton stale, so callers cache one automaton per frozen tree
    and drop it on mutation (see {!Cluster.compile}).

    Equality contract: for every sequence, scanning the automaton yields
    {e bit-for-bit} the floats of the tree walk (same prediction node per
    position, same precomputed [log]); the property tests and the fuzz
    harness enforce exact float equality, not within-epsilon. See
    DESIGN.md §9. *)

type t
(** An immutable compiled automaton. *)

val compile : Pst.t -> t
(** [compile pst] builds the automaton for the tree's current state in
    O(states · |Σ|) time and space. Records the
    [similarity.compile_seconds] histogram and the [pst.compilations] /
    [pst.compiled_states] counters. Must be called on the main domain
    (histograms are main-domain-only); the result may be read from any
    domain. *)

val alphabet_size : t -> int
(** |Σ| of the source tree; symbols fed to the scan must lie in
    [\[0, n)]. *)

val n_states : t -> int
(** Number of automaton states (reported by the [pst.compiled_states]
    counter): exactly the active node count for a never-pruned tree;
    pruning can add closure states for contexts whose own node was
    removed while a longer extension survived. *)

val transitions : t -> int array
(** The dense transition table, row-major: entry [state * n + sym] is the
    state reached after emitting [sym] — the prediction state for the
    context extended by [sym]. Read-only; exposed for the scan kernel in
    {!Similarity} and the microbenchmarks. *)

val emissions : t -> float array
(** The precomputed emission table, row-major: entry [state * n + sym] is
    {!Pst.next_log_prob} of the state's tree node for [sym] — bit-equal
    to what the tree walk would return. Background subtraction is {e not}
    folded in, so one automaton stays valid across background-vector
    refreshes (the streaming mode re-estimates its background). *)

val prediction_depth : t -> int -> int
(** [prediction_depth t i] is the depth (context length) of the tree
    node state [i] predicts from — what {!Pst.node_depth} of
    {!Pst.prediction_node} returns on the equivalent history. State [0]
    is the root (depth 0). Exposed so tests can assert the automaton
    tracks the tree walk exactly. *)

val enabled : unit -> bool
(** Whether call sites should compile at all (default [true]). *)

val set_enabled : bool -> unit
(** Global escape hatch, wired to the CLI's [--no-psa]: when disabled,
    the caching call sites ({!Cluster.compile}, [Classifier], [Online])
    skip compilation and every score falls back to the tree walk. Results
    are identical either way — this exists for debugging and for
    measuring the speedup end to end. *)
