(** Compiled probabilistic suffix automaton (PSA): a frozen PST flattened
    into dense struct-of-arrays tables for O(L) scoring.

    {!Pst.log_prob} re-walks the tree from the root on every position —
    O(depth) pointer chases through boxed {!Smallmap} nodes plus a fresh
    smoothing computation and [log] per read. {!compile} performs that
    work once: the prediction node for a history is its longest {e
    active} suffix (a node whose entire root path is significant —
    exactly what {!Pst.prediction_node}'s greedy walk returns), so the
    automaton is the Aho–Corasick machine of the active labels written
    oldest-symbol-first — active nodes plus the prefix-closure states a
    pruned tree needs — with failure links resolved into a dense
    [state × symbol → state] transition table and the smoothed
    log-probabilities of each state's prediction node precomputed with
    the token-identical formula of {!Pst.next_log_prob}. Scoring then
    advances one state and reads one float per symbol, with no
    allocation and no [log].

    The tables are {!Bigarray.Array1} blocks, i.e. {e off the OCaml
    heap}: the GC neither scans nor moves them, so a compiled automaton
    adds nothing to minor-collection work, and [Par] worker domains read
    the same flat block without copies (Bigarray payloads are unboxed C
    buffers, immune to the per-domain minor heaps). They snapshot the
    tree at compile time: any later mutation of the source PST
    (insertion, pruning) makes the automaton stale, so callers cache one
    automaton per frozen tree and drop it on mutation (see
    {!Cluster.compile}).

    Equality contract: for every sequence, scanning the automaton yields
    {e bit-for-bit} the floats of the tree walk (same prediction node per
    position, same precomputed [log]) — a float64 Bigarray cell stores
    the exact IEEE double written into it; the property tests and the
    fuzz harness enforce exact float equality, not within-epsilon. See
    DESIGN.md §9 and §13. *)

type t
(** An immutable compiled automaton. *)

type trans_table = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Off-heap dense transition table. *)

type emit_table = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Off-heap emission (log-probability) table. *)

val compile : Pst.t -> t
(** [compile pst] builds the automaton for the tree's current state in
    O(states · |Σ|) time and space. Records the
    [similarity.compile_seconds] histogram and the [pst.compilations] /
    [pst.compiled_states] / [pst.compiled_table_bytes] counters. Must be
    called on the main domain (histograms are main-domain-only); the
    result may be read from any domain. *)

val alphabet_size : t -> int
(** |Σ| of the source tree; symbols fed to the scan must lie in
    [\[0, n)]. *)

val n_states : t -> int
(** Number of automaton states (reported by the [pst.compiled_states]
    counter): exactly the active node count for a never-pruned tree;
    pruning can add closure states for contexts whose own node was
    removed while a longer extension survived. *)

val transitions : t -> trans_table
(** The dense transition table, row-major: entry [state * n + sym] is the
    state reached after emitting [sym] — the prediction state for the
    context extended by [sym]. Read-only; exposed for the scan kernels in
    {!Similarity} and the microbenchmarks. *)

val emissions : t -> emit_table
(** The precomputed emission table, row-major: entry [state * n + sym] is
    {!Pst.next_log_prob} of the state's tree node for [sym] — bit-equal
    to what the tree walk would return. Background subtraction is {e not}
    folded in, so one automaton stays valid across background-vector
    refreshes (the streaming mode re-estimates its background). *)

val step : t -> int -> int -> int
(** [step t state sym] is the bounds-checked single transition
    [transitions t].{[state * n + sym]} — the convenience read for tests
    and oracles that re-walk the automaton one symbol at a time. *)

val emission : t -> int -> int -> float
(** [emission t state sym] is the bounds-checked emission table read at
    [state * n + sym]. *)

val prediction_depth : t -> int -> int
(** [prediction_depth t i] is the depth (context length) of the tree
    node state [i] predicts from — what {!Pst.node_depth} of
    {!Pst.prediction_node} returns on the equivalent history. State [0]
    is the root (depth 0). Exposed so tests can assert the automaton
    tracks the tree walk exactly. *)

val table_bytes : t -> int
(** Total bytes held by the automaton's flat tables (transitions +
    emissions off-heap, plus the small prediction-depth side array) —
    the amount of model data the GC never scans. *)

val enabled : unit -> bool
(** Whether call sites should compile at all (default [true]). *)

val set_enabled : bool -> unit
(** Global escape hatch, wired to the CLI's [--no-psa]: when disabled,
    the caching call sites ({!Cluster.compile}, [Classifier], [Online])
    skip compilation and every score falls back to the tree walk —
    including all batched entry points, which detect the missing
    automaton and take the per-sequence tree walk instead. Results are
    identical either way — this exists for debugging and for measuring
    the speedup end to end. *)

(** {1 Batch scoring} *)

type batch
(** Reusable scratch columns for {!score_batch}: per-lane Kadane
    accumulators and segment bounds, held in pre-sized unboxed arrays
    so a scan allocates nothing per symbol or per lane. One [batch] is
    single-owner mutable state — use one per worker domain (e.g. one
    per [Par.map_chunks] chunk), never shared concurrently. *)

val batch_create : ?capacity:int -> unit -> batch
(** A fresh scratch sized for [capacity] lanes (default 64); grows
    geometrically on demand inside {!score_batch}. *)

val batch_capacity : batch -> int
(** Current lane capacity (for tests). *)

val score_batch : t -> log_background:float array -> batch:batch -> Sequence.t array -> unit
(** [score_batch t ~log_background ~batch seqs] runs the automaton over
    every sequence of the block, lane-major: each lane is scanned to
    completion with its accumulators in the scratch columns, so the
    block costs zero heap words per symbol while every sequence streams
    through cache linearly. Results are read back with
    {!batch_log_sim} / {!batch_seg_lo} / {!batch_seg_hi} at the lane's
    index in [seqs]; they are bit-for-bit identical to
    [Similarity.score_psa] on each sequence individually (empty lanes
    yield [neg_infinity] with bounds [-1,-1], matching
    [Similarity.empty_result]).

    Raises [Invalid_argument] if any symbol lies outside
    [\[0, alphabet_size)] or [log_background] is shorter than the
    alphabet. *)

val batch_log_sim : batch -> int -> float
(** [batch_log_sim b j] is the log-similarity of lane [j] from the last
    {!score_batch} call on [b]. *)

val batch_seg_lo : batch -> int -> int
(** Start index of lane [j]'s winning segment. *)

val batch_seg_hi : batch -> int -> int
(** End index (inclusive) of lane [j]'s winning segment. *)
