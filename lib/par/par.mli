(** Domain-parallel execution for the read-only hot loops.

    A persistent pool of worker domains ([Domain] + [Mutex]/[Condition])
    behind two data-parallel primitives, {!parallel_for} and
    {!map_chunks}. The pool exists to parallelize the {e read-only} side
    of the pipeline — similarity scoring of (sequence, cluster) pairs,
    classifier batches, pairwise distance matrices — while all model
    mutation (PST insertion, membership updates, threshold moves) stays
    on the submitting domain. See DESIGN.md §7.

    {b Determinism contract.} Both primitives produce results that are
    bit-identical for every pool size and every chunking: work items are
    independent, each item [i] is evaluated exactly once by exactly one
    domain, and results are gathered by item index — never in completion
    order. A pool of size 1 (or a body raising the inline fallback)
    executes items [0, 1, 2, …] on the caller, which is exactly the
    pre-pool serial path.

    {b Threading rules.} Jobs are submitted from one domain at a time
    (the pipeline submits only from the domain running [Cluseq.run]).
    A body that re-enters the pool (nested submission) runs its job
    inline on the calling domain rather than deadlocking. Worker bodies
    must confine themselves to read-only shared data plus writes to
    disjoint slots they own; of the {!Obs} registry they may touch
    counters and histograms (both atomic — histograms since the
    flight-recorder PR; previously [par.steal_wait_seconds] was
    observed under a histograms-are-main-domain-only contract, which
    held only because the pipeline always submits from the main
    domain). Gauges remain main-domain-only. Worker domains also write
    [par.chunk] begin/end events to their own {!Obs.Recorder} rings,
    which are per-domain by construction.

    {b Metrics} (through {!Obs.Metrics}): [par.domains] (gauge, pool
    size of the most recent parallel job), [par.tasks] (counter, chunks
    dispatched to the pool), [par.steal_wait_seconds] (histogram, time
    the submitting domain idles waiting for straggler workers after the
    chunk queue drains), [par.domain_busy_ratio] /
    [par.domain_busy_ratio_min] (gauges: mean and minimum over the
    domains of busy-time / wall-time for the most recent parallel job —
    the minimum is the straggler indicator). Recorder events:
    [par.job] begin/end around each parallel job (arg = chunk count, on
    the submitter's ring) and [par.chunk] begin/end around each chunk
    (arg = chunk index, on the executing domain's ring). *)

type t
(** A persistent pool. Size [s] means [s] domains participate in every
    job: the submitting domain plus [s - 1] workers. Workers block on a
    condition variable between jobs; an idle pool consumes no CPU. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of the given total size (default
    {!default_domains}), clamped to [\[1, 64\]]. [create ~domains:1 ()]
    spawns no workers: every job runs inline on the caller. *)

val size : t -> int
(** Total domains participating in this pool's jobs (including the
    submitter). *)

val shutdown : t -> unit
(** Wake and join all workers. Idempotent; the pool must not be used
    afterwards (jobs then raise [Invalid_argument]). *)

val parallel_for : t -> ?chunks:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] runs [body i] for every
    [lo <= i < hi], split into [chunks] contiguous index ranges
    (default [4 × size], capped at the range length) claimed dynamically
    by the participating domains. Within a chunk, indexes run in
    ascending order. [body] must write only to slots it owns (e.g.
    [results.(i)]). If any [body i] raises, the first exception by
    {e chunk index} (deterministic, not racy) is re-raised on the
    submitting domain after all claimed chunks finish. *)

val map_chunks : t -> ?chunks:int -> n:int -> (int -> 'a) -> 'a array
(** [map_chunks pool ~n f] evaluates [f i] for [0 <= i < n] and returns
    the results indexed by [i] — a parallel [Array.init n f] with the
    chunking and exception rules of {!parallel_for}. [n = 0] yields
    [[||]] without touching the pool. *)

(** {1 Global pool}

    The pipeline call sites ([Cluseq.run], [Classifier.classify_all],
    [Kmedoids], [Agglomerative]) share one lazily created global pool so
    a single [--domains] flag governs the whole process. *)

val default_domains : unit -> int
(** The size used for the next implicit pool: the last
    {!set_default_domains} value if any; else a valid [CLUSEQ_DOMAINS]
    environment variable; else [Domain.recommended_domain_count ()] —
    each clamped to [\[1, 64\]]. *)

val set_default_domains : int -> unit
(** Override the default size (the [--domains N] CLI/bench flag). If the
    global pool already exists at a different size it is shut down and
    lazily recreated at the new size on next use. *)

val get_pool : unit -> t
(** The global pool, created on first use with {!default_domains}
    domains. Shut down automatically at process exit. *)
