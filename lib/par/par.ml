(* Persistent domain pool; see par.mli for the contract.

   One job at a time: the submitter publishes a chunk body under the
   mutex, broadcasts, and then participates in draining the chunk queue
   exactly like a worker. Chunks are claimed dynamically (whichever
   domain is free takes the next index), which balances uneven chunk
   costs, but every result is written to a slot addressed by chunk
   index, so scheduling never leaks into the output. *)

let m_domains = Obs.Metrics.gauge "par.domains"
let m_tasks = Obs.Metrics.counter "par.tasks"
let h_steal_wait = Obs.Metrics.histogram "par.steal_wait_seconds"

type t = {
  size : int;
  mutex : Mutex.t;
  has_work : Condition.t; (* workers: a job arrived or shutdown began *)
  all_done : Condition.t; (* submitter: the current job fully finished *)
  mutable body : (int -> unit) option; (* chunk body of the active job *)
  mutable n_chunks : int;
  mutable next_chunk : int; (* next unclaimed chunk *)
  mutable in_flight : int; (* chunks claimed but not yet finished *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-chunk-index failure of the active job *)
  mutable busy : bool; (* a job is active (submission through completion) *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

(* Claim and run chunks until the queue is empty. Called with [t.mutex]
   held; returns with it held. Shared by workers and the submitter. *)
let drain_chunks t =
  let continue_ = ref true in
  while !continue_ do
    match t.body with
    | Some body when t.next_chunk < t.n_chunks ->
        let idx = t.next_chunk in
        t.next_chunk <- idx + 1;
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.mutex;
        let err =
          try
            body idx;
            None
          with e -> Some (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        (match err with
        | None -> ()
        | Some (e, bt) -> (
            match t.failure with
            | Some (i, _, _) when i <= idx -> ()
            | _ -> t.failure <- Some (idx, e, bt)));
        t.in_flight <- t.in_flight - 1;
        if t.next_chunk >= t.n_chunks && t.in_flight = 0 then begin
          (* Last chunk of the job: retire it and wake the submitter. *)
          t.body <- None;
          Condition.broadcast t.all_done
        end
    | _ -> continue_ := false
  done

let worker t =
  Mutex.lock t.mutex;
  while not t.stopped do
    drain_chunks t;
    if not t.stopped then Condition.wait t.has_work t.mutex
  done;
  Mutex.unlock t.mutex

let clamp_domains d = if d < 1 then 1 else if d > 64 then 64 else d

let env_domains () =
  match Sys.getenv_opt "CLUSEQ_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some (clamp_domains d)
      | _ -> None)

let create ?domains () =
  let size =
    clamp_domains
      (match domains with
      | Some d -> d
      | None -> (
          match env_domains () with
          | Some d -> d
          | None -> Domain.recommended_domain_count ()))
  in
  let t =
    {
      size;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      body = None;
      n_chunks = 0;
      next_chunk = 0;
      in_flight = 0;
      failure = None;
      busy = false;
      stopped = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

(* Run [body 0 .. body (n_chunks-1)], using the pool when it buys
   anything. The inline path (pool of 1, single chunk, nested
   submission) is the serial loop verbatim: exceptions propagate
   directly and no lock is taken. *)
let run_job t ~n_chunks body =
  if t.stopped then invalid_arg "Par: pool is shut down";
  if n_chunks > 0 then begin
    if t.size = 1 || n_chunks = 1 || t.busy then
      for i = 0 to n_chunks - 1 do
        body i
      done
    else begin
      Obs.Metrics.set m_domains (float_of_int t.size);
      Obs.Metrics.incr ~by:n_chunks m_tasks;
      Mutex.lock t.mutex;
      t.busy <- true;
      t.n_chunks <- n_chunks;
      t.next_chunk <- 0;
      t.failure <- None;
      t.body <- Some body;
      Condition.broadcast t.has_work;
      drain_chunks t;
      (* The queue is empty but workers may still be finishing claimed
         chunks; the straggler wait is the pool's imbalance cost. *)
      let wait_t0 =
        if t.body <> None && Obs.Metrics.is_enabled () then Timer.now_ns () else 0L
      in
      while t.body <> None do
        Condition.wait t.all_done t.mutex
      done;
      if wait_t0 <> 0L then
        Obs.Metrics.observe h_steal_wait (Timer.span_s wait_t0 (Timer.now_ns ()));
      let failure = t.failure in
      t.failure <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      match failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* Balanced contiguous partition of [0, n) into [n_chunks] ranges:
   the first [n mod n_chunks] chunks get one extra element. *)
let chunk_bounds ~n ~n_chunks ci =
  let q = n / n_chunks and r = n mod n_chunks in
  let lo = (ci * q) + min ci r in
  let hi = lo + q + if ci < r then 1 else 0 in
  (lo, hi)

let resolve_chunks t ?chunks n =
  let c = match chunks with Some c when c > 0 -> c | _ -> 4 * t.size in
  min n c

let parallel_for t ?chunks ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let n_chunks = resolve_chunks t ?chunks n in
    run_job t ~n_chunks (fun ci ->
        let clo, chi = chunk_bounds ~n ~n_chunks ci in
        for i = lo + clo to lo + chi - 1 do
          f i
        done)
  end

let map_chunks t ?chunks ~n f =
  if n <= 0 then [||]
  else begin
    let n_chunks = resolve_chunks t ?chunks n in
    let parts = Array.make n_chunks [||] in
    run_job t ~n_chunks (fun ci ->
        let lo, hi = chunk_bounds ~n ~n_chunks ci in
        parts.(ci) <- Array.init (hi - lo) (fun k -> f (lo + k)));
    Array.concat (Array.to_list parts)
  end

(* ------------------------------------------------------------------ *)
(* Global pool                                                         *)
(* ------------------------------------------------------------------ *)

let configured_domains : int option ref = ref None
let global : t option ref = ref None
let exit_hook_installed = ref false

let default_domains () =
  match !configured_domains with
  | Some d -> d
  | None ->
      let d =
        match env_domains () with
        | Some d -> d
        | None -> clamp_domains (Domain.recommended_domain_count ())
      in
      configured_domains := Some d;
      d

let set_default_domains d =
  let d = clamp_domains d in
  configured_domains := Some d;
  match !global with
  | Some p when p.size <> d ->
      global := None;
      shutdown p
  | _ -> ()

let get_pool () =
  match !global with
  | Some p -> p
  | None ->
      let p = create ~domains:(default_domains ()) () in
      global := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            match !global with
            | Some p ->
                global := None;
                shutdown p
            | None -> ())
      end;
      p
