(* Persistent domain pool; see par.mli for the contract.

   One job at a time: the submitter publishes a chunk body under the
   mutex, broadcasts, and then participates in draining the chunk queue
   exactly like a worker. Chunks are claimed dynamically (whichever
   domain is free takes the next index), which balances uneven chunk
   costs, but every result is written to a slot addressed by chunk
   index, so scheduling never leaks into the output. *)

let m_domains = Obs.Metrics.gauge "par.domains"
let m_tasks = Obs.Metrics.counter "par.tasks"

(* Histograms are multi-domain-safe since the flight-recorder PR
   (atomic buckets, CAS sum — see obs.mli), so observing here is
   correct even when the submitting domain is not the main domain. *)
let h_steal_wait = Obs.Metrics.histogram "par.steal_wait_seconds"

(* Utilization of the most recent parallel job: per-domain busy time
   (chunk execution) over the job's wall time, aggregated as mean and
   minimum. The minimum is the straggler indicator — a low value means
   some domain spent the job mostly idle. Set by the submitter after
   the job completes; per-domain detail goes to the recorder rings as
   [par.chunk] begin/end events instead of a gauge per domain. *)
let g_busy_mean = Obs.Metrics.gauge "par.domain_busy_ratio"
let g_busy_min = Obs.Metrics.gauge "par.domain_busy_ratio_min"
let ev_job = Obs.Recorder.intern "par.job"
let ev_chunk = Obs.Recorder.intern "par.chunk"

type t = {
  size : int;
  mutex : Mutex.t;
  has_work : Condition.t; (* workers: a job arrived or shutdown began *)
  all_done : Condition.t; (* submitter: the current job fully finished *)
  mutable body : (int -> unit) option; (* chunk body of the active job *)
  mutable n_chunks : int;
  mutable next_chunk : int; (* next unclaimed chunk *)
  mutable in_flight : int; (* chunks claimed but not yet finished *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-chunk-index failure of the active job *)
  mutable busy : bool; (* a job is active (submission through completion) *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  busy_ns : int array;
      (* per-slot busy nanoseconds of the active job; slot 0 is the
         submitter, slots 1.. are the workers. Each slot is written only
         by its owning domain (under the mutex) and read by the
         submitter after the job completes. *)
}

let size t = t.size

(* Claim and run chunks until the queue is empty. Called with [t.mutex]
   held; returns with it held. Shared by workers and the submitter;
   [slot] identifies the calling domain's utilization-accounting slot
   (0 = submitter). *)
let drain_chunks t slot =
  let continue_ = ref true in
  while !continue_ do
    match t.body with
    | Some body when t.next_chunk < t.n_chunks ->
        let idx = t.next_chunk in
        t.next_chunk <- idx + 1;
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.mutex;
        let acct = Obs.Metrics.is_enabled () || Obs.Recorder.is_enabled () in
        let t0 = if acct then Timer.now_ns () else 0L in
        Obs.Recorder.begin_ ~arg:idx ev_chunk;
        let err =
          try
            body idx;
            None
          with e -> Some (e, Printexc.get_raw_backtrace ())
        in
        Obs.Recorder.end_ ev_chunk;
        let busy = if acct then Int64.to_int (Int64.sub (Timer.now_ns ()) t0) else 0 in
        Mutex.lock t.mutex;
        if acct then t.busy_ns.(slot) <- t.busy_ns.(slot) + busy;
        (match err with
        | None -> ()
        | Some (e, bt) -> (
            match t.failure with
            | Some (i, _, _) when i <= idx -> ()
            | _ -> t.failure <- Some (idx, e, bt)));
        t.in_flight <- t.in_flight - 1;
        if t.next_chunk >= t.n_chunks && t.in_flight = 0 then begin
          (* Last chunk of the job: retire it and wake the submitter. *)
          t.body <- None;
          Condition.broadcast t.all_done
        end
    | _ -> continue_ := false
  done

let worker t slot =
  Mutex.lock t.mutex;
  while not t.stopped do
    drain_chunks t slot;
    if not t.stopped then Condition.wait t.has_work t.mutex
  done;
  Mutex.unlock t.mutex

let clamp_domains d = if d < 1 then 1 else if d > 64 then 64 else d

let env_domains () =
  match Sys.getenv_opt "CLUSEQ_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some (clamp_domains d)
      | _ -> None)

let create ?domains () =
  let size =
    clamp_domains
      (match domains with
      | Some d -> d
      | None -> (
          match env_domains () with
          | Some d -> d
          | None -> Domain.recommended_domain_count ()))
  in
  let t =
    {
      size;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      body = None;
      n_chunks = 0;
      next_chunk = 0;
      in_flight = 0;
      failure = None;
      busy = false;
      stopped = false;
      workers = [];
      busy_ns = Array.make size 0;
    }
  in
  t.workers <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

(* Run [body 0 .. body (n_chunks-1)], using the pool when it buys
   anything. The inline path (pool of 1, single chunk, nested
   submission) is the serial loop verbatim: exceptions propagate
   directly and no lock is taken. *)
let run_job t ~n_chunks body =
  if t.stopped then invalid_arg "Par: pool is shut down";
  if n_chunks > 0 then begin
    if t.size = 1 || n_chunks = 1 || t.busy then
      for i = 0 to n_chunks - 1 do
        body i
      done
    else begin
      Obs.Metrics.set m_domains (float_of_int t.size);
      Obs.Metrics.incr ~by:n_chunks m_tasks;
      let acct = Obs.Metrics.is_enabled () || Obs.Recorder.is_enabled () in
      let job_t0 = if acct then Timer.now_ns () else 0L in
      Obs.Recorder.begin_ ~arg:n_chunks ev_job;
      Mutex.lock t.mutex;
      if acct then Array.fill t.busy_ns 0 t.size 0;
      t.busy <- true;
      t.n_chunks <- n_chunks;
      t.next_chunk <- 0;
      t.failure <- None;
      t.body <- Some body;
      Condition.broadcast t.has_work;
      drain_chunks t 0;
      (* The queue is empty but workers may still be finishing claimed
         chunks; the straggler wait is the pool's imbalance cost. *)
      let wait_t0 =
        if t.body <> None && Obs.Metrics.is_enabled () then Timer.now_ns () else 0L
      in
      while t.body <> None do
        Condition.wait t.all_done t.mutex
      done;
      if wait_t0 <> 0L then
        Obs.Metrics.observe h_steal_wait (Timer.span_s wait_t0 (Timer.now_ns ()));
      let failure = t.failure in
      t.failure <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      (* Per-domain utilization of the job just finished. Every worker
         retired its last chunk under the mutex before [body] went back
         to [None], so the busy_ns slots are quiescent here. *)
      if acct then begin
        let wall = Int64.to_float (Int64.sub (Timer.now_ns ()) job_t0) in
        let wall = Float.max wall 1.0 in
        let sum = ref 0.0 and mn = ref infinity in
        Array.iter
          (fun b ->
            let r = Float.min 1.0 (float_of_int b /. wall) in
            sum := !sum +. r;
            if r < !mn then mn := r)
          t.busy_ns;
        Obs.Metrics.set g_busy_mean (!sum /. float_of_int t.size);
        Obs.Metrics.set g_busy_min !mn
      end;
      Obs.Recorder.end_ ev_job;
      match failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* Balanced contiguous partition of [0, n) into [n_chunks] ranges:
   the first [n mod n_chunks] chunks get one extra element. *)
let chunk_bounds ~n ~n_chunks ci =
  let q = n / n_chunks and r = n mod n_chunks in
  let lo = (ci * q) + min ci r in
  let hi = lo + q + if ci < r then 1 else 0 in
  (lo, hi)

let resolve_chunks t ?chunks n =
  let c = match chunks with Some c when c > 0 -> c | _ -> 4 * t.size in
  min n c

let parallel_for t ?chunks ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let n_chunks = resolve_chunks t ?chunks n in
    run_job t ~n_chunks (fun ci ->
        let clo, chi = chunk_bounds ~n ~n_chunks ci in
        for i = lo + clo to lo + chi - 1 do
          f i
        done)
  end

let map_chunks t ?chunks ~n f =
  if n <= 0 then [||]
  else begin
    let n_chunks = resolve_chunks t ?chunks n in
    let parts = Array.make n_chunks [||] in
    run_job t ~n_chunks (fun ci ->
        let lo, hi = chunk_bounds ~n ~n_chunks ci in
        parts.(ci) <- Array.init (hi - lo) (fun k -> f (lo + k)));
    Array.concat (Array.to_list parts)
  end

(* ------------------------------------------------------------------ *)
(* Global pool                                                         *)
(* ------------------------------------------------------------------ *)

let configured_domains : int option ref = ref None
let global : t option ref = ref None
let exit_hook_installed = ref false

let default_domains () =
  match !configured_domains with
  | Some d -> d
  | None ->
      let d =
        match env_domains () with
        | Some d -> d
        | None -> clamp_domains (Domain.recommended_domain_count ())
      in
      configured_domains := Some d;
      d

let set_default_domains d =
  let d = clamp_domains d in
  configured_domains := Some d;
  match !global with
  | Some p when p.size <> d ->
      global := None;
      shutdown p
  | _ -> ()

let get_pool () =
  match !global with
  | Some p -> p
  | None ->
      let p = create ~domains:(default_domains ()) () in
      global := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            match !global with
            | Some p ->
                global := None;
                shutdown p
            | None -> ())
      end;
      p
