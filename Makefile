# Convenience targets; `make check` is the one CI should run.

.PHONY: all build test bench check fmt clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full gate: build, unit tests, and a CLI smoke run that exercises the
# metrics pipeline end to end (generate -> cluster --metrics -> grep).
check: build test
	@tmp=$$(mktemp -d); \
	dune exec bin/cluseq_cli.exe -- generate --kind synthetic --num 60 --len 60 \
	  --clusters 3 -o $$tmp/smoke.tsv >/dev/null; \
	dune exec bin/cluseq_cli.exe -- cluster $$tmp/smoke.tsv --significance 4 \
	  --metrics=$$tmp/smoke.json >/dev/null 2>&1; \
	grep -q '"pst.insertions"' $$tmp/smoke.json \
	  && grep -q '"similarity.calls"' $$tmp/smoke.json \
	  && grep -q '"cluseq.iter.reclustering_seconds"' $$tmp/smoke.json \
	  || { echo "check: metrics smoke test FAILED ($$tmp/smoke.json)"; exit 1; }; \
	rm -rf $$tmp; \
	echo "check: OK"

# Requires ocamlformat (pinned in .ocamlformat); not installed in every
# environment, so this is not part of `check`.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
