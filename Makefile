# Convenience targets; `make check` is the one CI should run.

.PHONY: all build test bench bench-smoke check fmt clean

all: build

build:
	dune build

# The suite runs twice: fully serial and with a 4-domain pool. The
# results must be identical (the Par determinism contract); --force
# because dune would otherwise serve the second run from cache.
test:
	CLUSEQ_DOMAINS=1 dune runtest --force
	CLUSEQ_DOMAINS=4 dune runtest --force

bench:
	dune exec bench/main.exe

# Perf regression smoke gate: re-run a fast experiment at the baseline's
# scale and compare against the committed BENCH_baseline.json. The
# threshold is deliberately loose (machines differ); it exists to catch
# order-of-magnitude regressions, not 10% jitter. --domains is pinned to
# 1 so the timings stay comparable across machines with different core
# counts (the comparer rejects mismatched domain counts). Refresh the
# baseline with:
#   dune exec bench/main.exe -- --scale 0.25 --domains 1 --record BENCH_baseline.json
bench-smoke: build
	@tmp=$$(mktemp -d); \
	dune exec bench/main.exe -- table4 --scale 0.25 --domains 1 \
	  --record $$tmp/BENCH_smoke.json >/dev/null; \
	dune exec bench/main.exe -- compare BENCH_baseline.json \
	  $$tmp/BENCH_smoke.json --threshold 250 --quality-threshold 5 \
	  || { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "bench-smoke: OK"

# Full gate: build, unit tests, the CLI metrics smoke run (generate ->
# cluster --metrics -> grep), and the perf regression smoke gate.
check: build test bench-smoke
	@tmp=$$(mktemp -d); \
	dune exec bin/cluseq_cli.exe -- generate --kind synthetic --num 60 --len 60 \
	  --clusters 3 -o $$tmp/smoke.tsv >/dev/null; \
	dune exec bin/cluseq_cli.exe -- cluster $$tmp/smoke.tsv --significance 4 \
	  --metrics=$$tmp/smoke.json >/dev/null 2>&1; \
	grep -q '"pst.insertions"' $$tmp/smoke.json \
	  && grep -q '"similarity.calls"' $$tmp/smoke.json \
	  && grep -q '"cluseq.iter.reclustering_seconds"' $$tmp/smoke.json \
	  || { echo "check: metrics smoke test FAILED ($$tmp/smoke.json)"; exit 1; }; \
	rm -rf $$tmp; \
	echo "check: OK"

# Requires ocamlformat (pinned in .ocamlformat); not installed in every
# environment, so this is not part of `check`.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
