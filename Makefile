# Convenience targets; `make check` is the one CI should run.

.PHONY: all build test bench bench-smoke trace-smoke shard-smoke check fuzz coverage fmt fmt-check clean

all: build

build:
	dune build

# The suite runs twice: fully serial and with a 4-domain pool. The
# results must be identical (the Par determinism contract); --force
# because dune would otherwise serve the second run from cache.
test:
	CLUSEQ_DOMAINS=1 dune runtest --force
	CLUSEQ_DOMAINS=4 dune runtest --force

bench:
	dune exec bench/main.exe

# Perf regression smoke gate: re-run a fast experiment at the baseline's
# scale — plus the micro suite, so the similarity-kernel ns/op numbers
# (similarity-psa-200sym etc.) are gated too — and compare against the
# committed BENCH_baseline.json. The threshold is deliberately loose
# (machines differ); it exists to catch order-of-magnitude regressions,
# not 10% jitter. --domains is pinned to 1 so the timings stay
# comparable across machines with different core counts (the comparer
# rejects mismatched domain counts). Refresh the baseline with:
#   dune exec bench/main.exe -- --scale 0.25 --domains 1 --record BENCH_baseline.json
bench-smoke: build
	@tmp=$$(mktemp -d); \
	dune exec bench/main.exe -- table4 micro --scale 0.25 --domains 1 \
	  --record $$tmp/BENCH_smoke.json >/dev/null; \
	dune exec bench/main.exe -- compare BENCH_baseline.json \
	  $$tmp/BENCH_smoke.json --threshold 250 --quality-threshold 5 \
	  || { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "bench-smoke: OK"

# Flight-recorder smoke gate (DESIGN.md §10): record a tiny 4-domain
# experiment with --trace-out, then have `bench trace-validate` re-parse
# the Chrome-trace JSON and require timeline events from at least two
# domains — proving the per-domain rings, the exporter, and the
# cross-domain merge all work end to end.
trace-smoke: build
	@tmp=$$(mktemp -d); \
	dune exec bench/main.exe -- table4 --scale 0.25 --domains 4 \
	  --trace-out $$tmp/trace.json >/dev/null; \
	dune exec bench/main.exe -- trace-validate $$tmp/trace.json \
	  || { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "trace-smoke: OK"

# Shard-and-merge smoke gate (DESIGN.md §14): cluster a synthetic file
# with --shards 4 while recording a flight-recorder trace, re-parse the
# trace (per-shard lanes land on worker-domain tracks, so it must show
# >= 2 domains), then run the audited 4-shard clustering gate over the
# same file (`cluseq check FILE --shards 4`: serial reclustering replay
# inside every shard + merged-result invariants). On multi-core
# machines the 4-shard run must also beat the 1-shard wall clock;
# single-core machines skip that assertion — there is no parallelism
# to win.
shard-smoke: build
	@tmp=$$(mktemp -d); \
	dune exec bin/cluseq_cli.exe -- generate --kind synthetic --num 360 --len 100 \
	  --clusters 3 --contexts 120 --seed 11 -o $$tmp/shard.tsv >/dev/null; \
	dune exec bin/cluseq_cli.exe -- cluster $$tmp/shard.tsv --k-init 2 \
	  --significance 8 --min-residual 8 --max-iterations 30 --seed 4 \
	  --shards 4 --domains 4 --trace-out $$tmp/trace.json >/dev/null 2>&1; \
	dune exec bench/main.exe -- trace-validate $$tmp/trace.json \
	  || { echo "shard-smoke: trace validation FAILED"; rm -rf $$tmp; exit 1; }; \
	dune exec bin/cluseq_cli.exe -- check $$tmp/shard.tsv --shards 4 --domains 4 \
	  || { echo "shard-smoke: audited 4-shard check FAILED"; rm -rf $$tmp; exit 1; }; \
	if [ "$$(nproc)" -gt 1 ]; then \
	  t1=$$( { time -p dune exec bin/cluseq_cli.exe -- cluster $$tmp/shard.tsv --k-init 2 \
	    --significance 8 --min-residual 8 --max-iterations 30 --seed 4 \
	    --shards 1 --domains 4 >/dev/null 2>&1; } 2>&1 | awk '/^real/ {print $$2}'); \
	  t4=$$( { time -p dune exec bin/cluseq_cli.exe -- cluster $$tmp/shard.tsv --k-init 2 \
	    --significance 8 --min-residual 8 --max-iterations 30 --seed 4 \
	    --shards 4 --domains 4 >/dev/null 2>&1; } 2>&1 | awk '/^real/ {print $$2}'); \
	  echo "shard-smoke: 1-shard $${t1}s, 4-shard $${t4}s"; \
	  awk -v a="$$t4" -v b="$$t1" 'BEGIN { exit !(a+0 < b+0) }' \
	    || { echo "shard-smoke: 4 shards not faster than 1 ($${t4}s >= $${t1}s)"; rm -rf $$tmp; exit 1; }; \
	else \
	  echo "shard-smoke: single core; skipping the wall-clock assertion"; \
	fi; \
	rm -rf $$tmp; \
	echo "shard-smoke: OK"

# Deterministic fuzz sweep over every correctness oracle (differential
# PST, brute-force similarity, serial reclustering replay, 1-vs-4-domain
# determinism, sketch-gated vs full reclustering scan). A failure prints
# a minimized workload and a replay seed; sketch-gate false negatives
# (possible by design) are reported as notes, not failures.
fuzz: build
	dune exec bin/cluseq_cli.exe -- check --fuzz 200 --seed 42

# Full gate: build, unit tests, the fuzz sweep, the formatting check,
# the CLI metrics smoke run (generate -> cluster --metrics -> grep),
# the perf regression smoke gate, the flight-recorder trace smoke
# gate, and the shard-and-merge smoke gate.
check: build test fuzz fmt-check bench-smoke trace-smoke shard-smoke
	@tmp=$$(mktemp -d); \
	dune exec bin/cluseq_cli.exe -- generate --kind synthetic --num 60 --len 60 \
	  --clusters 3 -o $$tmp/smoke.tsv >/dev/null; \
	dune exec bin/cluseq_cli.exe -- cluster $$tmp/smoke.tsv --significance 4 \
	  --metrics=$$tmp/smoke.json >/dev/null 2>&1; \
	grep -q '"pst.insertions"' $$tmp/smoke.json \
	  && grep -q '"similarity.calls"' $$tmp/smoke.json \
	  && grep -q '"similarity.compile_seconds"' $$tmp/smoke.json \
	  && grep -q '"cluseq.iter.reclustering_seconds"' $$tmp/smoke.json \
	  || { echo "check: metrics smoke test FAILED ($$tmp/smoke.json)"; exit 1; }; \
	rm -rf $$tmp; \
	echo "check: OK"

# Requires ocamlformat (pinned in .ocamlformat); not installed in every
# environment. `fmt` rewrites in place; `fmt-check` only diffs (no
# promotion) and is part of `check`, gated on the tool's presence so
# environments without ocamlformat still pass the rest of the gate.
fmt:
	dune build @fmt --auto-promote

fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt && echo "fmt-check: OK"; \
	else \
	  echo "fmt-check: ocamlformat is not installed; skipping."; \
	fi

# Line-coverage report for the test suite. bisect_ppx is optional (not
# baked into every build image), so the target gates on its presence
# rather than failing the build; when available, instrument with
#   (preprocess (pps bisect_ppx --conditional)) via BISECT_ENABLE.
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  BISECT_ENABLE=yes dune runtest --force --instrument-with bisect_ppx \
	  && bisect-ppx-report summary --per-file; \
	else \
	  echo "coverage: bisect_ppx is not installed; skipping."; \
	  echo "  opam install bisect_ppx   # then re-run: make coverage"; \
	fi

clean:
	dune clean
