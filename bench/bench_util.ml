(* Shared infrastructure for the experiment harness: evaluation wrappers
   and fixed-width table printing.

   Every duration the harness reports comes from the monotonic [Timer]
   (clock_gettime(CLOCK_MONOTONIC)); no wall-clock source
   (Unix.gettimeofday / Sys.time) is used anywhere in the tree, so
   recorded numbers cannot go backwards under NTP steps or clock
   adjustment. *)

type scored = {
  labels : int array; (* hard labels in cluster-id space *)
  n_clusters : int;
  seconds : float;
  final_t : float;
  iterations : int;
}

(* --- quality headline ------------------------------------------------ *)

(* The first quality figure an experiment computes (CLUSEQ's own accuracy
   or macro recall — baselines come later in every experiment) is captured
   as the experiment's headline for the BENCH record, so a perf regression
   can't hide behind a quality change. Reset per experiment by the driver. *)
let quality : (string * float) option ref = ref None
let reset_quality () = quality := None
let set_quality metric v = if !quality = None then quality := Some (metric, v)

(* Harness-level shard count (--shards): experiments that cluster through
   [score_cluseq] honor it, and it is recorded in the BENCH env block so
   `bench compare` refuses to diff runs with different shard settings. *)
let shards = ref 1

let score_cluseq ?(config = Cluseq.default_config) ?shards:s db =
  let shards = match s with Some s -> s | None -> !shards in
  let result, seconds = Timer.time (fun () -> Shard.run ~config ~shards db) in
  {
    labels = Cluseq.hard_labels result ~n:(Seq_database.n_sequences db);
    n_clusters = result.n_clusters;
    seconds;
    final_t = result.final_t;
    iterations = result.iterations;
  }

let accuracy ~truth labels =
  let acc = Metrics.accuracy ~truth ~pred_class:(Matching.relabel ~truth ~pred:labels) in
  set_quality "accuracy" acc;
  acc

let macro_pr ~truth labels =
  let pred_class = Matching.relabel ~truth ~pred:labels in
  let prs = Metrics.per_class ~truth ~pred_class in
  let recall = Metrics.macro_recall prs in
  set_quality "macro_recall" recall;
  (Metrics.macro_precision prs, recall)

let pct x = 100.0 *. x

(* --- table printing -------------------------------------------------- *)

(* When set (via --csv DIR), every printed table is also written as a CSV
   file named after its experiment, for plotting the figures. *)
let csv_dir : string option ref = ref None
let current_experiment = ref "experiment"

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (!current_experiment ^ ".csv") in
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (String.concat "," (List.map csv_escape header) ^ "\n");
          List.iter
            (fun r -> output_string oc (String.concat "," (List.map csv_escape r) ^ "\n"))
            rows)

let hrule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let row widths cells =
  print_string "|";
  List.iter2 (fun w c -> Printf.printf " %-*s |" w c) widths cells;
  print_newline ()

let table ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) (String.length h) rows)
      header
  in
  hrule widths;
  row widths header;
  hrule widths;
  List.iter (row widths) rows;
  hrule widths;
  flush stdout;
  write_csv header rows

let note fmt = Printf.printf (fmt ^^ "%!")

(* Scale an integer dimension by the global --scale factor (>= 1 result). *)
let scaled scale n = max 1 (int_of_float (Float.round (float_of_int n *. scale)))
