(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # every experiment, scale 1
     dune exec bench/main.exe -- table2 fig4  # selected experiments
     dune exec bench/main.exe -- --scale 0.5  # half-size workloads
     dune exec bench/main.exe -- --domains 4  # domain-pool size (1 = serial)
     dune exec bench/main.exe -- --shards 4   # shard count experiments honor (1 = unsharded)
     dune exec bench/main.exe -- --no-index   # disable the candidate index
     dune exec bench/main.exe -- --index-ratio 0.3  # arm the sketch gate (default 0 = off)
     dune exec bench/main.exe -- --list       # experiment inventory
     dune exec bench/main.exe -- --csv out/   # also write tables as CSV
     dune exec bench/main.exe -- --metrics-dir out/  # per-experiment metrics JSON
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --scale 0.25 --record BENCH_baseline.json
                                              # canonical telemetry record
     dune exec bench/main.exe -- compare BENCH_baseline.json BENCH_new.json \
                                 [--threshold PCT] [--quality-threshold PCT]
                                              # perf regression gate

     dune exec bench/main.exe -- table4 --trace-out trace.json
                                              # Perfetto flight-recorder trace
     dune exec bench/main.exe -- trace-validate trace.json
                                              # sanity-check a trace file
     dune exec bench/main.exe -- table4 --journal journal.jsonl
                                              # decision-provenance journal (JSONL)

   Each experiment regenerates one table or figure of the paper's
   evaluation (see DESIGN.md Sec. 4 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured results). `--record` writes the
   machine-readable BENCH_*.json described in DESIGN.md §6; `compare`
   exits 1 on a perf regression, 2 on usage or parse errors.
   `--trace-out` records the whole harness run with the flight
   recorder (DESIGN.md §10) and writes a Chrome-trace-format timeline
   loadable at https://ui.perfetto.dev; `trace-validate` re-parses
   such a file and exits 2 unless it contains events from at least two
   domains. *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter (fun (id, doc, _) -> Printf.printf "  %-10s %s\n" id doc) Experiments.all;
  Printf.printf "  %-10s %s\n" "micro" "Bechamel micro-benchmarks of core primitives"

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 2) fmt

(* An option's operand must exist and not look like the next option —
   `bench --csv --scale 2` is a mistake, not a directory named --scale. *)
let operand ~flag = function
  | v :: rest when not (String.length v > 1 && v.[0] = '-' && v.[1] = '-') -> (v, rest)
  | _ -> die "%s expects an operand" flag

let positive_float ~flag v =
  match float_of_string_opt v with
  | Some f when f > 0.0 -> f
  | _ -> die "%s expects a positive number" flag

let positive_int ~flag v =
  match int_of_string_opt v with
  | Some i when i > 0 -> i
  | _ -> die "%s expects a positive integer" flag

(* ------------------------------------------------------------------ *)
(* compare subcommand                                                  *)
(* ------------------------------------------------------------------ *)

let run_compare args =
  let threshold = ref 25.0 in
  let quality_threshold = ref 2.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: rest ->
        let v, rest = operand ~flag:"--threshold" rest in
        threshold := positive_float ~flag:"--threshold" v;
        parse rest
    | "--quality-threshold" :: rest ->
        let v, rest = operand ~flag:"--quality-threshold" rest in
        quality_threshold := positive_float ~flag:"--quality-threshold" v;
        parse rest
    | flag :: _ when String.length flag > 1 && flag.[0] = '-' && flag.[1] = '-' ->
        die "compare: unknown option %s" flag
    | file :: rest ->
        files := file :: !files;
        parse rest
  in
  parse args;
  match List.rev !files with
  | [ base_file; cand_file ] -> (
      let load file =
        match Bench_report.read file with Ok r -> r | Error msg -> die "%s" msg
      in
      let base = load base_file and candidate = load cand_file in
      match
        Bench_compare.compare_reports ~threshold_pct:!threshold
          ~quality_threshold_pct:!quality_threshold ~base ~candidate ()
      with
      | Error msg -> die "%s" msg
      | Ok verdicts ->
          Printf.printf "comparing %s (%s) -> %s (%s), threshold %.0f%%\n" base_file
            base.env.git_rev cand_file candidate.env.git_rev !threshold;
          print_string (Bench_compare.render verdicts);
          if Bench_compare.has_regression verdicts then begin
            prerr_endline "bench compare: performance regression detected";
            exit 1
          end)
  | _ -> die "usage: bench compare BASE.json NEW.json [--threshold PCT] [--quality-threshold PCT]"

(* ------------------------------------------------------------------ *)
(* trace-validate subcommand                                           *)
(* ------------------------------------------------------------------ *)

(* Structural sanity check of a Chrome-trace file written by
   --trace-out: it must parse, carry events, and show work on at least
   two distinct threads (main + ≥1 worker domain) — the property the
   trace-smoke gate cares about. *)
let run_trace_validate args =
  let file =
    match args with [ f ] -> f | _ -> die "usage: bench trace-validate TRACE.json"
  in
  let text =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> die "trace-validate: %s" msg
  in
  let json =
    match Bench_json.parse text with
    | Ok j -> j
    | Error msg -> die "trace-validate: %s: invalid JSON: %s" file msg
  in
  let events =
    match json with
    | Bench_json.Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Bench_json.Arr evs) -> evs
        | _ -> die "trace-validate: %s: no traceEvents array" file)
    | _ -> die "trace-validate: %s: top level is not an object" file
  in
  let field name = function
    | Bench_json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let real_events =
    (* Skip "M" metadata records: they name threads, they aren't work. *)
    List.filter
      (fun ev -> match field "ph" ev with Some (Bench_json.Str "M") -> false | _ -> true)
      events
  in
  if real_events = [] then die "trace-validate: %s: no timeline events" file;
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (fun ev -> match field "tid" ev with Some (Bench_json.Num n) -> Some n | _ -> None)
         real_events)
  in
  if List.length tids < 2 then
    die "trace-validate: %s: events on %d domain(s); expected >= 2 (run with --domains > 1)"
      file (List.length tids);
  Printf.printf "%s: ok (%d events across %d domains)\n" file (List.length real_events)
    (List.length tids)

(* ------------------------------------------------------------------ *)
(* experiment driver                                                   *)
(* ------------------------------------------------------------------ *)

(* BENCH_baseline.json -> "baseline"; anything else keeps its stem. *)
let label_of_record_path path =
  let stem = Filename.remove_extension (Filename.basename path) in
  if String.starts_with ~prefix:"BENCH_" stem then
    String.sub stem 6 (String.length stem - 6)
  else stem

let () =
  Obs.Logging.setup ();
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "compare" :: rest -> run_compare rest
  | "trace-validate" :: rest -> run_trace_validate rest
  | _ ->
      let scale = ref 1.0 in
      let metrics_dir = ref None in
      let record = ref None in
      let trace_out = ref None in
      let journal = ref None in
      let selected = ref [] in
      let rec parse = function
        | [] -> ()
        | "--list" :: _ ->
            list_experiments ();
            exit 0
        | "--csv" :: rest ->
            let dir, rest = operand ~flag:"--csv" rest in
            Bench_util.csv_dir := Some dir;
            parse rest
        | "--metrics-dir" :: rest ->
            let dir, rest = operand ~flag:"--metrics-dir" rest in
            metrics_dir := Some dir;
            parse rest
        | "--record" :: rest ->
            let file, rest = operand ~flag:"--record" rest in
            record := Some file;
            parse rest
        | "--trace-out" :: rest ->
            let file, rest = operand ~flag:"--trace-out" rest in
            trace_out := Some file;
            parse rest
        | "--journal" :: rest ->
            let file, rest = operand ~flag:"--journal" rest in
            journal := Some file;
            parse rest
        | "--scale" :: rest ->
            let v, rest = operand ~flag:"--scale" rest in
            scale := positive_float ~flag:"--scale" v;
            parse rest
        | "--domains" :: rest ->
            let v, rest = operand ~flag:"--domains" rest in
            Par.set_default_domains (positive_int ~flag:"--domains" v);
            parse rest
        | "--shards" :: rest ->
            let v, rest = operand ~flag:"--shards" rest in
            Bench_util.shards := positive_int ~flag:"--shards" v;
            parse rest
        | "--no-index" :: rest ->
            Index.set_enabled false;
            parse rest
        | "--index-ratio" :: rest ->
            let v, rest = operand ~flag:"--index-ratio" rest in
            (match float_of_string_opt v with
            | Some r -> (
                try Index.set_ratio r
                with Invalid_argument _ -> die "--index-ratio expects a value in [0, 1]")
            | None -> die "--index-ratio expects a value in [0, 1]");
            parse rest
        | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
            die "unknown option %s (try --list for experiments)" flag
        | id :: rest ->
            selected := id :: !selected;
            parse rest
      in
      parse args;
      let selected = List.rev !selected in
      List.iter
        (fun id ->
          if id <> "micro" && not (List.exists (fun (eid, _, _) -> eid = id) Experiments.all)
          then die "unknown experiment %S (try --list)" id)
        selected;
      let run_micro = List.mem "micro" selected || selected = [] in
      let to_run =
        match List.filter (fun id -> id <> "micro") selected with
        | [] ->
            if selected = [] then List.map (fun (id, _, f) -> (id, f)) Experiments.all else []
        | ids ->
            List.map
              (fun id ->
                let _, _, f = List.find (fun (eid, _, _) -> eid = id) Experiments.all in
                (id, f))
              ids
      in
      let instrumented = !metrics_dir <> None || !record <> None in
      if !record <> None then Obs.Resource.start_sampler ();
      if !trace_out <> None then begin
        Obs.Trace.enable ();
        Obs.Recorder.enable ();
        if not (Obs.Runtime_bridge.start ()) then
          prerr_endline "warning: Runtime_events unavailable; trace will lack GC events"
      end;
      (match !journal with
      | None -> ()
      | Some file -> (
          try Obs.Journal.open_file file
          with Sys_error msg -> die "cannot open journal %s: %s" file msg));
      Printf.printf "CLUSEQ benchmark harness (scale %.2f, domains %d)\n" !scale
        (Par.default_domains ());
      let total = ref 0.0 in
      let recorded = ref [] in
      List.iter
        (fun (id, f) ->
          Printf.printf "\n################ %s ################\n%!" id;
          Bench_util.current_experiment := id;
          Bench_util.reset_quality ();
          if instrumented then begin
            (* Fresh, enabled registry per experiment so each report
               reflects that experiment alone. A live --trace-out
               recording keeps its spans and rings: only the metrics
               are scoped to the experiment. *)
            if !trace_out = None then Obs.reset () else Obs.Metrics.reset ();
            Obs.Metrics.enable ();
            Obs.Resource.reset_peak ()
          end;
          let ((), gc), secs =
            Timer.time (fun () -> Obs.Resource.measure (fun () -> f !scale))
          in
          if !record <> None then begin
            Obs.Resource.publish gc;
            recorded :=
              Bench_report.capture ~id ~wall_s:secs ~gc
                ~peak_heap_words:(Obs.Resource.peak_heap_words ())
                ~quality:!Bench_util.quality
              :: !recorded
          end;
          (match !metrics_dir with
          | None -> ()
          | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let path = Filename.concat dir (id ^ ".json") in
              Obs.Export.write_file path (Obs.Export.to_json ());
              Printf.printf "[metrics written to %s]\n%!" path);
          total := !total +. secs;
          Printf.printf "[%s completed in %.1fs]\n%!" id secs)
        to_run;
      let micro_rows = if run_micro then Micro.run () else [] in
      (match !record with
      | None -> ()
      | Some file ->
          let report =
            {
              Bench_report.env =
                Bench_report.collect_env ~label:(label_of_record_path file) ~scale:!scale
                  ~domains:(Par.default_domains ()) ~shards:!Bench_util.shards;
              experiments = List.rev !recorded;
              micro = micro_rows;
            }
          in
          Bench_report.write file report;
          Printf.printf "\n[bench record written to %s]\n%!" file);
      (match !trace_out with
      | None -> ()
      | Some file ->
          ignore (Obs.Runtime_bridge.poll () : int);
          Obs.Runtime_bridge.stop ();
          Obs.Export.write_file file (Obs.Export.to_chrome_trace ());
          Printf.printf "[trace written to %s (open at https://ui.perfetto.dev)]\n%!" file);
      (match !journal with
      | None -> ()
      | Some file ->
          Obs.Journal.close ();
          (* Read the totals after close: the final flush is what moves
             still-buffered records into the written count. *)
          let written = Obs.Journal.events_written () and dropped = Obs.Journal.dropped () in
          Printf.printf "[journal written to %s (%d records%s)]\n%!" file written
            (if dropped > 0 then Printf.sprintf ", %d dropped" dropped else ""));
      Printf.printf "\nall experiments done in %.1fs\n" !total
