(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # every experiment, scale 1
     dune exec bench/main.exe -- table2 fig4  # selected experiments
     dune exec bench/main.exe -- --scale 0.5  # half-size workloads
     dune exec bench/main.exe -- --list       # experiment inventory
     dune exec bench/main.exe -- --csv out/   # also write tables as CSV
     dune exec bench/main.exe -- --metrics-dir out/  # per-experiment metrics JSON
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks

   Each experiment regenerates one table or figure of the paper's
   evaluation (see DESIGN.md Sec. 4 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured results). *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter (fun (id, doc, _) -> Printf.printf "  %-10s %s\n" id doc) Experiments.all;
  Printf.printf "  %-10s %s\n" "micro" "Bechamel micro-benchmarks of core primitives"

let () =
  Obs.Logging.setup ();
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1.0 in
  let metrics_dir = ref None in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--list" :: _ ->
        list_experiments ();
        exit 0
    | "--csv" :: dir :: rest ->
        Bench_util.csv_dir := Some dir;
        parse rest
    | "--metrics-dir" :: dir :: rest ->
        metrics_dir := Some dir;
        parse rest
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> scale := f
        | _ ->
            prerr_endline "--scale expects a positive number";
            exit 2);
        parse rest
    | id :: rest ->
        selected := id :: !selected;
        parse rest
  in
  parse args;
  let selected = List.rev !selected in
  let run_micro = List.mem "micro" selected || selected = [] in
  let to_run =
    match List.filter (fun id -> id <> "micro") selected with
    | [] ->
        if selected = [] then List.map (fun (id, _, f) -> (id, f)) Experiments.all else []
    | ids ->
        List.map
          (fun id ->
            match List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all with
            | Some (eid, _, f) -> (eid, f)
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" id;
                exit 2)
          ids
  in
  Printf.printf "CLUSEQ benchmark harness (scale %.2f)\n" !scale;
  let total = ref 0.0 in
  List.iter
    (fun (id, f) ->
      Printf.printf "\n################ %s ################\n%!" id;
      Bench_util.current_experiment := id;
      (match !metrics_dir with
      | None -> ()
      | Some _ ->
          (* Fresh, enabled registry per experiment so each JSON reflects
             that experiment alone. *)
          Obs.reset ();
          Obs.Metrics.enable ());
      let (), secs = Timer.time (fun () -> f !scale) in
      (match !metrics_dir with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (id ^ ".json") in
          Obs.Export.write_file path (Obs.Export.to_json ());
          Printf.printf "[metrics written to %s]\n%!" path);
      total := !total +. secs;
      Printf.printf "[%s completed in %.1fs]\n%!" id secs)
    to_run;
  if run_micro then Micro.run ();
  Printf.printf "\nall experiments done in %.1fs\n" !total
