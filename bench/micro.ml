(* Bechamel micro-benchmarks of the core primitives: PST insertion,
   prediction-node walks, the similarity DP, and the baseline distance
   kernels. Complements the macro experiment harness with ns/op numbers. *)

open Bechamel
open Toolkit

let mk_workload () =
  Workload.generate
    {
      Workload.default_params with
      n_sequences = 64;
      avg_length = 200;
      n_clusters = 4;
      contexts_per_cluster = 120;
      concentration = 0.15;
      seed = 77;
    }

let tests () =
  let w = mk_workload () in
  let db = w.db in
  let lbg = Seq_database.log_background db in
  let seqs = Seq_database.sequences db in
  let pst_cfg = { (Pst.default_config ~alphabet_size:26) with significance = 8 } in
  (* A trained cluster PST for the query-side benches. *)
  let trained = Pst.create pst_cfg in
  Array.iteri (fun i s -> if w.labels.(i) = 0 then Pst.insert_sequence trained s) seqs;
  let probe = seqs.(0) in
  let mid = (Array.length probe - 1) / 2 in
  let counter = ref 0 in
  let next_seq () =
    let s = seqs.(!counter mod Array.length seqs) in
    incr counter;
    s
  in
  [
    Test.make ~name:"pst-insert-200sym"
      (Staged.stage (fun () ->
           let t = Pst.create pst_cfg in
           Pst.insert_sequence t (next_seq ())));
    Test.make ~name:"pst-prediction-walk"
      (Staged.stage (fun () -> ignore (Pst.prediction_node trained probe ~lo:0 ~pos:mid)));
    Test.make ~name:"pst-log-prob"
      (Staged.stage (fun () -> ignore (Pst.log_prob trained probe ~lo:0 ~pos:mid)));
    Test.make ~name:"similarity-dp-200sym"
      (Staged.stage (fun () -> ignore (Similarity.score trained ~log_background:lbg (next_seq ()))));
    (* The compiled-automaton pair for the scan above: the same scoring
       on a precompiled PSA (the gated kernel metric; the acceptance
       target is >= 2x faster than similarity-dp-200sym), and the cost
       of compiling the trained tree once. *)
    Test.make ~name:"similarity-psa-200sym"
      (let psa = Psa.compile trained in
       Staged.stage (fun () ->
           ignore (Similarity.score_psa psa ~log_background:lbg (next_seq ()))));
    (* The batched kernel over the whole 64-sequence block (~12.8k
       symbols per run), reusing one scratch — the shape Cluseq
       reclustering drives per (cluster, block) task. Compare per
       symbol against similarity-psa-200sym × 64. *)
    Test.make ~name:"psa-batch-scan"
      (let psa = Psa.compile trained in
       let batch = Psa.batch_create ~capacity:(Array.length seqs) () in
       Staged.stage (fun () ->
           ignore (Similarity.score_batch psa ~log_background:lbg ~batch seqs)));
    Test.make ~name:"psa-compile"
      (Staged.stage (fun () -> ignore (Psa.compile trained)));
    Test.make ~name:"edit-distance-200x200"
      (Staged.stage (fun () -> ignore (Edit_distance.distance (next_seq ()) (next_seq ()))));
    Test.make ~name:"block-edit-200x200"
      (Staged.stage (fun () -> ignore (Block_edit.distance (next_seq ()) (next_seq ()))));
    Test.make ~name:"qgram-profile-200sym"
      (Staged.stage (fun () -> ignore (Qgram.profile ~q:3 (next_seq ()))));
    (* Candidate-index kernels: building one sequence sketch, and one
       admit test of a 64-hash sketch against a trained cluster bitmap —
       the per-pair cost the gate pays to skip a similarity-dp-200sym. *)
    Test.make ~name:"index-fill-200sym"
      (Staged.stage (fun () -> ignore (Index.sketch_of_sequence (next_seq ()))));
    Test.make ~name:"gated-scan-admit"
      (let cs = Index.of_pst trained in
       let sk = Index.sketch_of_sequence probe in
       Staged.stage (fun () -> ignore (Index.admit sk cs ~ratio:0.3)));
    Test.make ~name:"hmm-loglik-10st-200sym"
      (let m = Hmm.random (Rng.create 5) ~n_states:10 ~n_symbols:26 in
       Staged.stage (fun () -> ignore (Hmm.log_likelihood m (next_seq ()))));
  ]

(* Direct minor-allocation measurement of the two scan shapes, in words
   per scored symbol: the per-sequence score_psa loop (the pre-batch
   reclustering kernel, one result record per pair) against score_batch
   with a reused scratch. Bechamel measures time; Gc.minor_words deltas
   are the honest unit for the off-heap claim. Reported as extra rows so
   `bench --record` folds them into the micro block (they are words, not
   ns — the name says so; the micro compare's 10 ns floor skips them, the
   experiment-level gc.minor_words_per_symbol verdict is the gate). *)
let alloc_rows () =
  let w = mk_workload () in
  let lbg = Seq_database.log_background w.db in
  let seqs = Seq_database.sequences w.db in
  let pst_cfg = { (Pst.default_config ~alphabet_size:26) with significance = 8 } in
  let trained = Pst.create pst_cfg in
  Array.iteri (fun i s -> if w.labels.(i) = 0 then Pst.insert_sequence trained s) seqs;
  let psa = Psa.compile trained in
  let symbols = Array.fold_left (fun acc s -> acc + Array.length s) 0 seqs in
  let words_per_symbol f =
    f ();
    (* warm: one-time allocation (scratch growth) settles *)
    let reps = 50 in
    let before = Gc.minor_words () in
    for _ = 1 to reps do
      f ()
    done;
    (Gc.minor_words () -. before) /. float_of_int (reps * symbols)
  in
  let serial =
    words_per_symbol (fun () ->
        Array.iter (fun s -> ignore (Similarity.score_psa psa ~log_background:lbg s)) seqs)
  in
  let batch_scratch = Psa.batch_create ~capacity:(Array.length seqs) () in
  let batched =
    words_per_symbol (fun () ->
        ignore (Similarity.score_batch psa ~log_background:lbg ~batch:batch_scratch seqs))
  in
  [
    ("cluseq/alloc-psa-serial-words-per-symbol", serial);
    ("cluseq/alloc-psa-batch-words-per-symbol", batched);
  ]

(* Runs the suite, prints the table, and returns the (name, ns/run) rows
   so `bench --record` can fold them into the BENCH_*.json under "micro". *)
let run () =
  Printf.printf "\n== Micro-benchmarks (Bechamel, ns/run) ==\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~stabilize:false ~quota:(Time.second 0.25) () in
  let grouped = Test.make_grouped ~name:"cluseq" ~fmt:"%s/%s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some [ x ] -> x | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  List.iter (fun (name, ns) -> Printf.printf "  %-40s %12.0f ns/run\n" name ns) rows;
  let alloc = alloc_rows () in
  Printf.printf "\n== Scan allocation (Gc.minor_words deltas) ==\n%!";
  List.iter
    (fun (name, words) -> Printf.printf "  %-40s %12.4f words/symbol\n" name words)
    alloc;
  rows @ alloc
