(* The experiment harness: one function per table/figure of the paper's
   evaluation (Sec. 6). Each prints the same rows/series the paper reports.

   Scaling: paper workloads (8000 proteins; 100,000 × 1000-symbol synthetic
   sequences) are scaled down so the full suite runs on a laptop; the
   --scale flag multiplies the default sizes. Statistical thresholds scale
   with the data: the paper's c = 30 (calibrated for thousands of
   sequences per cluster) becomes c ≈ 5-10 at 1/10-1/50 scale.
   EXPERIMENTS.md records paper-vs-measured for every run. *)

open Bench_util

(* ------------------------------------------------------------------ *)
(* Shared workload + config builders                                   *)
(* ------------------------------------------------------------------ *)

let protein_workload scale =
  Protein_sim.generate
    {
      Protein_sim.default_params with
      total_sequences = scaled scale 600;
      n_families = 30;
    }

let protein_config =
  {
    Cluseq.default_config with
    k_init = 10 (* the paper's Table 2 run uses k = 10 *);
    significance = 5;
    min_residual = Some 5;
    t_init = 1.0005 (* the paper's intentionally-wrong initial t *);
    seed = 1;
  }

let synth_workload ?(n = 600) ?(len = 250) ?(sigma = 26) ?(k = 8) ?(outliers = 0.05)
    ?(contexts = 120) ?(concentration = 0.15) ?(max_context_len = 4) ?(shared_base = false)
    ?(base_concentration = 1.5) ?core_symbols ?(seed = 7) scale =
  Workload.generate
    {
      Workload.n_sequences = scaled scale n;
      avg_length = len;
      alphabet_size = sigma;
      n_clusters = k;
      outlier_fraction = outliers;
      contexts_per_cluster = contexts;
      concentration;
      max_context_len;
      base_concentration;
      core_symbols;
      shared_base;
      seed;
    }

let synth_config =
  {
    Cluseq.default_config with
    k_init = 2;
    significance = 8;
    min_residual = Some 8;
    t_init = 1.2;
    max_iterations = 30;
    seed = 3;
  }

(* ------------------------------------------------------------------ *)
(* Table 2: model comparison on the protein database                   *)
(* ------------------------------------------------------------------ *)

let table2 scale =
  let data = protein_workload scale in
  let truth = data.labels in
  let k = data.params.n_families in
  note "protein database: %d sequences, %d families, avg length %.0f\n"
    (Seq_database.n_sequences data.db) k (Seq_database.avg_length data.db);
  let rows = ref [] in
  let add name labels seconds =
    rows :=
      [ name; Printf.sprintf "%.0f%%" (pct (accuracy ~truth labels)); Printf.sprintf "%.1f" seconds ]
      :: !rows
  in
  let r = score_cluseq ~config:protein_config data.db in
  note "CLUSEQ found %d clusters (final t = %.3g, %d iterations)\n" r.n_clusters r.final_t
    r.iterations;
  add "CLUSEQ" r.labels r.seconds;
  let baseline name m =
    let labels, seconds =
      Timer.time (fun () -> Baseline_cluster.run (Rng.create 17) ~k m data.db)
    in
    add name labels seconds
  in
  baseline "ED" Baseline_cluster.Edit_distance;
  baseline "EDBO" Baseline_cluster.Block_edit;
  baseline "HMM" (Baseline_cluster.Hmm 10);
  baseline "q-gram" (Baseline_cluster.Qgram 3);
  table ~title:"Table 2: model comparison (paper: CLUSEQ 82%/144s, ED 23%/487s, EDBO 80%/13754s, HMM 81%/3117s, q-gram 75%/132s)"
    ~header:[ "Model"; "Correctly labeled"; "Response time (s)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Table 3: per-family precision/recall on the protein database        *)
(* ------------------------------------------------------------------ *)

let table3 scale =
  let data = protein_workload scale in
  let truth = data.labels in
  let r = score_cluseq ~config:protein_config data.db in
  let pred_class = Matching.relabel ~truth ~pred:r.labels in
  let prs = Metrics.per_class ~truth ~pred_class in
  (* The paper lists 10 of the 30 families; we show the 10 largest. *)
  let by_size =
    List.sort (fun (a, _) (b, _) -> compare data.family_sizes.(b) data.family_sizes.(a)) prs
  in
  let rows =
    List.filteri (fun i _ -> i < 10) by_size
    |> List.map (fun (cls, (pr : Metrics.pr)) ->
           [
             Printf.sprintf "family-%02d" cls;
             string_of_int data.family_sizes.(cls);
             Printf.sprintf "%.0f" (pct pr.precision);
             Printf.sprintf "%.0f" (pct pr.recall);
           ])
  in
  table ~title:"Table 3: per-family precision/recall, 10 largest families (paper: 75-88% precision, 80-89% recall across sizes 141-884)"
    ~header:[ "Family"; "Size"; "Precision %"; "Recall %" ] rows;
  note "overall: %.0f%% correctly labeled, %d clusters for 30 families\n"
    (pct (accuracy ~truth r.labels)) r.n_clusters

(* ------------------------------------------------------------------ *)
(* Table 4: language clustering                                        *)
(* ------------------------------------------------------------------ *)

let table4 scale =
  let data =
    Language_sim.generate
      {
        Language_sim.per_language = scaled scale 200;
        n_noise = scaled scale 33;
        min_len = 60;
        max_len = 150;
        seed = 9;
      }
  in
  let truth = data.labels in
  note "language database: %d sentences (3 languages + %d noise)\n"
    (Seq_database.n_sequences data.db) (scaled scale 33);
  let config =
    {
      Cluseq.default_config with
      k_init = 3;
      significance = 10;
      min_residual = Some 10;
      max_depth = 6;
      t_init = exp 8.0 (* scaled to this data's similarity range; see EXPERIMENTS.md *);
      seed = 2;
    }
  in
  let r = score_cluseq ~config data.db in
  let pred_class = Matching.relabel ~truth ~pred:r.labels in
  let prs = Metrics.per_class ~truth ~pred_class in
  set_quality "macro_recall" (Metrics.macro_recall prs);
  let name = function 0 -> "English" | 1 -> "Chinese" | 2 -> "Japanese" | _ -> "?" in
  let rows =
    List.map
      (fun (cls, (pr : Metrics.pr)) ->
        [ name cls; Printf.sprintf "%.0f" (pct pr.precision); Printf.sprintf "%.0f" (pct pr.recall) ])
      prs
  in
  table ~title:"Table 4: language clustering (paper: en 86/84, zh 79/78, ja 81/80 precision/recall %)"
    ~header:[ "Language"; "Precision %"; "Recall %" ] rows;
  let out = Metrics.outlier_detection ~truth ~pred_class in
  note "clusters found: %d; noise sentences kept unclustered: %.0f%% (time %.1fs)\n" r.n_clusters
    (pct out.recall) r.seconds

(* ------------------------------------------------------------------ *)
(* Figure 4: effect of the PST size limit                              *)
(* ------------------------------------------------------------------ *)

let fig4 scale =
  (* A harder workload than the other synthetic benches: the cluster
     signal is spread across many weaker contexts over a larger alphabet,
     so a heavily pruned tree genuinely loses information — otherwise the
     budget never bites and the curve is flat. *)
  let data =
    synth_workload ~n:500 ~len:250 ~sigma:26 ~k:8 ~contexts:200 ~concentration:0.15
      ~max_context_len:4 ~shared_base:true ~seed:4 scale
  in
  let truth = data.labels in
  let rows =
    List.map
      (fun max_nodes ->
        let result, seconds =
          Timer.time (fun () -> Cluseq.run ~config:{ synth_config with max_nodes } data.db)
        in
        let labels = Cluseq.hard_labels result ~n:(Seq_database.n_sequences data.db) in
        let prec, rec_ = macro_pr ~truth labels in
        let avg_bytes =
          if Array.length result.pst_stats = 0 then 0
          else
            Array.fold_left (fun acc (_, (st : Pst.stats)) -> acc + st.approx_bytes) 0
              result.pst_stats
            / Array.length result.pst_stats
        in
        [
          string_of_int max_nodes;
          Printf.sprintf "%dKB" (avg_bytes / 1024);
          Printf.sprintf "%.0f" (pct prec);
          Printf.sprintf "%.0f" (pct rec_);
          Printf.sprintf "%.2f" (seconds /. float_of_int result.iterations);
          Printf.sprintf "%.1f" seconds;
        ])
      [ 15; 30; 60; 125; 250; 500; 1000; 2500; 5000 ]
  in
  table ~title:"Figure 4: PST size limit vs accuracy and time (paper: accuracy saturates by 5MB/tree, time keeps growing)"
    ~header:[ "Max nodes/tree"; "Avg tree size"; "Precision %"; "Recall %"; "s/iteration"; "Time (s)" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 5: effect of the initial sample size m                       *)
(* ------------------------------------------------------------------ *)

let fig5 scale =
  let data = synth_workload ~seed:5 ~outliers:0.05 scale in
  let truth = data.labels in
  let rows =
    List.map
      (fun sample_factor ->
        let r = score_cluseq ~config:{ synth_config with sample_factor } data.db in
        let prec, rec_ = macro_pr ~truth r.labels in
        [
          Printf.sprintf "%d x k" sample_factor;
          Printf.sprintf "%.0f" (pct prec);
          Printf.sprintf "%.0f" (pct rec_);
          Printf.sprintf "%.1f" r.seconds;
        ])
      [ 1; 2; 3; 5; 8; 10 ]
  in
  table ~title:"Figure 5: initial sample size m vs quality and time (paper: quality saturates at m = 5k; response-time valley near 3-5k)"
    ~header:[ "m"; "Precision %"; "Recall %"; "Time (s)" ] rows

(* ------------------------------------------------------------------ *)
(* Table 5: effect of the initial number of clusters                   *)
(* ------------------------------------------------------------------ *)

let table5 scale =
  (* Paper: 100 embedded clusters, k_init in {1, 20, 100, 200}; we embed 20
     and sweep the same ratios {1, k*/5, k*, 2k*}. *)
  let k_star = 20 in
  let data = synth_workload ~n:1000 ~len:200 ~k:k_star ~outliers:0.10 ~seed:6 scale in
  let truth = data.labels in
  let rows =
    List.map
      (fun k_init ->
        let r = score_cluseq ~config:{ synth_config with k_init } data.db in
        let prec, rec_ = macro_pr ~truth r.labels in
        [
          string_of_int k_init;
          string_of_int r.n_clusters;
          Printf.sprintf "%.1f" r.seconds;
          Printf.sprintf "%.1f" (pct prec);
          Printf.sprintf "%.1f" (pct rec_);
        ])
      [ 1; 4; 20; 40 ]
  in
  table
    ~title:
      (Printf.sprintf
         "Table 5: initial cluster count (embedded k* = %d; paper: final k ~= 100 regardless of init 1-200, worst-case ~60%% extra time)"
         k_star)
    ~header:[ "Initial k"; "Final clusters"; "Time (s)"; "Precision %"; "Recall %" ] rows

(* ------------------------------------------------------------------ *)
(* Table 6: effect of the initial similarity threshold                 *)
(* ------------------------------------------------------------------ *)

let table6 scale =
  (* The paper sweeps t_init in {1.05, 1.5, 2, 3} around a true t of 2
     (its synthetic similarities are O(1)); our synthetic similarities are
     exponentially larger, so we sweep the same *relative* spread around
     the data's own similarity scale. *)
  let data = synth_workload ~n:800 ~len:200 ~k:20 ~outliers:0.10 ~seed:8 scale in
  let truth = data.labels in
  let rows =
    List.map
      (fun (label, t_init) ->
        let r = score_cluseq ~config:{ synth_config with k_init = 20; t_init } data.db in
        let prec, rec_ = macro_pr ~truth r.labels in
        [
          label;
          Printf.sprintf "e^%.1f" (log r.final_t);
          Printf.sprintf "%.1f" r.seconds;
          Printf.sprintf "%.1f" (pct prec);
          Printf.sprintf "%.1f" (pct rec_);
        ])
      [ ("1.05", 1.05); ("e^2", exp 2.0); ("e^5", exp 5.0); ("e^10", exp 10.0) ]
  in
  table
    ~title:"Table 6: initial similarity threshold (paper: final t -> 2.0 from any init in 1.05-3, <=30% extra time)"
    ~header:[ "Initial t"; "Final t"; "Time (s)"; "Precision %"; "Recall %" ] rows

(* ------------------------------------------------------------------ *)
(* Sec. 6.3: examination order                                         *)
(* ------------------------------------------------------------------ *)

let order scale =
  (* A borderline workload (weaker context signal, shorter sequences):
     on easy data every order succeeds and the paper's effect is
     invisible. Averaged over several generator seeds. *)
  let seeds = [ 10; 11; 12; 13; 14 ] in
  let datasets =
    List.map
      (fun seed -> synth_workload ~n:400 ~len:200 ~contexts:100 ~concentration:0.18 ~seed scale)
      seeds
  in
  let rows =
    List.map
      (fun order ->
        let accs, times, ks =
          List.fold_left
            (fun (accs, times, ks) (data : Workload.t) ->
              let r = score_cluseq ~config:{ synth_config with order } data.db in
              (accuracy ~truth:data.labels r.labels :: accs, r.seconds :: times,
               r.n_clusters :: ks))
            ([], [], []) datasets
        in
        let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
        [
          Order.to_string order;
          Printf.sprintf "%.0f" (pct (avg accs));
          Printf.sprintf "%.1f" (avg (List.map float_of_int ks));
          Printf.sprintf "%.1f" (avg times);
        ])
      [ Order.Fixed; Order.Random; Order.Cluster_based ]
  in
  table
    ~title:"Sec 6.3: examination order, mean of 5 workloads (paper: fixed 82%, random 83%, cluster-based 65%)"
    ~header:[ "Order"; "Accuracy %"; "Clusters"; "Time (s)" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 6: scalability                                               *)
(* ------------------------------------------------------------------ *)

let scalability_row data config =
  let r = score_cluseq ~config data.Workload.db in
  (r.seconds, r.n_clusters, accuracy ~truth:data.labels r.labels)

let fig6a scale =
  let rows =
    List.map
      (fun k ->
        let data = synth_workload ~n:800 ~len:150 ~k ~seed:11 scale in
        let secs, found, acc = scalability_row data synth_config in
        [ string_of_int k; string_of_int found; Printf.sprintf "%.0f" (pct acc);
          Printf.sprintf "%.1f" secs ])
      [ 4; 8; 12; 16; 20 ]
  in
  table ~title:"Figure 6(a): response time vs number of clusters (paper: linear)"
    ~header:[ "Embedded clusters"; "Found"; "Accuracy %"; "Time (s)" ] rows

let fig6b scale =
  let rows =
    List.map
      (fun n ->
        let data = synth_workload ~n ~len:150 ~k:10 ~seed:12 scale in
        let secs, found, acc = scalability_row data synth_config in
        [ string_of_int (scaled scale n); string_of_int found; Printf.sprintf "%.0f" (pct acc);
          Printf.sprintf "%.1f" secs ])
      [ 400; 800; 1200; 1600; 2000 ]
  in
  table ~title:"Figure 6(b): response time vs number of sequences (paper: linear)"
    ~header:[ "Sequences"; "Found"; "Accuracy %"; "Time (s)" ] rows

let fig6c scale =
  let rows =
    List.map
      (fun len ->
        let data = synth_workload ~n:600 ~len ~k:8 ~seed:13 scale in
        let secs, found, acc = scalability_row data synth_config in
        [ string_of_int len; string_of_int found; Printf.sprintf "%.0f" (pct acc);
          Printf.sprintf "%.1f" secs ])
      [ 100; 150; 200; 300; 400 ]
  in
  table
    ~title:"Figure 6(c): response time vs average sequence length (paper: mildly super-linear)"
    ~header:[ "Avg length"; "Found"; "Accuracy %"; "Time (s)" ] rows

let fig6d scale =
  let rows =
    List.map
      (fun sigma ->
        (* A peaked base keeps the per-symbol statistics comparable across
           alphabet sizes, as discussed in EXPERIMENTS.md. *)
        let data = synth_workload ~n:600 ~len:150 ~sigma ~k:8 ~core_symbols:12 ~seed:14 scale in
        let secs, found, acc = scalability_row data synth_config in
        [ string_of_int sigma; string_of_int found; Printf.sprintf "%.0f" (pct acc);
          Printf.sprintf "%.1f" secs ])
      [ 10; 26; 50; 100; 200 ]
  in
  table ~title:"Figure 6(d): response time vs number of distinct symbols (paper: flat)"
    ~header:[ "Alphabet size"; "Found"; "Accuracy %"; "Time (s)" ] rows

(* ------------------------------------------------------------------ *)
(* Ablations (extension beyond the paper)                              *)
(* ------------------------------------------------------------------ *)

let ablation scale =
  let data = synth_workload ~seed:15 scale in
  let truth = data.labels in
  let base = { synth_config with max_nodes = 800 (* tight: pruning active *) } in
  let run name config =
    let r = score_cluseq ~config data.db in
    [ name; Printf.sprintf "%.0f" (pct (accuracy ~truth r.labels)); string_of_int r.n_clusters;
      Printf.sprintf "%.1f" r.seconds ]
  in
  let rows =
    [
      run "baseline (smallest-count)" base;
      run "pruning: longest-label" { base with pruning = Pruning.Longest_label_first };
      run "pruning: expected-vector" { base with pruning = Pruning.Expected_vector_first };
      run "no node budget" { base with max_nodes = 1_000_000 };
      run "no smoothing (p_min = 0)" { base with p_min = 0.0 };
      run "no consolidation" { base with consolidate = false };
      run "no threshold adjustment" { base with adjust_threshold = false };
      run "shallow contexts (L = 3)" { base with max_depth = 3 };
    ]
  in
  table ~title:"Ablation: design choices (extension; not in the paper)"
    ~header:[ "Variant"; "Accuracy %"; "Clusters"; "Time (s)" ] rows;
  (* Sec. 2's rejected alternative: compare two cluster models by direct
     CPD difference (variational / symmetrized KL) versus the predict-based
     similarity the paper adopts. *)
  let pst_cfg =
    {
      (Pst.default_config ~alphabet_size:26) with
      significance = base.significance;
      max_depth = base.max_depth;
    }
  in
  let supervised label =
    let t = Pst.create pst_cfg in
    Array.iteri
      (fun i l -> if l = label then Pst.insert_sequence t (Seq_database.get data.db i))
      data.labels;
    t
  in
  let a = supervised 0 and b = supervised 1 in
  let lbg = Seq_database.log_background data.db in
  let probe = Seq_database.get data.db 0 in
  let _, t_var = Timer.time (fun () -> ignore (Divergence.variational a b)) in
  let _, t_kl = Timer.time (fun () -> ignore (Divergence.kl_symmetric a b)) in
  let _, t_sim =
    Timer.time (fun () ->
        for _ = 1 to 100 do
          ignore (Similarity.score a ~log_background:lbg probe)
        done)
  in
  note
    "CPD-difference alternatives (Sec. 2): variational %.3fs, symmetric KL %.3fs per model pair;\n\
     predict-based similarity: %.5fs per sequence-cluster query — the measure the paper adopts.\n"
    t_var t_kl (t_sim /. 100.0);
  (* And as a full clusterer: agglomerative over per-sequence model
     divergences, on a subsample small enough for its O(N^2) distances. *)
  let sub_n = min 120 (Seq_database.n_sequences data.db) in
  let idx = Array.init sub_n Fun.id in
  let sub_db = Seq_database.subset data.db idx in
  let sub_truth = Array.init sub_n (fun i -> data.labels.(i)) in
  let k_true = 1 + Array.fold_left max 0 sub_truth in
  let agg_labels, agg_secs =
    Timer.time (fun () -> Agglomerative.cluster ~k:k_true sub_db)
  in
  let cl_res, cl_secs =
    Timer.time (fun () -> Cluseq.run ~config:base (Seq_database.subset data.db idx))
  in
  let cl_labels = Cluseq.hard_labels cl_res ~n:sub_n in
  note
    "direct-CPD agglomerative clustering on %d sequences: NMI %.2f in %.1fs;\n\
     CLUSEQ on the same subsample: NMI %.2f in %.1fs.\n"
    sub_n
    (Metrics.normalized_mutual_information ~truth:sub_truth ~pred:agg_labels)
    agg_secs
    (Metrics.normalized_mutual_information ~truth:sub_truth ~pred:cl_labels)
    cl_secs

(* ------------------------------------------------------------------ *)
(* Shard-and-merge speedup (extension beyond the paper)                *)
(* ------------------------------------------------------------------ *)

let shard scale =
  (* 10x the standard synthetic workload: coarse-grained sharding needs
     databases big enough that every shard still clears the statistical
     floors (significance / min-residual) on its partition. *)
  let data = synth_workload ~n:6000 ~len:150 ~seed:16 scale in
  let truth = data.labels in
  note "workload: %d sequences, %d families, %d domains\n"
    (Seq_database.n_sequences data.db) 8 (Par.default_domains ());
  let base = ref 0.0 in
  let rows =
    List.map
      (fun shards ->
        let r = score_cluseq ~config:synth_config ~shards data.db in
        if shards = 1 then base := r.seconds;
        let speedup = if r.seconds > 0.0 then !base /. r.seconds else 0.0 in
        [
          string_of_int shards;
          string_of_int r.n_clusters;
          Printf.sprintf "%.0f" (pct (accuracy ~truth r.labels));
          Printf.sprintf "%.1f" r.seconds;
          Printf.sprintf "%.2fx" speedup;
        ])
      [ 1; 2; 4; 8 ]
  in
  table
    ~title:
      "Shard-and-merge: response time vs shard count (extension; speedup needs --domains > 1)"
    ~header:[ "Shards"; "Clusters"; "Accuracy %"; "Time (s)"; "Speedup" ]
    rows

let all : (string * string * (float -> unit)) list =
  [
    ("table2", "Model comparison on the protein database", table2);
    ("table3", "Per-family precision/recall", table3);
    ("table4", "Language clustering", table4);
    ("fig4", "PST size limit", fig4);
    ("fig5", "Initial sample size m", fig5);
    ("table5", "Initial number of clusters", table5);
    ("table6", "Initial similarity threshold", table6);
    ("order", "Examination order study", order);
    ("fig6a", "Scalability: clusters", fig6a);
    ("fig6b", "Scalability: sequences", fig6b);
    ("fig6c", "Scalability: length", fig6c);
    ("fig6d", "Scalability: alphabet", fig6d);
    ("ablation", "Design-choice ablations", ablation);
    ("shard", "Shard-and-merge speedup", shard);
  ]
