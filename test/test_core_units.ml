(* Unit tests for the smaller core modules: Cluster, Threshold, Order. *)

let alpha = Alphabet.lowercase

let pst_cfg : Pst.config =
  { (Pst.default_config ~alphabet_size:26) with significance = 2; p_min = 0.0 }

(* --- Cluster --------------------------------------------------------- *)

let test_cluster_create () =
  let seed = Sequence.of_string alpha "ababab" in
  let cl = Cluster.create ~id:7 ~capacity:10 pst_cfg seed in
  Alcotest.(check int) "id" 7 (Cluster.id cl);
  Alcotest.(check int) "no members yet" 0 (Cluster.size cl);
  Alcotest.(check int) "PST holds the seed" 6 (Pst.total_count (Cluster.pst cl))

let test_cluster_membership () =
  let cl = Cluster.create ~id:0 ~capacity:10 pst_cfg (Sequence.of_string alpha "ab") in
  Cluster.add_member cl 3;
  Cluster.add_member cl 5;
  Alcotest.(check int) "size" 2 (Cluster.size cl);
  Alcotest.(check bool) "mem" true (Cluster.mem cl 3);
  Cluster.clear_members cl;
  Alcotest.(check int) "cleared" 0 (Cluster.size cl);
  Alcotest.(check bool) "PST survives clear" true (Pst.total_count (Cluster.pst cl) > 0)

let test_cluster_absorb_updates_pst () =
  let cl = Cluster.create ~id:0 ~capacity:10 pst_cfg (Sequence.of_string alpha "ababab") in
  let before = Pst.total_count (Cluster.pst cl) in
  let s = Sequence.of_string alpha "ccababcc" in
  (* Pretend the best segment is positions 2..5 ("abab"). *)
  Cluster.absorb cl ~seq_id:1 s { Similarity.log_sim = 1.0; seg_lo = 2; seg_hi = 5 };
  Alcotest.(check bool) "member added" true (Cluster.mem cl 1);
  Alcotest.(check int) "only the segment inserted" (before + 4)
    (Pst.total_count (Cluster.pst cl))

let test_cluster_similarity_prefers_own_style () =
  let lbg = Array.make 26 (log (1.0 /. 26.0)) in
  let cl = Cluster.create ~id:0 ~capacity:10 pst_cfg (Sequence.of_string alpha "abababababab") in
  let like = Cluster.similarity cl ~log_background:lbg (Sequence.of_string alpha "abab") in
  let unlike = Cluster.similarity cl ~log_background:lbg (Sequence.of_string alpha "zqvk") in
  Alcotest.(check bool) "own style wins" true (like.log_sim > unlike.log_sim)

(* --- Threshold ------------------------------------------------------- *)

let test_threshold_create () =
  let t = Threshold.create ~t_init:2.0 in
  Alcotest.(check (float 1e-9)) "log t" (log 2.0) (Threshold.log_t t);
  Alcotest.(check (float 1e-9)) "linear t" 2.0 (Threshold.linear_t t);
  Alcotest.(check bool) "not frozen" false (Threshold.frozen t);
  Alcotest.(check bool) "t < 1 rejected" true
    (try ignore (Threshold.create ~t_init:0.5); false with Invalid_argument _ -> true);
  (* A plain [t_init < 1.0] guard lets NaN through (NaN comparisons are
     always false); non-finite values must be rejected too. *)
  List.iter
    (fun (label, bad) ->
      Alcotest.(check bool) label true
        (try ignore (Threshold.create ~t_init:bad); false with Invalid_argument _ -> true))
    [ ("NaN rejected", Float.nan);
      ("+inf rejected", Float.infinity);
      ("-inf rejected", Float.neg_infinity) ]

let test_threshold_moves_toward_valley () =
  let t = Threshold.create ~t_init:1.0 in
  (* Bimodal: low mass near 1, high mass near 30 → valley somewhere in
     (5, 30); t must move right. *)
  let samples =
    Array.concat
      [ Array.init 500 (fun i -> 1.0 +. (float_of_int (i mod 30) /. 10.0));
        Array.init 60 (fun i -> 30.0 +. float_of_int (i mod 10)) ]
  in
  let before = Threshold.log_t t in
  Threshold.adjust t samples;
  Alcotest.(check bool) "moved up" true (Threshold.log_t t > before)

let test_threshold_halfway_step () =
  let t = Threshold.create ~t_init:1.0 in
  let samples =
    Array.concat
      [ Array.init 500 (fun i -> 1.0 +. (float_of_int (i mod 30) /. 10.0));
        Array.init 60 (fun i -> 30.0 +. float_of_int (i mod 10)) ]
  in
  Threshold.adjust t samples;
  let after_one = Threshold.log_t t in
  (* The paper's update is t <- (t + t̂)/2: from 0 the new t is v/2, so the
     implied valley is 2·t. A second adjust with the same samples moves t
     to (v/2 + v)/2 = 3v/4. *)
  Threshold.adjust t samples;
  let after_two = Threshold.log_t t in
  Alcotest.(check (float 1e-6)) "halfway dynamics" (1.5 *. after_one) after_two

let test_threshold_freezes () =
  let t = Threshold.create ~t_init:1.0 in
  let samples =
    Array.concat
      [ Array.init 500 (fun i -> 1.0 +. (float_of_int (i mod 30) /. 10.0));
        Array.init 60 (fun i -> 30.0 +. float_of_int (i mod 10)) ]
  in
  for _ = 1 to 100 do
    Threshold.adjust t samples
  done;
  Alcotest.(check bool) "eventually frozen" true (Threshold.frozen t);
  let frozen_at = Threshold.log_t t in
  Threshold.adjust t (Array.map (fun x -> x +. 100.0) samples);
  Alcotest.(check (float 1e-12)) "frozen ignores new samples" frozen_at (Threshold.log_t t)

let test_threshold_ignores_tiny_or_infinite_samples () =
  let t = Threshold.create ~t_init:2.0 in
  Threshold.adjust t [| 1.0; 2.0; neg_infinity |];
  Alcotest.(check (float 1e-12)) "fewer than 10 finite samples: no-op" (log 2.0)
    (Threshold.log_t t)

let test_threshold_never_below_one () =
  let t = Threshold.create ~t_init:1.0 in
  (* All samples negative in log space: valley would be < 0 but t is
     clamped at log 1 = 0 (paper: t >= 1). *)
  let samples = Array.init 100 (fun i -> -10.0 +. float_of_int (i mod 5)) in
  for _ = 1 to 10 do
    Threshold.adjust t samples
  done;
  Alcotest.(check bool) "clamped at 1" true (Threshold.log_t t >= 0.0)

(* --- Order ----------------------------------------------------------- *)

let no_best n : (int * float) option array = Array.make n None

let test_order_fixed () =
  let rng = Rng.create 1 in
  let order = Order.arrange Order.Fixed rng ~n:5 ~best:(no_best 5) in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3; 4 |] order

let test_order_random_is_permutation () =
  let rng = Rng.create 2 in
  let order = Order.arrange Order.Random rng ~n:100 ~best:(no_best 100) in
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (order <> Array.init 100 Fun.id)

let test_order_random_varies_between_calls () =
  let rng = Rng.create 3 in
  let o1 = Order.arrange Order.Random rng ~n:50 ~best:(no_best 50) in
  let o2 = Order.arrange Order.Random rng ~n:50 ~best:(no_best 50) in
  Alcotest.(check bool) "fresh permutation each iteration" true (o1 <> o2)

let test_order_cluster_based () =
  let rng = Rng.create 4 in
  let best : (int * float) option array =
    [| Some (2, 0.0); None; Some (1, 0.0); Some (2, 0.0); Some (1, 0.0) |]
  in
  let order = Order.arrange Order.Cluster_based rng ~n:5 ~best in
  (* Cluster 1 members (2,4) first, then cluster 2 members (0,3), then the
     unclustered (1); stable within groups. *)
  Alcotest.(check (array int)) "grouped by cluster" [| 2; 4; 0; 3; 1 |] order

let test_order_names () =
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Order.to_string o ^ " roundtrip")
        true
        (Order.of_string (Order.to_string o) = Some o))
    [ Order.Fixed; Order.Random; Order.Cluster_based ];
  Alcotest.(check bool) "unknown name" true (Order.of_string "bogus" = None)

let () =
  Alcotest.run "core-units"
    [
      ( "cluster",
        [
          Alcotest.test_case "create" `Quick test_cluster_create;
          Alcotest.test_case "membership" `Quick test_cluster_membership;
          Alcotest.test_case "absorb updates PST" `Quick test_cluster_absorb_updates_pst;
          Alcotest.test_case "similarity" `Quick test_cluster_similarity_prefers_own_style;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "create" `Quick test_threshold_create;
          Alcotest.test_case "moves toward valley" `Quick test_threshold_moves_toward_valley;
          Alcotest.test_case "halfway dynamics" `Quick test_threshold_halfway_step;
          Alcotest.test_case "freezes" `Quick test_threshold_freezes;
          Alcotest.test_case "ignores sparse samples" `Quick
            test_threshold_ignores_tiny_or_infinite_samples;
          Alcotest.test_case "never below 1" `Quick test_threshold_never_below_one;
        ] );
      ( "order",
        [
          Alcotest.test_case "fixed" `Quick test_order_fixed;
          Alcotest.test_case "random permutation" `Quick test_order_random_is_permutation;
          Alcotest.test_case "random varies" `Quick test_order_random_varies_between_calls;
          Alcotest.test_case "cluster-based" `Quick test_order_cluster_based;
          Alcotest.test_case "names" `Quick test_order_names;
        ] );
    ]
