(* Tests for the Obs instrumentation library: metrics registry semantics,
   span tracing, exporters, and the Timer stopwatch it is built on.

   The registry is process-global, so every test starts from
   [Obs.reset ()] and restores the disabled state before returning. *)

let with_clean_obs f =
  Obs.reset ();
  Obs.Metrics.enable ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Trace.disable ();
      Obs.Trace.clear_hooks ();
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_basic () =
  with_clean_obs @@ fun () ->
  let c = Obs.Metrics.counter "test.counter_basic" in
  Alcotest.(check int) "starts at 0" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "1 + 41" 42 (Obs.Metrics.counter_value c);
  Alcotest.(check string) "name" "test.counter_basic" (Obs.Metrics.counter_name c)

let test_find_or_create_identity () =
  with_clean_obs @@ fun () ->
  let a = Obs.Metrics.counter "test.same" in
  let b = Obs.Metrics.counter "test.same" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr b;
  Alcotest.(check int) "both handles hit one counter" 2 (Obs.Metrics.counter_value a)

let test_kind_mismatch () =
  with_clean_obs @@ fun () ->
  ignore (Obs.Metrics.counter "test.kind");
  Alcotest.(check bool) "gauge on counter name raises" true
    (try
       ignore (Obs.Metrics.gauge "test.kind");
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  with_clean_obs @@ fun () ->
  let g = Obs.Metrics.gauge "test.gauge" in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Obs.Metrics.gauge_value g);
  Obs.Metrics.set g 3.5;
  Obs.Metrics.set g (-1.25);
  Alcotest.(check (float 0.0)) "last write wins" (-1.25) (Obs.Metrics.gauge_value g)

let test_histogram_buckets () =
  with_clean_obs @@ fun () ->
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] "test.histo" in
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 1.0;
  (* boundary lands in its own bucket (le = upper bound) *)
  Obs.Metrics.observe h 5.0;
  Obs.Metrics.observe h 100.0;
  (* overflow *)
  let buckets = Obs.Metrics.bucket_counts h in
  Alcotest.(check int) "three buckets incl. +Inf" 3 (Array.length buckets);
  let le, n = buckets.(0) in
  Alcotest.(check (float 0.0)) "bucket 0 bound" 1.0 le;
  Alcotest.(check int) "bucket 0 count" 2 n;
  Alcotest.(check int) "bucket 1 count" 1 (snd buckets.(1));
  Alcotest.(check bool) "+Inf bound" true (fst buckets.(2) = infinity);
  Alcotest.(check int) "+Inf count" 1 (snd buckets.(2));
  Alcotest.(check int) "total count" 4 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 106.5 (Obs.Metrics.histogram_sum h)

let test_quantiles () =
  with_clean_obs @@ fun () ->
  let h = Obs.Metrics.histogram ~buckets:[| 10.0; 20.0; 30.0 |] "test.quant" in
  Alcotest.(check bool) "empty histogram -> nan" true
    (Float.is_nan (Obs.Metrics.quantile h 0.5));
  for _ = 1 to 4 do Obs.Metrics.observe h 5.0 done;
  for _ = 1 to 4 do Obs.Metrics.observe h 15.0 done;
  for _ = 1 to 2 do Obs.Metrics.observe h 25.0 done;
  (* rank 5 of 10 falls 1/4 into the (10, 20] bucket *)
  Alcotest.(check (float 1e-9)) "p50 interpolates" 12.5 (Obs.Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p90 interpolates" 25.0 (Obs.Metrics.quantile h 0.9);
  Alcotest.(check (float 1e-9)) "q=0 is the lower edge" 0.0 (Obs.Metrics.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "q=1 is the upper edge" 30.0 (Obs.Metrics.quantile h 1.0);
  (* overflow observations clamp to the last finite bound *)
  for _ = 1 to 20 do Obs.Metrics.observe h 1000.0 done;
  Alcotest.(check (float 1e-9)) "overflow clamps to last bound" 30.0
    (Obs.Metrics.quantile h 0.99);
  Alcotest.(check bool) "q out of range raises" true
    (try
       ignore (Obs.Metrics.quantile h 1.5);
       false
     with Invalid_argument _ -> true)

let test_quantile_edges () =
  with_clean_obs @@ fun () ->
  (* empty: every q is nan, not an exception and not a bogus 0 *)
  let empty = Obs.Metrics.histogram ~buckets:[| 10.0 |] "test.quant_empty" in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "empty histogram q=%g -> nan" q)
        true
        (Float.is_nan (Obs.Metrics.quantile empty q)))
    [ 0.0; 0.5; 1.0 ];
  (* single sample: all quantiles land in its bucket, interpolated *)
  let one = Obs.Metrics.histogram ~buckets:[| 10.0; 20.0 |] "test.quant_one" in
  Obs.Metrics.observe one 15.0;
  Alcotest.(check (float 1e-9)) "single sample q=0 is bucket lower edge" 10.0
    (Obs.Metrics.quantile one 0.0);
  Alcotest.(check (float 1e-9)) "single sample p50 is bucket midpoint" 15.0
    (Obs.Metrics.quantile one 0.5);
  Alcotest.(check (float 1e-9)) "single sample q=1 is bucket upper edge" 20.0
    (Obs.Metrics.quantile one 1.0);
  (* all mass in one interior bucket: quantiles interpolate linearly
     across that bucket and never leave it *)
  let mass = Obs.Metrics.histogram ~buckets:[| 10.0; 20.0; 30.0 |] "test.quant_mass" in
  for _ = 1 to 10 do Obs.Metrics.observe mass 15.0 done;
  Alcotest.(check (float 1e-9)) "all-mass p50" 15.0 (Obs.Metrics.quantile mass 0.5);
  Alcotest.(check (float 1e-9)) "all-mass p95" 19.5 (Obs.Metrics.quantile mass 0.95);
  Alcotest.(check (float 1e-9)) "all-mass q=1 stays at bucket edge" 20.0
    (Obs.Metrics.quantile mass 1.0);
  let prev = ref neg_infinity in
  List.iter
    (fun q ->
      let v = Obs.Metrics.quantile mass q in
      Alcotest.(check bool) "quantile within occupied bucket" true (v >= 10.0 && v <= 20.0);
      Alcotest.(check bool) "quantile monotone in q" true (v >= !prev);
      prev := v)
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

let test_disabled_noop () =
  Obs.reset ();
  Obs.Metrics.disable ();
  let c = Obs.Metrics.counter "test.disabled" in
  let g = Obs.Metrics.gauge "test.disabled_g" in
  let h = Obs.Metrics.histogram "test.disabled_h" in
  Obs.Metrics.incr ~by:100 c;
  Obs.Metrics.set g 7.0;
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h);
  Obs.reset ()

let test_reset_in_place () =
  with_clean_obs @@ fun () ->
  let c = Obs.Metrics.counter "test.reset" in
  Obs.Metrics.incr ~by:5 c;
  Obs.Metrics.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Alcotest.(check int) "handle still live" 1 (Obs.Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_clean_obs @@ fun () ->
  Obs.Trace.with_span "outer" (fun () ->
      Obs.Trace.with_span "inner_a" (fun () -> ());
      Obs.Trace.with_span "inner_b" (fun () -> ()));
  Obs.Trace.with_span "second_root" (fun () -> ());
  let roots = Obs.Trace.roots () in
  Alcotest.(check (list string)) "two roots, oldest first" [ "outer"; "second_root" ]
    (List.map Obs.Trace.name roots);
  let outer = List.hd roots in
  Alcotest.(check (list string)) "children in order" [ "inner_a"; "inner_b" ]
    (List.map Obs.Trace.name (Obs.Trace.children outer))

let test_span_timing_monotone () =
  with_clean_obs @@ fun () ->
  Obs.Trace.with_span "parent" (fun () ->
      Obs.Trace.with_span "child" (fun () ->
          (* burn a little time so durations are strictly positive *)
          let x = ref 0 in
          for i = 1 to 10_000 do
            x := !x + i
          done;
          ignore !x));
  match Obs.Trace.roots () with
  | [ parent ] ->
      let child = List.hd (Obs.Trace.children parent) in
      Alcotest.(check bool) "child duration > 0" true (Obs.Trace.duration_ns child > 0L);
      Alcotest.(check bool) "parent >= child" true
        (Obs.Trace.duration_ns parent >= Obs.Trace.duration_ns child);
      Alcotest.(check bool) "duration_s consistent" true
        (Obs.Trace.duration_s parent >= Obs.Trace.duration_s child)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_exception_safety () =
  with_clean_obs @@ fun () ->
  (try Obs.Trace.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  Obs.Trace.with_span "after" (fun () -> ());
  Alcotest.(check (list string)) "raising span closed, stack not corrupted"
    [ "raises"; "after" ]
    (List.map Obs.Trace.name (Obs.Trace.roots ()))

let test_span_hooks () =
  with_clean_obs @@ fun () ->
  let events = ref [] in
  Obs.Trace.on_start (fun s -> events := ("start " ^ Obs.Trace.name s) :: !events);
  Obs.Trace.on_stop (fun s -> events := ("stop " ^ Obs.Trace.name s) :: !events);
  Obs.Trace.with_span "a" (fun () -> Obs.Trace.with_span "b" (fun () -> ()));
  Alcotest.(check (list string)) "hook order"
    [ "start a"; "start b"; "stop b"; "stop a" ]
    (List.rev !events)

let test_span_disabled_passthrough () =
  Obs.reset ();
  Obs.Trace.disable ();
  let r = Obs.Trace.with_span "ignored" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Trace.roots ()));
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let with_clean_recorder f =
  Obs.reset ();
  Obs.Recorder.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Recorder.disable ();
      Obs.Recorder.set_capacity 65536;
      Obs.reset ())
    f

let test_recorder_disabled_noop () =
  Obs.reset ();
  Obs.Recorder.disable ();
  let ev = Obs.Recorder.intern "test.rec_off" in
  Obs.Recorder.begin_ ev;
  Obs.Recorder.instant ~arg:9 ev;
  Obs.Recorder.end_ ev;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Recorder.events ()));
  Alcotest.(check int) "nothing dropped" 0 (Obs.Recorder.dropped ());
  Obs.reset ()

let test_recorder_roundtrip () =
  with_clean_recorder @@ fun () ->
  let a = Obs.Recorder.intern "test.rec_a" in
  let b = Obs.Recorder.intern "test.rec_b" in
  Obs.Recorder.begin_ ~arg:7 a;
  Obs.Recorder.instant ~arg:3 b;
  Obs.Recorder.end_ a;
  match Obs.Recorder.events () with
  | [ e1; e2; e3 ] ->
      Alcotest.(check bool) "kinds in order" true
        (e1.Obs.Recorder.kind = Obs.Recorder.Begin
        && e2.Obs.Recorder.kind = Obs.Recorder.Instant
        && e3.Obs.Recorder.kind = Obs.Recorder.End);
      Alcotest.(check string) "begin name" "test.rec_a" e1.ev_name;
      Alcotest.(check string) "instant name" "test.rec_b" e2.ev_name;
      Alcotest.(check int) "begin arg" 7 e1.arg;
      Alcotest.(check int) "instant arg" 3 e2.arg;
      Alcotest.(check bool) "timestamps monotone" true
        (e1.ts_ns <= e2.ts_ns && e2.ts_ns <= e3.ts_ns);
      Alcotest.(check bool) "same domain" true
        (e1.domain = e2.domain && e2.domain = e3.domain)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_recorder_with_event_exception_safe () =
  with_clean_recorder @@ fun () ->
  let ev = Obs.Recorder.intern "test.rec_exn" in
  (try Obs.Recorder.with_event ev (fun () -> failwith "boom") with Failure _ -> ());
  let kinds = List.map (fun e -> e.Obs.Recorder.kind) (Obs.Recorder.events ()) in
  Alcotest.(check bool) "end emitted despite the raise" true
    (kinds = [ Obs.Recorder.Begin; Obs.Recorder.End ])

let test_recorder_wraparound () =
  with_clean_recorder @@ fun () ->
  (* A fresh domain gets a fresh (small) ring; the main domain's ring
     already exists at its default capacity. *)
  Obs.Recorder.set_capacity 16;
  let d =
    Domain.spawn (fun () ->
        let ev = Obs.Recorder.intern "test.rec_wrap" in
        for i = 0 to 39 do
          Obs.Recorder.instant ~arg:i ev
        done)
  in
  Domain.join d;
  let evs =
    List.filter (fun e -> e.Obs.Recorder.ev_name = "test.rec_wrap") (Obs.Recorder.events ())
  in
  Alcotest.(check int) "ring keeps the newest capacity-many" 16 (List.length evs);
  Alcotest.(check int) "overwritten events counted as dropped" 24 (Obs.Recorder.dropped ());
  let args = List.map (fun e -> e.Obs.Recorder.arg) evs in
  Alcotest.(check int) "oldest survivor" 24 (List.fold_left min max_int args);
  Alcotest.(check int) "newest survivor" 39 (List.fold_left max min_int args);
  Obs.Recorder.reset ();
  Alcotest.(check int) "reset empties rings" 0 (List.length (Obs.Recorder.events ()));
  Alcotest.(check int) "reset clears drop count" 0 (Obs.Recorder.dropped ())

let test_recorder_multi_domain () =
  with_clean_recorder @@ fun () ->
  let ev = Obs.Recorder.intern "test.rec_md" in
  Obs.Recorder.instant ~arg:0 ev;
  let spawned =
    Domain.spawn (fun () ->
        Obs.Recorder.instant ~arg:1 ev;
        (Domain.self () :> int))
  in
  let worker_id = Domain.join spawned in
  let evs =
    List.filter (fun e -> e.Obs.Recorder.ev_name = "test.rec_md") (Obs.Recorder.events ())
  in
  let domains = List.sort_uniq compare (List.map (fun e -> e.Obs.Recorder.domain) evs) in
  Alcotest.(check int) "events from both domains" 2 (List.length domains);
  Alcotest.(check bool) "worker ring tagged with its domain id" true
    (List.exists (fun e -> e.Obs.Recorder.domain = worker_id && e.arg = 1) evs)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_json_export () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.incr ~by:3 (Obs.Metrics.counter "test.json_c");
  Obs.Metrics.set (Obs.Metrics.gauge "test.json_g") 1.5;
  Obs.Metrics.observe (Obs.Metrics.histogram ~buckets:[| 1.0 |] "test.json_h") 2.0;
  Obs.Trace.with_span "test_root" (fun () -> ());
  let json = Obs.Export.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json contains %s" needle) true
        (contains ~needle json))
    [
      "\"test.json_c\": 3";
      "\"test.json_g\": 1.5";
      "\"test.json_h\"";
      "\"p50\"";
      "\"p95\"";
      "\"p99\"";
      "\"+Inf\"";
      "\"spans\"";
      "\"test_root\"";
    ]

let test_json_export_omits_empty_quantiles () =
  with_clean_obs @@ fun () ->
  (* A registered-but-never-observed histogram must not export nan (or
     any) quantiles — only count 0, sum 0, and its buckets. *)
  ignore (Obs.Metrics.histogram ~buckets:[| 1.0 |] "test.json_empty_h");
  let json = Obs.Export.to_json () in
  Alcotest.(check bool) "empty histogram exported" true
    (contains ~needle:"\"test.json_empty_h\"" json);
  Alcotest.(check bool) "count is zero" true (contains ~needle:"\"count\": 0" json);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "no %s for empty histogram" needle) false
        (contains ~needle json))
    [ "\"p50\""; "\"p95\""; "\"p99\""; "nan" ]

let test_prometheus_export () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.incr ~by:7 (Obs.Metrics.counter "test.prom c");
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 2.0 |] "test.prom_h" in
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 1.5;
  Obs.Metrics.observe h 99.0;
  let prom = Obs.Export.to_prometheus () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "prom contains %s" needle) true
        (contains ~needle prom))
    [
      (* names sanitized to [a-zA-Z0-9_:] *)
      "# TYPE test_prom_c counter";
      "test_prom_c 7";
      "# TYPE test_prom_h histogram";
      (* buckets are cumulative *)
      "test_prom_h_bucket{le=\"1\"} 1";
      "test_prom_h_bucket{le=\"2\"} 2";
      "test_prom_h_bucket{le=\"+Inf\"} 3";
      "test_prom_h_count 3";
    ]

let test_summary_export () =
  with_clean_obs @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "test.summary");
  let s = Obs.Export.summary () in
  Alcotest.(check bool) "summary mentions the counter" true
    (contains ~needle:"test.summary" s)

(* ------------------------------------------------------------------ *)
(* Resource profiling                                                  *)
(* ------------------------------------------------------------------ *)

(* Allocate enough boxed data that minor_words must move. *)
let churn n =
  let acc = ref [] in
  for i = 1 to n do
    acc := float_of_int i :: !acc
  done;
  List.length !acc

let test_resource_measure_nonneg () =
  let len, d = Obs.Resource.measure (fun () -> churn 100_000) in
  Alcotest.(check int) "thunk result passes through" 100_000 len;
  Alcotest.(check bool) "minor words allocated" true (d.Obs.Resource.minor_words > 0.0);
  Alcotest.(check bool) "promoted words non-negative" true (d.promoted_words >= 0.0);
  Alcotest.(check bool) "major words non-negative" true (d.major_words >= 0.0);
  Alcotest.(check bool) "minor collections non-negative" true (d.minor_collections >= 0);
  Alcotest.(check bool) "major collections non-negative" true (d.major_collections >= 0);
  Alcotest.(check bool) "compactions non-negative" true (d.compactions >= 0);
  Alcotest.(check bool) "top-heap growth non-negative" true (d.top_heap_words >= 0)

let test_resource_measure_nesting () =
  let (_, inner), outer =
    Obs.Resource.measure (fun () ->
        let before = Obs.Resource.measure (fun () -> churn 50_000) in
        ignore (churn 50_000);
        before)
  in
  Alcotest.(check bool) "outer includes inner minor words" true
    (outer.Obs.Resource.minor_words >= inner.Obs.Resource.minor_words);
  Alcotest.(check bool) "outer includes inner collections" true
    (outer.minor_collections >= inner.minor_collections)

let test_resource_add () =
  let _, a = Obs.Resource.measure (fun () -> churn 10_000) in
  let sum = Obs.Resource.add a a in
  Alcotest.(check (float 1e-6)) "add doubles minor words" (2.0 *. a.Obs.Resource.minor_words)
    sum.Obs.Resource.minor_words;
  Alcotest.(check int) "add sums collections" (2 * a.minor_collections) sum.minor_collections;
  Alcotest.(check bool) "zero is neutral" true (Obs.Resource.add Obs.Resource.zero a = a)

let test_resource_peak_sampler () =
  Obs.Resource.start_sampler ();
  Obs.Resource.reset_peak ();
  let p0 = Obs.Resource.peak_heap_words () in
  Alcotest.(check bool) "peak positive" true (p0 > 0);
  (* grow the major heap, then force a major cycle so the alarm fires *)
  let big = Array.init 200_000 (fun i -> float_of_int i) in
  Gc.full_major ();
  let p1 = Obs.Resource.peak_heap_words () in
  ignore (Array.length big);
  Alcotest.(check bool) "peak grew with the heap" true (p1 >= p0);
  Obs.Resource.stop_sampler ();
  Obs.Resource.reset_peak ();
  let p2 = Obs.Resource.peak_heap_words () in
  Alcotest.(check bool) "reset re-arms from the current heap" true (p2 > 0 && p2 <= p1)

let test_resource_publish () =
  with_clean_obs @@ fun () ->
  let _, d = Obs.Resource.measure (fun () -> churn 50_000) in
  Obs.Resource.publish ~prefix:"test.gc" d;
  Alcotest.(check (float 0.0)) "gauge mirrors the delta" d.Obs.Resource.minor_words
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge "test.gc.minor_words"));
  Alcotest.(check bool) "peak gauge set" true
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge "test.gc.peak_heap_words") > 0.0)

(* ------------------------------------------------------------------ *)
(* Timer                                                               *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Runtime_events bridge                                               *)
(* ------------------------------------------------------------------ *)

let test_runtime_bridge_stop_idempotent () =
  (* stop without ever starting: a no-op, never a crash *)
  Obs.Runtime_bridge.stop ();
  Alcotest.(check bool) "inactive after cold stop" false (Obs.Runtime_bridge.is_active ());
  (* start (may legitimately fail in odd environments), then stop
     repeatedly: the second stop must find no cursor to double-free *)
  if Obs.Runtime_bridge.start () then begin
    Alcotest.(check bool) "active after start" true (Obs.Runtime_bridge.is_active ());
    ignore (Obs.Runtime_bridge.poll ());
    Obs.Runtime_bridge.stop ();
    Alcotest.(check bool) "inactive after stop" false (Obs.Runtime_bridge.is_active ());
    Obs.Runtime_bridge.stop ();
    Alcotest.(check bool) "still inactive after double stop" false
      (Obs.Runtime_bridge.is_active ());
    (* and the bridge can come back up after a full stop cycle *)
    Alcotest.(check bool) "restartable" true (Obs.Runtime_bridge.start ());
    Obs.Runtime_bridge.stop ()
  end;
  Obs.Runtime_bridge.reset ()

let test_timer_monotone () =
  let a = Timer.now_ns () in
  let b = Timer.now_ns () in
  Alcotest.(check bool) "clock never goes back" true (b >= a);
  Alcotest.(check bool) "span_s non-negative" true (Timer.span_s a b >= 0.0)

let test_stopwatch () =
  let t = Timer.create () in
  Alcotest.(check bool) "not running" false (Timer.running t);
  Alcotest.(check (float 0.0)) "zero" 0.0 (Timer.elapsed_s t);
  Timer.start t;
  let x = ref 0 in
  for i = 1 to 10_000 do
    x := !x + i
  done;
  ignore !x;
  Timer.stop t;
  let once = Timer.elapsed_ns t in
  Alcotest.(check bool) "accumulated > 0" true (once > 0L);
  (* stopped: elapsed stays put *)
  Alcotest.(check bool) "stable when stopped" true (Timer.elapsed_ns t = once);
  Timer.start t;
  Timer.stop t;
  Alcotest.(check bool) "second interval accumulates" true (Timer.elapsed_ns t >= once);
  Timer.reset t;
  Alcotest.(check bool) "reset to zero" true (Timer.elapsed_ns t = 0L)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basic;
          Alcotest.test_case "find-or-create identity" `Quick test_find_or_create_identity;
          Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "reset keeps handles live" `Quick test_reset_in_place;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_recorder_disabled_noop;
          Alcotest.test_case "begin/instant/end round trip" `Quick test_recorder_roundtrip;
          Alcotest.test_case "with_event exception safety" `Quick
            test_recorder_with_event_exception_safe;
          Alcotest.test_case "wrap-around and drop accounting" `Quick test_recorder_wraparound;
          Alcotest.test_case "per-domain rings" `Quick test_recorder_multi_domain;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "timing monotonicity" `Quick test_span_timing_monotone;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "start/stop hooks" `Quick test_span_hooks;
          Alcotest.test_case "disabled passthrough" `Quick test_span_disabled_passthrough;
        ] );
      ( "export",
        [
          Alcotest.test_case "json" `Quick test_json_export;
          Alcotest.test_case "json omits empty-histogram quantiles" `Quick
            test_json_export_omits_empty_quantiles;
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
          Alcotest.test_case "summary" `Quick test_summary_export;
        ] );
      ( "resource",
        [
          Alcotest.test_case "measure non-negative" `Quick test_resource_measure_nonneg;
          Alcotest.test_case "measure nesting" `Quick test_resource_measure_nesting;
          Alcotest.test_case "delta addition" `Quick test_resource_add;
          Alcotest.test_case "peak-heap sampler" `Quick test_resource_peak_sampler;
          Alcotest.test_case "gauge publication" `Quick test_resource_publish;
        ] );
      ( "runtime-bridge",
        [
          Alcotest.test_case "stop is idempotent" `Quick test_runtime_bridge_stop_idempotent;
        ] );
      ( "timer",
        [
          Alcotest.test_case "monotone clock" `Quick test_timer_monotone;
          Alcotest.test_case "stopwatch" `Quick test_stopwatch;
        ] );
    ]
