(* Tests for the sketch-gated candidate index: the shared sketch kernel,
   the admit gate, the score-column cache, and end-to-end equivalence of
   gated and full reclustering scans. *)

let alpha = Alphabet.lowercase
let enc = Sequence.of_string alpha

(* ------------------------------------------------------------------ *)
(* Shared sketch kernel                                                *)
(* ------------------------------------------------------------------ *)

let test_packed_keys_collision_free () =
  (* Regression for the old int-list keys: every 3-gram over an 8-symbol
     alphabet must get a distinct packed key. *)
  let seen = Hashtbl.create 1024 in
  for a = 0 to 7 do
    for b = 0 to 7 do
      for c = 0 to 7 do
        let key = Sketch.gram_key [| a; b; c |] ~pos:0 ~q:3 in
        (match Hashtbl.find_opt seen key with
        | Some other ->
            Alcotest.failf "grams %s and %s collide on key %d"
              (String.concat "," (List.map string_of_int [ a; b; c ]))
              other key
        | None -> ());
        Hashtbl.add seen key (String.concat "," (List.map string_of_int [ a; b; c ]))
      done
    done
  done;
  Alcotest.(check int) "512 distinct keys" 512 (Hashtbl.length seen)

let test_key_of_list_matches_gram_key () =
  let s = enc "abczqx" in
  for pos = 0 to 3 do
    let l = [ s.(pos); s.(pos + 1); s.(pos + 2) ] in
    Alcotest.(check int)
      (Printf.sprintf "pos %d" pos)
      (Sketch.gram_key s ~pos ~q:3)
      (Sketch.key_of_list ~q:3 l)
  done

let test_sketch_shape () =
  let sk = Index.sketch_of_sequence (enc "abcabcabcxyzxyzxyz") in
  Alcotest.(check bool) "non-empty" true (Array.length sk > 0);
  Alcotest.(check bool) "bounded" true (Array.length sk <= Index.max_seq_hashes);
  let sorted = Array.copy sk in
  Array.sort compare sorted;
  Alcotest.(check bool) "sorted ascending" true (sk = sorted);
  let distinct = List.sort_uniq compare (Array.to_list sk) in
  Alcotest.(check int) "distinct" (Array.length sk) (List.length distinct);
  Alcotest.(check bool) "short sequence empty" true
    (Index.sketch_of_sequence (enc "ab") = [||])

(* ------------------------------------------------------------------ *)
(* Admit gate                                                          *)
(* ------------------------------------------------------------------ *)

let trained_sketch texts =
  (* A cluster sketch with enough active contexts to actually gate
     (Index.min_cluster_contexts of them). *)
  let cfg = { (Pst.default_config ~alphabet_size:26) with significance = 2; max_depth = 5 } in
  let pst = Pst.create cfg in
  List.iter
    (fun t ->
      for _ = 1 to 4 do
        Pst.insert_sequence pst (enc t)
      done)
    texts;
  Index.of_pst pst

(* 48 distinct 3-grams, each active: enough vocabulary to gate on. *)
let rich = [ "abcdefghijklmnopqrstuvwxyz"; "zyxwvutsrqponmlkjihgfedcba" ]

let test_of_pst_thin_is_empty () =
  (* Fewer than min_cluster_contexts active contexts: too sparse to be
     evidence of absence, so the sketch must admit everything. *)
  let cfg = { (Pst.default_config ~alphabet_size:26) with significance = 2; max_depth = 5 } in
  let pst = Pst.create cfg in
  for _ = 1 to 4 do
    Pst.insert_sequence pst (enc "ababab")
  done;
  (* Only grams aba/bab can be active: 2 < 8. *)
  Alcotest.(check bool) "thin sketch empty" true (Index.is_empty (Index.of_pst pst));
  let shallow = Pst.create { cfg with max_depth = 2 } in
  Pst.insert_sequence shallow (enc "abcdefghijabcdefghij");
  Alcotest.(check bool) "max_depth < q empty" true (Index.is_empty (Index.of_pst shallow))

let test_admit_basic () =
  let cs = trained_sketch rich in
  Alcotest.(check bool) "trained sketch not empty" true (not (Index.is_empty cs));
  let matching = Index.sketch_of_sequence (enc "abcdefghijklmnopqrstuvwxyz") in
  Alcotest.(check bool) "identical content admitted" true
    (Index.admit matching cs ~ratio:Index.default_ratio);
  (* Every other letter: grams ace, ceg, … — none in the bitmap. *)
  let disjoint = Index.sketch_of_sequence (enc "acegikmoqsuwyacegikmoqsuwy") in
  Alcotest.(check bool) "disjoint content pruned" false
    (Index.admit disjoint cs ~ratio:Index.default_ratio);
  Alcotest.(check bool) "ratio 0 admits anything" true (Index.admit disjoint cs ~ratio:0.0);
  Alcotest.(check bool) "empty cluster sketch admits" true
    (Index.admit disjoint Index.empty ~ratio:Index.default_ratio);
  Alcotest.(check bool) "tiny sequence sketch admits" true
    (Index.admit (Index.sketch_of_sequence (enc "qqq")) cs ~ratio:Index.default_ratio)

let test_gate_opt_in () =
  (* The heuristic gate must be dormant out of the box: default runs are
     exact (cache-only), and --index-ratio is the explicit opt-in. *)
  Alcotest.(check (float 0.0)) "runtime ratio defaults to 0" 0.0 (Index.ratio ());
  Alcotest.(check bool) "index (cache) enabled by default" true (Index.enabled ());
  Alcotest.(check bool) "recommended opt-in ratio is positive" true (Index.default_ratio > 0.0)

let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 0 60) (Gen.char_range 'a' 'f'))

let qcheck_kernel =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"sketch deterministic" ~count:200 seq_gen (fun s ->
           Index.sketch_of_sequence (enc s) = Index.sketch_of_sequence (enc s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"admit monotone in ratio" ~count:200
         QCheck.(pair seq_gen (pair (QCheck.float_bound_inclusive 1.0) (QCheck.float_bound_inclusive 1.0)))
         (fun (s, (r1, r2)) ->
           let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
           let cs = trained_sketch rich in
           let sk = Index.sketch_of_sequence (enc s) in
           (* Admission at a stricter cutoff implies admission at a looser one. *)
           (not (Index.admit sk cs ~ratio:hi)) || Index.admit sk cs ~ratio:lo));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end equivalence                                              *)
(* ------------------------------------------------------------------ *)

let workload () =
  Workload.generate
    {
      Workload.default_params with
      n_sequences = 100;
      avg_length = 120;
      n_clusters = 6;
      contexts_per_cluster = 120;
      concentration = 0.15;
      seed = 7;
    }

(* Threshold adjustment off so the sketch gate engages from the first
   iteration (with adjustment on it only engages once t freezes), and a
   fixed threshold that keeps the six planted clusters separate long
   enough for clean clusters to serve their cached score columns. *)
let cfg =
  {
    Cluseq.default_config with
    k_init = 2;
    significance = 8;
    min_residual = Some 8;
    adjust_threshold = false;
    t_init = exp 10.0;
    max_iterations = 25;
    seed = 3;
  }

let with_index ~on ~ratio f =
  let e0 = Index.enabled () and r0 = Index.ratio () in
  Fun.protect
    ~finally:(fun () ->
      Index.set_enabled e0;
      Index.set_ratio r0)
    (fun () ->
      Index.set_enabled on;
      Index.set_ratio ratio;
      f ())

let same (a : Cluseq.result) (b : Cluseq.result) =
  a.clusters = b.clusters && a.assignments = b.assignments && a.outliers = b.outliers

let test_gated_equals_full () =
  let db = (workload ()).Workload.db in
  let full = with_index ~on:false ~ratio:Index.default_ratio (fun () -> Cluseq.run ~config:cfg db) in
  let gated =
    with_index ~on:true ~ratio:Index.default_ratio (fun () -> Cluseq.run ~config:cfg db)
  in
  Alcotest.(check bool) "identical final clustering" true (same full gated);
  (* The run must actually have exercised the machinery, not just
     degenerated to the full scan. *)
  let totals f =
    List.fold_left
      (fun (s, r, flt) (st : Cluseq.iteration_stats) ->
        (s + st.census.pairs_scored, r + st.census.pairs_reused, flt + st.census.index_filtered))
      (0, 0, 0) f.Cluseq.history
  in
  let fs, fr, ff = totals full and gs, gr, _gf = totals gated in
  Alcotest.(check int) "full scan reuses nothing" 0 fr;
  Alcotest.(check int) "full scan filters nothing" 0 ff;
  Alcotest.(check bool) "index reused cached columns" true (gr > 0);
  Alcotest.(check bool) "index scored fewer pairs" true (gs < fs)

let test_ratio_zero_equals_disabled () =
  (* Ratio 0 turns the gate off but keeps the score-column cache: the
     cache must be invisible in the results. *)
  let db = (workload ()).Workload.db in
  let off = with_index ~on:false ~ratio:0.0 (fun () -> Cluseq.run ~config:cfg db) in
  let cache_only = with_index ~on:true ~ratio:0.0 (fun () -> Cluseq.run ~config:cfg db) in
  Alcotest.(check bool) "cache-only run identical" true (same off cache_only)

let test_deterministic_across_domains () =
  let db = (workload ()).Workload.db in
  let saved = Par.default_domains () in
  Fun.protect ~finally:(fun () -> Par.set_default_domains saved) @@ fun () ->
  let run d =
    Par.set_default_domains d;
    with_index ~on:true ~ratio:Index.default_ratio (fun () -> Cluseq.run ~config:cfg db)
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "gated run identical at 1 and 4 domains" true (same r1 r4);
  let census (r : Cluseq.result) =
    List.map
      (fun (st : Cluseq.iteration_stats) ->
        (st.census.pairs_scored, st.census.pairs_reused, st.census.index_filtered))
      r.history
  in
  Alcotest.(check bool) "census identical at 1 and 4 domains" true (census r1 = census r4)

(* ------------------------------------------------------------------ *)
(* Score-column cache lifecycle                                        *)
(* ------------------------------------------------------------------ *)

let test_cache_dropped_on_absorb () =
  let pcfg = { (Pst.default_config ~alphabet_size:26) with significance = 2 } in
  let s = enc "abcabcabcabc" in
  let cl = Cluster.create ~id:0 ~capacity:4 pcfg s in
  let lbg = Array.make 26 (-.log 26.0) in
  let r = Cluster.similarity cl ~log_background:lbg s in
  Cluster.set_score_cache cl [| r |];
  Alcotest.(check bool) "cache installed" true (Cluster.score_cache cl <> None);
  Cluster.absorb cl ~seq_id:1 s r;
  Alcotest.(check bool) "absorb drops the cache" true (Cluster.score_cache cl = None)

let () =
  Alcotest.run "index"
    [
      ( "kernel",
        [
          Alcotest.test_case "packed keys collision-free" `Quick test_packed_keys_collision_free;
          Alcotest.test_case "key_of_list = gram_key" `Quick test_key_of_list_matches_gram_key;
          Alcotest.test_case "sketch shape" `Quick test_sketch_shape;
        ] );
      ( "gate",
        [
          Alcotest.test_case "thin models ungated" `Quick test_of_pst_thin_is_empty;
          Alcotest.test_case "admit basics" `Quick test_admit_basic;
          Alcotest.test_case "gate is opt-in" `Quick test_gate_opt_in;
        ] );
      ("property", qcheck_kernel);
      ( "end-to-end",
        [
          Alcotest.test_case "gated = full" `Quick test_gated_equals_full;
          Alcotest.test_case "ratio 0 = disabled" `Quick test_ratio_zero_equals_disabled;
          Alcotest.test_case "domain determinism" `Quick test_deterministic_across_domains;
        ] );
      ("cache", [ Alcotest.test_case "absorb invalidates" `Quick test_cache_dropped_on_absorb ]);
    ]
