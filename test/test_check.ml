(* Tests for the correctness tooling itself (lib/check): the brute-force
   PST oracle must agree with the tree, the invariant checkers must stay
   quiet on healthy structures and loud on injected corruption, the
   auditor must pass over a real run, and the fuzz harness must be
   deterministic and able to shrink. *)

let alpha = Gen_common.alpha

let build_pair ?(p_min = 0.0) ?(significance = 2) ?(max_depth = 10) texts =
  let cfg = Gen_common.pst_cfg ~p_min ~significance ~max_depth ~max_nodes:1_000_000 () in
  let t = Pst.create cfg and oracle = Ref_pst.create cfg in
  List.iter
    (fun s ->
      let s = Sequence.of_string alpha s in
      Pst.insert_sequence t s;
      Ref_pst.insert_sequence oracle s)
    texts;
  (t, oracle)

(* --- differential oracle ---------------------------------------------- *)

let test_ref_pst_agrees_on_example () =
  let t, oracle = build_pair ~p_min:1e-3 [ "ababab"; "babba"; "cab" ] in
  Alcotest.(check (list string)) "no structural diff" [] (Ref_pst.diff oracle t);
  Alcotest.(check int) "context count" (Pst.n_nodes t) (Ref_pst.n_contexts oracle);
  let s = Sequence.of_string alpha "abba" in
  for pos = 0 to Array.length s - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "log_prob pos %d" pos)
      (Ref_pst.log_prob oracle s ~lo:0 ~pos)
      (Pst.log_prob t s ~lo:0 ~pos)
  done

let test_ref_pst_catches_divergence () =
  (* Insert one extra sequence into only one side: the diff must not be
     empty — the oracle actually discriminates. *)
  let t, oracle = build_pair [ "abab" ] in
  Ref_pst.insert_sequence oracle (Sequence.of_string alpha "bb");
  Alcotest.(check bool) "diff reports" true (Ref_pst.diff oracle t <> [])

(* --- invariant checkers ----------------------------------------------- *)

let test_pst_invariants_clean () =
  let t = Gen_common.build_pst ~p_min:1e-3 [ "abcabcab"; "bbca" ] in
  Alcotest.(check (list string)) "healthy tree" [] (Check.pst_invariants t);
  Pst.prune_to t (Pst.n_nodes t / 2);
  Alcotest.(check (list string)) "healthy after pruning" [] (Check.pst_invariants t)

(* The acceptance criterion of the check subsystem: a deliberately
   corrupted node count must be caught. The corruption is injected
   through the textual serialization (bump every depth-1 node's count
   far above its parent's), which [Pst.of_string] restores verbatim. *)
let test_pst_invariants_catch_injected_corruption () =
  let t = Gen_common.build_pst [ "ababab"; "bba" ] in
  Alcotest.(check (list string)) "clean before tampering" [] (Check.pst_invariants t);
  let tampered =
    String.split_on_char '\n' (Pst.to_string t)
    |> List.map (fun line ->
           match String.split_on_char ' ' line with
           (* depth-1 nodes serialize with a single-symbol (comma-free,
              non-"-") path *)
           | "node" :: path :: count :: rest when int_of_string_opt path <> None ->
               String.concat " "
                 ("node" :: path :: string_of_int (int_of_string count + 1000) :: rest)
           | _ -> line)
    |> String.concat "\n"
  in
  let corrupt = Pst.of_string tampered in
  Alcotest.(check bool) "tampering changed the tree" false (Pst.equal_structure t corrupt);
  Alcotest.(check bool) "corruption caught" true (Check.pst_invariants corrupt <> [])

let test_result_invariants_on_real_run () =
  let db, _ = Lazy.force Gen_common.small_db_and_truth in
  let r = Gen_common.with_domains 2 (fun () -> Cluseq.run ~config:Gen_common.small_config db) in
  Alcotest.(check (list string)) "clean result" []
    (Check.result_invariants ~n:(Seq_database.n_sequences db) r)

let test_result_invariants_catch_bogus_assignment () =
  let db, _ = Lazy.force Gen_common.small_db_and_truth in
  let r = Gen_common.with_domains 1 (fun () -> Cluseq.run ~config:Gen_common.small_config db) in
  let assignments = Array.copy r.assignments in
  assignments.(0) <- [ 999_999 ];
  let tampered = { r with assignments } in
  Alcotest.(check bool) "bogus cluster id caught" true
    (Check.result_invariants ~n:(Seq_database.n_sequences db) tampered <> [])

(* --- auditor ----------------------------------------------------------- *)

let test_auditor_passes_on_real_run () =
  let db, _ = Lazy.force Gen_common.small_db_and_truth in
  Check.install_auditor ();
  Fun.protect ~finally:Check.uninstall_auditor (fun () ->
      List.iter
        (fun d ->
          let r =
            Gen_common.with_domains d (fun () -> Cluseq.run ~config:Gen_common.small_config db)
          in
          Alcotest.(check bool)
            (Printf.sprintf "audited run at %d domains clusters" d)
            true (r.n_clusters > 0))
        [ 1; 4 ])

(* --- fuzz harness ------------------------------------------------------ *)

let test_gen_case_deterministic () =
  let a = Fuzz.gen_case ~seed:123 and b = Fuzz.gen_case ~seed:123 in
  Alcotest.(check bool) "same workload" true (a.Fuzz.seqs = b.Fuzz.seqs);
  Alcotest.(check bool) "same probes" true (a.Fuzz.probes = b.Fuzz.probes);
  Alcotest.(check bool) "same config" true (a.Fuzz.cluseq_cfg = b.Fuzz.cluseq_cfg)

let test_fuzz_regression () =
  (* A small always-on slice of the fuzzer (the full 200-case sweep runs
     under `make check`). Any failure prints a replay seed. *)
  match Fuzz.run ~n:20 ~seed:7 () with
  | Ok n -> Alcotest.(check int) "all cases pass" 20 n
  | Error f -> Alcotest.fail (Format.asprintf "%a" Fuzz.pp_failure f)

let test_shrink_minimizes () =
  let case = Fuzz.gen_case ~seed:5 in
  Alcotest.(check bool) "case starts with >= 4 seqs" true (Array.length case.Fuzz.seqs >= 4);
  (* Pretend any workload with at least 3 sequences "fails": the greedy
     shrinker must walk down to exactly 3. *)
  let shrunk = Fuzz.shrink case ~still_fails:(fun c -> Array.length c.Fuzz.seqs >= 3) in
  Alcotest.(check int) "shrunk to the minimal failing size" 3 (Array.length shrunk.Fuzz.seqs);
  (* Halving also ran (the shrinker is budget-capped, so only demand
     strict progress, not fully emptied sequences). *)
  let total seqs = Array.fold_left (fun acc s -> acc + Array.length s) 0 seqs in
  Alcotest.(check bool) "surviving sequences were halved" true
    (total shrunk.Fuzz.seqs < total case.Fuzz.seqs)

(* --- properties -------------------------------------------------------- *)

let texts_gen = Gen_common.texts_gen ~min_seqs:1 ~max_seqs:5 ~min_len:0 ~max_len:30 ()

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tree = brute-force oracle" ~count:100
         (QCheck.pair texts_gen (QCheck.oneofl [ 0.0; 1e-3; 0.01 ]))
         (fun (texts, p_min) ->
           let t, oracle = build_pair ~p_min texts in
           Ref_pst.diff oracle t = [] && Ref_pst.n_contexts oracle = Pst.n_nodes t));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"log_prob and prediction = oracle at every position" ~count:60
         (QCheck.pair texts_gen (Gen_common.seq_gen ~min_len:0 ~max_len:20 ()))
         (fun (texts, probe) ->
           let t, oracle = build_pair ~p_min:1e-3 ~significance:3 texts in
           let s = Sequence.of_string alpha probe in
           let ok = ref true in
           for pos = 0 to Array.length s - 1 do
             if not (Float.equal (Pst.log_prob t s ~lo:0 ~pos) (Ref_pst.log_prob oracle s ~lo:0 ~pos))
             then ok := false;
             if Pst.node_label t (Pst.prediction_node t s ~lo:0 ~pos)
                <> Ref_pst.prediction_label oracle s ~lo:0 ~pos
             then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pst_invariants quiet on random trees" ~count:60
         (QCheck.pair texts_gen (QCheck.oneofl [ 0.0; 1e-3 ]))
         (fun (texts, p_min) ->
           let t = Gen_common.build_pst ~p_min texts in
           Check.pst_invariants t = []
           &&
           (Pst.prune_to t (max 1 (Pst.n_nodes t / 2));
            Check.pst_invariants t = [])));
  ]

let () =
  Alcotest.run "check"
    [
      ( "oracle",
        [
          Alcotest.test_case "agrees on example" `Quick test_ref_pst_agrees_on_example;
          Alcotest.test_case "catches divergence" `Quick test_ref_pst_catches_divergence;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean tree" `Quick test_pst_invariants_clean;
          Alcotest.test_case "injected corruption caught" `Quick
            test_pst_invariants_catch_injected_corruption;
          Alcotest.test_case "clean result" `Quick test_result_invariants_on_real_run;
          Alcotest.test_case "bogus assignment caught" `Quick
            test_result_invariants_catch_bogus_assignment;
        ] );
      ("auditor", [ Alcotest.test_case "real run passes" `Quick test_auditor_passes_on_real_run ]);
      ( "fuzz",
        [
          Alcotest.test_case "generation deterministic" `Quick test_gen_case_deterministic;
          Alcotest.test_case "20-case regression" `Slow test_fuzz_regression;
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
        ] );
      ("property", qcheck_tests);
    ]
