(* Tests for Smallmap, checked against a Hashtbl model. *)

let test_empty () =
  let m : int Smallmap.t = Smallmap.create () in
  Alcotest.(check int) "length 0" 0 (Smallmap.length m);
  Alcotest.(check int) "find_idx missing" (-1) (Smallmap.find_idx m 5);
  Alcotest.(check bool) "find_opt missing" true (Smallmap.find_opt m 5 = None)

let test_set_find () =
  let m = Smallmap.create () in
  Smallmap.set m 10 "a";
  Smallmap.set m 3 "b";
  Smallmap.set m 7 "c";
  Alcotest.(check int) "length" 3 (Smallmap.length m);
  Alcotest.(check (option string)) "find 3" (Some "b") (Smallmap.find_opt m 3);
  Alcotest.(check (option string)) "find 10" (Some "a") (Smallmap.find_opt m 10);
  Smallmap.set m 10 "z";
  Alcotest.(check (option string)) "overwrite" (Some "z") (Smallmap.find_opt m 10);
  Alcotest.(check int) "overwrite keeps length" 3 (Smallmap.length m)

let test_keys_sorted () =
  let m = Smallmap.create () in
  List.iter (fun k -> Smallmap.set m k k) [ 9; 2; 5; 1; 100; 0 ];
  Alcotest.(check (array int)) "sorted keys" [| 0; 1; 2; 5; 9; 100 |] (Smallmap.keys m)

let test_remove () =
  let m = Smallmap.create () in
  List.iter (fun k -> Smallmap.set m k (k * 2)) [ 1; 2; 3 ];
  Smallmap.remove m 2;
  Alcotest.(check int) "length" 2 (Smallmap.length m);
  Alcotest.(check bool) "gone" true (Smallmap.find_opt m 2 = None);
  Smallmap.remove m 99;
  Alcotest.(check int) "remove absent is no-op" 2 (Smallmap.length m)

let test_int_helpers () =
  let m = Smallmap.create () in
  Alcotest.(check int) "default 0" 0 (Smallmap.get_int m 4);
  Smallmap.add_int m 4 3;
  Smallmap.add_int m 4 2;
  Alcotest.(check int) "accumulated" 5 (Smallmap.get_int m 4)

let test_iter_fold () =
  let m = Smallmap.create () in
  List.iter (fun k -> Smallmap.set m k k) [ 3; 1; 2 ];
  let order = ref [] in
  Smallmap.iter (fun k _ -> order := k :: !order) m;
  Alcotest.(check (list int)) "iter in key order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "fold sum" 6 (Smallmap.fold (fun _ v acc -> acc + v) m 0)

let test_negative_keys () =
  let m = Smallmap.create () in
  Smallmap.set m (-5) "neg";
  Smallmap.set m 5 "pos";
  Alcotest.(check (option string)) "negative key" (Some "neg") (Smallmap.find_opt m (-5));
  Alcotest.(check (array int)) "sorted with negatives" [| -5; 5 |] (Smallmap.keys m)

let ops_gen = QCheck.(list (pair (int_range 0 40) small_int))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"model: set/find against Hashtbl" ~count:300 ops_gen
         (fun ops ->
           let m = Smallmap.create () in
           let h = Hashtbl.create 16 in
           List.iter
             (fun (k, v) ->
               Smallmap.set m k v;
               Hashtbl.replace h k v)
             ops;
           Smallmap.length m = Hashtbl.length h
           && List.for_all
                (fun k -> Smallmap.find_opt m k = Hashtbl.find_opt h k)
                (List.init 41 Fun.id)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"model: add_int accumulates" ~count:300 ops_gen (fun ops ->
           let m = Smallmap.create () in
           let h = Hashtbl.create 16 in
           List.iter
             (fun (k, v) ->
               Smallmap.add_int m k v;
               Hashtbl.replace h k (v + Option.value ~default:0 (Hashtbl.find_opt h k)))
             ops;
           List.for_all
             (fun k -> Smallmap.get_int m k = Option.value ~default:0 (Hashtbl.find_opt h k))
             (List.init 41 Fun.id)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"keys always sorted" ~count:300 ops_gen (fun ops ->
           let m = Smallmap.create () in
           List.iter (fun (k, v) -> Smallmap.set m k v) ops;
           let ks = Smallmap.keys m in
           let sorted = Array.copy ks in
           Array.sort compare sorted;
           ks = sorted));
    (* The binary searches (find_idx / lower_bound behind set) are only
       correct if the key array stays strictly sorted under arbitrary
       set/remove interleavings; check that, and that find_idx agrees
       with a linear-scan model at every step. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"set/remove keep keys sorted; find_idx = linear scan"
         ~count:300
         QCheck.(list (pair bool (int_range 0 40)))
         (fun ops ->
           let m = Smallmap.create () in
           List.for_all
             (fun (is_set, k) ->
               if is_set then Smallmap.set m k k else Smallmap.remove m k;
               let ks = Smallmap.keys m in
               let strictly_sorted = ref true in
               Array.iteri
                 (fun i k -> if i > 0 && ks.(i - 1) >= k then strictly_sorted := false)
                 ks;
               !strictly_sorted
               && List.for_all
                    (fun q ->
                      let linear = ref (-1) in
                      Array.iteri (fun i k -> if k = q then linear := i) ks;
                      Smallmap.find_idx m q = !linear)
                    (List.init 41 Fun.id))
             ops));
  ]

let () =
  Alcotest.run "smallmap"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "set/find" `Quick test_set_find;
          Alcotest.test_case "keys sorted" `Quick test_keys_sorted;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "int helpers" `Quick test_int_helpers;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
          Alcotest.test_case "negative keys" `Quick test_negative_keys;
        ] );
      ("property", qcheck_tests);
    ]
