(* Tests for the similarity DP (paper Sec. 4.3): the Kadane-style scan must
   equal the explicit O(l²) maximization, and the recurrence must replicate
   the paper's Table 1 mechanics. *)

let alpha = Alphabet.lowercase

let cfg ?(significance = 2) () : Pst.config =
  { (Pst.default_config ~alphabet_size:26) with significance; p_min = 0.0 }

let build ?significance texts =
  let t = Pst.create (cfg ?significance ()) in
  List.iter (fun s -> Pst.insert_sequence t (Sequence.of_string alpha s)) texts;
  t

let uniform_lbg = Array.make 26 (log (1.0 /. 26.0))

let test_empty_sequence () =
  let t = build [ "abab" ] in
  let r = Similarity.score t ~log_background:uniform_lbg [||] in
  Alcotest.(check bool) "empty is -inf" true (r.log_sim = neg_infinity)

let test_dp_equals_brute_on_example () =
  let t = build [ "ababababbbabab"; "babbaab" ] in
  let s = Sequence.of_string alpha "abbaba" in
  let fast = Similarity.score t ~log_background:uniform_lbg s in
  let brute = Similarity.score_brute t ~log_background:uniform_lbg s in
  Alcotest.(check (float 1e-9)) "same score" brute.log_sim fast.log_sim

let test_best_segment_achieves_score () =
  (* Recomputing the sum of X over the reported segment must reproduce the
     reported score. *)
  let t = build [ "abababab"; "ccc" ] in
  let s = Sequence.of_string alpha "ccabab" in
  let r = Similarity.score t ~log_background:uniform_lbg s in
  let sum = ref 0.0 in
  for i = r.seg_lo to r.seg_hi do
    sum := !sum +. (Pst.log_prob t s ~lo:0 ~pos:i -. uniform_lbg.(s.(i)))
  done;
  Alcotest.(check (float 1e-9)) "segment sum = score" r.log_sim !sum

let test_matching_scores_higher () =
  let t = build [ "abababababab" ] in
  let good = Similarity.score t ~log_background:uniform_lbg (Sequence.of_string alpha "ababab") in
  let bad = Similarity.score t ~log_background:uniform_lbg (Sequence.of_string alpha "qzvkxw") in
  Alcotest.(check bool) "in-style sequence scores higher" true (good.log_sim > bad.log_sim)

let test_table1_recurrence () =
  (* The paper's Table 1 mechanics with its exact numbers: X built from
     given probabilities, then Y_i = max(Y_{i-1}·X_i, X_i),
     Z_i = max(Z_{i-1}, Y_i), yielding SIM = 2.10 for sequence bbaa. *)
  let p_cond = [| 0.55; 0.418; 0.87; 0.406 |] in
  let p_bg = [| 0.4; 0.4; 0.6; 0.6 |] in
  let x = Array.init 4 (fun i -> p_cond.(i) /. p_bg.(i)) in
  let y = Array.make 4 0.0 and z = Array.make 4 0.0 in
  y.(0) <- x.(0);
  z.(0) <- x.(0);
  for i = 1 to 3 do
    y.(i) <- Float.max (y.(i - 1) *. x.(i)) x.(i);
    z.(i) <- Float.max z.(i - 1) y.(i)
  done;
  (* Table 1 reports (rounded): X = 1.38 1.05 1.45 0.68; Y = 1.38 1.45
     2.10 1.42; Z = 1.38 1.45 2.10 2.10. *)
  (* Tolerances reflect that Table 1 itself prints rounded values (e.g.
     its Y2 = 1.45 is 1.375·1.045 = 1.437 rounded up). *)
  Alcotest.(check (float 0.01)) "X1" 1.38 x.(0);
  Alcotest.(check (float 0.01)) "X2" 1.05 x.(1);
  Alcotest.(check (float 0.01)) "X3" 1.45 x.(2);
  Alcotest.(check (float 0.01)) "X4" 0.68 x.(3);
  Alcotest.(check (float 0.03)) "Y3" 2.10 y.(2);
  Alcotest.(check (float 0.03)) "SIM = Z4 = 2.10" 2.10 z.(3);
  (* And the log-space DP used by the implementation gives the same. *)
  let ly = ref neg_infinity and lz = ref neg_infinity in
  Array.iter
    (fun xi ->
      let lx = log xi in
      if !ly >= 0.0 then ly := !ly +. lx else ly := lx;
      if !ly > !lz then lz := !ly)
    x;
  Alcotest.(check (float 1e-6)) "log DP matches linear DP" (log z.(3)) !lz

let test_log_linear_conversion () =
  Alcotest.(check (float 1e-9)) "log of linear" (log 1.52) (Similarity.log_of_linear 1.52);
  Alcotest.(check (float 1e-9)) "roundtrip" 2.5
    (Similarity.linear_of_log (Similarity.log_of_linear 2.5));
  Alcotest.(check bool) "huge log does not overflow" true
    (Float.is_finite (Similarity.linear_of_log 1000.0));
  let rejects label t =
    Alcotest.check_raises label
      (Invalid_argument "Similarity.log_of_linear: t must be a positive finite value")
      (fun () -> ignore (Similarity.log_of_linear t))
  in
  rejects "non-positive threshold" 0.0;
  rejects "negative threshold" (-1.5);
  (* NaN slips past a plain [t <= 0.0] guard because NaN comparisons are
     always false — it must still be rejected. *)
  rejects "NaN threshold" Float.nan;
  rejects "infinite threshold" Float.infinity;
  rejects "negative-infinite threshold" Float.neg_infinity

let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 1 40) (Gen.char_range 'a' 'd'))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"DP equals brute force" ~count:200
         (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 5) seq_gen) seq_gen)
         (fun (cluster, probe) ->
           let t = build cluster in
           let s = Sequence.of_string alpha probe in
           let fast = Similarity.score t ~log_background:uniform_lbg s in
           let brute = Similarity.score_brute t ~log_background:uniform_lbg s in
           (* -inf = -inf for the empty-probe case (abs of their difference
              is NaN). *)
           fast.log_sim = brute.log_sim
           || Float.abs (fast.log_sim -. brute.log_sim) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"score = brute max-subarray over xs" ~count:200
         (QCheck.pair seq_gen seq_gen)
         (fun (cluster, probe) ->
           (* [score] and [xs] must agree on the per-position X_i kernel:
              an O(l²) maximization over every segment of the [xs] array
              must reproduce the Kadane result exactly. *)
           let t = build [ cluster ] in
           let s = Sequence.of_string alpha probe in
           let r = Similarity.score t ~log_background:uniform_lbg s in
           let x = Similarity.xs t ~log_background:uniform_lbg s in
           let best = ref neg_infinity in
           for lo = 0 to Array.length x - 1 do
             let sum = ref 0.0 in
             for hi = lo to Array.length x - 1 do
               sum := !sum +. x.(hi);
               if !sum > !best then best := !sum
             done
           done;
           r.log_sim = !best || Float.abs (r.log_sim -. !best) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"segment bounds valid" ~count:200
         (QCheck.pair seq_gen seq_gen)
         (fun (cluster, probe) ->
           let t = build [ cluster ] in
           let s = Sequence.of_string alpha probe in
           let r = Similarity.score t ~log_background:uniform_lbg s in
           r.seg_lo >= 0 && r.seg_lo <= r.seg_hi && r.seg_hi < Array.length s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"score at least single best symbol" ~count:200
         (QCheck.pair seq_gen seq_gen)
         (fun (cluster, probe) ->
           (* SIM maximizes over all segments, so it is >= the best
              single-position ratio. *)
           let t = build [ cluster ] in
           let s = Sequence.of_string alpha probe in
           let r = Similarity.score t ~log_background:uniform_lbg s in
           let best_single = ref neg_infinity in
           for i = 0 to Array.length s - 1 do
             let x = Pst.log_prob t s ~lo:0 ~pos:i -. uniform_lbg.(s.(i)) in
             if x > !best_single then best_single := x
           done;
           r.log_sim >= !best_single -. 1e-9));
  ]

let smoothed_tree texts =
  let cfg = { (Pst.default_config ~alphabet_size:26) with significance = 2; p_min = 1e-3 } in
  let t = Pst.create cfg in
  List.iter (fun s -> Pst.insert_sequence t (Sequence.of_string alpha s)) texts;
  t

let qcheck_tests =
  qcheck_tests
  @ [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"smoothed scores always finite" ~count:200
           (QCheck.pair seq_gen seq_gen)
           (fun (cluster, probe) ->
             let t = smoothed_tree [ cluster ] in
             let r =
               Similarity.score t ~log_background:uniform_lbg (Sequence.of_string alpha probe)
             in
             Float.is_finite r.log_sim));
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"score monotone under cluster growth toward probe" ~count:100
           seq_gen
           (fun probe ->
             (* Adding the probe itself to the cluster cannot decrease the
                probe's similarity by much; with smoothing it should
                strictly help on average. Weak form: score after >= score
                before - 1 nat. *)
             let before = smoothed_tree [ "abcd" ] in
             let s = Sequence.of_string alpha probe in
             let r1 = (Similarity.score before ~log_background:uniform_lbg s).log_sim in
             Pst.insert_sequence before s;
             Pst.insert_sequence before s;
             let r2 = (Similarity.score before ~log_background:uniform_lbg s).log_sim in
             r2 >= r1 -. 1.0));
    ]

let () =
  Alcotest.run "similarity"
    [
      ( "unit",
        [
          Alcotest.test_case "empty sequence" `Quick test_empty_sequence;
          Alcotest.test_case "DP = brute (example)" `Quick test_dp_equals_brute_on_example;
          Alcotest.test_case "segment achieves score" `Quick test_best_segment_achieves_score;
          Alcotest.test_case "matching scores higher" `Quick test_matching_scores_higher;
          Alcotest.test_case "paper Table 1" `Quick test_table1_recurrence;
          Alcotest.test_case "log/linear conversion" `Quick test_log_linear_conversion;
        ] );
      ("property", qcheck_tests);
    ]
