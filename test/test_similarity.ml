(* Tests for the similarity DP (paper Sec. 4.3): the Kadane-style scan must
   equal the explicit O(l²) maximization, and the recurrence must replicate
   the paper's Table 1 mechanics. *)

let alpha = Gen_common.alpha
let build ?significance texts = Gen_common.build_pst ?significance texts
let uniform_lbg = Gen_common.uniform_lbg

let test_empty_sequence () =
  let t = build [ "abab" ] in
  let r = Similarity.score t ~log_background:uniform_lbg [||] in
  Alcotest.(check bool) "empty is -inf" true (r.log_sim = neg_infinity)

let test_dp_equals_brute_on_example () =
  let t = build [ "ababababbbabab"; "babbaab" ] in
  let s = Sequence.of_string alpha "abbaba" in
  let fast = Similarity.score t ~log_background:uniform_lbg s in
  let brute = Similarity.score_brute t ~log_background:uniform_lbg s in
  Alcotest.(check (float 1e-9)) "same score" brute.log_sim fast.log_sim

let test_best_segment_achieves_score () =
  (* Recomputing the sum of X over the reported segment must reproduce the
     reported score. *)
  let t = build [ "abababab"; "ccc" ] in
  let s = Sequence.of_string alpha "ccabab" in
  let r = Similarity.score t ~log_background:uniform_lbg s in
  let sum = ref 0.0 in
  for i = r.seg_lo to r.seg_hi do
    sum := !sum +. (Pst.log_prob t s ~lo:0 ~pos:i -. uniform_lbg.(s.(i)))
  done;
  Alcotest.(check (float 1e-9)) "segment sum = score" r.log_sim !sum

let test_matching_scores_higher () =
  let t = build [ "abababababab" ] in
  let good = Similarity.score t ~log_background:uniform_lbg (Sequence.of_string alpha "ababab") in
  let bad = Similarity.score t ~log_background:uniform_lbg (Sequence.of_string alpha "qzvkxw") in
  Alcotest.(check bool) "in-style sequence scores higher" true (good.log_sim > bad.log_sim)

let test_table1_recurrence () =
  (* The paper's Table 1 mechanics with its exact numbers: X built from
     given probabilities, then Y_i = max(Y_{i-1}·X_i, X_i),
     Z_i = max(Z_{i-1}, Y_i), yielding SIM = 2.10 for sequence bbaa. *)
  let p_cond = [| 0.55; 0.418; 0.87; 0.406 |] in
  let p_bg = [| 0.4; 0.4; 0.6; 0.6 |] in
  let x = Array.init 4 (fun i -> p_cond.(i) /. p_bg.(i)) in
  let y = Array.make 4 0.0 and z = Array.make 4 0.0 in
  y.(0) <- x.(0);
  z.(0) <- x.(0);
  for i = 1 to 3 do
    y.(i) <- Float.max (y.(i - 1) *. x.(i)) x.(i);
    z.(i) <- Float.max z.(i - 1) y.(i)
  done;
  (* Table 1 reports (rounded): X = 1.38 1.05 1.45 0.68; Y = 1.38 1.45
     2.10 1.42; Z = 1.38 1.45 2.10 2.10. *)
  (* Tolerances reflect that Table 1 itself prints rounded values (e.g.
     its Y2 = 1.45 is 1.375·1.045 = 1.437 rounded up). *)
  Alcotest.(check (float 0.01)) "X1" 1.38 x.(0);
  Alcotest.(check (float 0.01)) "X2" 1.05 x.(1);
  Alcotest.(check (float 0.01)) "X3" 1.45 x.(2);
  Alcotest.(check (float 0.01)) "X4" 0.68 x.(3);
  Alcotest.(check (float 0.03)) "Y3" 2.10 y.(2);
  Alcotest.(check (float 0.03)) "SIM = Z4 = 2.10" 2.10 z.(3);
  (* And the log-space DP used by the implementation gives the same. *)
  let ly = ref neg_infinity and lz = ref neg_infinity in
  Array.iter
    (fun xi ->
      let lx = log xi in
      if !ly >= 0.0 then ly := !ly +. lx else ly := lx;
      if !ly > !lz then lz := !ly)
    x;
  Alcotest.(check (float 1e-6)) "log DP matches linear DP" (log z.(3)) !lz

let test_log_linear_conversion () =
  Alcotest.(check (float 1e-9)) "log of linear" (log 1.52) (Similarity.log_of_linear 1.52);
  Alcotest.(check (float 1e-9)) "roundtrip" 2.5
    (Similarity.linear_of_log (Similarity.log_of_linear 2.5));
  Alcotest.(check bool) "huge log does not overflow" true
    (Float.is_finite (Similarity.linear_of_log 1000.0));
  let rejects label t =
    Alcotest.check_raises label
      (Invalid_argument "Similarity.log_of_linear: t must be a positive finite value")
      (fun () -> ignore (Similarity.log_of_linear t))
  in
  rejects "non-positive threshold" 0.0;
  rejects "negative threshold" (-1.5);
  (* NaN slips past a plain [t <= 0.0] guard because NaN comparisons are
     always false — it must still be rejected. *)
  rejects "NaN threshold" Float.nan;
  rejects "infinite threshold" Float.infinity;
  rejects "negative-infinite threshold" Float.neg_infinity;
  (* The documented clamp semantics, exactly. *)
  Alcotest.(check (float 0.0)) "neg_infinity maps to an exact 0" 0.0
    (Similarity.linear_of_log neg_infinity);
  Alcotest.(check (float 0.0)) "clamped at 500 nats" (exp 500.0)
    (Similarity.linear_of_log 600.0);
  Alcotest.(check (float 0.0)) "everything past the clamp is equal"
    (Similarity.linear_of_log 501.0)
    (Similarity.linear_of_log 1e9)

let test_empty_result_sentinel () =
  (* Both scorers must return the exact sentinel on an empty sequence, and
     the callers' linear conversion must turn it into a clean 0 (below any
     valid threshold, t >= 1). *)
  let t = build [ "abab" ] in
  List.iter
    (fun (name, r) ->
      Alcotest.(check bool) (name ^ " log_sim is -inf") true (r.Similarity.log_sim = neg_infinity);
      Alcotest.(check int) (name ^ " seg_lo sentinel") (-1) r.Similarity.seg_lo;
      Alcotest.(check int) (name ^ " seg_hi sentinel") (-1) r.Similarity.seg_hi;
      Alcotest.(check (float 0.0)) (name ^ " linear is 0") 0.0
        (Similarity.linear_of_log r.Similarity.log_sim))
    [
      ("score", Similarity.score t ~log_background:uniform_lbg [||]);
      ("score_brute", Similarity.score_brute t ~log_background:uniform_lbg [||]);
    ]

let test_empty_sequence_through_pipeline () =
  (* Callers must treat the sentinel as "matches nothing": an empty
     sequence in the database ends up an outlier with no assignments, and
     the classifier returns an outlier verdict with every score empty. *)
  let db = Seq_database.of_strings alpha [ "ababab"; "abab"; "ababab"; ""; "abab" ] in
  let config =
    { (Cluseq.scaled_config ~expected_cluster_size:4 ()) with k_init = 1; max_iterations = 3 }
  in
  let r = Cluseq.run ~config db in
  Alcotest.(check (list int)) "empty sequence unassigned" [] r.assignments.(3);
  Alcotest.(check bool) "empty sequence is an outlier" true (List.mem 3 r.outliers);
  Alcotest.(check bool) "no finite best score" true (r.best.(3) = None);
  if r.n_clusters > 0 then begin
    let clf = Classifier.of_result r db in
    let v = Classifier.classify clf [||] in
    Alcotest.(check bool) "classifier calls it an outlier" true (v.Classifier.cluster = None);
    List.iter
      (fun (_, s) -> Alcotest.(check bool) "every score -inf" true (s = neg_infinity))
      v.Classifier.scores
  end

let seq_gen = Gen_common.seq_gen ~max_len:40 ()

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"DP equals brute force" ~count:200
         (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 5) seq_gen) seq_gen)
         (fun (cluster, probe) ->
           let t = build cluster in
           let s = Sequence.of_string alpha probe in
           let fast = Similarity.score t ~log_background:uniform_lbg s in
           let brute = Similarity.score_brute t ~log_background:uniform_lbg s in
           (* -inf = -inf for the empty-probe case (abs of their difference
              is NaN). *)
           fast.log_sim = brute.log_sim
           || Float.abs (fast.log_sim -. brute.log_sim) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"score = brute max-subarray over xs" ~count:200
         (QCheck.pair seq_gen seq_gen)
         (fun (cluster, probe) ->
           (* [score] and [xs] must agree on the per-position X_i kernel:
              an O(l²) maximization over every segment of the [xs] array
              must reproduce the Kadane result exactly. *)
           let t = build [ cluster ] in
           let s = Sequence.of_string alpha probe in
           let r = Similarity.score t ~log_background:uniform_lbg s in
           let x = Similarity.xs t ~log_background:uniform_lbg s in
           let best = ref neg_infinity in
           for lo = 0 to Array.length x - 1 do
             let sum = ref 0.0 in
             for hi = lo to Array.length x - 1 do
               sum := !sum +. x.(hi);
               if !sum > !best then best := !sum
             done
           done;
           r.log_sim = !best || Float.abs (r.log_sim -. !best) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"attribution bit-identical to score_psa" ~count:200
         (QCheck.pair seq_gen seq_gen)
         (fun (cluster, probe) ->
           (* [score_attributed] runs the same float operations in the
              same order as [score_psa], and summing [attr_xs] over the
              winning segment in the scan's own accumulation order must
              rebuild log_sim. Both equalities are exact — no epsilon. *)
           let t = build [ cluster ] in
           let psa = Psa.compile t in
           let s = Sequence.of_string alpha probe in
           let plain = Similarity.score_psa psa ~log_background:uniform_lbg s in
           let a = Similarity.score_attributed psa ~log_background:uniform_lbg s in
           let same_float x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
           same_float a.attr_result.log_sim plain.log_sim
           && a.attr_result.seg_lo = plain.seg_lo
           && a.attr_result.seg_hi = plain.seg_hi
           && same_float (Similarity.attribution_segment_sum a) plain.log_sim
           && Array.length a.attr_xs = Array.length s
           && Array.length a.attr_depths = Array.length s
           && Array.for_all (fun d -> d >= 0) a.attr_depths));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"segment bounds valid" ~count:200
         (QCheck.pair seq_gen seq_gen)
         (fun (cluster, probe) ->
           let t = build [ cluster ] in
           let s = Sequence.of_string alpha probe in
           let r = Similarity.score t ~log_background:uniform_lbg s in
           r.seg_lo >= 0 && r.seg_lo <= r.seg_hi && r.seg_hi < Array.length s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"score at least single best symbol" ~count:200
         (QCheck.pair seq_gen seq_gen)
         (fun (cluster, probe) ->
           (* SIM maximizes over all segments, so it is >= the best
              single-position ratio. *)
           let t = build [ cluster ] in
           let s = Sequence.of_string alpha probe in
           let r = Similarity.score t ~log_background:uniform_lbg s in
           let best_single = ref neg_infinity in
           for i = 0 to Array.length s - 1 do
             let x = Pst.log_prob t s ~lo:0 ~pos:i -. uniform_lbg.(s.(i)) in
             if x > !best_single then best_single := x
           done;
           r.log_sim >= !best_single -. 1e-9));
  ]

let smoothed_tree texts = Gen_common.build_pst ~significance:2 ~p_min:1e-3 texts

let qcheck_tests =
  qcheck_tests
  @ [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"smoothed scores always finite" ~count:200
           (QCheck.pair seq_gen seq_gen)
           (fun (cluster, probe) ->
             let t = smoothed_tree [ cluster ] in
             let r =
               Similarity.score t ~log_background:uniform_lbg (Sequence.of_string alpha probe)
             in
             Float.is_finite r.log_sim));
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"score monotone under cluster growth toward probe" ~count:100
           seq_gen
           (fun probe ->
             (* Adding the probe itself to the cluster cannot decrease the
                probe's similarity by much; with smoothing it should
                strictly help on average. Weak form: score after >= score
                before - 1 nat. *)
             let before = smoothed_tree [ "abcd" ] in
             let s = Sequence.of_string alpha probe in
             let r1 = (Similarity.score before ~log_background:uniform_lbg s).log_sim in
             Pst.insert_sequence before s;
             Pst.insert_sequence before s;
             let r2 = (Similarity.score before ~log_background:uniform_lbg s).log_sim in
             r2 >= r1 -. 1.0));
    ]

let () =
  Alcotest.run "similarity"
    [
      ( "unit",
        [
          Alcotest.test_case "empty sequence" `Quick test_empty_sequence;
          Alcotest.test_case "DP = brute (example)" `Quick test_dp_equals_brute_on_example;
          Alcotest.test_case "segment achieves score" `Quick test_best_segment_achieves_score;
          Alcotest.test_case "matching scores higher" `Quick test_matching_scores_higher;
          Alcotest.test_case "paper Table 1" `Quick test_table1_recurrence;
          Alcotest.test_case "log/linear conversion" `Quick test_log_linear_conversion;
          Alcotest.test_case "empty-result sentinel" `Quick test_empty_result_sentinel;
          Alcotest.test_case "empty sequence through pipeline" `Quick
            test_empty_sequence_through_pipeline;
        ] );
      ("property", qcheck_tests);
    ]
