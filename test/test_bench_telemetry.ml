(* Tests for the benchmark telemetry layer (lib/benchtel): the JSON
   codec, the BENCH report schema round-trip, capture from the live
   metrics registry, and the regression comparer. *)

let with_clean_obs f =
  Obs.reset ();
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let json_testable = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Bench_json.to_string j)) Bench_json.equal

let test_json_parse_basics () =
  let check input expected =
    match Bench_json.parse input with
    | Ok v -> Alcotest.check json_testable input expected v
    | Error msg -> Alcotest.failf "parse %S failed: %s" input msg
  in
  check "null" Bench_json.Null;
  check "true" (Bench_json.Bool true);
  check "-12.5e2" (Bench_json.Num (-1250.0));
  check "\"a\\nb\\u0041\"" (Bench_json.Str "a\nbA");
  check "[1, 2, []]" Bench_json.(Arr [ Num 1.0; Num 2.0; Arr [] ]);
  check "{\"a\": {\"b\": 1}, \"c\": []}"
    Bench_json.(Obj [ ("a", Obj [ ("b", Num 1.0) ]); ("c", Arr []) ])

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Bench_json.parse bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "1 2"; "\"unterminated" ]

let test_json_roundtrip () =
  let v =
    Bench_json.(
      Obj
        [
          ("str", Str "quote \" backslash \\ newline \n tab \t");
          ("int", Num 42.0);
          ("neg", Num (-0.001));
          ("pi", Num 3.141592653589793);
          ("flag", Bool false);
          ("nothing", Null);
          ("arr", Arr [ Num 1.0; Str "x"; Obj [ ("k", Null) ] ]);
        ])
  in
  match Bench_json.parse (Bench_json.to_string v) with
  | Ok v' -> Alcotest.check json_testable "print |> parse is identity" v v'
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Report schema                                                       *)
(* ------------------------------------------------------------------ *)

let gc_delta ?(minor = 1e6) () =
  {
    Obs.Resource.minor_words = minor;
    promoted_words = 1e5;
    major_words = 2e5;
    minor_collections = 12;
    major_collections = 3;
    compactions = 0;
    heap_words = 4096;
    top_heap_words = 8192;
  }

let drift ?(churn = 0.12) () =
  {
    Bench_report.churn_rate = churn;
    cluster_age = 4.5;
    intercluster_kl = 1.8;
    member_score = 2.3;
  }

let experiment ?(id = "table2") ?(wall = 10.0) ?(cluseq_s = 8.0) ?drift:(dr = drift ())
    ?(quality = Some ("accuracy", 0.82)) () =
  {
    Bench_report.id;
    wall_s = wall;
    runs = 1;
    iterations = 7;
    cluseq_seconds = cluseq_s;
    phases =
      [
        ("generation", 0.5); ("reclustering", 6.0); ("consolidation", 0.6);
        ("threshold", 0.4); ("convergence", 0.5);
      ];
    sequences = 600;
    symbols = 120_000;
    gc = gc_delta ();
    peak_heap_words = 2_000_000;
    pst_nodes_built = 12_345;
    pst_est_words_built = 400_000;
    census =
      {
        Bench_report.pairs_scored = 10_000;
        pairs_joined = 800;
        dirty_rescores = 150;
        assignments_changed = 420;
        pairs_reused = 2_500;
        index_candidates = 9_000;
        index_filtered = 3_500;
      };
    drift = dr;
    quality;
  }

let report ?(scale = 0.25) ?(domains = 1) ?(shards = 1) ?experiments
    ?(micro = [ ("cluseq/pst-insert", 5200.0) ]) () =
  {
    Bench_report.env =
      {
        label = "test";
        git_rev = "deadbeef";
        ocaml_version = Sys.ocaml_version;
        scale;
        hostname = "testhost";
        word_size = Sys.word_size;
        domains;
        shards;
      };
    experiments =
      (match experiments with
      | Some es -> es
      | None -> [ experiment (); experiment ~id:"fig4" ~quality:(Some ("macro_recall", 0.9)) () ]);
    micro;
  }

let test_report_roundtrip () =
  let r = report () in
  let json_text = Bench_json.to_string (Bench_report.to_json r) in
  match Bench_json.parse json_text with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok json -> (
      match Bench_report.of_json json with
      | Error msg -> Alcotest.failf "of_json failed: %s" msg
      | Ok r' ->
          Alcotest.(check bool) "env round-trips" true (r.env = r'.env);
          Alcotest.(check int) "experiment count" (List.length r.experiments)
            (List.length r'.experiments);
          List.iter2
            (fun (a : Bench_report.experiment) (b : Bench_report.experiment) ->
              Alcotest.(check bool) (a.id ^ " round-trips") true (a = b))
            r.experiments r'.experiments;
          Alcotest.(check bool) "micro round-trips" true (r.micro = r'.micro))

let test_report_file_io () =
  let r = report () in
  let path = Filename.temp_file "bench_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_report.write path r;
      match Bench_report.read path with
      | Ok r' -> Alcotest.(check bool) "write |> read is identity" true (r = r')
      | Error msg -> Alcotest.failf "read failed: %s" msg)

let test_report_rejects_foreign () =
  (match Bench_report.of_json (Bench_json.Obj [ ("schema", Bench_json.Str "other") ]) with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error _ -> ());
  let bad_version =
    Bench_json.Obj
      [ ("schema", Bench_json.Str Bench_report.schema_name); ("version", Bench_json.Num 99.0) ]
  in
  match Bench_report.of_json bad_version with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Capture from the live registry                                      *)
(* ------------------------------------------------------------------ *)

let tiny_db () =
  let w =
    Workload.generate
      {
        Workload.default_params with
        n_sequences = 60;
        avg_length = 120;
        n_clusters = 2;
        contexts_per_cluster = 120;
        concentration = 0.15;
        seed = 3;
      }
  in
  w.db

let tiny_config =
  {
    Cluseq.default_config with
    k_init = 2;
    significance = 8;
    min_residual = Some 8;
    t_init = 1.2;
    max_iterations = 10;
    seed = 1;
  }

let capture_now ~id =
  Bench_report.capture ~id ~wall_s:1.0 ~gc:(gc_delta ()) ~peak_heap_words:1_000
    ~quality:None

let test_capture_from_run () =
  with_clean_obs @@ fun () ->
  let db = tiny_db () in
  let result = Cluseq.run ~config:tiny_config db in
  let e = capture_now ~id:"live" in
  Alcotest.(check int) "one run captured" 1 e.Bench_report.runs;
  Alcotest.(check int) "iterations captured" result.Cluseq.iterations e.iterations;
  Alcotest.(check int) "sequences captured" 60 e.sequences;
  Alcotest.(check bool) "symbols captured" true (e.symbols > 0);
  Alcotest.(check bool) "run seconds captured" true (e.cluseq_seconds > 0.0);
  Alcotest.(check int) "five phases" 5 (List.length e.phases);
  Alcotest.(check bool) "phase time recorded" true
    (List.fold_left (fun acc (_, s) -> acc +. s) 0.0 e.phases > 0.0);
  Alcotest.(check bool) "pst nodes accounted" true (e.pst_nodes_built > 0);
  Alcotest.(check bool) "pst words accounted" true (e.pst_est_words_built > 0);
  (* The per-phase sum can't exceed the whole run's wall time. *)
  Alcotest.(check bool) "phases within run wall time" true
    (List.fold_left (fun acc (_, s) -> acc +. s) 0.0 e.phases <= e.cluseq_seconds +. 1e-9)

let test_capture_no_bleed_through () =
  with_clean_obs @@ fun () ->
  let db = tiny_db () in
  ignore (Cluseq.run ~config:tiny_config db);
  let before = capture_now ~id:"first" in
  Alcotest.(check bool) "first experiment saw work" true (before.Bench_report.sequences > 0);
  (* Between experiments the driver resets the registry: nothing of the
     first experiment may leak into the second capture. *)
  Obs.reset ();
  let after = capture_now ~id:"second" in
  Alcotest.(check int) "runs reset" 0 after.Bench_report.runs;
  Alcotest.(check int) "sequences reset" 0 after.sequences;
  Alcotest.(check int) "pst nodes reset" 0 after.pst_nodes_built;
  Alcotest.(check (float 0.0)) "run seconds reset" 0.0 after.cluseq_seconds;
  Alcotest.(check (float 0.0)) "phases reset" 0.0
    (List.fold_left (fun acc (_, s) -> acc +. s) 0.0 after.phases)

(* ------------------------------------------------------------------ *)
(* Comparer                                                            *)
(* ------------------------------------------------------------------ *)

let compare_ok ?threshold_pct ?quality_threshold_pct base candidate =
  match Bench_compare.compare_reports ?threshold_pct ?quality_threshold_pct ~base ~candidate () with
  | Ok verdicts -> verdicts
  | Error msg -> Alcotest.failf "unexpected compare error: %s" msg

let test_compare_identical () =
  let r = report () in
  let verdicts = compare_ok r r in
  Alcotest.(check bool) "no regression on identical runs" false
    (Bench_compare.has_regression verdicts);
  Alcotest.(check bool) "verdicts produced" true (List.length verdicts > 0);
  Alcotest.(check bool) "nothing improved either" true
    (List.for_all (fun v -> v.Bench_compare.status <> `Improvement) verdicts)

let test_compare_flags_slowdown () =
  let base = report () in
  let slowed =
    {
      base with
      experiments =
        List.map
          (fun (e : Bench_report.experiment) ->
            if e.id = "table2" then
              {
                e with
                wall_s = e.wall_s *. 2.0;
                cluseq_seconds = e.cluseq_seconds *. 2.0;
                phases = List.map (fun (p, s) -> (p, s *. 2.0)) e.phases;
              }
            else e)
          base.experiments;
    }
  in
  let verdicts = compare_ok ~threshold_pct:25.0 base slowed in
  Alcotest.(check bool) "2x slowdown flagged" true (Bench_compare.has_regression verdicts);
  let regressed v = v.Bench_compare.status = `Regression in
  Alcotest.(check bool) "wall time regressed" true
    (List.exists (fun v -> regressed v && v.Bench_compare.metric = "wall_s" && v.experiment = "table2") verdicts);
  Alcotest.(check bool) "reclustering phase regressed" true
    (List.exists (fun v -> regressed v && v.Bench_compare.metric = "phase.reclustering") verdicts);
  Alcotest.(check bool) "throughput regressed" true
    (List.exists
       (fun v -> regressed v && v.Bench_compare.metric = "throughput.sequences_per_s")
       verdicts);
  Alcotest.(check bool) "untouched experiment stays clean" true
    (List.for_all (fun v -> (not (regressed v)) || v.Bench_compare.experiment = "table2") verdicts);
  (* and the render mentions it *)
  let rendered = Bench_compare.render verdicts in
  Alcotest.(check bool) "render names the regression" true
    (let contains ~needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     contains ~needle:"REGRESSION" rendered && contains ~needle:"wall_s" rendered)

let test_compare_flags_quality_drop () =
  let base = report () in
  let worse =
    {
      base with
      experiments =
        List.map
          (fun (e : Bench_report.experiment) ->
            if e.id = "table2" then { e with quality = Some ("accuracy", 0.70) } else e)
          base.experiments;
    }
  in
  let verdicts = compare_ok base worse in
  Alcotest.(check bool) "quality drop is a regression" true
    (List.exists
       (fun v ->
         v.Bench_compare.status = `Regression && v.Bench_compare.metric = "quality.accuracy")
       verdicts)

let test_compare_flags_drift_shift () =
  let base = report () in
  let churned =
    {
      base with
      experiments =
        List.map
          (fun (e : Bench_report.experiment) ->
            if e.id = "table2" then
              {
                e with
                drift =
                  {
                    e.drift with
                    churn_rate = e.drift.churn_rate *. 2.0;
                    member_score = e.drift.member_score *. 0.5;
                  };
              }
            else e)
          base.experiments;
    }
  in
  let verdicts = compare_ok base churned in
  let regressed m v =
    v.Bench_compare.status = `Regression && v.Bench_compare.metric = m
  in
  Alcotest.(check bool) "doubled churn is a regression" true
    (List.exists (regressed "drift.churn_rate") verdicts);
  Alcotest.(check bool) "halved member score is a regression" true
    (List.exists (regressed "drift.member_score") verdicts);
  (* and the good directions read as improvements, not regressions *)
  let calmer = compare_ok churned base in
  Alcotest.(check bool) "reverse comparison has no drift regressions" true
    (List.for_all
       (fun v ->
         v.Bench_compare.status <> `Regression
         || not (String.length v.Bench_compare.metric >= 6
                 && String.sub v.Bench_compare.metric 0 6 = "drift."))
       calmer)

let test_compare_skips_empty_drift () =
  (* A base recorded before the drift gauges existed reads as all-zero:
     no drift verdicts at all, so old baselines keep comparing. *)
  let empty =
    {
      Bench_report.churn_rate = 0.0;
      cluster_age = 0.0;
      intercluster_kl = 0.0;
      member_score = 0.0;
    }
  in
  Alcotest.(check bool) "all-zero drift is empty" true (Bench_report.drift_is_empty empty);
  Alcotest.(check bool) "measured drift is not empty" false
    (Bench_report.drift_is_empty (drift ()));
  let base = report ~experiments:[ experiment ~drift:empty () ] () in
  let candidate = report ~experiments:[ experiment () ] () in
  let verdicts = compare_ok base candidate in
  Alcotest.(check bool) "no drift verdicts against a pre-drift base" true
    (List.for_all
       (fun v ->
         not (String.length v.Bench_compare.metric >= 6
              && String.sub v.Bench_compare.metric 0 6 = "drift."))
       verdicts)

let test_compare_noise_floor () =
  (* Tiny timings double but stay under the 50 ms floor: skipped, not
     flagged. *)
  let base = report ~experiments:[ experiment ~wall:0.01 ~cluseq_s:0.02 () ] () in
  let base =
    {
      base with
      experiments =
        List.map
          (fun (e : Bench_report.experiment) ->
            { e with phases = List.map (fun (p, _) -> (p, 0.004)) e.phases })
          base.experiments;
    }
  in
  let doubled =
    {
      base with
      experiments =
        List.map
          (fun (e : Bench_report.experiment) ->
            {
              e with
              wall_s = e.wall_s *. 2.0;
              cluseq_seconds = e.cluseq_seconds *. 2.0;
              phases = List.map (fun (p, s) -> (p, s *. 2.0)) e.phases;
            })
          base.experiments;
    }
  in
  let verdicts = compare_ok base doubled in
  Alcotest.(check bool) "sub-floor slowdown not flagged" false
    (Bench_compare.has_regression verdicts)

let test_compare_tolerates_experiment_sets () =
  let base = report () in
  let subset =
    { base with experiments = [ experiment () ]; micro = [] }
  in
  let verdicts = compare_ok base subset in
  Alcotest.(check bool) "smaller candidate run passes" false
    (Bench_compare.has_regression verdicts);
  Alcotest.(check bool) "missing experiment noted" true
    (List.exists (fun v -> v.Bench_compare.status = `Removed) verdicts);
  let verdicts' = compare_ok subset base in
  Alcotest.(check bool) "larger candidate run passes" false
    (Bench_compare.has_regression verdicts');
  Alcotest.(check bool) "new experiment noted" true
    (List.exists (fun v -> v.Bench_compare.status = `Added) verdicts')

let test_compare_rejects_scale_mismatch () =
  match
    Bench_compare.compare_reports ~base:(report ~scale:0.25 ())
      ~candidate:(report ~scale:1.0 ()) ()
  with
  | Ok _ -> Alcotest.fail "scale mismatch accepted"
  | Error _ -> ()

let test_compare_rejects_domains_mismatch () =
  (match
     Bench_compare.compare_reports ~base:(report ~domains:1 ())
       ~candidate:(report ~domains:4 ()) ()
   with
  | Ok _ -> Alcotest.fail "domains mismatch accepted"
  | Error msg ->
      Alcotest.(check bool) "error names --domains" true
        (let contains ~needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         contains ~needle:"--domains" msg));
  (* Files written before the field existed read back as 0: wildcard. *)
  match
    Bench_compare.compare_reports ~base:(report ~domains:0 ())
      ~candidate:(report ~domains:4 ()) ()
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "legacy domains=0 should compare: %s" msg

let test_compare_rejects_shards_mismatch () =
  (match
     Bench_compare.compare_reports ~base:(report ~shards:1 ())
       ~candidate:(report ~shards:4 ()) ()
   with
  | Ok _ -> Alcotest.fail "shards mismatch accepted"
  | Error msg ->
      Alcotest.(check bool) "error names --shards" true
        (let contains ~needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         contains ~needle:"--shards" msg));
  (* Files written before the field existed read back as 0: wildcard. *)
  match
    Bench_compare.compare_reports ~base:(report ~shards:0 ())
      ~candidate:(report ~shards:4 ()) ()
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "legacy shards=0 should compare: %s" msg

let test_compare_micro_regression () =
  let base = report ~micro:[ ("cluseq/similarity-dp", 1000.0) ] () in
  let slowed = { base with micro = [ ("cluseq/similarity-dp", 2100.0) ] } in
  let verdicts = compare_ok base slowed in
  Alcotest.(check bool) "micro slowdown flagged" true
    (List.exists
       (fun v ->
         v.Bench_compare.status = `Regression && v.Bench_compare.experiment = "micro"
         && v.Bench_compare.metric = "cluseq/similarity-dp")
       verdicts)

let () =
  Alcotest.run "bench_telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round trip" `Quick test_report_roundtrip;
          Alcotest.test_case "file round trip" `Quick test_report_file_io;
          Alcotest.test_case "rejects foreign documents" `Quick test_report_rejects_foreign;
        ] );
      ( "capture",
        [
          Alcotest.test_case "captures a live run" `Quick test_capture_from_run;
          Alcotest.test_case "reset stops bleed-through" `Quick test_capture_no_bleed_through;
        ] );
      ( "compare",
        [
          Alcotest.test_case "identical pair passes" `Quick test_compare_identical;
          Alcotest.test_case "2x slowdown flagged" `Quick test_compare_flags_slowdown;
          Alcotest.test_case "quality drop flagged" `Quick test_compare_flags_quality_drop;
          Alcotest.test_case "drift shift flagged" `Quick test_compare_flags_drift_shift;
          Alcotest.test_case "empty drift base skipped" `Quick test_compare_skips_empty_drift;
          Alcotest.test_case "noise floor respected" `Quick test_compare_noise_floor;
          Alcotest.test_case "added/removed experiments tolerated" `Quick
            test_compare_tolerates_experiment_sets;
          Alcotest.test_case "scale mismatch rejected" `Quick test_compare_rejects_scale_mismatch;
          Alcotest.test_case "domains mismatch rejected" `Quick
            test_compare_rejects_domains_mismatch;
          Alcotest.test_case "shards mismatch rejected" `Quick
            test_compare_rejects_shards_mismatch;
          Alcotest.test_case "micro regression flagged" `Quick test_compare_micro_regression;
        ] );
    ]
