(* Shard-and-merge orchestration: partitioning determinism, the
   1-vs-N-shard membership matrix (mirroring test_par's domain matrix),
   and merged-result invariants. *)

(* 4x the small fixture: each of 4 shards then sees ~90 sequences —
   the scale [Gen_common.small_config]'s statistical floors
   (significance 8, min_residual 8) were tuned for. *)
let db_and_truth =
  lazy
    (let w =
       Workload.generate
         {
           Workload.default_params with
           n_sequences = 360;
           avg_length = 100;
           n_clusters = 3;
           contexts_per_cluster = 120;
           concentration = 0.15;
           seed = 11;
         }
     in
     (w.Workload.db, w.Workload.labels))

(* small_config's 12-iteration cap truncates this 360-sequence fixture
   mid-threshold-adjustment; 30 lets both the serial and the per-shard
   runs reach convergence (serial converges around iteration 21). *)
let config = { Gen_common.small_config with Cluseq.max_iterations = 30 }

(* Final memberships modulo cluster renumbering: the sorted list of
   sorted member-id lists. *)
let canon_memberships (r : Cluseq.result) =
  Array.to_list r.Cluseq.clusters
  |> List.map (fun (_, members) -> Array.to_list members)
  |> List.sort compare

let run_sharded ~shards ~domains () =
  Gen_common.with_domains domains (fun () ->
      let db, _ = Lazy.force db_and_truth in
      Shard.run ~config ~shards db)

let test_partition_deterministic () =
  (* Pure function of (seed, id): stable across calls, in range, and
     non-degenerate (every shard of 4 gets something from 1000 ids). *)
  let counts = Array.make 4 0 in
  for id = 0 to 999 do
    let s = Shard.shard_of_id ~seed:42 ~shards:4 id in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "stable" s (Shard.shard_of_id ~seed:42 ~shards:4 id);
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri (fun s c -> Alcotest.(check bool) (Printf.sprintf "shard %d non-empty" s) true (c > 100)) counts

let test_shards_one_is_plain_run () =
  let db, _ = Lazy.force db_and_truth in
  let plain = Cluseq.run ~config db in
  let sharded = Shard.run ~config ~shards:1 db in
  Alcotest.(check (list (list int)))
    "memberships" (canon_memberships plain) (canon_memberships sharded);
  Alcotest.(check int) "iterations" plain.Cluseq.iterations sharded.Cluseq.iterations;
  Alcotest.(check (float 0.0)) "final_t" plain.Cluseq.final_t sharded.Cluseq.final_t;
  Alcotest.(check bool)
    "assignments" true (plain.Cluseq.assignments = sharded.Cluseq.assignments)

(* Exact membership equality between 1 and 4 shards cannot hold: each
   shard trains its model on a quarter of the data with its own
   iteration dynamics, so the merged (counts-summed) PSTs differ from
   the serial models in their low-order counts and a handful of
   near-threshold boundary sequences flip. The matrix therefore checks
   structural agreement: same cluster count, every cluster pairs off
   with a near-identical counterpart (Jaccard), and the hard labelings
   agree (cross-run ARI). *)
let jaccard a b =
  let sa = List.sort_uniq compare a and sb = List.sort_uniq compare b in
  let rec go inter union xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> (inter, union + List.length rest)
    | x :: xs', y :: ys' ->
        if x = y then go (inter + 1) (union + 1) xs' ys'
        else if x < y then go inter (union + 1) xs' ys
        else go inter (union + 1) xs ys'
  in
  let inter, union = go 0 0 sa sb in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

let test_sharded_matches_unsharded_memberships () =
  let r1 = run_sharded ~shards:1 ~domains:1 () in
  let r4 = run_sharded ~shards:4 ~domains:1 () in
  let m1 = canon_memberships r1 and m4 = canon_memberships r4 in
  Alcotest.(check int) "cluster count" (List.length m1) (List.length m4);
  List.iter
    (fun c1 ->
      let best = List.fold_left (fun acc c4 -> Float.max acc (jaccard c1 c4)) 0.0 m4 in
      Alcotest.(check bool)
        (Printf.sprintf "cluster has >=0.9-Jaccard counterpart (best %.3f)" best)
        true (best >= 0.9))
    m1;
  let n = Seq_database.n_sequences (fst (Lazy.force db_and_truth)) in
  let ari =
    Metrics.adjusted_rand_index
      ~truth:(Cluseq.hard_labels r1 ~n) ~pred:(Cluseq.hard_labels r4 ~n)
  in
  Alcotest.(check bool)
    (Printf.sprintf "1-vs-4-shard cross ARI %.3f >= 0.95" ari)
    true (ari >= 0.95)

let test_shards_invariant_to_domains () =
  let a = run_sharded ~shards:4 ~domains:1 () in
  let b = run_sharded ~shards:4 ~domains:4 () in
  Alcotest.(check (list (list int)))
    "memberships" (canon_memberships a) (canon_memberships b);
  Alcotest.(check bool) "assignments" true (a.Cluseq.assignments = b.Cluseq.assignments);
  Alcotest.(check bool) "best" true (a.Cluseq.best = b.Cluseq.best);
  Alcotest.(check (list int)) "outliers" a.Cluseq.outliers b.Cluseq.outliers

let test_merged_result_invariants () =
  let db, _ = Lazy.force db_and_truth in
  let r = Shard.run ~config ~shards:4 db in
  let n = Seq_database.n_sequences db in
  (match Check.result_invariants ~n r with
  | [] -> ()
  | errs -> Alcotest.failf "merged result violates invariants:\n%s" (String.concat "\n" errs));
  Alcotest.(check bool) "found clusters" true (r.Cluseq.n_clusters > 0)

let test_sharded_quality () =
  (* The merged clustering must still recover the planted families. *)
  let db, truth = Lazy.force db_and_truth in
  let r = Shard.run ~config ~shards:4 db in
  let pred = Cluseq.hard_labels r ~n:(Seq_database.n_sequences db) in
  let ari = Metrics.adjusted_rand_index ~truth ~pred in
  Alcotest.(check bool) (Printf.sprintf "ari %.3f >= 0.9" ari) true (ari >= 0.9)

let () =
  Alcotest.run "shard"
    [
      ( "shard",
        [
          Alcotest.test_case "partition deterministic" `Quick test_partition_deterministic;
          Alcotest.test_case "shards=1 is the plain path" `Quick test_shards_one_is_plain_run;
          Alcotest.test_case "1 vs 4 shards same memberships" `Slow
            test_sharded_matches_unsharded_memberships;
          Alcotest.test_case "shards invariant to domains" `Slow test_shards_invariant_to_domains;
          Alcotest.test_case "merged result invariants" `Quick test_merged_result_invariants;
          Alcotest.test_case "sharded quality" `Quick test_sharded_quality;
        ] );
    ]
