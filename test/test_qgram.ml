(* Tests for q-gram profiles and spherical k-means. *)

let alpha = Alphabet.lowercase
let enc = Sequence.of_string alpha

let test_profile_dimensions () =
  (* "abab" has 3-grams: aba, bab. *)
  let p = Qgram.profile ~q:3 (enc "abab") in
  Alcotest.(check int) "two distinct 3-grams" 2 (Qgram.dimensions p);
  let p2 = Qgram.profile ~q:5 (enc "abab") in
  Alcotest.(check int) "too short for q=5" 0 (Qgram.dimensions p2)

let test_profile_invalid_q () =
  Alcotest.check_raises "q = 0" (Invalid_argument "Qgram.profile") (fun () ->
      ignore (Qgram.profile ~q:0 (enc "abc")))

let test_cosine_self () =
  let p = Qgram.profile ~q:3 (enc "abcabcabc") in
  Alcotest.(check (float 1e-9)) "self similarity 1" 1.0 (Qgram.cosine p p)

let test_cosine_disjoint () =
  let a = Qgram.profile ~q:3 (enc "aaaa") and b = Qgram.profile ~q:3 (enc "bbbb") in
  Alcotest.(check (float 1e-9)) "disjoint 0" 0.0 (Qgram.cosine a b)

let test_cosine_empty () =
  let a = Qgram.profile ~q:3 (enc "ab") and b = Qgram.profile ~q:3 (enc "abcd") in
  Alcotest.(check (float 1e-9)) "empty profile gives 0" 0.0 (Qgram.cosine a b)

let test_cosine_order_insensitive () =
  (* The q-gram weakness the paper exploits: rearranged blocks look almost
     identical to a bag of q-grams. *)
  let a = Qgram.profile ~q:3 (enc "aaaabbbb") and b = Qgram.profile ~q:3 (enc "bbbbaaaa") in
  Alcotest.(check bool) "rearrangement keeps high cosine" true (Qgram.cosine a b >= 0.75)

let test_cluster_separates () =
  let rng = Rng.create 1 in
  let mk pat = enc (String.concat "" (List.init 10 (fun _ -> pat))) in
  let data = Array.init 20 (fun i -> if i < 10 then mk "abc" else mk "xyz") in
  let r = Qgram.cluster rng ~k:2 ~q:3 data in
  let first = r.labels.(0) in
  Alcotest.(check bool) "group 1" true (Array.for_all (fun l -> l = first) (Array.sub r.labels 0 10));
  Alcotest.(check bool) "group 2" true
    (Array.for_all (fun l -> l = 1 - first) (Array.sub r.labels 10 10))

let test_cluster_invalid () =
  Alcotest.check_raises "k > n" (Invalid_argument "Qgram.cluster") (fun () ->
      ignore (Qgram.cluster (Rng.create 1) ~k:5 ~q:3 [| enc "abc" |]))

let test_degenerate_stay_unassigned () =
  (* Regression: sequences shorter than q have an empty profile and zero
     cosine against everything; the old argmax silently dumped them into
     cluster 0. They must stay deterministically unassigned. *)
  let mk pat = enc (String.concat "" (List.init 8 (fun _ -> pat))) in
  let data = [| mk "abc"; mk "abc"; mk "xyz"; mk "xyz"; enc "ab"; enc "" |] in
  let r = Qgram.cluster (Rng.create 3) ~k:2 ~q:3 data in
  Alcotest.(check int) "short sequence unassigned" Qgram.unassigned r.labels.(4);
  Alcotest.(check int) "empty sequence unassigned" Qgram.unassigned r.labels.(5);
  Alcotest.(check bool) "long sequences all assigned" true
    (Array.for_all (fun l -> l <> Qgram.unassigned) (Array.sub r.labels 0 4))

let test_emptied_cluster_retired () =
  (* Regression: a cluster that lost its last member kept its stale
     centroid as a ghost attractor that could recapture sequences on
     later rounds and stall convergence. With retirement, runs over two
     tight groups plus a straggler converge well before the round cap
     and keep the groups separated, for every seeding — including seeds
     that start on the straggler or on near-duplicate sequences and so
     force clusters to empty. *)
  let mk pat n = enc (String.concat "" (List.init n (fun _ -> pat))) in
  let data =
    Array.append
      (Array.init 6 (fun i -> mk "abc" (6 + (i mod 2))))
      (Array.append (Array.init 6 (fun i -> mk "xyz" (6 + (i mod 2)))) [| mk "abcxyz" 4 |])
  in
  for seed = 0 to 9 do
    let r = Qgram.cluster (Rng.create seed) ~k:5 ~q:3 data in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d converges before the cap" seed)
      true (r.iterations < 20);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d separates the groups" seed)
      true
      (r.labels.(0) <> r.labels.(6));
    Array.iteri
      (fun i l ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: seq %d assigned" seed i)
          true (l <> Qgram.unassigned))
      r.labels
  done

let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 0 40) (Gen.char_range 'a' 'd'))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cosine within [0,1]" ~count:300 (QCheck.pair seq_gen seq_gen)
         (fun (a, b) ->
           let c = Qgram.cosine (Qgram.profile ~q:3 (enc a)) (Qgram.profile ~q:3 (enc b)) in
           c >= 0.0 && c <= 1.0 +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cosine symmetric" ~count:300 (QCheck.pair seq_gen seq_gen)
         (fun (a, b) ->
           let pa = Qgram.profile ~q:3 (enc a) and pb = Qgram.profile ~q:3 (enc b) in
           Float.abs (Qgram.cosine pa pb -. Qgram.cosine pb pa) < 1e-12));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"dimensions bounded by gram count" ~count:300 seq_gen (fun s ->
           let p = Qgram.profile ~q:3 (enc s) in
           Qgram.dimensions p <= max 0 (String.length s - 2)));
  ]

let () =
  Alcotest.run "qgram"
    [
      ( "unit",
        [
          Alcotest.test_case "dimensions" `Quick test_profile_dimensions;
          Alcotest.test_case "invalid q" `Quick test_profile_invalid_q;
          Alcotest.test_case "cosine self" `Quick test_cosine_self;
          Alcotest.test_case "cosine disjoint" `Quick test_cosine_disjoint;
          Alcotest.test_case "cosine empty" `Quick test_cosine_empty;
          Alcotest.test_case "order insensitive" `Quick test_cosine_order_insensitive;
          Alcotest.test_case "cluster separates" `Quick test_cluster_separates;
          Alcotest.test_case "cluster invalid" `Quick test_cluster_invalid;
          Alcotest.test_case "degenerate unassigned" `Quick test_degenerate_stay_unassigned;
          Alcotest.test_case "emptied cluster retired" `Quick test_emptied_cluster_retired;
        ] );
      ("property", qcheck_tests);
    ]
