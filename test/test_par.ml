(* Tests for the domain pool (lib/par): primitive correctness (chunk
   boundaries, exception propagation, nesting) and the pipeline-wide
   determinism contract — identical clusterings, verdicts, and medoids
   for every domain count. *)

let with_pool ~domains f =
  let pool = Par.create ~domains () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) (fun () -> f pool)

(* --- primitives ------------------------------------------------------- *)

let test_map_matches_serial () =
  List.iter
    (fun domains ->
      with_pool ~domains @@ fun pool ->
      List.iter
        (fun n ->
          let expected = Array.init n (fun i -> (i * 7) mod 13) in
          let got = Par.map_chunks pool ~n (fun i -> (i * 7) mod 13) in
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d n=%d" domains n)
            expected got)
        [ 0; 1; 2; 3; 17; 100 ])
    [ 1; 2; 4 ]

let test_chunk_boundaries () =
  (* Explicit chunk counts around the awkward spots: more chunks than
     items, one more item than chunks, exactly equal. Every index must
     appear exactly once regardless. *)
  with_pool ~domains:3 @@ fun pool ->
  List.iter
    (fun (n, chunks) ->
      let hits = Array.make (max n 1) 0 in
      Par.parallel_for pool ~chunks ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
      for i = 0 to n - 1 do
        Alcotest.(check int) (Printf.sprintf "n=%d chunks=%d slot %d" n chunks i) 1 hits.(i)
      done)
    [ (5, 8); (8, 5); (9, 8); (8, 8); (1, 4); (64, 7) ]

let test_empty_range () =
  with_pool ~domains:2 @@ fun pool ->
  Par.parallel_for pool ~lo:0 ~hi:0 (fun _ -> Alcotest.fail "body run on empty range");
  Alcotest.(check (array int)) "map on n=0" [||] (Par.map_chunks pool ~n:0 (fun i -> i))

let test_parallel_for_offset_range () =
  with_pool ~domains:2 @@ fun pool ->
  let sum = Atomic.make 0 in
  Par.parallel_for pool ~lo:3 ~hi:10 (fun i -> ignore (Atomic.fetch_and_add sum i));
  Alcotest.(check int) "sum 3..9" 42 (Atomic.get sum)

let test_exception_propagation () =
  List.iter
    (fun domains ->
      with_pool ~domains @@ fun pool ->
      (* Indexes divisible by 3 raise; the reraised exception must be the
         deterministic lowest-chunk-index failure, i.e. index 0. *)
      (match
         Par.map_chunks pool ~n:50 (fun i ->
             if i mod 3 = 0 then failwith (string_of_int i) else i)
       with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure s ->
          Alcotest.(check string)
            (Printf.sprintf "domains=%d lowest failure wins" domains)
            "0" s);
      (* The pool must survive a failed job. *)
      let got = Par.map_chunks pool ~n:10 (fun i -> i * i) in
      Alcotest.(check (array int)) "pool reusable after failure"
        (Array.init 10 (fun i -> i * i))
        got)
    [ 1; 2; 4 ]

let test_nested_submission_runs_inline () =
  with_pool ~domains:2 @@ fun pool ->
  (* A body that re-enters the pool must not deadlock; the inner job runs
     inline and still produces index-ordered results. *)
  let got =
    Par.map_chunks pool ~n:4 (fun i ->
        Array.fold_left ( + ) 0 (Par.map_chunks pool ~n:5 (fun j -> (10 * i) + j)))
  in
  Alcotest.(check (array int)) "nested results"
    (Array.init 4 (fun i -> Array.fold_left ( + ) 0 (Array.init 5 (fun j -> (10 * i) + j))))
    got

let test_shutdown () =
  let pool = Par.create ~domains:2 () in
  Par.shutdown pool;
  Par.shutdown pool;
  (* idempotent *)
  match Par.map_chunks pool ~n:3 (fun i -> i) with
  | _ -> Alcotest.fail "job accepted after shutdown"
  | exception Invalid_argument _ -> ()

let test_size_clamping () =
  with_pool ~domains:1 @@ fun p1 ->
  Alcotest.(check int) "size 1" 1 (Par.size p1);
  let p = Par.create ~domains:0 () in
  Alcotest.(check int) "0 clamps to 1" 1 (Par.size p);
  Par.shutdown p

(* --- pipeline determinism --------------------------------------------- *)

let db_and_truth = Gen_common.small_db_and_truth
let config = Gen_common.small_config
let with_domains = Gen_common.with_domains

let test_cluseq_identical_across_domain_counts () =
  let db, truth = Lazy.force db_and_truth in
  let run d = with_domains d (fun () -> Cluseq.run ~config db) in
  let base = run 1 in
  let n = Seq_database.n_sequences db in
  let base_acc =
    let hard = Cluseq.hard_labels base ~n in
    Metrics.accuracy ~truth ~pred_class:(Matching.relabel ~truth ~pred:hard)
  in
  List.iter
    (fun d ->
      let r = run d in
      let tag fmt = Printf.sprintf ("domains=%d: " ^^ fmt) d in
      Alcotest.(check bool) (tag "assignments identical") true (r.assignments = base.assignments);
      Alcotest.(check bool) (tag "clusters identical") true (r.clusters = base.clusters);
      Alcotest.(check bool) (tag "best identical") true (r.best = base.best);
      Alcotest.(check bool) (tag "outliers identical") true (r.outliers = base.outliers);
      Alcotest.(check int) (tag "n_clusters") base.n_clusters r.n_clusters;
      Alcotest.(check int) (tag "iterations") base.iterations r.iterations;
      Alcotest.(check (float 0.0)) (tag "final_t") base.final_t r.final_t;
      Alcotest.(check bool) (tag "history identical") true (r.history = base.history);
      let acc =
        let hard = Cluseq.hard_labels r ~n in
        Metrics.accuracy ~truth ~pred_class:(Matching.relabel ~truth ~pred:hard)
      in
      Alcotest.(check (float 0.0)) (tag "quality headline identical") base_acc acc)
    [ 2; 4 ]

(* The reclustering scan is now batched (one automaton over a block of
   lanes, Cluseq.scan_block sequences per task): pin down that the
   batched path is deterministic across domain counts AND that it equals
   the unbatched tree walk — [--no-psa] disables compilation, so every
   score falls back to the per-sequence tree walk, which must produce
   the identical clustering bit for bit. *)
let test_batched_reclustering_identical_across_domains_and_no_psa () =
  let db, _ = Lazy.force db_and_truth in
  let run ~psa d =
    with_domains d (fun () ->
        let saved = Psa.enabled () in
        Psa.set_enabled psa;
        Fun.protect
          ~finally:(fun () -> Psa.set_enabled saved)
          (fun () -> Cluseq.run ~config db))
  in
  let base = run ~psa:true 1 in
  let strip (r : Cluseq.result) =
    (r.clusters, r.assignments, r.best, r.outliers, r.final_t, r.iterations)
  in
  List.iter
    (fun (psa, d, tag) ->
      let r = run ~psa d in
      Alcotest.(check bool) tag true (strip r = strip base))
    [
      (true, 4, "batched @4 domains = batched @1");
      (false, 1, "tree walk @1 = batched @1");
      (false, 4, "tree walk @4 = batched @1");
    ]

let test_classifier_identical_across_domain_counts () =
  let db, _ = Lazy.force db_and_truth in
  let result = with_domains 1 (fun () -> Cluseq.run ~config db) in
  let clf = Classifier.of_result result db in
  let verdicts d = with_domains d (fun () -> Classifier.classify_all clf db) in
  let base = verdicts 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "verdicts identical at domains=%d" d)
        true
        (verdicts d = base))
    [ 2; 4 ]

let test_kmedoids_identical_across_domain_counts () =
  let points = Array.init 40 (fun i -> float_of_int ((i * 37) mod 97)) in
  let dist i j = Float.abs (points.(i) -. points.(j)) in
  let run d = with_domains d (fun () -> Kmedoids.run (Rng.create 9) ~k:4 ~n:40 dist) in
  let base = run 1 in
  List.iter
    (fun d ->
      let r = run d in
      let tag s = Printf.sprintf "domains=%d: %s" d s in
      Alcotest.(check (array int)) (tag "labels") base.Kmedoids.labels r.Kmedoids.labels;
      Alcotest.(check (array int)) (tag "medoids") base.medoids r.medoids;
      Alcotest.(check (float 0.0)) (tag "cost") base.cost r.cost;
      Alcotest.(check int) (tag "iterations") base.iterations r.iterations)
    [ 2; 4 ]

let test_agglomerative_identical_across_domain_counts () =
  let db, _ = Lazy.force db_and_truth in
  let run d = with_domains d (fun () -> Agglomerative.cluster ~k:3 db) in
  let base = run 1 in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "labels identical at domains=%d" d)
        base (run d))
    [ 2; 4 ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
          Alcotest.test_case "chunk boundaries" `Quick test_chunk_boundaries;
          Alcotest.test_case "empty range" `Quick test_empty_range;
          Alcotest.test_case "offset range" `Quick test_parallel_for_offset_range;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "nested submission inline" `Quick test_nested_submission_runs_inline;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "size clamping" `Quick test_size_clamping;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cluseq run identical" `Quick
            test_cluseq_identical_across_domain_counts;
          Alcotest.test_case "batched reclustering identical (domains × psa)" `Quick
            test_batched_reclustering_identical_across_domains_and_no_psa;
          Alcotest.test_case "classifier batch identical" `Quick
            test_classifier_identical_across_domain_counts;
          Alcotest.test_case "kmedoids identical" `Quick
            test_kmedoids_identical_across_domain_counts;
          Alcotest.test_case "agglomerative identical" `Quick
            test_agglomerative_identical_across_domain_counts;
        ] );
    ]
