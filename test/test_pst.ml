(* Tests for the probabilistic suffix tree: counts, probability vectors,
   prediction-node semantics, smoothing, and pruning. *)

let alpha = Gen_common.alpha
let cfg = Gen_common.pst_cfg

let build ?max_depth ?significance ?max_nodes ?p_min ?pruning texts =
  Gen_common.build_pst ?max_depth ?significance ?max_nodes ?p_min ?pruning texts

let test_empty_tree () =
  let t = Pst.create (cfg ()) in
  Alcotest.(check int) "one node" 1 (Pst.n_nodes t);
  Alcotest.(check int) "zero count" 0 (Pst.total_count t)

let test_root_count_is_total_symbols () =
  (* "The count associated with the root records the overall size of the
     sequence cluster" (paper Sec. 3). *)
  let t = build [ "abcab"; "xyz" ] in
  Alcotest.(check int) "root count" 8 (Pst.total_count t)

let test_node_counts_match_occurrences () =
  let texts = [ "ababab"; "babb"; "aabba" ] in
  let t = build texts in
  let check_label label =
    let pattern = Sequence.of_string alpha label in
    let expected =
      List.fold_left
        (fun acc s ->
          acc + Sequence.count_occurrences (Sequence.of_string alpha s) ~pattern)
        0 texts
    in
    match Pst.find_node t pattern with
    | Some node -> Alcotest.(check int) (Printf.sprintf "count of %S" label) expected (Pst.node_count node)
    | None -> Alcotest.(check int) (Printf.sprintf "%S absent means zero" label) expected 0
  in
  List.iter check_label [ "a"; "b"; "ab"; "ba"; "bb"; "aba"; "abab"; "z"; "aa" ]

let test_next_counts_are_extension_counts () =
  (* P(s|σ') = C(σ's)/C(σ') (paper Sec. 4.4): next counts must equal the
     occurrence counts of the extended segment. *)
  let texts = [ "abcabcabc"; "abacab" ] in
  let t = build texts in
  let count label =
    let pattern = Sequence.of_string alpha label in
    List.fold_left
      (fun acc s -> acc + Sequence.count_occurrences (Sequence.of_string alpha s) ~pattern)
      0 texts
  in
  match Pst.find_node t (Sequence.of_string alpha "ab") with
  | None -> Alcotest.fail "node ab must exist"
  | Some node ->
      Alcotest.(check int) "C(abc)" (count "abc") (Pst.next_count node (Alphabet.code_exn alpha "c"));
      Alcotest.(check int) "C(aba)" (count "aba") (Pst.next_count node (Alphabet.code_exn alpha "a"))

let test_probability_vector_sums_to_one () =
  let t = build ~p_min:0.001 [ "abcabcbca"; "cabcab" ] in
  Pst.iter_nodes t (fun node ->
      if Pst.next_total node > 0 then begin
        let dist = Pst.next_distribution t node in
        let s = Array.fold_left ( +. ) 0.0 dist in
        Alcotest.(check (float 1e-6)) "distribution sums to 1" 1.0 s
      end)

let test_figure1_style_probabilities () =
  (* Hand-checkable conditional probabilities on a tiny corpus. *)
  let t = build [ "ababab" ] in
  (* C(a) = 3; "a" is followed by "b" 3 times, "a" 0 times. *)
  match Pst.find_node t (Sequence.of_string alpha "a") with
  | None -> Alcotest.fail "node a must exist"
  | Some node ->
      let b = Alphabet.code_exn alpha "b" in
      let a = Alphabet.code_exn alpha "a" in
      Alcotest.(check (float 1e-9)) "P(b|a) = 1" 1.0
        (exp (Pst.next_log_prob t node b));
      Alcotest.(check bool) "P(a|a) = 0 unsmoothed" true
        (Pst.next_log_prob t node a = neg_infinity)

let test_smoothing_bounds () =
  (* Sec. 5.2: adjusted probability = (1 - n·p_min)·P + p_min, so every
     symbol gets at least p_min and at most 1 - (n-1)·p_min. *)
  let p_min = 0.001 in
  let t = build ~p_min [ "ababab" ] in
  match Pst.find_node t (Sequence.of_string alpha "a") with
  | None -> Alcotest.fail "node a must exist"
  | Some node ->
      let a = Alphabet.code_exn alpha "a" in
      let b = Alphabet.code_exn alpha "b" in
      Alcotest.(check (float 1e-9)) "zero count floored at p_min" p_min
        (exp (Pst.next_log_prob t node a));
      Alcotest.(check (float 1e-9)) "full mass scaled down" (1.0 -. (26.0 *. p_min) +. p_min)
        (exp (Pst.next_log_prob t node b))

let test_prediction_node_is_longest_significant_suffix () =
  (* With c = 3: in "abababab", "ab" occurs 4 times (significant),
     "bab" occurs 3 times (significant), "abab" occurs 3 times
     (significant)... use c = 4 to force a cut. *)
  let t = build ~significance:4 [ "abababab" ] in
  let s = Sequence.of_string alpha "abab" in
  (* Context = "abab" (positions 0..3), predict position 4. The walk
     descends while counts >= 4: "b" (4), "ab" (4), "bab" (3 <- stop). *)
  let node = Pst.prediction_node t s ~lo:0 ~pos:4 in
  Alcotest.(check int) "depth stops at ab" 2 (Pst.node_depth node);
  Alcotest.(check (list int)) "label is ab"
    [ Alphabet.code_exn alpha "a"; Alphabet.code_exn alpha "b" ]
    (Pst.node_label t node)

let test_prediction_node_empty_context () =
  let t = build [ "abc" ] in
  let s = Sequence.of_string alpha "abc" in
  let node = Pst.prediction_node t s ~lo:0 ~pos:0 in
  Alcotest.(check int) "root for empty context" 0 (Pst.node_depth node)

let test_prediction_respects_max_depth () =
  let t = build ~max_depth:3 ~significance:1 [ "aaaaaaaaaa" ] in
  let s = Sequence.of_string alpha "aaaaaaa" in
  let node = Pst.prediction_node t s ~lo:0 ~pos:6 in
  Alcotest.(check bool) "depth capped" true (Pst.node_depth node <= 3)

let test_log_prob_uniform_on_empty () =
  let t = Pst.create (cfg ~alphabet_size:4 ()) in
  let s = [| 2 |] in
  Alcotest.(check (float 1e-9)) "uniform 1/4" (log 0.25) (Pst.log_prob t s ~lo:0 ~pos:0)

let test_insert_segment_matches_sub_sequence_insert () =
  (* Inserting s[lo..hi] must equal inserting that segment as a fresh
     sequence. *)
  let s = Sequence.of_string alpha "abcabcab" in
  let t1 = Pst.create (cfg ()) in
  Pst.insert_segment t1 s ~lo:2 ~hi:6;
  let t2 = Pst.create (cfg ()) in
  Pst.insert_sequence t2 (Sequence.segment s ~lo:2 ~hi:6);
  Alcotest.(check int) "same node count" (Pst.n_nodes t2) (Pst.n_nodes t1);
  Alcotest.(check int) "same total" (Pst.total_count t2) (Pst.total_count t1);
  Pst.iter_nodes t1 (fun node ->
      let label = Array.of_list (Pst.node_label t1 node) in
      match Pst.find_node t2 label with
      | None -> Alcotest.fail "node missing in reference tree"
      | Some node2 ->
          Alcotest.(check int) "same count" (Pst.node_count node2) (Pst.node_count node))

let test_max_depth_limits_nodes () =
  let t = build ~max_depth:2 [ "abcdefgh" ] in
  Pst.iter_nodes t (fun node ->
      Alcotest.(check bool) "no node deeper than 2" true (Pst.node_depth node <= 2))

let test_pruning_budget_respected () =
  let t = build ~max_nodes:50 [ String.concat "" (List.init 40 (fun i -> Printf.sprintf "%c%c" (Char.chr (97 + (i mod 26))) (Char.chr (97 + ((i * 7) mod 26))))) ] in
  Alcotest.(check bool)
    (Printf.sprintf "node budget held (%d <= 50)" (Pst.n_nodes t))
    true
    (Pst.n_nodes t <= 50)

let test_prune_to_keeps_high_counts () =
  let t = build ~significance:2 [ "abababababababab"; "cdcd" ] in
  let before = Pst.n_nodes t in
  Pst.prune_to t (before / 2);
  Alcotest.(check bool) "pruned" true (Pst.n_nodes t <= before / 2);
  (* The high-frequency "a"/"b" depth-1 nodes must survive count-based
     pruning while rare deep nodes go. *)
  Alcotest.(check bool) "a survives" true
    (Pst.find_node t (Sequence.of_string alpha "a") <> None);
  Alcotest.(check bool) "b survives" true
    (Pst.find_node t (Sequence.of_string alpha "b") <> None)

let test_pruning_strategies_all_respect_target () =
  List.iter
    (fun strategy ->
      let t =
        build ~pruning:strategy ~significance:2
          [ "abcabcabcabcabc"; "xyzxyzxyz"; "aabbaabbccdd" ]
      in
      Pst.prune_to t 10;
      Alcotest.(check bool)
        (Pruning.to_string strategy ^ " target met")
        true
        (Pst.n_nodes t <= 10))
    Pruning.all

let test_longest_label_pruning_removes_deep_first () =
  let t = build ~pruning:Pruning.Longest_label_first ~significance:2 [ "abcdefabcdef" ] in
  let max_depth_before =
    let d = ref 0 in
    Pst.iter_nodes t (fun n -> if Pst.node_depth n > !d then d := Pst.node_depth n);
    !d
  in
  Pst.prune_to t (Pst.n_nodes t / 2);
  let max_depth_after =
    let d = ref 0 in
    Pst.iter_nodes t (fun n -> if Pst.node_depth n > !d then d := Pst.node_depth n);
    !d
  in
  Alcotest.(check bool) "max depth reduced" true (max_depth_after < max_depth_before)

let test_stats () =
  let t = build ~significance:3 [ "ababababab" ] in
  let st = Pst.stats t in
  Alcotest.(check int) "nodes agree" (Pst.n_nodes t) st.nodes;
  Alcotest.(check bool) "some significant" true (st.significant_nodes > 0);
  Alcotest.(check bool) "bytes positive" true (st.approx_bytes > 0)

let test_pp_renders () =
  let t = build ~significance:3 [ "ababab" ] in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Pst.pp ~max_depth:2 ~symbol:(fun fmt c -> Format.fprintf fmt "%c" (Char.chr (97 + c))) fmt t;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions root" true
    (String.length out > 0 && String.sub out 0 6 = "(root)");
  (* "a" occurs 3 times and is significant at c = 3. *)
  let has_needle needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "significant a starred" true (has_needle "a  C=3*")

let test_create_validation () =
  let bad f = try ignore (Pst.create (f ())); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "alphabet_size 0" true (bad (fun () -> cfg ~alphabet_size:0 ()));
  Alcotest.(check bool) "max_depth 0" true (bad (fun () -> cfg ~max_depth:0 ()));
  Alcotest.(check bool) "p_min too big" true (bad (fun () -> cfg ~p_min:0.2 ~alphabet_size:26 ()))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let seq_gen = Gen_common.seq_gen ~max_len:60 ()

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"root count = total symbols" ~count:100 (QCheck.list_of_size (QCheck.Gen.int_range 0 10) seq_gen)
         (fun texts ->
           let t = build texts in
           Pst.total_count t = List.fold_left (fun acc s -> acc + String.length s) 0 texts));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"every node count matches occurrences" ~count:40 seq_gen
         (fun text ->
           let t = build [ text ] in
           let s = Sequence.of_string alpha text in
           let ok = ref true in
           Pst.iter_nodes t (fun node ->
               if Pst.node_depth node > 0 then begin
                 let label = Array.of_list (Pst.node_label t node) in
                 if Pst.node_count node <> Sequence.count_occurrences s ~pattern:label then
                   ok := false
               end);
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"prediction node label is a significant suffix" ~count:40
         (QCheck.pair seq_gen (QCheck.int_range 1 5))
         (fun (text, c) ->
           let t = build ~significance:c [ text ] in
           let s = Sequence.of_string alpha text in
           let ok = ref true in
           for pos = 0 to Array.length s - 1 do
             let node = Pst.prediction_node t s ~lo:0 ~pos in
             let label = Array.of_list (Pst.node_label t node) in
             let context = Array.sub s 0 pos in
             if not (Sequence.is_suffix_of label context) then ok := false;
             if Pst.node_depth node > 0 && Pst.node_count node < c then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"smoothed probabilities are a distribution" ~count:40 seq_gen
         (fun text ->
           let t = build ~p_min:0.002 [ text ] in
           let ok = ref true in
           Pst.iter_nodes t (fun node ->
               let dist = Pst.next_distribution t node in
               let s = Array.fold_left ( +. ) 0.0 dist in
               if Float.abs (s -. 1.0) > 1e-6 then ok := false;
               Array.iter (fun p -> if p < 0.0 || p > 1.0 then ok := false) dist);
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"child count never exceeds parent count" ~count:30
         (QCheck.list_of_size (QCheck.Gen.int_range 1 5) seq_gen)
         (fun texts ->
           (* The label of a child extends its parent's label, so it can
              only occur at most as often. *)
           let t = build texts in
           let ok = ref true in
           Pst.iter_nodes t (fun node ->
               let c = Pst.node_count node in
               let label = Array.of_list (Pst.node_label t node) in
               (* every extension of the label by one front symbol *)
               for sym = 0 to 3 do
                 let ext = Array.append [| sym |] label in
                 match Pst.find_node t ext with
                 | Some child -> if Pst.node_count child > c then ok := false
                 | None -> ()
               done);
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pruning never exceeds budget" ~count:40
         (QCheck.pair (QCheck.list seq_gen) (QCheck.int_range 1 40))
         (fun (texts, budget) ->
           let t = Pst.create (cfg ~max_nodes:budget ()) in
           List.iter (fun s -> Pst.insert_sequence t (Sequence.of_string alpha s)) texts;
           Pst.n_nodes t <= budget));
  ]

(* ------------------------------------------------------------------ *)
(* Merge properties (shard-and-merge support, DESIGN.md §14)           *)
(* ------------------------------------------------------------------ *)

let texts2 = Gen_common.texts_gen ~min_seqs:0 ~max_seqs:5 ~max_len:30 ()

let merge_qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge of halves = concatenated database" ~count:60
         (QCheck.pair texts2 texts2)
         (fun (xs, ys) ->
           (* With no pruning pressure the merged tree must carry exactly
              the counts a single tree would have accumulated over both
              halves. *)
           let whole = build (xs @ ys) in
           let merged = Pst.merge (build xs) (build ys) in
           Pst.equal_structure whole merged));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge scores = concatenated database scores (smoothed)" ~count:40
         (QCheck.triple texts2 texts2 (seq_gen))
         (fun (xs, ys, probe) ->
           let whole = build ~p_min:0.001 (xs @ ys) in
           let merged = Pst.merge (build ~p_min:0.001 xs) (build ~p_min:0.001 ys) in
           let s = Sequence.of_string alpha probe in
           let ok = ref true in
           for pos = 0 to Array.length s - 1 do
             let a = Pst.log_prob whole s ~lo:0 ~pos in
             let b = Pst.log_prob merged s ~lo:0 ~pos in
             if Float.abs (a -. b) > 1e-9 then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge is commutative" ~count:60 (QCheck.pair texts2 texts2)
         (fun (xs, ys) ->
           Pst.equal_structure (Pst.merge (build xs) (build ys)) (Pst.merge (build ys) (build xs))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge is associative" ~count:40
         (QCheck.triple texts2 texts2 texts2)
         (fun (xs, ys, zs) ->
           let a = build xs and b = build ys and c = build zs in
           Pst.equal_structure (Pst.merge (Pst.merge a b) c) (Pst.merge a (Pst.merge b c))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge leaves its inputs untouched" ~count:40
         (QCheck.pair texts2 texts2)
         (fun (xs, ys) ->
           let a = build xs and b = build ys in
           let a' = Pst.copy a and b' = Pst.copy b in
           ignore (Pst.merge a b);
           Pst.equal_structure a a' && Pst.equal_structure b b'));
  ]

let test_merge_config_mismatch () =
  let a = build ~max_depth:5 [ "abab" ] in
  let b = build ~max_depth:6 [ "abab" ] in
  match Pst.merge a b with
  | (_ : Pst.t) -> Alcotest.fail "expected Invalid_argument on config mismatch"
  | exception Invalid_argument _ -> ()

let test_merge_reprunes_over_budget () =
  (* Each half fits the node budget on its own; the union does not —
     merge must re-prune back under it. *)
  let a = build ~max_nodes:40 ~significance:1 [ "abcdefghij"; "klmnopqrst" ] in
  let b = build ~max_nodes:40 ~significance:1 [ "uvwxyzabcd"; "efghijklmn" ] in
  let m = Pst.merge a b in
  Alcotest.(check bool)
    (Printf.sprintf "budget held (%d <= 40)" (Pst.n_nodes m))
    true (Pst.n_nodes m <= 40)

let () =
  Alcotest.run "pst"
    [
      ( "structure",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "root count" `Quick test_root_count_is_total_symbols;
          Alcotest.test_case "node counts" `Quick test_node_counts_match_occurrences;
          Alcotest.test_case "next counts" `Quick test_next_counts_are_extension_counts;
          Alcotest.test_case "probability vectors" `Quick test_probability_vector_sums_to_one;
          Alcotest.test_case "hand-checked probabilities" `Quick test_figure1_style_probabilities;
          Alcotest.test_case "max depth" `Quick test_max_depth_limits_nodes;
          Alcotest.test_case "segment insert" `Quick test_insert_segment_matches_sub_sequence_insert;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "config validation" `Quick test_create_validation;
          Alcotest.test_case "pretty printer" `Quick test_pp_renders;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "longest significant suffix" `Quick
            test_prediction_node_is_longest_significant_suffix;
          Alcotest.test_case "empty context" `Quick test_prediction_node_empty_context;
          Alcotest.test_case "depth cap" `Quick test_prediction_respects_max_depth;
          Alcotest.test_case "uniform on empty tree" `Quick test_log_prob_uniform_on_empty;
          Alcotest.test_case "smoothing bounds" `Quick test_smoothing_bounds;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "budget respected" `Quick test_pruning_budget_respected;
          Alcotest.test_case "keeps high counts" `Quick test_prune_to_keeps_high_counts;
          Alcotest.test_case "all strategies" `Quick test_pruning_strategies_all_respect_target;
          Alcotest.test_case "longest-label removes deep" `Quick
            test_longest_label_pruning_removes_deep_first;
        ] );
      ("property", qcheck_tests);
      ( "merge",
        Alcotest.test_case "config mismatch rejected" `Quick test_merge_config_mismatch
        :: Alcotest.test_case "re-prunes over budget" `Quick test_merge_reprunes_over_budget
        :: merge_qcheck_tests );
    ]
