(* Integration tests for the cross-domain flight recorder (DESIGN.md
   §10): the Chrome-trace exporter must produce JSON that parses back
   through Bench_json with the structure Perfetto expects, and the
   reclustering scan census must be bit-identical for every domain
   count and independent of whether instrumentation is enabled. *)

let with_domains = Gen_common.with_domains

let with_flight_recorder f =
  Obs.reset ();
  Obs.Metrics.enable ();
  Obs.Trace.enable ();
  Obs.Recorder.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Trace.disable ();
      Obs.Recorder.disable ();
      Obs.reset ())
    f

(* --- Chrome-trace export ------------------------------------------- *)

let field name = function Bench_json.Obj fields -> List.assoc_opt name fields | _ -> None

let str_field name ev =
  match field name ev with Some (Bench_json.Str s) -> Some s | _ -> None

let num_field name ev =
  match field name ev with Some (Bench_json.Num n) -> Some n | _ -> None

(* Record activity on several domains deterministically: one explicitly
   spawned domain writes to its own ring, the main domain records a
   span enclosing a small pool job (par.job ring events). *)
let record_workload () =
  let ev = Obs.Recorder.intern "test.fr_worker" in
  let d =
    Domain.spawn (fun () ->
        Obs.Recorder.begin_ ~arg:1 ev;
        Obs.Recorder.instant ~arg:2 ev;
        Obs.Recorder.end_ ev)
  in
  Domain.join d;
  Obs.Trace.with_span "fr_root" (fun () ->
      let pool = Par.create ~domains:2 () in
      Fun.protect
        ~finally:(fun () -> Par.shutdown pool)
        (fun () -> ignore (Par.map_chunks pool ~n:64 (fun i -> i + 1))))

let test_trace_parses_back () =
  with_flight_recorder @@ fun () ->
  record_workload ();
  let text = Obs.Export.to_chrome_trace () in
  match Bench_json.parse text with
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
  | Ok json ->
      let events =
        match field "traceEvents" json with
        | Some (Bench_json.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "trace has events" true (events <> []);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "every event has a name" true (str_field "name" ev <> None);
          Alcotest.(check bool) "every event has a phase" true (str_field "ph" ev <> None);
          Alcotest.(check bool) "every event has a tid" true (num_field "tid" ev <> None))
        events;
      let real =
        List.filter (fun ev -> str_field "ph" ev <> Some "M") events
      in
      List.iter
        (fun ev ->
          (match num_field "ts" ev with
          | Some ts -> Alcotest.(check bool) "timestamps rebased to >= 0" true (ts >= 0.0)
          | None -> Alcotest.fail "timeline event without ts");
          if str_field "ph" ev = Some "i" then
            Alcotest.(check (option string)) "instants carry thread scope" (Some "t")
              (str_field "s" ev))
        real;
      let count ph = List.length (List.filter (fun ev -> str_field "ph" ev = Some ph) real) in
      Alcotest.(check int) "begin/end events balanced" (count "B") (count "E");
      Alcotest.(check bool) "span exported as a complete event" true
        (List.exists
           (fun ev -> str_field "ph" ev = Some "X" && str_field "name" ev = Some "fr_root")
           real);
      let tids =
        List.sort_uniq compare (List.filter_map (fun ev -> num_field "tid" ev) real)
      in
      Alcotest.(check bool) "events from at least two domains" true (List.length tids >= 2);
      List.iter
        (fun tid ->
          Alcotest.(check bool)
            (Printf.sprintf "thread_name metadata for tid %g" tid)
            true
            (List.exists
               (fun ev ->
                 str_field "ph" ev = Some "M"
                 && str_field "name" ev = Some "thread_name"
                 && num_field "tid" ev = Some tid)
               events))
        tids;
      match field "otherData" json with
      | Some other ->
          Alcotest.(check bool) "drop counters exported" true
            (num_field "ring_events_dropped" other <> None)
      | None -> Alcotest.fail "no otherData footer"

(* --- census determinism -------------------------------------------- *)

let censuses ~domains ~metrics =
  let db, _ = Lazy.force Gen_common.small_db_and_truth in
  with_domains domains (fun () ->
      Obs.reset ();
      if metrics then Obs.Metrics.enable () else Obs.Metrics.disable ();
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.disable ();
          Obs.reset ())
        (fun () ->
          let r = Cluseq.run ~config:Gen_common.small_config db in
          List.map (fun (h : Cluseq.iteration_stats) -> h.census) r.history))

let test_census_identical_across_domains () =
  let base = censuses ~domains:1 ~metrics:false in
  Alcotest.(check bool) "run produced iterations" true (base <> []);
  let c4 = censuses ~domains:4 ~metrics:false in
  Alcotest.(check bool) "census identical at 1 vs 4 domains" true (base = c4);
  (* Counts are unconditional: instrumentation being on must not change
     them. *)
  let instrumented = censuses ~domains:4 ~metrics:true in
  Alcotest.(check bool) "census independent of metrics" true (base = instrumented)

let test_census_internal_consistency () =
  List.iter
    (fun (c : Cluseq.scan_census) ->
      Alcotest.(check bool) "joins within scored pairs" true
        (c.pairs_joined >= 0 && c.pairs_joined <= c.pairs_scored);
      Alcotest.(check bool) "rescores within scored pairs" true
        (c.dirty_rescores >= 0 && c.dirty_rescores <= c.pairs_scored);
      Alcotest.(check int) "per-cluster calls sum to pairs_scored" c.pairs_scored
        (Array.fold_left (fun acc (_, calls) -> acc + calls) 0 c.score_calls);
      let w = Cluseq.wasted_pair_ratio c in
      Alcotest.(check bool) "wasted ratio in [0, 1]" true (w >= 0.0 && w <= 1.0))
    (censuses ~domains:2 ~metrics:false)

let () =
  Alcotest.run "flight_recorder"
    [
      ( "chrome-trace",
        [ Alcotest.test_case "export parses back" `Quick test_trace_parses_back ] );
      ( "census",
        [
          Alcotest.test_case "identical across domain counts" `Quick
            test_census_identical_across_domains;
          Alcotest.test_case "internally consistent" `Quick test_census_internal_consistency;
        ] );
    ]
