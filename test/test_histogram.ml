(* Tests for Histogram, in particular the Sec. 4.6 valley detector. *)

let test_bucketing () =
  let h = Histogram.create ~n_buckets:10 ~lo:0.0 ~hi:10.0 () in
  Histogram.add h 0.5;
  Histogram.add h 0.7;
  Histogram.add h 9.5;
  Alcotest.(check int) "bucket 0" 2 (Histogram.bucket_count h 0);
  Alcotest.(check int) "bucket 9" 1 (Histogram.bucket_count h 9);
  Alcotest.(check int) "total" 3 (Histogram.count h)

let test_clamping () =
  let h = Histogram.create ~n_buckets:5 ~lo:0.0 ~hi:5.0 () in
  Histogram.add h (-100.0);
  Histogram.add h 100.0;
  Alcotest.(check int) "below range clamps to first" 1 (Histogram.bucket_count h 0);
  Alcotest.(check int) "above range clamps to last" 1 (Histogram.bucket_count h 4)

let test_bucket_center () =
  let h = Histogram.create ~n_buckets:4 ~lo:0.0 ~hi:8.0 () in
  Alcotest.(check (float 1e-9)) "center of bucket 0" 1.0 (Histogram.bucket_center h 0);
  Alcotest.(check (float 1e-9)) "center of bucket 3" 7.0 (Histogram.bucket_center h 3)

let test_invalid_args () =
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi <= lo") (fun () ->
      ignore (Histogram.create ~lo:1.0 ~hi:1.0 ()));
  Alcotest.check_raises "too few buckets" (Invalid_argument "Histogram.create: need >= 3 buckets")
    (fun () -> ignore (Histogram.create ~n_buckets:2 ~lo:0.0 ~hi:1.0 ()));
  Alcotest.check_raises "empty samples" (Invalid_argument "Histogram.of_samples: empty")
    (fun () -> ignore (Histogram.of_samples [||]))

let test_valley_empty () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 () in
  Alcotest.(check bool) "no valley on empty" true (Histogram.valley h = None)

(* A curve that declines steeply until x = 3, then flattens: the sharpest
   turn (largest left/right slope contrast) sits near x = 3. *)
let test_valley_two_slope_curve () =
  let h = Histogram.create ~n_buckets:30 ~lo:0.0 ~hi:10.0 () in
  for b = 0 to 29 do
    let x = Histogram.bucket_center h b in
    let y =
      if x < 3.0 then int_of_float (1000.0 -. (300.0 *. x)) else int_of_float (60.0 -. (2.0 *. x))
    in
    for _ = 1 to max 0 y do
      Histogram.add h x
    done
  done;
  match Histogram.valley h with
  | None -> Alcotest.fail "expected a valley"
  | Some v -> Alcotest.(check bool) (Printf.sprintf "valley near 3 (got %f)" v) true (Float.abs (v -. 3.0) < 1.5)

(* Bimodal similarity histogram: a large hump of low similarities, a long
   empty gap, and a small hump of high similarities. valley_log must place
   the threshold after the low hump, not inside it. *)
let test_valley_log_bimodal () =
  let samples =
    Array.concat
      [
        Array.init 2000 (fun i -> 1.0 +. (float_of_int (i mod 40) /. 10.0));
        Array.init 150 (fun i -> 80.0 +. float_of_int (i mod 20));
      ]
  in
  let h = Histogram.of_samples ~n_buckets:50 samples in
  match Histogram.valley_log h with
  | None -> Alcotest.fail "expected a valley"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "valley in the gap (got %f)" v)
        true
        (v > 5.0 && v < 80.0)

let test_to_points () =
  let h = Histogram.create ~n_buckets:3 ~lo:0.0 ~hi:3.0 () in
  Histogram.add h 1.5;
  let pts = Histogram.to_points h in
  Alcotest.(check int) "one point per bucket" 3 (Array.length pts);
  Alcotest.(check (float 1e-9)) "count in middle bucket" 1.0 (snd pts.(1))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"total equals samples added" ~count:200
         QCheck.(list_of_size (Gen.int_range 1 200) (float_range (-50.0) 50.0))
         (fun ys ->
           let h = Histogram.of_samples (Array.of_list ys) in
           Histogram.count h = List.length ys));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"valley lies within sample range" ~count:200
         QCheck.(list_of_size (Gen.int_range 12 200) (float_range (-50.0) 50.0))
         (fun ys ->
           (* None is a legitimate answer (no turn in the curve); when a
              valley is reported it must sit inside the sample range. *)
           let a = Array.of_list ys in
           let h = Histogram.of_samples a in
           match Histogram.valley h with
           | None -> true
           | Some v ->
               let lo = Array.fold_left Float.min a.(0) a in
               let hi = Array.fold_left Float.max a.(0) a in
               v >= lo -. 1.0 && v <= hi +. 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"monotone curve has no valley" ~count:100
         QCheck.(pair (int_range 1 50) (int_range 3 20))
         (fun (slope, n_buckets) ->
           (* Counts falling by exactly [slope] per bucket: the left and
              right slopes are equal at every interior bucket, so there is
              no turn and no valley to report. *)
           let h = Histogram.create ~n_buckets ~lo:0.0 ~hi:10.0 () in
           for b = 0 to n_buckets - 1 do
             let x = Histogram.bucket_center h b in
             for _ = 1 to (n_buckets - b) * slope do
               Histogram.add h x
             done
           done;
           Histogram.valley h = None));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"two-hump histogram valleys between the humps" ~count:100
         QCheck.(pair (int_range 100 2000) (int_range 10 100))
         (fun (low_hump, high_hump) ->
           (* A big hump near 1, an empty middle, a small hump near 9:
              whatever the hump sizes, the valley must land in the gap. *)
           let samples =
             Array.concat
               [
                 Array.init low_hump (fun i -> 0.5 +. (float_of_int (i mod 10) /. 10.0));
                 Array.init high_hump (fun i -> 8.5 +. (float_of_int (i mod 10) /. 10.0));
               ]
           in
           let h = Histogram.of_samples ~n_buckets:30 samples in
           match Histogram.valley h with
           | None -> false
           | Some v -> v > 1.5 && v < 8.5));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"out-of-range samples clamp to edge buckets" ~count:200
         QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
         (fun ys ->
           let h = Histogram.create ~n_buckets:5 ~lo:(-10.0) ~hi:10.0 () in
           List.iter (Histogram.add h) ys;
           let below = List.length (List.filter (fun y -> y < -6.0) ys) in
           let above = List.length (List.filter (fun y -> y >= 6.0) ys) in
           Histogram.count h = List.length ys
           && Histogram.bucket_count h 0 = below
           && Histogram.bucket_count h 4 = above));
  ]

let () =
  Alcotest.run "histogram"
    [
      ( "unit",
        [
          Alcotest.test_case "bucketing" `Quick test_bucketing;
          Alcotest.test_case "clamping" `Quick test_clamping;
          Alcotest.test_case "bucket centers" `Quick test_bucket_center;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "valley on empty" `Quick test_valley_empty;
          Alcotest.test_case "valley two-slope curve" `Quick test_valley_two_slope_curve;
          Alcotest.test_case "valley_log bimodal" `Quick test_valley_log_bimodal;
          Alcotest.test_case "to_points" `Quick test_to_points;
        ] );
      ("property", qcheck_tests);
    ]
