(* Integration tests for the full CLUSEQ algorithm. *)

let small_workload ?(seed = 3) ?(n = 200) ?(k = 4) () =
  Workload.generate
    {
      Workload.default_params with
      n_sequences = n;
      avg_length = 250;
      n_clusters = k;
      contexts_per_cluster = 120;
      concentration = 0.15;
      seed;
    }

let small_config =
  {
    Cluseq.default_config with
    k_init = 2;
    significance = 8;
    min_residual = Some 8;
    t_init = 1.2;
    max_iterations = 30;
  }

let run_small () =
  let w = small_workload () in
  (w, Cluseq.run ~config:small_config w.db)

let test_recovers_planted_clusters () =
  let w, res = run_small () in
  Alcotest.(check bool)
    (Printf.sprintf "cluster count near truth (got %d)" res.n_clusters)
    true
    (abs (res.n_clusters - 4) <= 1);
  let hard = Cluseq.hard_labels res ~n:(Seq_database.n_sequences w.db) in
  let ari = Metrics.adjusted_rand_index ~truth:w.labels ~pred:hard in
  Alcotest.(check bool) (Printf.sprintf "ARI > 0.6 (got %.3f)" ari) true (ari > 0.6)

let test_deterministic () =
  let w = small_workload () in
  let r1 = Cluseq.run ~config:small_config w.db in
  let r2 = Cluseq.run ~config:small_config w.db in
  Alcotest.(check int) "same cluster count" r1.n_clusters r2.n_clusters;
  Alcotest.(check int) "same iterations" r1.iterations r2.iterations;
  Alcotest.(check bool) "same assignments" true (r1.assignments = r2.assignments)

let test_seed_changes_run () =
  let w = small_workload () in
  let r1 = Cluseq.run ~config:small_config w.db in
  let r2 = Cluseq.run ~config:{ small_config with seed = 99 } w.db in
  (* Different seeds explore different paths; at minimum the histories
     should differ (they may still converge to the same clustering). *)
  Alcotest.(check bool) "some difference in trajectory" true
    (r1.history <> r2.history || r1.assignments <> r2.assignments)

let test_result_invariants () =
  let w, res = run_small () in
  let n = Seq_database.n_sequences w.db in
  (* Assignments and cluster member lists are two views of one relation. *)
  Array.iter
    (fun (id, members) ->
      Array.iter
        (fun sid ->
          Alcotest.(check bool) "member has assignment" true (List.mem id res.assignments.(sid)))
        members)
    res.clusters;
  Array.iteri
    (fun sid cls ->
      List.iter
        (fun c ->
          let _, members =
            Array.to_list res.clusters |> List.find (fun (id, _) -> id = c)
          in
          Alcotest.(check bool) "assignment has member" true (Array.mem sid members))
        cls)
    res.assignments;
  (* Outliers are exactly the unassigned sequences. *)
  let unassigned = List.filter (fun i -> res.assignments.(i) = []) (List.init n Fun.id) in
  Alcotest.(check (list int)) "outliers" unassigned res.outliers;
  Alcotest.(check int) "n_clusters consistent" (Array.length res.clusters) res.n_clusters;
  Alcotest.(check bool) "iterations within cap" true
    (res.iterations >= 1 && res.iterations <= small_config.max_iterations);
  Alcotest.(check int) "history length" res.iterations (List.length res.history)

let test_insensitive_to_k_init () =
  (* Paper Table 5: the final clustering is insensitive to the initial k. *)
  let w = small_workload ~seed:5 () in
  let counts =
    List.map
      (fun k_init ->
        (Cluseq.run ~config:{ small_config with k_init } w.db).n_clusters)
      [ 1; 4; 10 ]
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "k=%d near 4" k) true (abs (k - 4) <= 1))
    counts

let test_threshold_converges_from_varied_inits () =
  (* Paper Table 6: the final t is insensitive to the initial t. *)
  let w = small_workload ~seed:7 () in
  let finals =
    List.map
      (fun t_init ->
        log (Cluseq.run ~config:{ small_config with t_init } w.db).final_t)
      [ 1.05; 2.0; 20.0 ]
  in
  match finals with
  | [ a; b; c ] ->
      let spread = Float.max a (Float.max b c) -. Float.min a (Float.min b c) in
      (* All runs must land in the same order of magnitude (log spread
         bounded), far tighter than the e^0.05 .. e^3 initial spread. *)
      Alcotest.(check bool) (Printf.sprintf "final t spread %.1f bounded" spread) true (spread < 100.0)
  | _ -> assert false

(* Characterization of the ROADMAP "threshold convergence" finding, as a
   pinned trajectory: while threshold adjustment is live, fresh-seed
   score columns keep perturbing the valley histogram, so on the
   synthetic workload [t] never freezes and the run exhausts
   [max_iterations] instead of converging. This test asserts the CURRENT
   (undesirable) behavior via the [threshold.adjusted] journal events —
   any future fix (age-weighted samples, per-cohort valleys, …) must
   flip these assertions knowingly rather than drift past them. *)
let test_threshold_jitter_characterization () =
  (* The bench suite's synthetic workload at smoke scale (0.25): 150
     sequences, 8 planted clusters — the exact run BENCH_baseline.json
     records, where the finding was made. *)
  let w =
    Workload.generate
      {
        Workload.default_params with
        n_sequences = 150;
        avg_length = 250;
        n_clusters = 8;
        contexts_per_cluster = 120;
        concentration = 0.15;
        seed = 7;
      }
  in
  let config =
    { small_config with k_init = 2; max_iterations = 30; seed = 3 }
  in
  let path = Filename.temp_file "cluseq_thresh" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  Obs.Journal.open_file path;
  let res =
    Fun.protect ~finally:Obs.Journal.close (fun () -> Cluseq.run ~config w.db)
  in
  Alcotest.(check int) "runs to max_iterations without converging" config.max_iterations
    res.iterations;
  let entries =
    match Obs.Journal.read_file path with Ok es -> es | Error m -> Alcotest.fail m
  in
  let adjusted =
    List.filter (fun e -> e.Obs.Journal.j_event = "threshold.adjusted") entries
  in
  Alcotest.(check int) "one adjustment record per iteration" res.iterations
    (List.length adjusted);
  let num name e =
    match List.assoc_opt name e.Obs.Journal.j_fields with
    | Some (Bench_json.Num v) -> v
    | _ -> Alcotest.fail (name ^ " missing or not a number")
  in
  let frozen e =
    match List.assoc_opt "frozen" e.Obs.Journal.j_fields with
    | Some (Bench_json.Bool b) -> b
    | _ -> Alcotest.fail "frozen missing or not a bool"
  in
  List.iter
    (fun e -> Alcotest.(check bool) "threshold never freezes" false (frozen e))
    adjusted;
  (* The jittering valley: t is still moving at the iteration horizon —
     the last 10 adjustments do not settle on one value. *)
  let ts = List.map (num "new_t") adjusted in
  let tail = List.filteri (fun i _ -> i >= List.length ts - 10) ts in
  let rec still_moving = function
    | a :: (b :: _ as rest) -> (not (Float.equal a b)) || still_moving rest
    | _ -> false
  in
  Alcotest.(check bool) "valley still jitters over the last 10 iterations" true
    (still_moving tail);
  (* Sanity: the journal's trajectory is the history's trajectory. *)
  List.iteri
    (fun i (st : Cluseq.iteration_stats) ->
      Alcotest.(check (float 1e-12)) "history matches journal" (List.nth ts i) st.threshold)
    res.history

let test_outliers_detected () =
  let w =
    Workload.generate
      {
        Workload.default_params with
        n_sequences = 200;
        avg_length = 250;
        n_clusters = 3;
        contexts_per_cluster = 120;
        concentration = 0.15;
        outlier_fraction = 0.10;
        seed = 13;
      }
  in
  let res = Cluseq.run ~config:small_config w.db in
  let hard = Cluseq.hard_labels res ~n:(Seq_database.n_sequences w.db) in
  let pred_class = Matching.relabel ~truth:w.labels ~pred:hard in
  let det = Metrics.outlier_detection ~truth:w.labels ~pred_class in
  Alcotest.(check bool) (Printf.sprintf "outlier recall %.2f > 0.5" det.recall) true (det.recall > 0.5)

let test_no_consolidation_keeps_more_clusters () =
  let w = small_workload () in
  let with_c = Cluseq.run ~config:small_config w.db in
  let without_c = Cluseq.run ~config:{ small_config with consolidate = false } w.db in
  Alcotest.(check bool) "consolidation prunes clusters" true
    (without_c.n_clusters >= with_c.n_clusters)

let test_fixed_threshold_mode () =
  let w = small_workload () in
  let res = Cluseq.run ~config:{ small_config with adjust_threshold = false; t_init = 5.0 } w.db in
  Alcotest.(check (float 1e-9)) "t unchanged when adjustment off" 5.0 res.final_t

let test_orders_all_run () =
  let w = small_workload ~n:120 () in
  List.iter
    (fun order ->
      let res = Cluseq.run ~config:{ small_config with order } w.db in
      Alcotest.(check bool) (Order.to_string order ^ " produced clusters") true (res.n_clusters >= 1))
    [ Order.Fixed; Order.Random; Order.Cluster_based ]

let test_scaled_config () =
  let c = Cluseq.scaled_config ~expected_cluster_size:40 () in
  Alcotest.(check int) "c = size/4" 10 c.significance;
  Alcotest.(check (option int)) "residual follows" (Some 10) c.min_residual;
  let tiny = Cluseq.scaled_config ~expected_cluster_size:3 () in
  Alcotest.(check int) "floored at 4" 4 tiny.significance;
  let huge = Cluseq.scaled_config ~expected_cluster_size:100000 () in
  Alcotest.(check int) "capped at paper's 30" 30 huge.significance;
  Alcotest.(check bool) "invalid size rejected" true
    (try ignore (Cluseq.scaled_config ~expected_cluster_size:0 ()); false
     with Invalid_argument _ -> true)

let test_config_validation () =
  let w = small_workload ~n:120 () in
  Alcotest.(check bool) "k_init 0 rejected" true
    (try ignore (Cluseq.run ~config:{ small_config with k_init = 0 } w.db); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "t < 1 rejected" true
    (try ignore (Cluseq.run ~config:{ small_config with t_init = 0.9 } w.db); false
     with Invalid_argument _ -> true)

let test_tiny_database () =
  let alpha = Alphabet.lowercase in
  let db = Seq_database.of_strings alpha [ "ababab"; "bababa"; "cdcdcd" ] in
  let res =
    Cluseq.run
      ~config:{ small_config with significance = 2; min_residual = Some 1; k_init = 1 }
      db
  in
  Alcotest.(check bool) "tiny database runs" true (res.n_clusters >= 1)

let test_single_sequence () =
  let alpha = Alphabet.lowercase in
  let db = Seq_database.of_strings alpha [ "abcabc" ] in
  let res =
    Cluseq.run ~config:{ small_config with significance = 2; min_residual = Some 1 } db
  in
  Alcotest.(check bool) "single sequence runs" true (res.iterations >= 1)

let test_hard_labels () =
  let w, res = run_small () in
  let n = Seq_database.n_sequences w.db in
  let hard = Cluseq.hard_labels res ~n in
  Array.iteri
    (fun i l ->
      if res.assignments.(i) = [] then Alcotest.(check int) "outlier label" (-1) l
      else Alcotest.(check bool) "label among joined" true (List.mem l res.assignments.(i)))
    hard

let test_history_consistency () =
  let _, res = run_small () in
  let last = List.nth res.history (List.length res.history - 1) in
  Alcotest.(check int) "final cluster count matches history" res.n_clusters last.clusters;
  Alcotest.(check (float 1e-9)) "final t matches history" res.final_t last.threshold;
  List.iteri
    (fun i (h : Cluseq.iteration_stats) ->
      Alcotest.(check int) "iterations numbered from 1" (i + 1) h.iteration)
    res.history

(* Robustness: CLUSEQ must terminate and return a consistent result on
   arbitrary small databases — including degenerate ones with repeated,
   constant, or single-symbol sequences. *)
let qcheck_tests =
  let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 1 30) (Gen.char_range 'a' 'c')) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"terminates with consistent result on arbitrary input" ~count:60
         QCheck.(pair (list_of_size (Gen.int_range 1 12) seq_gen) small_int)
         (fun (texts, seed) ->
           let db = Seq_database.of_strings Alphabet.lowercase texts in
           let config =
             {
               small_config with
               significance = 2;
               min_residual = Some 1;
               max_iterations = 10;
               seed;
             }
           in
           let res = Cluseq.run ~config db in
           let n = Seq_database.n_sequences db in
           res.iterations >= 1
           && res.n_clusters = Array.length res.clusters
           && List.for_all (fun i -> res.assignments.(i) = []) res.outliers
           && Array.for_all
                (fun (id, members) ->
                  Array.for_all (fun sid -> List.mem id res.assignments.(sid)) members)
                res.clusters
           && Array.length res.best = n));
  ]

let () =
  Alcotest.run "cluseq"
    [
      ( "integration",
        [
          Alcotest.test_case "recovers planted clusters" `Slow test_recovers_planted_clusters;
          Alcotest.test_case "deterministic" `Slow test_deterministic;
          Alcotest.test_case "seed changes run" `Slow test_seed_changes_run;
          Alcotest.test_case "result invariants" `Slow test_result_invariants;
          Alcotest.test_case "insensitive to k_init" `Slow test_insensitive_to_k_init;
          Alcotest.test_case "threshold converges" `Slow test_threshold_converges_from_varied_inits;
          Alcotest.test_case "threshold jitter characterization" `Slow
            test_threshold_jitter_characterization;
          Alcotest.test_case "outliers detected" `Slow test_outliers_detected;
          Alcotest.test_case "consolidation effect" `Slow test_no_consolidation_keeps_more_clusters;
          Alcotest.test_case "fixed threshold mode" `Slow test_fixed_threshold_mode;
          Alcotest.test_case "all orders run" `Slow test_orders_all_run;
        ] );
      ("property", qcheck_tests);
      ( "edge-cases",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "scaled config" `Quick test_scaled_config;
          Alcotest.test_case "tiny database" `Quick test_tiny_database;
          Alcotest.test_case "single sequence" `Quick test_single_sequence;
          Alcotest.test_case "hard labels" `Slow test_hard_labels;
          Alcotest.test_case "history consistency" `Slow test_history_consistency;
        ] );
    ]
