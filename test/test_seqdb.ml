(* Tests for the sequence substrate: Alphabet, Sequence, Seq_database,
   Seq_io. *)

let test_alphabet_basic () =
  let a = Alphabet.of_string "acgt" in
  Alcotest.(check int) "size" 4 (Alphabet.size a);
  Alcotest.(check (option int)) "code g" (Some 2) (Alphabet.code a "g");
  Alcotest.(check string) "symbol 3" "t" (Alphabet.symbol a 3);
  Alcotest.(check (option int)) "missing" None (Alphabet.code a "x");
  Alcotest.(check (option int)) "char lookup" (Some 1) (Alphabet.code_of_char a 'c')

let test_alphabet_duplicates () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Alphabet.of_symbols: duplicate symbol \"a\"") (fun () ->
      ignore (Alphabet.of_symbols [ "a"; "b"; "a" ]))

let test_alphabet_of_string_dedup () =
  let a = Alphabet.of_string "abcabc" in
  Alcotest.(check int) "deduplicated" 3 (Alphabet.size a)

let test_alphabet_range () =
  let a = Alphabet.of_char_range 'a' 'e' in
  Alcotest.(check int) "size" 5 (Alphabet.size a);
  Alcotest.(check string) "first" "a" (Alphabet.symbol a 0);
  Alcotest.(check string) "last" "e" (Alphabet.symbol a 4)

let test_encode_decode_roundtrip () =
  let a = Alphabet.lowercase in
  let s = "hellosequenceworld" in
  Alcotest.(check string) "roundtrip" s (Alphabet.decode a (Alphabet.encode_string a s))

let test_encode_unknown () =
  let a = Alphabet.dna in
  Alcotest.check_raises "unknown char"
    (Failure "Alphabet.encode_string: 'x' not in alphabet") (fun () ->
      ignore (Alphabet.encode_string a "acxg"))

let test_standard_alphabets () =
  Alcotest.(check int) "dna" 4 (Alphabet.size Alphabet.dna);
  Alcotest.(check int) "amino acids" 20 (Alphabet.size Alphabet.amino_acids);
  Alcotest.(check int) "lowercase" 26 (Alphabet.size Alphabet.lowercase)

let test_sequence_predicates () =
  let a = Alphabet.lowercase in
  let s = Sequence.of_string a "abab" in
  Alcotest.(check bool) "prefix ab" true (Sequence.is_prefix_of (Sequence.of_string a "ab") s);
  Alcotest.(check bool) "suffix bab" true (Sequence.is_suffix_of (Sequence.of_string a "bab") s);
  Alcotest.(check bool) "not suffix ab" false (Sequence.is_suffix_of (Sequence.of_string a "aa") s);
  Alcotest.(check bool) "segment ba" true (Sequence.is_segment_of (Sequence.of_string a "ba") s);
  Alcotest.(check bool) "abd is not a segment of abcdef" false
    (Sequence.is_segment_of (Sequence.of_string a "abd") (Sequence.of_string a "abcdef"));
  Alcotest.(check bool) "bcd is a segment of abcdef" true
    (Sequence.is_segment_of (Sequence.of_string a "bcd") (Sequence.of_string a "abcdef"));
  Alcotest.(check bool) "empty is a segment" true (Sequence.is_segment_of [||] s)

let test_sequence_segment () =
  let a = Alphabet.lowercase in
  let s = Sequence.of_string a "abcdef" in
  Alcotest.(check string) "segment" "cde" (Sequence.to_string a (Sequence.segment s ~lo:2 ~hi:4));
  Alcotest.check_raises "bad bounds" (Invalid_argument "Sequence.segment") (fun () ->
      ignore (Sequence.segment s ~lo:4 ~hi:2))

let test_sequence_reverse () =
  let a = Alphabet.lowercase in
  let s = Sequence.of_string a "abcd" in
  Alcotest.(check string) "reverse" "dcba" (Sequence.to_string a (Sequence.reverse s));
  Alcotest.(check bool) "reverse twice is identity" true
    (Sequence.equal s (Sequence.reverse (Sequence.reverse s)))

let test_count_occurrences () =
  let a = Alphabet.lowercase in
  let s = Sequence.of_string a "aaaa" in
  Alcotest.(check int) "overlapping occurrences" 3
    (Sequence.count_occurrences s ~pattern:(Sequence.of_string a "aa"));
  Alcotest.(check int) "empty pattern" 0 (Sequence.count_occurrences s ~pattern:[||])

let test_database_background () =
  let a = Alphabet.of_string "ab" in
  let db = Seq_database.of_strings a [ "aaab"; "a" ] in
  (* 4 a's, 1 b over 5 symbols; add-one smoothing over |Σ| = 2. *)
  let bg = Seq_database.background db in
  Alcotest.(check (float 1e-6)) "p(a)" (5.0 /. 7.0) bg.(0);
  Alcotest.(check (float 1e-6)) "p(b)" (2.0 /. 7.0) bg.(1);
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 bg);
  let lbg = Seq_database.log_background db in
  Alcotest.(check (float 1e-9)) "log cached consistent" (log (5.0 /. 7.0)) lbg.(0)

let test_database_background_unseen_symbol_finite () =
  let a = Alphabet.of_string "abc" in
  let db = Seq_database.of_strings a [ "aaa" ] in
  let lbg = Seq_database.log_background db in
  Alcotest.(check bool) "unseen symbol has finite log prob" true (Float.is_finite lbg.(2))

let test_database_stats () =
  let a = Alphabet.lowercase in
  let db = Seq_database.of_strings a [ "abc"; "defgh" ] in
  Alcotest.(check int) "n" 2 (Seq_database.n_sequences db);
  Alcotest.(check int) "total" 8 (Seq_database.total_symbols db);
  Alcotest.(check (float 1e-9)) "avg" 4.0 (Seq_database.avg_length db)

let test_database_bad_codes () =
  let a = Alphabet.of_string "ab" in
  Alcotest.(check bool) "code out of range rejected" true
    (try
       ignore (Seq_database.create a [| [| 0; 5 |] |]);
       false
     with Invalid_argument _ -> true)

let test_database_subset () =
  let a = Alphabet.lowercase in
  let db = Seq_database.of_strings a [ "aaa"; "bbb"; "ccc" ] in
  let sub = Seq_database.subset db [| 2; 0 |] in
  Alcotest.(check int) "subset size" 2 (Seq_database.n_sequences sub);
  Alcotest.(check string) "order preserved" "ccc" (Sequence.to_string a (Seq_database.get sub 0))

let with_tmp f =
  let path = Filename.temp_file "cluseq_test" ".seq" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_io_labeled_roundtrip () =
  with_tmp (fun path ->
      let a = Alphabet.lowercase in
      let rows =
        [| ("fam1", Sequence.of_string a "abcabc"); ("fam2", Sequence.of_string a "zzz") |]
      in
      Seq_io.write_labeled path a rows;
      let a', rows' = Seq_io.read_labeled ~alphabet:a path in
      Alcotest.(check int) "same alphabet" (Alphabet.size a) (Alphabet.size a');
      Alcotest.(check int) "row count" 2 (Array.length rows');
      Alcotest.(check string) "label" "fam1" (fst rows'.(0));
      Alcotest.(check string) "body" "abcabc" (Sequence.to_string a (snd rows'.(0))))

let test_io_labeled_inferred_alphabet () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "x\tabba\n# comment line\n\ny\tcab\n";
      close_out oc;
      let a, rows = Seq_io.read_labeled path in
      Alcotest.(check int) "inferred alphabet abc" 3 (Alphabet.size a);
      Alcotest.(check int) "rows (comment and blank skipped)" 2 (Array.length rows))

let test_io_labeled_malformed () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "no-tab-here\n";
      close_out oc;
      Alcotest.(check bool) "malformed line raises" true
        (try
           ignore (Seq_io.read_labeled path);
           false
         with Failure _ -> true))

let test_io_fasta_roundtrip () =
  with_tmp (fun path ->
      let a = Alphabet.amino_acids in
      let long = String.concat "" (List.init 10 (fun _ -> "acdefghik")) in
      let rows =
        [| ("globin", Sequence.of_string a long); ("kinase", Sequence.of_string a "mmm") |]
      in
      Seq_io.write_fasta path a rows;
      let _, rows' = Seq_io.read_fasta ~alphabet:a path in
      Alcotest.(check int) "rows" 2 (Array.length rows');
      Alcotest.(check string) "label" "globin" (fst rows'.(0));
      Alcotest.(check string) "long body reassembled from wrapped lines" long
        (Sequence.to_string a (snd rows'.(0))))

let test_io_tokens_roundtrip () =
  with_tmp (fun path ->
      let a = Alphabet.of_symbols [ "login"; "view"; "add-to-cart"; "checkout" ] in
      let rows = [| ("buyer", [| 0; 1; 2; 3 |]); ("browser", [| 1; 1; 1 |]) |] in
      Seq_io.write_tokens path a rows;
      let a', rows' = Seq_io.read_tokens ~alphabet:a path in
      Alcotest.(check int) "alphabet kept" 4 (Alphabet.size a');
      Alcotest.(check bool) "rows roundtrip" true (rows = rows'))

let test_io_tokens_inferred () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "x\tfoo bar foo\ny\tbaz\n";
      close_out oc;
      let a, rows = Seq_io.read_tokens path in
      Alcotest.(check int) "3 distinct tokens" 3 (Alphabet.size a);
      Alcotest.(check int) "first-appearance order" 0 (Alphabet.code_exn a "foo");
      Alcotest.(check int) "rows" 2 (Array.length rows);
      Alcotest.(check (array int)) "codes" [| 0; 1; 0 |] (snd rows.(0)))

let test_io_tokens_unknown () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "x\tfoo mystery\n";
      close_out oc;
      let a = Alphabet.of_symbols [ "foo" ] in
      Alcotest.(check bool) "unknown token raises" true
        (try ignore (Seq_io.read_tokens ~alphabet:a path); false with Failure _ -> true))

(* --- golden files: the exact on-disk bytes of each format ------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let test_golden_labeled () =
  with_tmp (fun path ->
      let a = Alphabet.lowercase in
      let rows =
        [| ("fam1", Sequence.of_string a "abcabc"); ("fam2", Sequence.of_string a "zzz") |]
      in
      Seq_io.write_labeled path a rows;
      Alcotest.(check string) "golden bytes" "fam1\tabcabc\nfam2\tzzz\n" (read_file path))

let test_golden_fasta () =
  with_tmp (fun path ->
      let a = Alphabet.lowercase in
      (* 75 symbols force one wrap at the 70-column boundary. *)
      let body = String.init 75 (fun i -> Char.chr (Char.code 'a' + (i mod 4))) in
      Seq_io.write_fasta path a [| ("globin", Sequence.of_string a body) |];
      let expected =
        ">seq0 globin\n" ^ String.sub body 0 70 ^ "\n" ^ String.sub body 70 5 ^ "\n"
      in
      Alcotest.(check string) "golden bytes" expected (read_file path))

let test_golden_tokens () =
  with_tmp (fun path ->
      let a = Alphabet.of_symbols [ "login"; "checkout" ] in
      Seq_io.write_tokens path a [| ("buyer", [| 0; 1; 0 |]); ("idle", [||]) |];
      Alcotest.(check string) "golden bytes" "buyer\tlogin checkout login\nidle\t\n"
        (read_file path))

(* --- malformed inputs -------------------------------------------------- *)

let write_raw path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let raises_failure f = try ignore (f ()); false with Failure _ -> true

let test_io_labeled_unknown_char () =
  with_tmp (fun path ->
      write_raw path "x\tabz\n";
      Alcotest.(check bool) "char outside explicit alphabet raises" true
        (raises_failure (fun () -> Seq_io.read_labeled ~alphabet:Alphabet.dna path)))

let test_io_fasta_unknown_char () =
  with_tmp (fun path ->
      write_raw path ">seq0 x\nacgt\nqqq\n";
      Alcotest.(check bool) "char outside explicit alphabet raises" true
        (raises_failure (fun () -> Seq_io.read_fasta ~alphabet:Alphabet.dna path)))

let test_io_fasta_ignores_preamble () =
  (* Documented behavior: body text before any header belongs to no
     record and is dropped rather than misattributed. *)
  with_tmp (fun path ->
      write_raw path "stray text\n>seq0 real\nac\n";
      let _, rows = Seq_io.read_fasta path in
      Alcotest.(check int) "only the headed record" 1 (Array.length rows);
      Alcotest.(check string) "label" "real" (fst rows.(0)))

let test_io_tokens_empty_file () =
  with_tmp (fun path ->
      write_raw path "";
      Alcotest.(check bool) "no tokens to infer an alphabet from" true
        (raises_failure (fun () -> Seq_io.read_tokens path)))

let test_io_tokens_missing_tab () =
  with_tmp (fun path ->
      write_raw path "label-without-body\n";
      Alcotest.(check bool) "missing TAB raises" true
        (raises_failure (fun () -> Seq_io.read_tokens path)))

(* --- format round-trip properties -------------------------------------- *)

let io_roundtrip_tests =
  let label_gen =
    QCheck.(string_gen_of_size (Gen.int_range 1 8) (Gen.char_range 'a' 'z'))
  in
  let body_gen = QCheck.(string_gen_of_size (Gen.int_range 0 90) (Gen.char_range 'a' 'f')) in
  let rows_gen =
    QCheck.(list_of_size (Gen.int_range 0 6) (pair label_gen body_gen))
  in
  let roundtrip name write read =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name ~count:50 rows_gen (fun rows ->
           let a = Alphabet.lowercase in
           let rows =
             Array.of_list (List.map (fun (l, b) -> (l, Sequence.of_string a b)) rows)
           in
           with_tmp (fun path ->
               write path a rows;
               let _, rows' = read ~alphabet:a path in
               rows = rows')))
  in
  [
    roundtrip "labeled write/read roundtrip" Seq_io.write_labeled (fun ~alphabet path ->
        Seq_io.read_labeled ~alphabet path);
    roundtrip "fasta write/read roundtrip" Seq_io.write_fasta (fun ~alphabet path ->
        Seq_io.read_fasta ~alphabet path);
    roundtrip "tokens write/read roundtrip" Seq_io.write_tokens (fun ~alphabet path ->
        Seq_io.read_tokens ~alphabet path);
  ]

let qcheck_tests =
  let seq_gen = QCheck.(string_gen_of_size (Gen.int_range 0 100) (Gen.char_range 'a' 'f')) in
  io_roundtrip_tests
  @ [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"encode/decode roundtrip" ~count:300 seq_gen (fun s ->
           let a = Alphabet.lowercase in
           Alphabet.decode a (Alphabet.encode_string a s) = s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"suffix and prefix are segments" ~count:300
         (QCheck.pair seq_gen QCheck.small_nat)
         (fun (s, k) ->
           let a = Alphabet.lowercase in
           let seq = Alphabet.encode_string a s in
           let n = Array.length seq in
           let k = if n = 0 then 0 else k mod (n + 1) in
           let suffix = Array.sub seq (n - k) k in
           let prefix = Array.sub seq 0 k in
           Sequence.is_suffix_of suffix seq && Sequence.is_prefix_of prefix seq
           && Sequence.is_segment_of suffix seq
           && Sequence.is_segment_of prefix seq));
  ]

let () =
  Alcotest.run "seqdb"
    [
      ( "alphabet",
        [
          Alcotest.test_case "basic" `Quick test_alphabet_basic;
          Alcotest.test_case "duplicates" `Quick test_alphabet_duplicates;
          Alcotest.test_case "of_string dedup" `Quick test_alphabet_of_string_dedup;
          Alcotest.test_case "char range" `Quick test_alphabet_range;
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "unknown char" `Quick test_encode_unknown;
          Alcotest.test_case "standard alphabets" `Quick test_standard_alphabets;
        ] );
      ( "sequence",
        [
          Alcotest.test_case "predicates" `Quick test_sequence_predicates;
          Alcotest.test_case "segment" `Quick test_sequence_segment;
          Alcotest.test_case "reverse" `Quick test_sequence_reverse;
          Alcotest.test_case "count occurrences" `Quick test_count_occurrences;
        ] );
      ( "database",
        [
          Alcotest.test_case "background" `Quick test_database_background;
          Alcotest.test_case "background unseen finite" `Quick
            test_database_background_unseen_symbol_finite;
          Alcotest.test_case "stats" `Quick test_database_stats;
          Alcotest.test_case "bad codes" `Quick test_database_bad_codes;
          Alcotest.test_case "subset" `Quick test_database_subset;
        ] );
      ( "io",
        [
          Alcotest.test_case "labeled roundtrip" `Quick test_io_labeled_roundtrip;
          Alcotest.test_case "inferred alphabet" `Quick test_io_labeled_inferred_alphabet;
          Alcotest.test_case "malformed line" `Quick test_io_labeled_malformed;
          Alcotest.test_case "fasta roundtrip" `Quick test_io_fasta_roundtrip;
          Alcotest.test_case "tokens roundtrip" `Quick test_io_tokens_roundtrip;
          Alcotest.test_case "tokens inferred" `Quick test_io_tokens_inferred;
          Alcotest.test_case "tokens unknown" `Quick test_io_tokens_unknown;
          Alcotest.test_case "labeled unknown char" `Quick test_io_labeled_unknown_char;
          Alcotest.test_case "fasta unknown char" `Quick test_io_fasta_unknown_char;
          Alcotest.test_case "fasta ignores preamble" `Quick test_io_fasta_ignores_preamble;
          Alcotest.test_case "tokens empty file" `Quick test_io_tokens_empty_file;
          Alcotest.test_case "tokens missing tab" `Quick test_io_tokens_missing_tab;
        ] );
      ( "golden",
        [
          Alcotest.test_case "labeled bytes" `Quick test_golden_labeled;
          Alcotest.test_case "fasta bytes" `Quick test_golden_fasta;
          Alcotest.test_case "tokens bytes" `Quick test_golden_tokens;
        ] );
      ("property", qcheck_tests);
    ]
