(* Shared test scaffolding: QCheck generators, PST build helpers, and
   pipeline fixtures used across the suites (and mirrored by the seeded
   generator of the lib/check fuzz harness). Any module in test/ can
   refer to [Gen_common.*] — the dune tests stanza links unlisted
   modules into every test executable. *)

let alpha = Alphabet.lowercase

(* Lowercase text over a small prefix of the alphabet: most properties
   want dense repetition ('a'..'d'), not 26 rarely-colliding symbols. *)
let seq_gen ?(min_len = 1) ?(max_len = 40) ?(last = 'd') () =
  QCheck.(string_gen_of_size (Gen.int_range min_len max_len) (Gen.char_range 'a' last))

let texts_gen ?(min_seqs = 1) ?(max_seqs = 5) ?min_len ?max_len ?last () =
  QCheck.list_of_size
    (QCheck.Gen.int_range min_seqs max_seqs)
    (seq_gen ?min_len ?max_len ?last ())

(* Background distribution of a memoryless uniform source over the full
   26-symbol alphabet — the reference generator of the similarity
   measure in most unit tests. *)
let uniform_lbg = Array.make 26 (log (1.0 /. 26.0))

let pst_cfg ?(max_depth = 10) ?(significance = 2) ?(max_nodes = 100000) ?(p_min = 0.0)
    ?(pruning = Pruning.Smallest_count_first) ?(alphabet_size = 26) () : Pst.config =
  { Pst.alphabet_size; max_depth; significance; max_nodes; p_min; pruning }

let build_pst ?max_depth ?significance ?max_nodes ?p_min ?pruning ?alphabet_size texts =
  let t =
    Pst.create (pst_cfg ?max_depth ?significance ?max_nodes ?p_min ?pruning ?alphabet_size ())
  in
  List.iter (fun s -> Pst.insert_sequence t (Sequence.of_string alpha s)) texts;
  t

(* Run [f] with the global domain-pool default forced to [d], restoring
   the previous default (and letting the pool lazily recreate) after. *)
let with_domains d f =
  let saved = Par.default_domains () in
  Par.set_default_domains d;
  Fun.protect ~finally:(fun () -> Par.set_default_domains saved) f

(* A small three-cluster synthetic workload plus a config scaled to it —
   shared by the determinism suite and the correctness-tooling suite so
   both exercise the same end-to-end pipeline fixture. *)
let small_db_and_truth =
  lazy
    (let w =
       Workload.generate
         {
           Workload.default_params with
           n_sequences = 90;
           avg_length = 100;
           n_clusters = 3;
           contexts_per_cluster = 120;
           concentration = 0.15;
           seed = 11;
         }
     in
     (w.db, w.labels))

let small_config =
  {
    Cluseq.default_config with
    k_init = 2;
    significance = 8;
    min_residual = Some 8;
    t_init = 1.2;
    max_iterations = 12;
    seed = 4;
  }
