(* Tests for the compiled scoring automaton (Psa): structural units plus
   QCheck properties asserting *exact* float equality between the
   compiled scan and the tree walk — the bit-for-bit contract the fuzz
   oracle (Check.psa_scoring_matches) also enforces — and between the
   batched kernel and the serial scan (Check.batch_scoring_matches). *)

open Gen_common

let seq_of s = Sequence.of_string alpha s

(* --- units --- *)

let test_empty_tree () =
  let pst = build_pst [] in
  let psa = Psa.compile pst in
  Alcotest.(check int) "one state" 1 (Psa.n_states psa);
  Alcotest.(check int) "alphabet" 26 (Psa.alphabet_size psa);
  Alcotest.(check int) "root depth" 0 (Psa.prediction_depth psa 0);
  let n = Psa.alphabet_size psa in
  for sym = 0 to n - 1 do
    Alcotest.(check int) "self-loop" 0 (Psa.step psa 0 sym)
  done;
  Alcotest.(check int) "table size" n (Bigarray.Array1.dim (Psa.transitions psa))

let test_transitions_in_range () =
  let pst = build_pst [ "abcabcabc"; "abcbabcba"; "aaaabbbb" ] in
  let psa = Psa.compile pst in
  let ns = Psa.n_states psa in
  Alcotest.(check bool) "has non-root states" true (ns > 1);
  let trans = Psa.transitions psa in
  for i = 0 to Bigarray.Array1.dim trans - 1 do
    let q = Bigarray.Array1.get trans i in
    Alcotest.(check bool) "state in range" true (q >= 0 && q < ns)
  done;
  Alcotest.(check int) "table shape" (ns * 26) (Bigarray.Array1.dim (Psa.transitions psa));
  Alcotest.(check int) "emit shape" (ns * 26) (Bigarray.Array1.dim (Psa.emissions psa));
  Alcotest.(check bool) "tables account their bytes" true (Psa.table_bytes psa >= 16 * ns * 26)

let test_empty_sequence () =
  let pst = build_pst [ "abab" ] in
  let psa = Psa.compile pst in
  let empty = seq_of "" in
  let a = Similarity.score pst ~log_background:uniform_lbg empty in
  let b = Similarity.score_psa psa ~log_background:uniform_lbg empty in
  Alcotest.(check bool) "empty result equal" true (a = b);
  Alcotest.(check int) "xs empty" 0
    (Array.length (Similarity.xs_psa psa ~log_background:uniform_lbg empty))

let test_symbol_out_of_alphabet () =
  let pst = build_pst ~alphabet_size:4 [ "abab" ] in
  let psa = Psa.compile pst in
  let lbg = Array.make 26 (log (1.0 /. 26.0)) in
  Alcotest.check_raises "symbol 25 vs alphabet 4"
    (Invalid_argument "Similarity.score_psa: symbol outside the compiled alphabet")
    (fun () -> ignore (Similarity.score_psa psa ~log_background:lbg (seq_of "abz")));
  let batch = Psa.batch_create () in
  Alcotest.check_raises "batched symbol 25 vs alphabet 4"
    (Invalid_argument "Psa.score_batch: symbol outside the compiled alphabet")
    (fun () ->
      ignore (Similarity.score_batch psa ~log_background:lbg ~batch [| seq_of "abz" |]))

let test_validate_log_background () =
  Similarity.validate_log_background uniform_lbg;
  Similarity.validate_log_background [| 0.0; -1.5 |];
  let rejects lbg =
    match Similarity.validate_log_background lbg with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  rejects [| -1.0; neg_infinity |];
  rejects [| nan |];
  rejects [| 0.5 |]

(* --- batch units: block shapes the properties may hit rarely --- *)

let test_batch_shapes () =
  let pst = build_pst [ "abcabcabc"; "aabbaabb" ] in
  let psa = Psa.compile pst in
  let batch = Psa.batch_create ~capacity:1 () in
  let score_serial s = Similarity.score_psa psa ~log_background:uniform_lbg s in
  let check_block name block =
    let got = Similarity.score_batch psa ~log_background:uniform_lbg ~batch block in
    let want = Array.map score_serial block in
    Alcotest.(check bool) name true (got = want)
  in
  check_block "empty block" [||];
  check_block "singleton block" [| seq_of "abcab" |];
  check_block "block of empties" [| seq_of ""; seq_of "" |];
  (* Mixed lengths out of order: exercises the longest-first lane sort
     and lane retirement; includes an empty lane in the middle. *)
  check_block "mixed lengths"
    [| seq_of "ab"; seq_of "abcabcabcabc"; seq_of ""; seq_of "b"; seq_of "aabb" |];
  (* The capacity-1 scratch has grown by now; a small block after a large
     one checks stale columns are re-initialized. *)
  check_block "small after large" [| seq_of "ba" |];
  Alcotest.(check bool) "scratch grew" true (Psa.batch_capacity batch >= 5)

(* --- properties: exact equality with the tree walk --- *)

let exact_match pst probes =
  List.for_all
    (fun text ->
      let s = seq_of text in
      let psa = Psa.compile pst in
      let ref_xs = Similarity.xs pst ~log_background:uniform_lbg s in
      let got_xs = Similarity.xs_psa psa ~log_background:uniform_lbg s in
      Array.length ref_xs = Array.length got_xs
      && Array.for_all2 Float.equal ref_xs got_xs
      && Similarity.score pst ~log_background:uniform_lbg s
         = Similarity.score_psa psa ~log_background:uniform_lbg s)
    probes

(* The whole probe list scored as ONE block must reproduce both the
   serial compiled scan and the tree walk, record for record — the
   [result] records carry the float bits, so [=] is exact equality. *)
let exact_batch_match pst probes =
  let psa = Psa.compile pst in
  let block = Array.of_list (List.map seq_of probes) in
  let batch = Psa.batch_create ~capacity:1 () in
  let batched = Similarity.score_batch psa ~log_background:uniform_lbg ~batch block in
  let serial = Array.map (Similarity.score_psa psa ~log_background:uniform_lbg) block in
  let tree = Array.map (Similarity.score pst ~log_background:uniform_lbg) block in
  batched = serial && batched = tree

let arb_texts_and_probes ?last () =
  QCheck.pair (texts_gen ~max_seqs:4 ()) (texts_gen ~min_seqs:1 ~max_seqs:3 ?last ())

let prop name ?p_min ?significance ?(last = 'd') ?(prune = false) () =
  QCheck.Test.make ~name ~count:150
    (arb_texts_and_probes ~last ())
    (fun (texts, probes) ->
      let pst = build_pst ?p_min ?significance texts in
      if prune then Pst.prune_to pst (max 1 (Pst.n_nodes pst / 2));
      exact_match pst probes)

let batch_prop name ?p_min ?significance ?(last = 'd') ?(prune = false) () =
  QCheck.Test.make ~name ~count:150
    (* min_seqs:0 admits the empty block; max_seqs:6 gives blocks larger
       than the scratch's initial capacity. *)
    (QCheck.pair (texts_gen ~max_seqs:4 ()) (texts_gen ~min_seqs:0 ~max_seqs:6 ~last ()))
    (fun (texts, probes) ->
      let pst = build_pst ?p_min ?significance texts in
      if prune then Pst.prune_to pst (max 1 (Pst.n_nodes pst / 2));
      exact_batch_match pst probes)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest (prop "psa = tree walk (p_min = 0)" ~p_min:0.0 ());
    QCheck_alcotest.to_alcotest (prop "psa = tree walk (p_min = 0.02)" ~p_min:0.02 ());
    QCheck_alcotest.to_alcotest
      (prop "psa = tree walk (significance 1, deep tree)" ~significance:1 ());
    (* Probes over the full alphabet against a tree trained on 'a'..'d':
       most probe symbols have no node anywhere in the tree. *)
    QCheck_alcotest.to_alcotest (prop "psa = tree walk (absent symbols)" ~last:'z' ());
    (* Pruning can remove a context while a longer extension survives —
       the case that forces the automaton's closure states. *)
    QCheck_alcotest.to_alcotest (prop "psa = tree walk (pruned tree)" ~prune:true ());
    QCheck_alcotest.to_alcotest
      (prop "psa = tree walk (pruned, p_min = 0.01)" ~prune:true ~p_min:0.01 ());
    QCheck_alcotest.to_alcotest (batch_prop "batch = serial = tree walk" ());
    QCheck_alcotest.to_alcotest
      (batch_prop "batch = serial = tree walk (absent symbols)" ~last:'z' ());
    QCheck_alcotest.to_alcotest
      (batch_prop "batch = serial = tree walk (pruned tree)" ~prune:true ());
    (* The fuzz oracles themselves: no violations on random trees/probes. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Check.psa_scoring_matches finds no violations" ~count:100
         (arb_texts_and_probes ())
         (fun (texts, probes) ->
           let pst = build_pst texts in
           let probes = Array.of_list (List.map seq_of probes) in
           Check.psa_scoring_matches pst ~log_background:uniform_lbg probes = []));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Check.batch_scoring_matches finds no violations" ~count:100
         (arb_texts_and_probes ())
         (fun (texts, probes) ->
           let pst = build_pst texts in
           let probes = Array.of_list (List.map seq_of probes) in
           let blocks = [ [||]; probes; [| [||] |]; Array.sub probes 0 1 ] in
           Check.batch_scoring_matches pst ~log_background:uniform_lbg blocks = []));
  ]

let () =
  Alcotest.run "psa"
    [
      ( "unit",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "transitions in range" `Quick test_transitions_in_range;
          Alcotest.test_case "empty sequence" `Quick test_empty_sequence;
          Alcotest.test_case "symbol out of alphabet" `Quick test_symbol_out_of_alphabet;
          Alcotest.test_case "validate_log_background" `Quick test_validate_log_background;
          Alcotest.test_case "batch block shapes" `Quick test_batch_shapes;
        ] );
      ("property", qcheck_tests);
    ]
