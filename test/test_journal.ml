(* The decision-provenance journal (Obs.Journal): write/read round
   trips, the zero-cost-when-disabled contract, and — the property the
   whole feature hangs on — journals of the same run being identical
   at any domain count modulo timestamps. All journal emissions come
   from the pipeline's serial sections, so nothing about domain
   scheduling may leak into the record stream. *)

let with_domains = Gen_common.with_domains

let with_temp_journal f =
  let path = Filename.temp_file "cluseq-journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.close ();
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_ok path =
  match Obs.Journal.read_file path with
  | Ok entries -> entries
  | Error msg -> Alcotest.failf "journal unreadable: %s" msg

(* --- round trip ----------------------------------------------------- *)

let test_write_read_roundtrip () =
  with_temp_journal @@ fun path ->
  Obs.Journal.open_file path;
  Alcotest.(check bool) "enabled after open" true (Obs.Journal.is_enabled ());
  Alcotest.(check (option string)) "current path" (Some path) (Obs.Journal.current_path ());
  Obs.Journal.emit "test.first" (fun () ->
      [ ("answer", Bench_json.Num 42.0); ("label", Bench_json.Str "x") ]);
  Obs.Journal.emit "test.second" (fun () -> []);
  (* An event field named like an envelope component of another event
     must survive: the envelope uses "rec"/"ts_ns"/"event", not "seq". *)
  Obs.Journal.emit "test.seqish" (fun () -> [ ("seq", Bench_json.Num 7.0) ]);
  Obs.Journal.close ();
  Alcotest.(check bool) "disabled after close" false (Obs.Journal.is_enabled ());
  let entries = read_ok path in
  Alcotest.(check int) "three records" 3 (List.length entries);
  List.iteri
    (fun i (e : Obs.Journal.entry) ->
      Alcotest.(check int) "ordinals are sequential" i e.j_seq;
      Alcotest.(check bool) "timestamp positive" true (Int64.compare e.j_ts_ns 0L > 0))
    entries;
  (match entries with
  | [ a; b; c ] ->
      Alcotest.(check string) "first event name" "test.first" a.j_event;
      Alcotest.(check bool) "first fields preserved" true
        (List.assoc_opt "answer" a.j_fields = Some (Bench_json.Num 42.0)
        && List.assoc_opt "label" a.j_fields = Some (Bench_json.Str "x"));
      Alcotest.(check bool) "envelope keys stripped from fields" true
        (List.assoc_opt "event" a.j_fields = None
        && List.assoc_opt "rec" a.j_fields = None
        && List.assoc_opt "ts_ns" a.j_fields = None);
      Alcotest.(check bool) "empty field list allowed" true (b.j_fields = []);
      Alcotest.(check bool) "a field named seq survives" true
        (List.assoc_opt "seq" c.j_fields = Some (Bench_json.Num 7.0));
      Alcotest.(check bool) "timestamps monotone" true
        (Int64.compare a.j_ts_ns b.j_ts_ns <= 0 && Int64.compare b.j_ts_ns c.j_ts_ns <= 0)
  | _ -> Alcotest.fail "expected exactly three entries");
  (* Closing again is a no-op, and a second journal starts fresh
     ordinals. *)
  Obs.Journal.close ();
  Obs.Journal.open_file path;
  Obs.Journal.emit "test.reopen" (fun () -> []);
  Obs.Journal.close ();
  match read_ok path with
  | [ e ] ->
      Alcotest.(check string) "reopen truncates" "test.reopen" e.j_event;
      Alcotest.(check int) "ordinals restart per file" 0 e.j_seq
  | es -> Alcotest.failf "expected one entry after reopen, got %d" (List.length es)

let test_disabled_is_inert () =
  Obs.Journal.close ();
  let before = Obs.Journal.events_written () in
  let ran = ref false in
  Obs.Journal.emit "test.ignored" (fun () ->
      ran := true;
      []);
  Alcotest.(check bool) "emit on a closed journal is a no-op" false !ran;
  Alcotest.(check int) "nothing written" before (Obs.Journal.events_written ());
  Alcotest.(check bool) "not enabled" false (Obs.Journal.is_enabled ());
  Alcotest.(check (option string)) "no path" None (Obs.Journal.current_path ());
  (* flush/close without an open journal must not raise *)
  Obs.Journal.flush ();
  Obs.Journal.close ()

let test_read_reports_bad_line () =
  with_temp_journal @@ fun path ->
  Out_channel.with_open_text path (fun oc ->
      output_string oc "{\"rec\":0,\"ts_ns\":1,\"event\":\"ok\"}\n";
      output_string oc "\n";
      output_string oc "not json at all\n");
  match Obs.Journal.read_file path with
  | Ok _ -> Alcotest.fail "corrupt journal accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the offending line" true
        (let contains ~needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         contains ~needle:"line 3" msg)

(* --- determinism across domain counts ------------------------------- *)

(* One full clustering run's journal, as entries with the timestamp
   zeroed: everything that must not depend on scheduling. *)
let journal_of ~domains run =
  let db, _ = Lazy.force Gen_common.small_db_and_truth in
  with_domains domains (fun () ->
      Obs.reset ();
      with_temp_journal (fun path ->
          Obs.Journal.open_file path;
          ignore (run db);
          Obs.Journal.close ();
          List.map
            (fun (e : Obs.Journal.entry) -> { e with j_ts_ns = 0L })
            (read_ok path)))

let journal_of_run ~domains =
  journal_of ~domains (fun db -> Cluseq.run ~config:Gen_common.small_config db)

let test_journal_identical_across_domains () =
  let base = journal_of_run ~domains:1 in
  Alcotest.(check bool) "run journaled events" true (base <> []);
  Alcotest.(check bool) "lifecycle events present" true
    (List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "run.start") base
    && List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "seq.joined") base
    && List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "iteration.drift") base
    && List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "run.end") base);
  let par = journal_of_run ~domains:4 in
  Alcotest.(check int) "same record count at 1 vs 4 domains" (List.length base)
    (List.length par);
  List.iter2
    (fun (a : Obs.Journal.entry) (b : Obs.Journal.entry) ->
      if a <> b then
        Alcotest.failf "journal diverges at record %d: %s vs %s" a.j_seq a.j_event b.j_event)
    base par

(* --- sharded runs ---------------------------------------------------- *)

let journal_of_sharded ~domains ~shards =
  journal_of ~domains (fun db -> Shard.run ~config:Gen_common.small_config ~shards db)

let test_shards_one_journal_matches_plain () =
  (* --shards 1 is the plain path: the journal must be byte-identical
     (the entries carry everything but the timestamps). *)
  let plain = journal_of_run ~domains:1 in
  let sharded = journal_of_sharded ~domains:1 ~shards:1 in
  Alcotest.(check int) "same record count" (List.length plain) (List.length sharded);
  List.iter2
    (fun (a : Obs.Journal.entry) (b : Obs.Journal.entry) ->
      if a <> b then
        Alcotest.failf "shards=1 journal diverges at record %d: %s vs %s" a.j_seq a.j_event
          b.j_event)
    plain sharded

let test_shard_journal_identical_across_domains () =
  (* Per-shard journals are suspended during the fan-out; what remains
     is orchestrator-level provenance emitted from the main domain, so
     the stream must not depend on the domain count either. *)
  let base = journal_of_sharded ~domains:1 ~shards:4 in
  Alcotest.(check bool) "run journaled events" true (base <> []);
  Alcotest.(check bool) "shard lifecycle events present" true
    (List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "run.start") base
    && List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "shard.started") base
    && List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "shard.merged") base
    && List.exists (fun (e : Obs.Journal.entry) -> e.j_event = "run.end") base);
  Alcotest.(check bool) "run.start carries the shard count" true
    (List.exists
       (fun (e : Obs.Journal.entry) ->
         e.j_event = "run.start"
         && List.assoc_opt "shards" e.j_fields = Some (Bench_json.Num 4.0))
       base);
  Alcotest.(check bool) "no per-shard iteration events leak" true
    (not
       (List.exists
          (fun (e : Obs.Journal.entry) -> e.j_event = "seq.joined" || e.j_event = "iteration.drift")
          base));
  let par = journal_of_sharded ~domains:4 ~shards:4 in
  Alcotest.(check int) "same record count at 1 vs 4 domains" (List.length base)
    (List.length par);
  List.iter2
    (fun (a : Obs.Journal.entry) (b : Obs.Journal.entry) ->
      if a <> b then
        Alcotest.failf "sharded journal diverges at record %d: %s vs %s" a.j_seq a.j_event
          b.j_event)
    base par

let () =
  Alcotest.run "journal"
    [
      ( "io",
        [
          Alcotest.test_case "write/read round trip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "disabled journal is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "corrupt line reported" `Quick test_read_reports_bad_line;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical across domain counts" `Quick
            test_journal_identical_across_domains;
          Alcotest.test_case "shards=1 journal matches the plain path" `Quick
            test_shards_one_journal_matches_plain;
          Alcotest.test_case "sharded journal identical across domain counts" `Quick
            test_shard_journal_identical_across_domains;
        ] );
    ]
