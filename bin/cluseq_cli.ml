(* cluseq — command-line front end.

   Subcommands:
     generate   synthesize a labeled sequence database (synthetic / protein /
                language workloads) into a label<TAB>sequence file
     cluster    run CLUSEQ on a sequence file, print cluster assignments
     evaluate   score a clustering against the ground-truth labels in the file
     explain    one sequence's join/leave provenance + per-position
                similarity attribution
     info       print database statistics

   All randomness is seeded; identical invocations produce identical
   output. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Observability arguments (shared by every subcommand)                *)
(* ------------------------------------------------------------------ *)

let emit_metrics dest () =
  (* Fold the process's GC/heap cost into the report: absolute
     Gc.quick_stat totals plus the sampled peak-heap watermark, as
     gc.* gauges (see DESIGN.md §6). *)
  Obs.Resource.publish_current ();
  match dest with
  | "" | "-" -> prerr_string (Obs.Export.summary ())
  | file -> (
      let contents =
        if Filename.check_suffix file ".prom" || Filename.check_suffix file ".txt" then
          Obs.Export.to_prometheus ()
        else Obs.Export.to_json ()
      in
      (* Runs from at_exit: an escaping exception would mask the run's
         result with a fatal-error banner. *)
      try
        Obs.Export.write_file file contents;
        Printf.eprintf "metrics written to %s\n" file
      with Sys_error msg -> Printf.eprintf "cluseq: cannot write metrics: %s\n" msg)

let emit_trace () = Format.eprintf "== trace ==@\n%a@?" Obs.Trace.pp ()

let emit_chrome_trace file () =
  (* Flush pending runtime events so GC spans reach the timeline. *)
  ignore (Obs.Runtime_bridge.poll ());
  Obs.Runtime_bridge.stop ();
  try
    Obs.Export.write_file file (Obs.Export.to_chrome_trace ());
    Printf.eprintf "trace written to %s (open at https://ui.perfetto.dev)\n" file
  with Sys_error msg -> Printf.eprintf "cluseq: cannot write trace: %s\n" msg

(* Returns the verbosity count; reports are emitted via [at_exit] so a
   subcommand needs no explicit teardown. *)
let setup_obs verbosity metrics trace trace_out journal domains check no_psa no_index
    index_ratio =
  let vcount = List.length verbosity in
  Obs.Logging.setup ~level:(Obs.Logging.level_of_verbosity vcount) ();
  (match domains with None -> () | Some d -> Par.set_default_domains d);
  if no_psa then Psa.set_enabled false;
  if no_index then Index.set_enabled false;
  (match index_ratio with
  | None -> ()
  | Some r -> (
      try Index.set_ratio r
      with Invalid_argument _ ->
        Printf.eprintf "cluseq: --index-ratio must be a finite value in [0, 1]\n";
        exit 124));
  if check then Check.install_auditor () else Check.install_from_env ();
  (match journal with
  | None -> ()
  | Some file -> (
      try
        Obs.Journal.open_file file;
        at_exit (fun () ->
            Obs.Journal.close ();
            let dropped = Obs.Journal.dropped () in
            if dropped > 0 then
              Printf.eprintf "cluseq: journal dropped %d records (write failures)\n" dropped)
      with Sys_error msg -> Printf.eprintf "cluseq: cannot open journal: %s\n" msg));
  (match metrics with
  | None -> ()
  | Some dest ->
      Obs.Metrics.enable ();
      Obs.Resource.start_sampler ();
      at_exit (emit_metrics dest));
  if trace then begin
    Obs.Trace.enable ();
    at_exit emit_trace
  end;
  (match trace_out with
  | None -> ()
  | Some file ->
      Obs.Trace.enable ();
      Obs.Recorder.enable ();
      if not (Obs.Runtime_bridge.start ()) then
        Printf.eprintf "cluseq: runtime-events bridge unavailable; trace will lack GC events\n";
      at_exit (emit_chrome_trace file));
  vcount

let obs_term =
  let verbosity =
    Arg.(
      value & flag_all
      & info [ "v"; "verbose" ]
          ~doc:
            "Increase log verbosity (repeatable: -v info, -vv debug); for $(b,cluster), also \
             print per-iteration statistics. The $(b,CLUSEQ_LOG) environment variable \
             overrides the log level.")
  in
  let metrics =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Record pipeline metrics (PST growth, similarity scans, per-phase timings). With \
             no $(docv), print a summary to stderr on exit; with $(docv), write a report: \
             Prometheus text format if $(docv) ends in .prom or .txt, JSON otherwise.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record a tree of timed spans (run / iteration / phase) and print it to stderr \
             on exit.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record a cross-domain flight-recorder trace and write it to $(docv) as Chrome \
             trace-format JSON on exit (open at https://ui.perfetto.dev). The timeline \
             merges the main-domain span tree, per-domain worker events from the scoring \
             pool, and GC/domain-lifecycle events from the OCaml runtime.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Record a decision-provenance journal to $(docv): one JSON object per line \
             describing every model decision (clusters seeded / grown / frozen / dismissed, \
             threshold moves, per-sequence joins and leaves with the deciding similarity, \
             per-iteration drift gauges). Zero cost when absent; read it back with \
             $(b,cluseq explain).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Size of the scoring domain pool; 1 runs fully serial. Results are identical \
             for any value. Defaults to the $(b,CLUSEQ_DOMAINS) environment variable, or \
             the machine's recommended domain count.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Install the runtime correctness auditor: every reclustering pass is replayed by \
             a serial reference implementation and every iteration's cluster invariants are \
             verified; any divergence aborts the run. Slow — for debugging and CI. Also \
             enabled by $(b,CLUSEQ_CHECK=1).")
  in
  let no_psa =
    Arg.(
      value & flag
      & info [ "no-psa" ]
          ~doc:
            "Disable compiling cluster PSTs into flat scoring automata and score every \
             sequence by the tree walk instead. Results are bit-identical either way; this \
             exists for debugging and for measuring the automaton's speedup end to end.")
  in
  let no_index =
    Arg.(
      value & flag
      & info [ "no-index" ]
          ~doc:
            "Disable the sketch-gated candidate index (and its score-column cache) and score \
             every (sequence, cluster) pair every iteration — the exact pre-index scan, for \
             debugging and for measuring the index's pruning end to end.")
  in
  let index_ratio =
    Arg.(
      value
      & opt (some float) None
      & info [ "index-ratio" ] ~docv:"R"
          ~doc:
            "Arm the heuristic sketch gate of the candidate index with a shared-hash-ratio \
             cutoff in [0, 1]: a (sequence, cluster) pair is scored only when at least \
             $(docv) of the sequence's sketch hashes hit the cluster's context bitmap. The \
             default is 0 — gate off, exact score-column cache still on — because the gate \
             can wrongly prune sequences whose similarity flows through contexts shallower \
             than the bitmap sees; validate a corpus sample with cluseq check before \
             enabling (0.3 is the tested starting point).")
  in
  Term.(
    const setup_obs $ verbosity $ metrics $ trace $ trace_out $ journal $ domains $ check
    $ no_psa $ no_index $ index_ratio)

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the database into $(docv) deterministic shards, run the full CLUSEQ \
           loop per shard concurrently on the domain pool, and merge the per-shard models \
           into consolidated clusters (counts-added PSTs; cross-shard cluster pairs under a \
           symmetrized-KL threshold are unioned — see DESIGN.md §14). 1 is exactly the \
           unsharded run. Defaults to the $(b,CLUSEQ_SHARDS) environment variable, or 1.")

let resolve_shards = function
  | Some s -> s
  | None -> Option.value ~default:1 (Shard.env_shards ())

let file_arg p =
  Arg.(required & pos p (some string) None & info [] ~docv:"FILE" ~doc:"Sequence file (label<TAB>sequence lines).")

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("synthetic", `Synthetic); ("protein", `Protein); ("language", `Language) ]) `Synthetic
      & info [ "kind" ] ~docv:"KIND" ~doc:"Workload kind: synthetic, protein, or language.")
  in
  let n = Arg.(value & opt int 1000 & info [ "num" ] ~docv:"N" ~doc:"Number of sequences.") in
  let len = Arg.(value & opt int 200 & info [ "len" ] ~docv:"L" ~doc:"Average sequence length.") in
  let k = Arg.(value & opt int 10 & info [ "clusters" ] ~docv:"K" ~doc:"Embedded clusters / families.") in
  let sigma = Arg.(value & opt int 26 & info [ "sigma" ] ~docv:"S" ~doc:"Alphabet size (synthetic only).") in
  let outliers =
    Arg.(value & opt float 0.05 & info [ "outliers" ] ~docv:"F" ~doc:"Outlier fraction (synthetic only).")
  in
  let contexts =
    Arg.(value & opt int 120 & info [ "contexts" ] ~docv:"N" ~doc:"Generator contexts per cluster (synthetic only).")
  in
  let concentration =
    Arg.(value & opt float 0.15 & info [ "separation" ] ~docv:"F" ~doc:"Context peakedness; smaller = better-separated clusters (synthetic only).")
  in
  let out = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.") in
  let run _vcount kind n len k sigma outliers contexts concentration seed out =
    let rows, alphabet =
      match kind with
      | `Synthetic ->
          let w =
            Workload.generate
              {
                Workload.default_params with
                n_sequences = n;
                avg_length = len;
                alphabet_size = sigma;
                n_clusters = k;
                outlier_fraction = outliers;
                contexts_per_cluster = contexts;
                concentration;
                seed;
              }
          in
          ( Array.mapi
              (fun i s -> (string_of_int w.labels.(i), s))
              (Seq_database.sequences w.db),
            Seq_database.alphabet w.db )
      | `Protein ->
          let p =
            Protein_sim.generate
              {
                Protein_sim.default_params with
                n_families = k;
                total_sequences = n;
                avg_length = len;
                seed;
              }
          in
          ( Array.mapi
              (fun i s -> (string_of_int p.labels.(i), s))
              (Seq_database.sequences p.db),
            Seq_database.alphabet p.db )
      | `Language ->
          let l =
            Language_sim.generate
              { Language_sim.default_params with per_language = n / 3; seed }
          in
          ( Array.mapi
              (fun i s -> (string_of_int l.labels.(i), s))
              (Seq_database.sequences l.db),
            Seq_database.alphabet l.db )
    in
    Seq_io.write_labeled out alphabet rows;
    Printf.printf "wrote %d sequences to %s\n" (Array.length rows) out
  in
  let term =
    Term.(
      const run $ obs_term $ kind $ n $ len $ k $ sigma $ outliers $ contexts $ concentration
      $ seed_arg $ out)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a labeled synthetic sequence database.") term

(* ------------------------------------------------------------------ *)
(* cluster                                                             *)
(* ------------------------------------------------------------------ *)

let config_args =
  let k_init = Arg.(value & opt int 1 & info [ "k-init" ] ~docv:"K" ~doc:"Initial number of clusters.") in
  let c = Arg.(value & opt int 30 & info [ "significance" ] ~docv:"C" ~doc:"Significance threshold (paper: >= 30; scale down with the data).") in
  let t = Arg.(value & opt float 1.2 & info [ "threshold" ] ~docv:"T" ~doc:"Initial similarity threshold (linear, >= 1).") in
  let depth = Arg.(value & opt int 10 & info [ "depth" ] ~docv:"L" ~doc:"Max PST context length.") in
  let max_nodes = Arg.(value & opt int 20000 & info [ "max-nodes" ] ~docv:"N" ~doc:"PST node budget per cluster.") in
  let residual = Arg.(value & opt (some int) None & info [ "min-residual" ] ~docv:"R" ~doc:"Consolidation keep-threshold (default: C).") in
  let no_adjust = Arg.(value & flag & info [ "no-adjust" ] ~doc:"Disable automatic threshold adjustment.") in
  let order =
    Arg.(
      value
      & opt (enum [ ("fixed", Order.Fixed); ("random", Order.Random); ("cluster-based", Order.Cluster_based) ]) Order.Fixed
      & info [ "order" ] ~docv:"ORDER" ~doc:"Sequence examination order.")
  in
  let iters = Arg.(value & opt int 50 & info [ "max-iterations" ] ~docv:"M" ~doc:"Iteration cap.") in
  let make k_init c t depth max_nodes residual no_adjust order iters seed =
    {
      Cluseq.default_config with
      k_init;
      significance = c;
      t_init = t;
      max_depth = depth;
      max_nodes;
      min_residual = residual;
      adjust_threshold = not no_adjust;
      order;
      max_iterations = iters;
      seed;
    }
  in
  Term.(const make $ k_init $ c $ t $ depth $ max_nodes $ residual $ no_adjust $ order $ iters $ seed_arg)

let cluster_cmd =
  let assignments_out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write per-sequence assignments (id, clusters) to FILE.")
  in
  let run vcount file config shards assignments_out =
    let shards = resolve_shards shards in
    let alphabet, rows = Seq_io.read_labeled file in
    let db, _labels = Seq_io.to_database alphabet rows in
    let result, seconds = Timer.time (fun () -> Shard.run ~config ~shards db) in
    Printf.printf "clusters: %d  iterations: %d  final t: %.4g  outliers: %d  time: %.2fs\n"
      result.n_clusters result.iterations result.final_t (List.length result.outliers) seconds;
    if vcount > 0 then
      List.iter
        (fun (h : Cluseq.iteration_stats) ->
          Printf.printf "  iter %2d: new=%d consolidated=%d clusters=%d unclustered=%d t=%.4g changes=%d\n"
            h.iteration h.new_clusters h.consolidated h.clusters h.unclustered h.threshold
            h.membership_changes;
          Printf.printf
            "           scan: pairs=%d joined=%d rescores=%d wasted=%.1f%%\n"
            h.census.pairs_scored h.census.pairs_joined h.census.dirty_rescores
            (100.0 *. Cluseq.wasted_pair_ratio h.census);
          match h.timings with
          | None -> ()
          | Some t ->
              Printf.printf
                "           phases: gen %.3fs recluster %.3fs consolidate %.3fs threshold %.3fs converge %.3fs\n"
                t.generation_s t.reclustering_s t.consolidation_s t.threshold_s t.convergence_s)
        result.history;
    Array.iter
      (fun (id, members) -> Printf.printf "cluster %d: %d sequences\n" id (Array.length members))
      result.clusters;
    match assignments_out with
    | None -> ()
    | Some out ->
        let oc = open_out out in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Array.iteri
              (fun i cs ->
                Printf.fprintf oc "%d\t%s\n" i (String.concat "," (List.map string_of_int cs)))
              result.assignments);
        Printf.printf "assignments written to %s\n" out
  in
  let term = Term.(const run $ obs_term $ file_arg 0 $ config_args $ shards_arg $ assignments_out) in
  Cmd.v (Cmd.info "cluster" ~doc:"Run CLUSEQ on a sequence file.") term

(* ------------------------------------------------------------------ *)
(* train / classify                                                    *)
(* ------------------------------------------------------------------ *)

let train_cmd =
  let model_out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trained classifier model to FILE.")
  in
  let run _vcount file config shards model_out =
    let shards = resolve_shards shards in
    let alphabet, rows = Seq_io.read_labeled file in
    let db, _ = Seq_io.to_database alphabet rows in
    let result, seconds = Timer.time (fun () -> Shard.run ~config ~shards db) in
    Printf.printf "clusters: %d  final t: %.4g  time: %.2fs
" result.n_clusters
      result.final_t seconds;
    let clf = Classifier.of_result result db in
    Classifier.save model_out clf;
    Printf.printf "model written to %s (%d cluster models)
" model_out
      (Classifier.n_clusters clf)
  in
  let term = Term.(const run $ obs_term $ file_arg 0 $ config_args $ shards_arg $ model_out) in
  Cmd.v
    (Cmd.info "train" ~doc:"Cluster a sequence file and save the models for later classification.")
    term

let classify_cmd =
  let model_arg =
    Arg.(required & opt (some string) None & info [ "m"; "model" ] ~docv:"FILE" ~doc:"Classifier model from 'cluseq train'.")
  in
  let run _vcount file model =
    let clf = Classifier.load model in
    (* Encode with the model's own alphabet: an independently inferred
       alphabet would permute symbol codes. *)
    let alphabet, rows = Seq_io.read_labeled ?alphabet:(Classifier.alphabet clf) file in
    let db, labels = Seq_io.to_database alphabet rows in
    let verdicts = Classifier.classify_all clf db in
    let outliers = ref 0 in
    Array.iteri
      (fun i (v : Classifier.verdict) ->
        match v.cluster with
        | Some c -> Printf.printf "%d	%s	cluster %d	log-sim %.2f
" i labels.(i) c v.log_sim
        | None ->
            incr outliers;
            Printf.printf "%d	%s	outlier	log-sim %.2f
" i labels.(i) v.log_sim)
      verdicts;
    Printf.printf "# %d sequences, %d outliers, threshold %.4g, %d cluster models
"
      (Array.length verdicts) !outliers (Classifier.threshold clf) (Classifier.n_clusters clf)
  in
  let term = Term.(const run $ obs_term $ file_arg 0 $ model_arg) in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify sequences against a trained model.")
    term

(* ------------------------------------------------------------------ *)
(* evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let evaluate_cmd =
  let run _vcount file config shards =
    let shards = resolve_shards shards in
    let alphabet, rows = Seq_io.read_labeled file in
    let db, label_names = Seq_io.to_database alphabet rows in
    (* Ground truth: numeric labels, "-1" marking outliers. *)
    let truth =
      Array.map (fun l -> match int_of_string_opt l with Some v -> v | None -> -1) label_names
    in
    let result, seconds = Timer.time (fun () -> Shard.run ~config ~shards db) in
    let n = Seq_database.n_sequences db in
    let hard = Cluseq.hard_labels result ~n in
    let pred_class = Matching.relabel ~truth ~pred:hard in
    Printf.printf "clusters: %d (time %.2fs)\n" result.n_clusters seconds;
    Printf.printf "accuracy: %.1f%%\n" (100.0 *. Metrics.accuracy ~truth ~pred_class);
    Printf.printf "ARI: %.3f\n" (Metrics.adjusted_rand_index ~truth ~pred:hard);
    Printf.printf "%-8s %11s %8s\n" "class" "precision%" "recall%";
    List.iter
      (fun (cls, (pr : Metrics.pr)) ->
        Printf.printf "%-8d %11.1f %8.1f\n" cls (100.0 *. pr.precision) (100.0 *. pr.recall))
      (Metrics.per_class ~truth ~pred_class);
    let out = Metrics.outlier_detection ~truth ~pred_class in
    Printf.printf "outlier detection: precision %.1f%% recall %.1f%%\n"
      (100.0 *. out.precision) (100.0 *. out.recall)
  in
  let term = Term.(const run $ obs_term $ file_arg 0 $ config_args $ shards_arg) in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Cluster a labeled file and score against its ground truth.")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let seq_arg =
    Arg.(
      required & pos 1 (some int) None
      & info [] ~docv:"SEQ_ID" ~doc:"Sequence id: 0-based line position in FILE.")
  in
  let cluster_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cluster" ] ~docv:"ID"
          ~doc:
            "Explain the similarity to this cluster (default: the sequence's best final \
             cluster).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Number of top contributing positions to print.")
  in
  let die fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "cluseq: %s\n" msg;
        exit 1)
      fmt
  in
  let fint k fields = Option.bind (List.assoc_opt k fields) Bench_json.to_int in
  let ffloat k fields = Option.bind (List.assoc_opt k fields) Bench_json.to_float in
  let run _vcount file seq_id config shards cluster_opt top =
    let shards = resolve_shards shards in
    let alphabet, rows = Seq_io.read_labeled file in
    let db, _ = Seq_io.to_database alphabet rows in
    let n = Seq_database.n_sequences db in
    if seq_id < 0 || seq_id >= n then
      die "SEQ_ID %d out of range (file has %d sequences)" seq_id n;
    (* The run is deterministic for a fixed config, so re-deriving
       provenance is exact: journal the rerun — to the --journal file
       when one was given, else to a throwaway temp file — and read the
       records back. *)
    let temp =
      match Obs.Journal.current_path () with
      | Some _ -> None
      | None ->
          let tmp = Filename.temp_file "cluseq-explain" ".jsonl" in
          (try Obs.Journal.open_file tmp
           with Sys_error msg -> die "cannot open journal: %s" msg);
          Some tmp
    in
    let result = Shard.run ~config ~shards db in
    Obs.Journal.flush ();
    let jpath =
      match Obs.Journal.current_path () with Some p -> p | None -> die "journal vanished"
    in
    let entries =
      match Obs.Journal.read_file jpath with
      | Ok es -> es
      | Error msg -> die "cannot read journal %s: %s" jpath msg
    in
    (match temp with
    | Some tmp ->
        Obs.Journal.close ();
        (try Sys.remove tmp with Sys_error _ -> ())
    | None -> ());
    (* --- assignment history --- *)
    Printf.printf "sequence %d: assignment history\n" seq_id;
    let joined_ever = Hashtbl.create 8 in
    let printed = ref 0 in
    List.iter
      (fun (e : Obs.Journal.entry) ->
        let iter = Option.value ~default:0 (fint "iter" e.j_fields) in
        let cl = Option.value ~default:(-1) (fint "cluster" e.j_fields) in
        match e.j_event with
        | "seq.joined" when fint "seq" e.j_fields = Some seq_id ->
            incr printed;
            Hashtbl.replace joined_ever cl ();
            Printf.printf "  iter %2d: joined cluster %d (log-sim %.4f >= log t %.4f)\n" iter
              cl
              (Option.value ~default:Float.nan (ffloat "log_sim" e.j_fields))
              (Option.value ~default:Float.nan (ffloat "log_t" e.j_fields))
        | "seq.left" when fint "seq" e.j_fields = Some seq_id ->
            incr printed;
            Printf.printf "  iter %2d: left cluster %d (log-sim %.4f < log t %.4f)\n" iter cl
              (Option.value ~default:Float.nan (ffloat "log_sim" e.j_fields))
              (Option.value ~default:Float.nan (ffloat "log_t" e.j_fields))
        | "cluster.dismissed" when Hashtbl.mem joined_ever cl ->
            incr printed;
            let absorbers =
              match List.assoc_opt "absorbed_by" e.j_fields with
              | Some (Bench_json.Arr l) -> List.filter_map Bench_json.to_int l
              | _ -> []
            in
            Printf.printf "  iter %2d: cluster %d dismissed in consolidation%s\n" iter cl
              (match absorbers with
              | [] -> ""
              | l ->
                  Printf.sprintf " (members absorbed by %s)"
                    (String.concat ", " (List.map string_of_int l)))
        (* Sharded runs suspend the per-shard journal, so the history
           above is empty; the merge-phase provenance still answers
           "why did my shard-local cluster disappear" — print the
           consolidations that formed any cluster this sequence ended
           up in. *)
        | "shard.consolidated"
          when List.mem
                 (Option.value ~default:(-1) (fint "into" e.j_fields))
                 result.assignments.(seq_id) ->
            incr printed;
            Printf.printf
              "  merge: shard-local cluster %d (shard %d) consolidated into cluster %d \
               (divergence %.3f)\n"
              cl
              (Option.value ~default:(-1) (fint "shard" e.j_fields))
              (Option.value ~default:(-1) (fint "into" e.j_fields))
              (Option.value ~default:Float.nan (ffloat "divergence" e.j_fields))
        | _ -> ())
      entries;
    if !printed = 0 then
      if shards > 1 then
        Printf.printf
          "  (no merge-phase events for this sequence; per-shard iteration journals are \
           suspended in sharded runs)\n"
      else Printf.printf "  (no membership changes — never joined a cluster)\n";
    (match result.assignments.(seq_id) with
    | [] -> Printf.printf "final: outlier (member of no cluster)\n"
    | cs ->
        Printf.printf "final: member of cluster%s %s\n"
          (if List.length cs > 1 then "s" else "")
          (String.concat ", " (List.map string_of_int cs)));
    (* --- per-position attribution --- *)
    let target =
      match cluster_opt with
      | Some c -> c
      | None -> (
          match result.best.(seq_id) with
          | Some (c, _) -> c
          | None ->
              die "sequence %d has no finite similarity to any final cluster; pass --cluster"
                seq_id)
    in
    let pst =
      match Array.find_opt (fun (id, _) -> id = target) result.models with
      | Some (_, pst) -> pst
      | None -> die "cluster %d is not among the final clusters" target
    in
    let psa = Psa.compile pst in
    let lbg = Seq_database.log_background db in
    let s = Seq_database.get db seq_id in
    let a = Similarity.score_attributed psa ~log_background:lbg s in
    let r = a.attr_result in
    Printf.printf
      "\nsimilarity to cluster %d: log-sim %.4f (linear %.4g), maximizing segment [%d..%d] \
       of %d symbols\n"
      target r.log_sim
      (Similarity.linear_of_log r.log_sim)
      r.seg_lo r.seg_hi (Array.length s);
    let k = min top (Array.length s) in
    Printf.printf "top %d contributing positions (X = log P(sym|ctx) - log p(sym)):\n" k;
    let idx = Array.init (Array.length s) Fun.id in
    Array.sort
      (fun i j ->
        let c = compare a.attr_xs.(j) a.attr_xs.(i) in
        if c <> 0 then c else compare i j)
      idx;
    Array.iteri
      (fun rank i ->
        if rank < k then begin
          let d = a.attr_depths.(i) in
          let ctx =
            if d = 0 then "(empty)" else Alphabet.decode alphabet (Array.sub s (i - d) d)
          in
          Printf.printf "  pos %5d  sym %-3s X=%+.4f  ctx(%d)=%s%s\n" i
            (Alphabet.symbol alphabet s.(i))
            a.attr_xs.(i) d ctx
            (if i >= r.seg_lo && i <= r.seg_hi then "  [in segment]" else "")
        end)
      idx
  in
  let term =
    Term.(
      const run $ obs_term $ file_arg 0 $ seq_arg $ config_args $ shards_arg $ cluster_arg
      $ top_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain one sequence's clustering: its join/leave history (from a decision \
          journal) and the per-position log-odds contributions behind its similarity to a \
          cluster.")
    term

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let fuzz =
    Arg.(
      value & opt int 100
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Number of deterministic fuzz cases. Case $(i,i) is generated from seed \
             $(i,seed+i), so a failure at case $(i,i) replays with $(b,--fuzz 1 --seed) \
             $(i,seed+i).")
  in
  let file =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Optional sequence file: instead of fuzzing, run one audited clustering over it \
             (serial reclustering replay + invariants every iteration) and verify the final \
             result.")
  in
  let run _vcount fuzz_n seed shards file =
    let shards = resolve_shards shards in
    match file with
    | Some f ->
        let alphabet, rows = Seq_io.read_labeled f in
        let db, _ = Seq_io.to_database alphabet rows in
        let n = Seq_database.n_sequences db in
        (* Scale the statistical thresholds to the file like the docs
           recommend; the audit checks mechanics, not clustering quality. *)
        let config =
          { (Cluseq.scaled_config ~expected_cluster_size:(max 1 (n / 10)) ()) with seed }
        in
        Check.install_auditor ();
        (match Shard.run ~config ~shards db with
        | exception Check.Violation msgs ->
            List.iter (Printf.eprintf "violation: %s\n") msgs;
            exit 1
        | result -> (
            match Check.result_invariants ~n result with
            | [] ->
                Printf.printf
                  "ok: audited %srun over %s: %d clusters in %d iterations, every oracle \
                   and invariant holds\n"
                  (if shards > 1 then Printf.sprintf "%d-shard " shards else "")
                  f result.n_clusters result.iterations;
                (* With --index-ratio R the user is considering the
                   opt-in sketch gate: also compare gated vs full final
                   clusterings, the go/no-go signal for enabling it. *)
                (match Check.index_agrees ~config db with
                | Check.Index_skipped -> ()
                | Check.Index_identical ->
                    Printf.printf "ok: gated scan (ratio %g) matches the full scan\n"
                      (Index.ratio ())
                | Check.Index_diverged report ->
                    Printf.printf "note: index %s\n" report)
            | msgs ->
                List.iter (Printf.eprintf "violation: %s\n") msgs;
                exit 1))
    | None -> (
        Printf.printf "fuzzing %d cases from seed %d\n%!" fuzz_n seed;
        let progress i =
          if (i + 1) mod 50 = 0 then Printf.printf "  %d/%d ok\n%!" (i + 1) fuzz_n
        in
        let diverged = ref 0 in
        let on_divergence case_seed report =
          incr diverged;
          Printf.printf "  note (seed %d): index %s\n%!" case_seed report
        in
        match Fuzz.run ~progress ~on_divergence ~n:fuzz_n ~seed () with
        | Ok n ->
            Printf.printf "ok: %d fuzz cases, zero oracle mismatches" n;
            if !diverged > 0 then
              Printf.printf " (%d sketch-gate false negatives, reported above)" !diverged;
            print_newline ()
        | Error failure ->
            Format.eprintf "%a@." Fuzz.pp_failure failure;
            exit 1)
  in
  let term = Term.(const run $ obs_term $ fuzz $ seed_arg $ shards_arg $ file) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the correctness tooling: differential fuzzing of the whole pipeline, or an \
          audited clustering of a real file.")
    term

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run _vcount file =
    let alphabet, rows = Seq_io.read_labeled file in
    let db, labels = Seq_io.to_database alphabet rows in
    Printf.printf "sequences: %d\n" (Seq_database.n_sequences db);
    Printf.printf "alphabet:  %d symbols\n" (Alphabet.size alphabet);
    Printf.printf "avg length: %.1f\n" (Seq_database.avg_length db);
    Printf.printf "total symbols: %d\n" (Seq_database.total_symbols db);
    let distinct = List.sort_uniq compare (Array.to_list labels) in
    Printf.printf "distinct labels: %d\n" (List.length distinct)
  in
  let term = Term.(const run $ obs_term $ file_arg 0) in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics of a sequence file.") term

let () =
  let doc = "CLUSEQ: probabilistic-suffix-tree sequence clustering (ICDE 2003)" in
  let info = Cmd.info "cluseq" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
          [
            generate_cmd;
            cluster_cmd;
            train_cmd;
            classify_cmd;
            evaluate_cmd;
            explain_cmd;
            check_cmd;
            info_cmd;
          ]))
